//! Quickstart: run the paper's two-region hybrid deployment under Policy 2
//! (Available Resources Estimation) and print the per-era signals.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use acm::core::config::{ExperimentConfig, PredictorChoice};
use acm::core::framework::run_experiment;
use acm::core::policy::PolicyKind;

fn main() {
    // The Figure-3 deployment: EC2 Ireland (6 × m3.medium) + private Munich
    // (4 small VMware guests), 448 vs 160 emulated TPC-W browsers.
    let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, 42);
    cfg.eras = 40;
    // Use the ground-truth oracle so the quickstart finishes in a second;
    // see the `f2pm_training` example for the full ML pipeline.
    cfg.predictor = PredictorChoice::Oracle;

    println!("deployment : {}", cfg.name);
    println!(
        "regions    : {}",
        cfg.regions
            .iter()
            .map(|r| format!("{} ({} VMs)", r.region.name, r.region.total_vms))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("policy     : {}", cfg.policy);
    println!();

    let tel = run_experiment(&cfg);

    println!(
        "{:>6} {:>12} {:>12} {:>8} {:>8} {:>10}",
        "era", "rmttf_r1(s)", "rmttf_r3(s)", "f_r1", "f_r3", "resp(ms)"
    );
    for e in 0..tel.eras() {
        println!(
            "{:>6} {:>12.0} {:>12.0} {:>8.3} {:>8.3} {:>10.1}",
            e + 1,
            tel.rmttf(0).points()[e].value,
            tel.rmttf(1).points()[e].value,
            tel.fraction(0).points()[e].value,
            tel.fraction(1).points()[e].value,
            tel.global_response().points()[e].value * 1000.0,
        );
    }

    println!();
    println!(
        "RMTTF spread (last 10 eras)     : {:.3}",
        tel.rmttf_spread(10)
    );
    println!(
        "fraction oscillation (last 10)  : {:.4}",
        tel.fraction_oscillation(10)
    );
    println!(
        "mean client response (last 10)  : {:.0} ms",
        tel.tail_response(10) * 1000.0
    );
    println!(
        "proactive rejuvenations         : {}",
        tel.total_proactive()
    );
    println!("reactive failures               : {}", tel.total_reactive());
    println!(
        "requests served                 : {}",
        tel.total_completed()
    );
}
