//! Autoscaling under a diurnal workload: the client populations of both
//! regions follow compressed day/night cycles, and the ADDVMS /
//! deactivation logic of Sec. V tracks the sun while the policy keeps the
//! RMTTFs level.
//!
//! ```text
//! cargo run --release --example diurnal_autoscaling
//! ```

use acm::core::autoscale::AutoscaleConfig;
use acm::core::config::{ExperimentConfig, PredictorChoice};
use acm::core::cost::price_run;
use acm::core::framework::run_experiment;
use acm::core::policy::PolicyKind;
use acm::sim::Duration;
use acm::workload::ClientSchedule;

fn main() {
    let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, 42);
    cfg.predictor = PredictorChoice::Oracle;
    cfg.eras = 160; // 80 simulated minutes = 2 compressed "days"
    let day = Duration::from_secs(2400); // one compressed day

    // Both regions follow the same compressed day/night cycle (a global
    // e-commerce peak), with Ireland carrying the larger population.
    cfg.regions[0].clients = ClientSchedule::Diurnal {
        base: 280,
        amplitude: 200,
        period: day,
    };
    cfg.regions[1].clients = ClientSchedule::Diurnal {
        base: 160,
        amplitude: 120,
        period: day,
    };
    cfg.autoscale = AutoscaleConfig {
        enabled: true,
        response_threshold_s: 0.3,
        rmttf_low_s: 350.0,
        rmttf_high_s: 1500.0,
        cooldown_eras: 3,
        max_vms: 16,
    };

    let tel = run_experiment(&cfg);
    let prices: Vec<f64> = cfg.regions.iter().map(|r| r.region.vm_hour_usd).collect();
    let cost = price_run(&tel, &prices, cfg.era);

    println!("two compressed days, diurnal client populations, autoscaling on\n");
    println!(
        "{:>6} {:>10} {:>11} {:>11} {:>10}",
        "era", "lambda", "active_r1", "active_r3", "resp(ms)"
    );
    for e in (0..tel.eras()).step_by(8) {
        println!(
            "{:>6} {:>10.1} {:>11} {:>11} {:>10.1}",
            e + 1,
            tel.global_lambda().points()[e].value,
            tel.active_vms(0).points()[e].value,
            tel.active_vms(1).points()[e].value,
            tel.global_response().points()[e].value * 1000.0,
        );
    }

    // Capacity must track demand: the VM census at global peak should
    // exceed the census at the global trough.
    let lambda_vals: Vec<f64> = tel.global_lambda().values().collect();
    let peak_era = (40..tel.eras())
        .max_by(|&a, &b| lambda_vals[a].partial_cmp(&lambda_vals[b]).unwrap())
        .unwrap();
    let trough_era = (40..tel.eras())
        .min_by(|&a, &b| lambda_vals[a].partial_cmp(&lambda_vals[b]).unwrap())
        .unwrap();
    let census =
        |e: usize| tel.active_vms(0).points()[e].value + tel.active_vms(1).points()[e].value;
    println!();
    println!(
        "peak   (era {:>3}): λ = {:>5.1} req/s, {} active VMs",
        peak_era + 1,
        lambda_vals[peak_era],
        census(peak_era)
    );
    println!(
        "trough (era {:>3}): λ = {:>5.1} req/s, {} active VMs",
        trough_era + 1,
        lambda_vals[trough_era],
        census(trough_era)
    );
    println!("tail response : {:.0} ms", tel.tail_response(30) * 1000.0);
    println!(
        "run cost      : ${:.3} total (${:.2} per M requests)",
        cost.total_usd, cost.usd_per_mreq
    );

    assert!(
        census(peak_era) > census(trough_era),
        "capacity should follow the sun"
    );
    assert!(
        tel.tail_response(30) < 1.0,
        "SLA must hold through the cycles"
    );
}
