//! Side-by-side comparison of the three load-balancing policies on the
//! paper's three-region deployment (the Figure-4 scenario) — the
//! qualitative result of Sec. VI-B in one table.
//!
//! ```text
//! cargo run --release --example policy_comparison
//! ```

use acm::core::config::{ExperimentConfig, PredictorChoice};
use acm::core::framework::run_experiment;
use acm::core::policy::PolicyKind;
use acm::core::telemetry::ExperimentTelemetry;

fn summarise(policy: PolicyKind, tel: &ExperimentTelemetry) {
    let window = tel.eras() / 3;
    let convergence = match tel.convergence_era(1.25) {
        Some(e) => format!("era {e}"),
        None => "never".to_string(),
    };
    println!(
        "{:<28} {:>10.3} {:>12} {:>12.4} {:>10.0} ms {:>8} {:>8}",
        policy.name(),
        tel.rmttf_spread(window),
        convergence,
        tel.fraction_oscillation(window),
        tel.tail_response(window) * 1000.0,
        tel.total_proactive(),
        tel.total_reactive(),
    );
}

fn main() {
    println!("Three-region hybrid cloud (Fig. 4 deployment), 120 eras x 30 s\n");
    println!(
        "{:<28} {:>10} {:>12} {:>12} {:>13} {:>8} {:>8}",
        "policy", "spread", "converged", "f-oscill.", "response", "proact", "react"
    );

    for policy in PolicyKind::ALL {
        let mut cfg = ExperimentConfig::three_region_fig4(policy, 42);
        cfg.predictor = PredictorChoice::Oracle;
        let tel = run_experiment(&cfg);
        summarise(policy, &tel);
    }

    println!();
    println!("Expected shape (paper Sec. VI-B):");
    println!("  * Policy 1 never converges (spread stays high), f oscillates;");
    println!("  * Policy 2 converges fastest and most stably;");
    println!("  * Policy 3 converges but is noisier than Policy 2;");
    println!("  * response time stays below the 1 s SLA for all policies.");
}
