//! Autoscaling under a client surge (paper Sec. V / Alg. 3): the client
//! population of region 1 quadruples mid-run; the VMC detects the predicted
//! response time crossing the threshold and ADDVMS fires, growing the pool.
//!
//! ```text
//! cargo run --release --example autoscaling_surge
//! ```

use acm::core::autoscale::AutoscaleConfig;
use acm::core::config::{ExperimentConfig, PredictorChoice};
use acm::core::framework::run_experiment;
use acm::core::policy::PolicyKind;
use acm::sim::SimTime;
use acm::workload::ClientSchedule;

fn main() {
    let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, 42);
    cfg.predictor = PredictorChoice::Oracle;
    cfg.eras = 80;
    // Surge: region-1 clients jump 128 -> 512 at t = 10 min.
    cfg.regions[0].clients = ClientSchedule::Step {
        before: 128,
        after: 512,
        at: SimTime::from_secs(600),
    };
    cfg.regions[1].clients = ClientSchedule::Constant(96);
    cfg.autoscale = AutoscaleConfig {
        enabled: true,
        response_threshold_s: 0.25,
        // Grow whenever the surge pushes the regional MTTF below ~7 min —
        // the Sec. V "RMTTF becomes less than a given threshold" trigger.
        rmttf_low_s: 400.0,
        rmttf_high_s: 1e9, // never scale down in this drill
        cooldown_eras: 4,
        max_vms: 16,
    };

    let tel = run_experiment(&cfg);

    println!("client surge at era 20 (128 -> 512 browsers on region 1)\n");
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>10}",
        "era", "lambda", "active_r1", "active_r3", "resp(ms)"
    );
    for e in (0..tel.eras()).step_by(4) {
        println!(
            "{:>6} {:>10.1} {:>12} {:>12} {:>10.1}",
            e + 1,
            tel.global_lambda().points()[e].value,
            tel.active_vms(0).points()[e].value,
            tel.active_vms(1).points()[e].value,
            tel.global_response().points()[e].value * 1000.0,
        );
    }

    // Peak capacity per phase (the instantaneous count dips whenever a VM
    // is rejuvenating, so compare peaks, not endpoints).
    let peak = |from: usize, to: usize| -> f64 {
        tel.active_vms(0).points()[from..to]
            .iter()
            .map(|p| p.value)
            .fold(0.0, f64::max)
    };
    let before = peak(0, 20);
    let after = peak(40, tel.eras());
    println!();
    println!("region-1 peak active VMs before surge : {before}");
    println!("region-1 peak active VMs after surge  : {after}");
    println!(
        "tail response                         : {:.0} ms",
        tel.tail_response(15) * 1000.0
    );
    assert!(after > before, "autoscaler should have grown the region");
}
