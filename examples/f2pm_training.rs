//! The full F2PM pipeline, standalone: collect a feature database from
//! instrumented VM runs, Lasso-select features, train the whole model menu
//! and print the ranking — the process behind the paper's choice of
//! REP-Tree as the deployed MTTF predictor.
//!
//! ```text
//! cargo run --release --example f2pm_training
//! ```

use acm::ml::toolchain::F2pmToolchain;
use acm::pcam::training::{collect_database, CollectionConfig};
use acm::sim::SimRng;
use acm::vm::{AnomalyConfig, FailureSpec, VmFlavor};

fn main() {
    let mut rng = SimRng::new(2016);

    for flavor in [
        VmFlavor::m3_medium(),
        VmFlavor::m3_small(),
        VmFlavor::private_munich(),
    ] {
        println!("=== {} ===", flavor.name);
        let db = collect_database(
            &flavor,
            &AnomalyConfig::default(),
            &FailureSpec::default(),
            &CollectionConfig::default(),
            &mut rng,
        );
        println!(
            "feature database: {} samples x {} features",
            db.len(),
            db.width()
        );

        let (predictor, report) = F2pmToolchain::default().run(&db, &mut rng);
        println!(
            "lasso-selected features ({}): {}",
            report.selected_names.len(),
            report.selected_names.join(", ")
        );
        println!("model ranking (holdout):");
        print!("{}", report.to_table());
        println!(
            "deployed predictor: {} over {} features\n",
            predictor.kind(),
            predictor.selected_features().len()
        );
    }
}
