//! Fault-tolerance drill: cut the WAN link between the two regions in the
//! middle of the run, watch the overlay drop reports, the leader hold
//! stale state, and the system recover when the link heals — plus a
//! standalone demonstration of the fault-tolerant leader election.
//!
//! ```text
//! cargo run --release --example failover_drill
//! ```

use acm::core::config::{ExperimentConfig, LinkFault, PredictorChoice};
use acm::core::framework::run_experiment;
use acm::core::policy::PolicyKind;
use acm::overlay::{election, NodeId, OverlayGraph};
use acm::sim::{Duration, SimTime};

fn leader_election_demo() {
    println!("--- leader election under failures ---");
    let mut g = OverlayGraph::full_mesh(&[
        (NodeId(0), NodeId(1), Duration::from_millis(25)),
        (NodeId(0), NodeId(2), Duration::from_millis(30)),
        (NodeId(1), NodeId(2), Duration::from_millis(12)),
    ]);
    let out = election::elect(&g);
    println!(
        "healthy mesh: leader {:?}, {} rounds, {} messages",
        out.leaders(),
        out.rounds,
        out.messages
    );

    g.fail_node(NodeId(0));
    let out = election::elect(&g);
    println!("leader vmc0 dies: new leader {:?}", out.leaders());

    g.fail_link(NodeId(1), NodeId(2));
    let out = election::elect(&g);
    println!(
        "link 1-2 also cut: leaders per partition {:?}",
        out.leaders()
    );

    g.recover_node(NodeId(0));
    g.recover_link(NodeId(1), NodeId(2));
    let out = election::elect(&g);
    println!("full recovery: leader {:?}\n", out.leaders());
}

fn main() {
    leader_election_demo();

    println!("--- control loop through a 5-minute WAN partition ---");
    let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, 42);
    cfg.predictor = PredictorChoice::Oracle;
    cfg.eras = 60;
    cfg.link_faults = vec![LinkFault {
        a: 0,
        b: 1,
        fail_at: SimTime::from_secs(600),
        recover_at: SimTime::from_secs(900),
    }];
    let tel = run_experiment(&cfg);

    println!(
        "{:>6} {:>8} {:>8} {:>12} {:>12} {:>10}",
        "era", "f_r1", "f_r3", "rmttf_r1", "rmttf_r3", "resp(ms)"
    );
    for e in (0..tel.eras()).step_by(4) {
        let marker = if (20..30).contains(&e) {
            "  <- partition"
        } else {
            ""
        };
        println!(
            "{:>6} {:>8.3} {:>8.3} {:>12.0} {:>12.0} {:>10.1}{marker}",
            e + 1,
            tel.fraction(0).points()[e].value,
            tel.fraction(1).points()[e].value,
            tel.rmttf(0).points()[e].value,
            tel.rmttf(1).points()[e].value,
            tel.global_response().points()[e].value * 1000.0,
        );
    }
    println!();
    println!(
        "served {} requests across the partition; {} proactive rejuvenations, {} reactive failures",
        tel.total_completed(),
        tel.total_proactive(),
        tel.total_reactive()
    );
    println!(
        "tail response: {:.0} ms (SLA is 1000 ms)",
        tel.tail_response(15) * 1000.0
    );
}
