//! Embedding ACM in a threaded host application: the control loop runs on
//! a worker thread, streaming one update per era over an mpsc channel,
//! while the main thread renders a live dashboard and an `RwLock`-protected
//! snapshot lets any other thread poll the latest state — the shape a real
//! operations console around the framework would take.
//!
//! ```text
//! cargo run --release --example live_dashboard
//! ```

use acm::core::config::{ExperimentConfig, PredictorChoice};
use acm::core::control_loop::ControlLoop;
use acm::core::framework::build_vmcs;
use acm::core::policy::PolicyKind;
use acm::sim::SimRng;
use std::sync::mpsc;
use std::sync::{Arc, RwLock};
use std::thread;

/// One era's worth of dashboard state.
#[derive(Debug, Clone)]
struct EraUpdate {
    era: usize,
    rmttf: Vec<f64>,
    fractions: Vec<f64>,
    response_ms: f64,
    lambda: f64,
}

fn main() {
    let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, 42);
    cfg.predictor = PredictorChoice::Oracle;
    cfg.eras = 60;

    let (tx, rx) = mpsc::sync_channel::<EraUpdate>(16);
    let latest: Arc<RwLock<Option<EraUpdate>>> = Arc::new(RwLock::new(None));
    let latest_writer = Arc::clone(&latest);

    // Worker: the ACM control loop, one era per send.
    let cfg_worker = cfg.clone();
    let worker = thread::spawn(move || {
        let mut rng = SimRng::new(cfg_worker.seed);
        let vmcs = build_vmcs(&cfg_worker, &mut rng);
        let mut cl = ControlLoop::new(&cfg_worker, vmcs, rng);
        for era in 0..cfg_worker.eras {
            cl.step_era();
            let tel = cl.telemetry();
            let n = tel.region_names().len();
            let update = EraUpdate {
                era: era + 1,
                rmttf: (0..n).map(|i| tel.rmttf(i).last().unwrap_or(0.0)).collect(),
                fractions: (0..n)
                    .map(|i| tel.fraction(i).last().unwrap_or(0.0))
                    .collect(),
                response_ms: tel.global_response().last().unwrap_or(0.0) * 1000.0,
                lambda: tel.global_lambda().last().unwrap_or(0.0),
            };
            *latest_writer.write().expect("snapshot lock") = Some(update.clone());
            if tx.send(update).is_err() {
                return cl.into_telemetry(); // dashboard hung up
            }
        }
        cl.into_telemetry()
    });

    println!("live ACM dashboard — {} ({} eras)\n", cfg.name, cfg.eras);
    println!(
        "{:>5} {:>10} {:>12} {:>12} {:>8} {:>8} {:>10}",
        "era", "λ(req/s)", "rmttf_r1(s)", "rmttf_r3(s)", "f_r1", "f_r3", "resp(ms)"
    );
    let mut received = 0;
    for update in rx.iter() {
        received += 1;
        if update.era % 5 == 0 {
            println!(
                "{:>5} {:>10.1} {:>12.0} {:>12.0} {:>8.3} {:>8.3} {:>10.1}",
                update.era,
                update.lambda,
                update.rmttf[0],
                update.rmttf[1],
                update.fractions[0],
                update.fractions[1],
                update.response_ms,
            );
        }
    }

    let telemetry = worker.join().expect("worker thread panicked");

    // Any thread can read the last snapshot without the channel.
    let snapshot = latest
        .read()
        .expect("snapshot lock")
        .clone()
        .expect("at least one era ran");
    println!(
        "\nlast snapshot via shared lock: era {}, resp {:.1} ms",
        snapshot.era, snapshot.response_ms
    );
    println!("eras streamed               : {received}");
    println!(
        "RMTTF spread (final third)  : {:.3}",
        telemetry.rmttf_spread(20)
    );

    assert_eq!(received, cfg.eras);
    assert_eq!(snapshot.era, cfg.eras);
    assert!(telemetry.rmttf_spread(20) < 1.25, "Policy 2 converges");
}
