//! Event-driven (per-request) simulation of one PCAM-managed region.
//!
//! The figure harness runs at the control-era grain; this example drives
//! the *fine* grain end-to-end on the discrete-event kernel: every emulated
//! browser is an event chain (think → request → response → think …), every
//! request walks the TPC-W session machine and hits one VM through
//! [`acm::pcam::RegionSim`]'s round-robin dispatcher, anomalies accumulate
//! per request, and a periodic controller event performs proactive
//! rejuvenation — the same physics the era grain aggregates, observed
//! request by request.
//!
//! ```text
//! cargo run --release --example event_driven
//! ```

use acm::pcam::{RegionConfig, RegionSim, RttfSource};
use acm::sim::stats::{OnlineStats, P2Quantile};
use acm::sim::{Duration, SimRng, SimTime, Simulator};
use acm::vm::VmFlavor;
use acm::workload::{Session, TpcwMix};

const N_BROWSERS: usize = 120;
const THINK_MEAN_S: f64 = 7.0;
const RUN_SECONDS: u64 = 1800;
const CONTROL_PERIOD: Duration = Duration::from_secs(30);

struct World {
    region: RegionSim,
    sessions: Vec<Session>,
    rng: SimRng,
    response: OnlineStats,
    p95: P2Quantile,
}

impl World {
    fn new(mut rng: SimRng) -> Self {
        let config = RegionConfig::new("event-region", VmFlavor::m3_medium(), 5, 4);
        // Closed-loop per-VM rate estimate: N / Z split over the actives.
        let lambda_hint = N_BROWSERS as f64 / THINK_MEAN_S / 4.0;
        World {
            region: RegionSim::new(config, RttfSource::Oracle, lambda_hint, rng.split()),
            sessions: (0..N_BROWSERS)
                .map(|_| Session::start(TpcwMix::Shopping))
                .collect(),
            rng,
            response: OnlineStats::new(),
            p95: P2Quantile::new(0.95),
        }
    }
}

/// Browser `i` finishes thinking and fires its next session interaction.
fn browser_request(sim: &mut Simulator<World>, i: usize) {
    let now = sim.now();
    let w = &mut sim.world;
    if w.sessions[i].advance(&mut w.rng).is_none() {
        w.sessions[i] = Session::start(TpcwMix::Shopping); // new user arrives
    }
    let outcome = w.region.begin(now);
    let think = Duration::from_secs_f64(w.rng.exponential(THINK_MEAN_S));
    match outcome {
        Some((vm, out)) => {
            w.response.push(out.response_s);
            w.p95.push(out.response_s);
            let sojourn = Duration::from_secs_f64(out.response_s);
            // Completion event: release the VM's in-flight slot (so
            // concurrent requests genuinely share the processor), then let
            // the browser think before its next interaction.
            sim.schedule_in(sojourn, move |s| {
                s.world.region.finish(vm);
                s.schedule_in(think, move |s2| browser_request(s2, i));
            });
        }
        None => {
            // Dropped: the user retries after thinking, like a page reload.
            sim.schedule_in(think, move |s| browser_request(s, i));
        }
    }
}

fn main() {
    let mut sim = Simulator::new(World::new(SimRng::new(42)));

    // Stagger the browsers' first requests across one think time.
    for i in 0..N_BROWSERS {
        let jitter = Duration::from_secs_f64(sim.world.rng.uniform(0.0, THINK_MEAN_S));
        sim.schedule_at(SimTime::ZERO + jitter, move |s| browser_request(s, i));
    }
    // The VMC's periodic control tick.
    sim.schedule_periodic(SimTime::from_secs(30), CONTROL_PERIOD, |s| {
        let now = s.now();
        s.world.region.control_tick(now);
        true
    });

    sim.run_until(SimTime::from_secs(RUN_SECONDS));

    let w = &sim.world;
    let stats = w.region.stats();
    println!(
        "event-driven single-region run: {} browsers, {} s simulated",
        N_BROWSERS, RUN_SECONDS
    );
    println!("events executed        : {}", sim.executed());
    println!("requests completed     : {}", stats.completed);
    println!("requests dropped       : {}", stats.dropped);
    println!(
        "mean response          : {:.1} ms",
        w.response.mean() * 1000.0
    );
    println!(
        "p95 response           : {:.1} ms",
        w.p95.estimate() * 1000.0
    );
    println!(
        "max response           : {:.1} ms",
        w.response.max() * 1000.0
    );
    println!("proactive rejuvenations: {}", stats.proactive);
    println!("reactive rejuvenations : {}", stats.reactive);
    let c = w.region.counts();
    println!(
        "final pool             : {} active / {} standby / {} rejuvenating / {} failed",
        c.active, c.standby, c.rejuvenating, c.failed
    );

    assert!(
        stats.completed > 10_000,
        "the region must actually serve load"
    );
    assert!(w.response.mean() < 1.0, "mean response within the SLA");
    assert!(stats.proactive > 0, "anomalies must force rejuvenations");
    assert_eq!(
        stats.reactive, 0,
        "the oracle predictor preempts all failures"
    );
}
