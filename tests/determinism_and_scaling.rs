//! Integration: reproducibility guarantees and autoscaling behaviour.

use acm::core::autoscale::AutoscaleConfig;
use acm::core::config::{ExperimentConfig, PredictorChoice};
use acm::core::framework::run_experiment;
use acm::core::policy::PolicyKind;
use acm::sim::SimTime;
use acm::workload::ClientSchedule;

#[test]
fn full_pipeline_is_bit_reproducible_per_seed() {
    // Includes F2PM training: collection, Lasso, REP-Tree, control loop.
    let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::Exploration, 77);
    cfg.eras = 25;
    let a = run_experiment(&cfg);
    let b = run_experiment(&cfg);
    assert_eq!(a.to_csv(), b.to_csv());
}

#[test]
fn parallel_execution_is_byte_identical_to_sequential() {
    // The exec-pool determinism contract: a seed-sweep-style parallel
    // aggregate and the full telemetry JSONL export must not change by a
    // single byte between ACM_THREADS=1 (pure sequential path) and a
    // 4-thread pool.
    use rayon::prelude::*;
    let sweep = || {
        let per_seed: Vec<(f64, f64, f64)> = (0..4u64)
            .into_par_iter()
            .map(|seed| {
                let mut cfg =
                    ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, 1000 + seed);
                cfg.predictor = PredictorChoice::Oracle;
                cfg.eras = 30;
                let tel = run_experiment(&cfg);
                let w = tel.eras() / 3;
                (
                    tel.rmttf_spread(w),
                    tel.fraction_oscillation(w),
                    tel.tail_response(w),
                )
            })
            .collect();
        let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::Exploration, 77);
        cfg.predictor = PredictorChoice::Oracle;
        cfg.eras = 20;
        let jsonl = run_experiment(&cfg).to_jsonl();
        // Debug-format floats round-trip exactly, so this is a byte-level
        // comparison of the aggregates too.
        (format!("{per_seed:?}"), jsonl)
    };

    let before = acm::exec::current_threads();
    acm::exec::configure_threads(1);
    let sequential = sweep();
    acm::exec::configure_threads(4);
    let parallel = sweep();
    acm::exec::configure_threads(before);

    assert_eq!(
        sequential.0, parallel.0,
        "seed-sweep aggregates differ between 1 and 4 threads"
    );
    assert_eq!(
        sequential.1, parallel.1,
        "telemetry JSONL differs between 1 and 4 threads"
    );
}

#[test]
fn model_selection_is_byte_identical_across_thread_widths() {
    // The tentpole contract of the parallel CV/tuning rework: every tuning
    // grid and a standalone k-fold CV must produce byte-identical results
    // (Debug floats round-trip exactly) at ACM_THREADS=1 — the pure
    // sequential path — and on a 4-thread pool, because fold/candidate RNG
    // streams are pre-split sequentially before the parallel dispatch.
    use acm::ml::model::ModelKind;
    use acm::ml::tuning::{tune_lssvm, tune_rep_tree, tune_ridge, tune_svr};
    use acm::ml::validate::cross_validate;
    use acm::ml::Dataset;
    use acm::sim::rng::SimRng;

    let db = {
        let mut rng = SimRng::new(404);
        let mut db = Dataset::new(["a", "b", "c"]);
        for _ in 0..240 {
            let a = rng.uniform(0.0, 10.0);
            let b = rng.uniform(0.0, 5.0);
            let c = rng.uniform(0.0, 1.0);
            let y = 3.0 * a - 2.0 * b + rng.normal(0.0, 0.3);
            db.push(vec![a, b, c], y);
        }
        db
    };
    let selection = || {
        let mut rng = SimRng::new(99);
        format!(
            "{:?}|{:?}|{:?}|{:?}|{:?}",
            tune_rep_tree(&db, 5, &mut rng),
            tune_ridge(&db, 5, &mut rng),
            tune_svr(&db, 4, &mut rng),
            tune_lssvm(&db, 4, &mut rng),
            cross_validate(ModelKind::RepTree, &db, 6, &mut rng),
        )
    };

    let before = acm::exec::current_threads();
    acm::exec::configure_threads(1);
    let sequential = selection();
    acm::exec::configure_threads(4);
    let parallel = selection();
    acm::exec::configure_threads(before);

    assert_eq!(
        sequential, parallel,
        "tuning/CV results differ between 1 and 4 threads"
    );
}

#[test]
fn seeds_change_the_trajectory_but_not_the_conclusions() {
    let mut spreads = Vec::new();
    for seed in [1, 2, 3] {
        let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, seed);
        cfg.predictor = PredictorChoice::Oracle;
        cfg.eras = 80;
        let tel = run_experiment(&cfg);
        spreads.push(tel.rmttf_spread(25));
    }
    // Trajectories differ, but Policy 2 converges for every seed.
    for s in &spreads {
        assert!(*s < 1.25, "spread {s} (all: {spreads:?})");
    }
}

#[test]
fn autoscaler_grows_a_region_under_a_client_surge() {
    let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, 42);
    cfg.predictor = PredictorChoice::Oracle;
    cfg.eras = 70;
    cfg.regions[0].clients = ClientSchedule::Step {
        before: 128,
        after: 512,
        at: SimTime::from_secs(600),
    };
    cfg.regions[1].clients = ClientSchedule::Constant(96);
    cfg.autoscale = AutoscaleConfig {
        enabled: true,
        response_threshold_s: 0.25,
        rmttf_low_s: 400.0,
        rmttf_high_s: 1e9,
        cooldown_eras: 4,
        max_vms: 16,
    };
    let tel = run_experiment(&cfg);
    let peak = |from: usize, to: usize| {
        tel.active_vms(0).points()[from..to]
            .iter()
            .map(|p| p.value)
            .fold(0.0, f64::max)
    };
    assert!(
        peak(40, tel.eras()) > peak(0, 20),
        "no growth: before {} after {}",
        peak(0, 20),
        peak(40, tel.eras())
    );
    // And the SLA holds through the surge.
    assert!(tel.tail_response(20) < 1.0);
}

#[test]
fn autoscaler_releases_capacity_when_idle() {
    let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, 42);
    cfg.predictor = PredictorChoice::Oracle;
    cfg.eras = 50;
    // Nearly idle system.
    cfg.regions[0].clients = ClientSchedule::Constant(16);
    cfg.regions[1].clients = ClientSchedule::Constant(16);
    cfg.autoscale = AutoscaleConfig {
        enabled: true,
        response_threshold_s: 0.8,
        rmttf_low_s: 60.0,
        rmttf_high_s: 3_000.0,
        cooldown_eras: 4,
        max_vms: 16,
    };
    let tel = run_experiment(&cfg);
    let start = tel.active_vms(0).points()[0].value;
    let end = tel.active_vms(0).last().unwrap();
    assert!(end < start, "idle region should shrink: {start} -> {end}");
}

#[test]
fn ramp_schedule_shifts_ingress_over_time() {
    let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, 42);
    cfg.predictor = PredictorChoice::Oracle;
    cfg.eras = 60;
    cfg.regions[0].clients = ClientSchedule::Ramp {
        from: 64,
        to: 448,
        start: SimTime::from_secs(300),
        end: SimTime::from_secs(1200),
    };
    let tel = run_experiment(&cfg);
    let lambda_early = tel.global_lambda().points()[5].value;
    let lambda_late = tel.global_lambda().points()[55].value;
    assert!(
        lambda_late > lambda_early * 2.0,
        "ramp not visible: {lambda_early} -> {lambda_late}"
    );
}
