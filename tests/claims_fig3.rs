//! Integration: the paper's Figure-3 claims on the two-region hybrid
//! deployment, asserted statistically (oracle predictor for speed; the
//! trained-predictor path is covered by `f2pm_pipeline.rs` and the fig3
//! binary).

use acm::core::config::{ExperimentConfig, PredictorChoice};
use acm::core::framework::run_experiment;
use acm::core::policy::PolicyKind;
use acm::core::telemetry::ExperimentTelemetry;

fn run(policy: PolicyKind, eras: usize) -> ExperimentTelemetry {
    run_seeded(policy, eras, 2016)
}

fn run_seeded(policy: PolicyKind, eras: usize, seed: u64) -> ExperimentTelemetry {
    let mut cfg = ExperimentConfig::two_region_fig3(policy, seed);
    cfg.predictor = PredictorChoice::Oracle;
    cfg.eras = eras;
    run_experiment(&cfg)
}

#[test]
fn c1_policy1_rmttf_does_not_converge() {
    let tel = run(PolicyKind::SensibleRouting, 90);
    let spread = tel.rmttf_spread(30);
    assert!(
        spread > 1.5,
        "Policy 1 spread should stay high, got {spread}"
    );
    assert_eq!(tel.convergence_era(1.25), None);
}

#[test]
fn c2_policy2_converges_quickly_and_stably() {
    let tel = run(PolicyKind::AvailableResources, 90);
    let spread = tel.rmttf_spread(30);
    assert!(
        spread < 1.2,
        "Policy 2 should equalise RMTTFs, got {spread}"
    );
    let conv = tel.convergence_era(1.25).expect("Policy 2 must converge");
    assert!(conv < 45, "Policy 2 should converge early, got era {conv}");
}

#[test]
fn c3_policy3_converges_but_noisier_than_policy2() {
    // Single-seed convergence eras are noisy (one late blip resets the
    // detector), so compare the mean over several seeds — the paper's
    // "Policy 2 converges more quickly" is a distributional claim.
    let mut p2_eras = 0.0;
    let mut p3_eras = 0.0;
    let mut p2_osc = 0.0;
    let mut p3_osc = 0.0;
    let seeds = [2016, 2017, 2018, 2019];
    for &seed in &seeds {
        let p2 = run_seeded(PolicyKind::AvailableResources, 90, seed);
        let p3 = run_seeded(PolicyKind::Exploration, 90, seed);
        assert!(
            p3.rmttf_spread(30) < 1.4,
            "Policy 3 should converge (seed {seed})"
        );
        p2_eras += p2.convergence_era(1.25).expect("P2 converges") as f64;
        p3_eras += p3.convergence_era(1.25).expect("P3 converges") as f64;
        p2_osc += p2.fraction_oscillation(30);
        p3_osc += p3.fraction_oscillation(30);
    }
    let n = seeds.len() as f64;
    assert!(
        p2_eras / n <= p3_eras / n,
        "P2 should converge faster on average: {} vs {}",
        p2_eras / n,
        p3_eras / n
    );
    assert!(
        p3_osc / n > (p2_osc / n) * 0.8,
        "P3 should be at least comparably noisy: {} vs {}",
        p3_osc / n,
        p2_osc / n
    );
}

#[test]
fn c4_response_time_stays_below_one_second_for_all_policies() {
    for policy in PolicyKind::ALL {
        let tel = run(policy, 60);
        let resp = tel.tail_response(30);
        assert!(resp < 1.0, "{policy}: tail response {resp}s");
        // And it is not trivially zero — the system is actually serving.
        assert!(resp > 0.001, "{policy}: suspiciously low response {resp}s");
    }
}

#[test]
fn equilibrium_fractions_reflect_regional_capacity() {
    // Under Policy 2 the memory-rich Ireland region (5 active m3.medium)
    // must end up absorbing the bulk of the flow.
    let tel = run(PolicyKind::AvailableResources, 90);
    let f_ireland = tel.fraction(0).tail_stats(30).mean();
    let f_munich = tel.fraction(1).tail_stats(30).mean();
    assert!(
        f_ireland > 0.75 && f_ireland < 0.95,
        "unexpected equilibrium: ireland {f_ireland}, munich {f_munich}"
    );
    assert!((f_ireland + f_munich - 1.0).abs() < 1e-6);
}

#[test]
fn proactive_maintenance_dominates_reactive_failures_with_oracle() {
    let tel = run(PolicyKind::AvailableResources, 90);
    assert!(tel.total_proactive() > 0);
    // With ground-truth predictions the only reactive failures come from
    // standby starvation (fresh VMs cross the rejuvenation threshold in
    // near-lockstep, and the paper-sized pools keep just 1 spare per
    // region), so reactive stays the same order as proactive, never a
    // blow-up.
    assert!(
        tel.total_reactive() <= tel.total_proactive() * 2,
        "reactive {} should stay comparable to proactive {}",
        tel.total_reactive(),
        tel.total_proactive()
    );
}
