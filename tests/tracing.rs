//! Integration: causal tracing is deterministic and free of side effects.
//!
//! Three contracts, in order of importance:
//!
//! 1. **Byte-identity across widths, tracing ON** — span ids are derived
//!    from the trace seed and a leader-side counter, never from wall
//!    clock, thread ids or allocation order, so a traced randomized world
//!    produces the same span tree, event log and telemetry at any
//!    `ACM_THREADS`.
//! 2. **Tracing OFF changes nothing** — a run with `trace: false` emits
//!    the exact event stream of a build that never heard of tracing (no
//!    extra kinds, no extra fields).
//! 3. **Chains are complete** — every quarantine decision in a chaos run
//!    walks parent links back to a root cause (chaos fault, scripted
//!    fault, or the era itself), with no orphan spans.

use acm::core::config::{ExperimentConfig, PredictorChoice, RegionSpec};
use acm::core::policy::PolicyKind;
use acm::core::DegradationConfig;
use acm::obs::{Obs, ObsConfig, SpanRecord, Value};
use acm::overlay::{FaultPlan, NodeId};
use acm::sim::rng::SimRng;
use acm::sim::{Duration, SimTime};
use acm::workload::ClientSchedule;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// Same shape as the sharding suite's randomized world: 2-5 regions on
/// the paper flavors, full-mesh overlay, randomized faults with message
/// chaos, degradation on.
fn randomized_config(seed: u64) -> ExperimentConfig {
    let mut gen = SimRng::new(seed ^ 0x7ace_7ace);
    let n = 2 + gen.index(4);
    let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, 9000 + seed);
    cfg.name = format!("trace-prop-{seed}");
    cfg.predictor = PredictorChoice::Oracle;
    cfg.eras = 6;
    cfg.regions = (0..n)
        .map(|i| {
            let mut region = match i % 3 {
                0 => ExperimentConfig::region1_ireland(),
                1 => ExperimentConfig::region2_frankfurt(),
                _ => ExperimentConfig::region3_munich(),
            };
            region.name = format!("r{i}-{}", region.name);
            let clients = ClientSchedule::Constant(64 + gen.index(449) as u32);
            RegionSpec { region, clients }
        })
        .collect();
    let mut latencies = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            latencies.push((a, b, Duration::from_millis(5 + gen.index(40) as u64)));
        }
    }
    cfg.latencies = latencies;
    let nodes: Vec<NodeId> = (0..n).map(ExperimentConfig::node_of).collect();
    let links: Vec<(NodeId, NodeId)> = (0..n)
        .flat_map(|a| ((a + 1)..n).map(move |b| (NodeId(a as u32), NodeId(b as u32))))
        .collect();
    cfg.fault_plan = Some(
        FaultPlan::randomized(seed, &nodes, &links, SimTime::from_secs(180), 1.0)
            .with_message_chaos(0.08, Duration::from_millis(20)),
    );
    cfg.degradation = DegradationConfig::enabled();
    cfg
}

fn traced_run(cfg: &ExperimentConfig, trace_seed: u64) -> (String, String, String) {
    let obs = Obs::new(ObsConfig::traced(trace_seed));
    let tel = acm::core::framework::run_experiment_with_obs(cfg, obs.clone());
    (tel.to_csv(), obs.events_jsonl(), obs.spans_jsonl())
}

proptest! {
    /// Contract 1: full span tree + event log + telemetry are
    /// byte-identical at widths 1, 2 and 4 with tracing enabled, under a
    /// randomized fault plan.
    #[test]
    fn traced_randomized_worlds_are_byte_identical_across_widths(seed in 0u64..8) {
        let cfg = randomized_config(seed);
        let before = acm::exec::current_threads();
        acm::exec::configure_threads(1);
        let one = traced_run(&cfg, seed);
        acm::exec::configure_threads(2);
        let two = traced_run(&cfg, seed);
        acm::exec::configure_threads(4);
        let four = traced_run(&cfg, seed);
        acm::exec::configure_threads(before);
        prop_assert!(!one.2.is_empty(), "traced run produced no spans");
        prop_assert_eq!(&one.0, &two.0, "telemetry diverged at 2 threads");
        prop_assert_eq!(&one.1, &two.1, "event log diverged at 2 threads");
        prop_assert_eq!(&one.2, &two.2, "span tree diverged at 2 threads");
        prop_assert_eq!(&one.0, &four.0, "telemetry diverged at 4 threads");
        prop_assert_eq!(&one.1, &four.1, "event log diverged at 4 threads");
        prop_assert_eq!(&one.2, &four.2, "span tree diverged at 4 threads");
    }

    /// Contract 2: with tracing off, the event stream is byte-identical
    /// to the default configuration — enabling the subsystem but not the
    /// flag is a true no-op.
    #[test]
    fn disabled_tracing_leaves_the_event_stream_untouched(seed in 0u64..4) {
        let cfg = randomized_config(seed);
        let run = |obs_cfg: ObsConfig| {
            let obs = Obs::new(obs_cfg);
            let tel = acm::core::framework::run_experiment_with_obs(&cfg, obs.clone());
            (tel.to_csv(), obs.events_jsonl(), obs.spans_jsonl())
        };
        let plain = run(ObsConfig::default());
        let off = run(ObsConfig { trace: false, trace_seed: 99, ..ObsConfig::default() });
        prop_assert_eq!(&plain.0, &off.0);
        prop_assert_eq!(&plain.1, &off.1, "trace-off event stream differs");
        prop_assert!(off.2.is_empty(), "trace-off run allocated spans");
    }
}

/// Walks `span` to its root, returning the chain of names (self first).
/// Panics on a broken parent link or a cycle.
fn chain_to_root(spans: &BTreeMap<u64, &SpanRecord>, mut id: u64) -> Vec<&'static str> {
    let mut names = Vec::new();
    let mut hops = 0;
    loop {
        let s = spans.get(&id).expect("parent link points at a real span");
        names.push(s.name);
        if s.parent == 0 {
            return names;
        }
        id = s.parent;
        hops += 1;
        assert!(hops < 64, "cycle or absurd depth in span tree");
    }
}

/// Contract 3 on the PR 5 chaos scenario: a partition quarantines a
/// region, and the quarantine's causal chain reaches the chaos root.
#[test]
fn quarantine_chains_reach_a_chaos_root() {
    let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, 2025);
    cfg.predictor = PredictorChoice::Oracle;
    cfg.eras = 30;
    cfg.degradation = DegradationConfig::enabled();
    cfg.fault_plan = Some(FaultPlan::scripted(5, Vec::new()).partition_window(
        vec![NodeId(1)],
        SimTime::from_secs(300),
        SimTime::from_secs(600),
    ));
    let obs = Obs::new(ObsConfig::traced(0xcafe));
    let _ = acm::core::framework::run_experiment_with_obs(&cfg, obs.clone());

    let spans = obs.spans();
    let by_id: BTreeMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    // Parent links are well-formed: every non-root parent exists, roots
    // start their own trace.
    let ids: BTreeSet<u64> = by_id.keys().copied().collect();
    for s in &spans {
        if s.parent == 0 {
            assert_eq!(s.trace, s.id, "root span must start its own trace");
        } else {
            assert!(ids.contains(&s.parent), "orphan span {} ({})", s.id, s.name);
            let p = by_id[&s.parent];
            assert_eq!(s.trace, p.trace, "child must inherit the trace id");
        }
    }

    // The quarantine happened, carries its span id in the event log, and
    // walks back to the partition fault.
    let events = obs.events_tail(usize::MAX);
    let quarantines: Vec<_> = events
        .iter()
        .filter(|e| e.kind == "region.quarantine")
        .collect();
    assert!(
        !quarantines.is_empty(),
        "partition must quarantine region 1"
    );
    for q in &quarantines {
        let span_id = q
            .fields
            .iter()
            .find_map(|(k, v)| match (k, v) {
                (&"span", Value::U64(id)) => Some(*id),
                _ => None,
            })
            .expect("traced quarantine event carries its span id");
        let chain = chain_to_root(&by_id, span_id);
        assert_eq!(chain[0], "region.quarantine");
        let root = *chain.last().unwrap();
        assert!(
            root == "chaos.partition" || root == "heartbeat.timeout",
            "quarantine must be caused by the fault, got chain {chain:?}"
        );
        // The chain passes through the evidence layer on its way to the
        // root (timeout or report loss), not straight to the era.
        assert!(
            chain.iter().any(|n| *n == "heartbeat.timeout"
                || *n == "report.lost"
                || *n == "chaos.partition"),
            "no evidence in chain {chain:?}"
        );
    }

    // The readmit after the heal continues the quarantine's chain.
    let readmit = events.iter().find(|e| e.kind == "region.readmit");
    let readmit = readmit.expect("healed region must be readmitted");
    let span_id = readmit
        .fields
        .iter()
        .find_map(|(k, v)| match (k, v) {
            (&"span", Value::U64(id)) => Some(*id),
            _ => None,
        })
        .expect("readmit carries its span id");
    let chain = chain_to_root(&by_id, span_id);
    assert!(
        chain.contains(&"region.quarantine"),
        "readmit must chain through its quarantine: {chain:?}"
    );

    // SLO burn: the partition starves the leader of 50% of its reports,
    // far past the 5% availability budget — the monitor must fire, and
    // recover after the heal.
    let burns = events.iter().filter(|e| e.kind == "slo.burn").count();
    let recoveries = events.iter().filter(|e| e.kind == "slo.recovered").count();
    assert!(burns > 0, "availability SLO must burn during the partition");
    assert!(recoveries > 0, "SLO must recover after the heal");
}
