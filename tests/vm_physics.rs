//! Integration: the VM model's physics — in particular the invariant that
//! makes Policy 2 work: `MTTF(λ) · λ ≈ const` (the resource stock of a VM
//! is load-invariant when anomalies are consumed linearly per request).

use acm::sim::{Duration, SimRng, SimTime};
use acm::vm::{AnomalyConfig, FailureSpec, Vm, VmFlavor, VmId, VmState};

fn fresh_vm(flavor: VmFlavor, seed: u64) -> Vm {
    Vm::new(
        VmId(0),
        flavor,
        AnomalyConfig::default(),
        FailureSpec::default(),
        VmState::Active,
        SimRng::new(seed),
    )
}

#[test]
fn mttf_times_rate_is_nearly_load_invariant() {
    // Q = MTTF(λ)·λ across a 4x rate range must vary far less than MTTF
    // itself does — the premise of the Available Resources policy (Eq. 3).
    let spec = FailureSpec::default();
    let cfg = AnomalyConfig::default();
    for flavor in [
        VmFlavor::m3_medium(),
        VmFlavor::m3_small(),
        VmFlavor::private_munich(),
    ] {
        let qs: Vec<f64> = [5.0, 10.0, 20.0]
            .iter()
            .map(|&lambda| spec.mttf_at_rate(&flavor, &cfg, lambda) * lambda)
            .collect();
        let q_spread = qs.iter().cloned().fold(0.0_f64, f64::max)
            / qs.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            q_spread < 1.6,
            "{}: Q not load-invariant enough: {qs:?}",
            flavor.name
        );
        // While MTTF itself varies ~4x over the same range.
        let mttf_hi = spec.mttf_at_rate(&flavor, &cfg, 5.0);
        let mttf_lo = spec.mttf_at_rate(&flavor, &cfg, 20.0);
        assert!(
            mttf_hi / mttf_lo > 2.5,
            "{}: MTTF barely moved",
            flavor.name
        );
    }
}

#[test]
fn simulated_lifetime_matches_the_fluid_mttf() {
    // Run VMs to failure and compare the empirical lifetime with the
    // analytic fluid MTTF the controllers reason about.
    let lambda = 12.0;
    let spec = FailureSpec::default();
    let cfg = AnomalyConfig::default();
    let predicted = spec.mttf_at_rate(&VmFlavor::m3_medium(), &cfg, lambda);
    assert!(predicted.is_finite());

    let era = Duration::from_secs(10);
    let mut lifetimes = Vec::new();
    for seed in 0..20 {
        let mut vm = fresh_vm(VmFlavor::m3_medium(), seed);
        let mut now = SimTime::ZERO;
        loop {
            vm.process_era(now, era, lambda);
            now += era;
            if let acm::vm::VmState::Failed { at, .. } = vm.state() {
                lifetimes.push(at.as_secs_f64());
                break;
            }
            assert!(
                now.as_secs_f64() < predicted * 5.0,
                "VM survived implausibly long"
            );
        }
    }
    let mean = lifetimes.iter().sum::<f64>() / lifetimes.len() as f64;
    let rel = (mean - predicted).abs() / predicted;
    assert!(
        rel < 0.15,
        "empirical lifetime {mean:.0}s vs fluid MTTF {predicted:.0}s"
    );
}

#[test]
fn degradation_is_monotone_until_failure() {
    let mut vm = fresh_vm(VmFlavor::m3_small(), 7);
    let lambda = 10.0;
    let era = Duration::from_secs(20);
    let mut now = SimTime::ZERO;
    let mut last_resident = 0.0;
    let mut last_rttf = f64::INFINITY;
    while vm.is_active() {
        let f = vm.features(now, lambda);
        let resident = f.get("resident_mb").unwrap();
        assert!(
            resident >= last_resident,
            "resident set shrank without rejuvenation"
        );
        let rttf = vm.true_rttf(lambda);
        assert!(rttf <= last_rttf + 1.0, "RTTF grew under constant load");
        last_resident = resident;
        last_rttf = rttf;
        vm.process_era(now, era, lambda);
        now += era;
        assert!(now.as_secs_f64() < 20_000.0, "never failed");
    }
}

#[test]
fn rejuvenation_fully_restores_service_rate() {
    let mut vm = fresh_vm(VmFlavor::m3_medium(), 9);
    let lambda = 20.0;
    let era = Duration::from_secs(30);
    let fresh_features = vm.features(SimTime::ZERO, lambda);
    let mut now = SimTime::ZERO;
    for _ in 0..8 {
        vm.process_era(now, era, lambda);
        now += era;
    }
    let aged = vm.features(now, lambda);
    assert!(aged.get("resident_mb").unwrap() > fresh_features.get("resident_mb").unwrap());

    vm.start_rejuvenation(now, Duration::from_secs(60));
    now += Duration::from_secs(60);
    assert!(vm.poll_rejuvenation(now));
    vm.activate(now);
    let restored = vm.features(now, lambda);
    assert_eq!(
        restored.get("resident_mb"),
        fresh_features.get("resident_mb"),
        "rejuvenation must clear every leaked byte"
    );
    assert_eq!(restored.get("threads"), fresh_features.get("threads"));
    assert_eq!(restored.get("age_s"), Some(0.0));
}

#[test]
fn response_time_rises_as_the_failure_point_nears() {
    // The response-time feature must carry predictive signal — the reason
    // Lasso keeps it in the F2PM selection.
    let mut vm = fresh_vm(VmFlavor::m3_medium(), 11);
    let lambda = 20.0;
    let era = Duration::from_secs(30);
    let mut now = SimTime::ZERO;
    let mut first_resp = None;
    let mut last_healthy = 0.0;
    let mut peak = 0.0_f64;
    while vm.is_active() {
        let out = vm.process_era(now, era, lambda);
        now += era;
        if out.completed > 0 {
            first_resp.get_or_insert(out.mean_response_s);
            peak = peak.max(out.mean_response_s);
            if vm.is_active() {
                last_healthy = out.mean_response_s;
            }
        }
    }
    let first = first_resp.expect("served at least one era");
    // Visible degradation while still healthy, and a pronounced spike at
    // the failure point (where SLA saturation clamps the era response).
    assert!(
        last_healthy > 1.3 * first,
        "no degradation signal: first {first}, last healthy {last_healthy}"
    );
    assert!(
        peak > 3.0 * first,
        "no failure spike: first {first}, peak {peak}"
    );
}

#[test]
fn heterogeneous_flavors_have_ordered_capacity() {
    // The regional capacity ordering that drives every figure:
    // 6 × medium > 12 × small > 4 × private (per the paper's deployments,
    // in per-request resource-stock terms).
    let spec = FailureSpec::default();
    let cfg = AnomalyConfig::default();
    let stock = |flavor: &VmFlavor, n: f64| {
        let lambda = 8.0;
        n * spec.mttf_at_rate(flavor, &cfg, lambda) * lambda
    };
    let ireland = stock(&VmFlavor::m3_medium(), 5.0);
    let frankfurt = stock(&VmFlavor::m3_small(), 10.0);
    let munich = stock(&VmFlavor::private_munich(), 3.0);
    assert!(
        ireland > frankfurt && frankfurt > munich,
        "{ireland} {frankfurt} {munich}"
    );
    // And the imbalance is strong — this is a HIGHLY heterogeneous deploy.
    assert!(ireland / munich > 3.0);
}
