//! Integration: the paper's Figure-4 claims on the three-region deployment
//! (adds the 12 × m3.small Frankfurt region).

use acm::core::config::{ExperimentConfig, PredictorChoice};
use acm::core::framework::run_experiment;
use acm::core::policy::PolicyKind;
use acm::core::telemetry::ExperimentTelemetry;

fn run(policy: PolicyKind, eras: usize) -> ExperimentTelemetry {
    let mut cfg = ExperimentConfig::three_region_fig4(policy, 2016);
    cfg.predictor = PredictorChoice::Oracle;
    cfg.eras = eras;
    run_experiment(&cfg)
}

#[test]
fn three_region_policy1_still_fails_to_converge() {
    let tel = run(PolicyKind::SensibleRouting, 90);
    assert!(
        tel.rmttf_spread(30) > 1.5,
        "spread {}",
        tel.rmttf_spread(30)
    );
}

#[test]
fn three_region_policies_2_and_3_cope_with_heterogeneity() {
    let p2 = run(PolicyKind::AvailableResources, 90);
    let p3 = run(PolicyKind::Exploration, 90);
    assert!(
        p2.rmttf_spread(30) < 1.2,
        "P2 spread {}",
        p2.rmttf_spread(30)
    );
    assert!(
        p3.rmttf_spread(30) < 1.4,
        "P3 spread {}",
        p3.rmttf_spread(30)
    );
}

#[test]
fn policy1_causes_more_plan_churn_than_policy2() {
    let p1 = run(PolicyKind::SensibleRouting, 90);
    let p2 = run(PolicyKind::AvailableResources, 90);
    let churn1 = p1.plan_churn().tail_stats(30).mean();
    let churn2 = p2.plan_churn().tail_stats(30).mean();
    assert!(
        churn1 > churn2,
        "P1 churn {churn1} should exceed P2 churn {churn2}"
    );
}

#[test]
fn all_three_regions_carry_meaningful_load_under_policy2() {
    let tel = run(PolicyKind::AvailableResources, 90);
    for i in 0..3 {
        let f = tel.fraction(i).tail_stats(30).mean();
        assert!(f > 0.02, "region {i} starved: f = {f}");
    }
    // Munich (tiny private region) must get the smallest share.
    let f: Vec<f64> = (0..3)
        .map(|i| tel.fraction(i).tail_stats(30).mean())
        .collect();
    assert!(f[2] < f[0] && f[2] < f[1], "{f:?}");
}

#[test]
fn response_time_matches_two_region_case() {
    // The paper omits the 3-region response plot "because it is similar":
    // verify both deployments keep comparable sub-SLA response times.
    let three = run(PolicyKind::AvailableResources, 60);
    let mut cfg2 = ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, 2016);
    cfg2.predictor = PredictorChoice::Oracle;
    cfg2.eras = 60;
    let two = run_experiment(&cfg2);
    let r3 = three.tail_response(20);
    let r2 = two.tail_response(20);
    assert!(r3 < 1.0 && r2 < 1.0);
    assert!(
        (r3 - r2).abs() < 0.5,
        "responses should be similar: 3-region {r3}, 2-region {r2}"
    );
}
