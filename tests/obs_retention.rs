//! Integration: event-log retention over a long run.
//!
//! The seed's single shared ring dropped the *earliest* decisions of a
//! 120-era run as soon as any chatty kind (e.g. `ewma.update`, emitted
//! every era per region) filled the buffer — exactly the records a
//! post-mortem needs. The per-kind stores pin the first quarter of each
//! kind's budget forever, so era-0 decisions survive a full sweep no
//! matter how chatty the other kinds are.

use acm::core::config::{ExperimentConfig, PredictorChoice};
use acm::core::framework::run_experiment_with_obs;
use acm::core::policy::PolicyKind;
use acm::obs::{Obs, ObsConfig};
use std::collections::BTreeMap;

#[test]
fn early_decisions_survive_a_long_run_under_a_tight_event_budget() {
    let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, 42);
    cfg.predictor = PredictorChoice::Oracle;
    cfg.eras = 120;
    cfg.obs = ObsConfig {
        enabled: true,
        event_capacity: 64, // per kind: 16 pinned head + 48-slot tail ring
        ..ObsConfig::default()
    };
    let obs = Obs::new(cfg.obs);
    let _ = run_experiment_with_obs(&cfg, obs.clone());

    // The budget must actually have been exceeded, or this test proves
    // nothing: 120 eras of per-era EWMA updates blow far past 64.
    assert!(
        obs.events_dropped() > 0,
        "workload too small to exercise eviction"
    );

    let events = obs.events_tail(usize::MAX);
    // The very first decision of the run is still retained.
    assert!(
        events.iter().any(|e| e.seq == 0),
        "seq 0 was evicted — early history lost"
    );

    // Per kind: the earliest record pushed for that kind is still there.
    // (The head slots fill before the tail ring ever evicts, so each
    // kind's first record can never be dropped.)
    let mut first_retained: BTreeMap<&str, u64> = BTreeMap::new();
    for e in &events {
        let entry = first_retained.entry(e.kind).or_insert(e.seq);
        *entry = (*entry).min(e.seq);
    }
    let chatty = first_retained
        .keys()
        .any(|k| *k == "ewma.update" || *k == "rejuvenation.proactive");
    assert!(
        chatty,
        "expected decision kinds missing: {first_retained:?}"
    );
    // `ewma.update` floods every era; its first emission must survive.
    if let Some(&first_ewma) = first_retained.get("ewma.update") {
        let min_pushed: u64 = events
            .iter()
            .filter(|e| e.kind == "ewma.update")
            .map(|e| e.seq)
            .min()
            .unwrap();
        assert_eq!(first_ewma, min_pushed);
        // With 2 regions × 120 eras the kind pushed ≥ 240 records; the
        // retained minimum must come from the pinned head (an early era),
        // not merely be the oldest tail survivor.
        let t_us_of_first = events
            .iter()
            .find(|e| e.seq == first_ewma)
            .map(|e| e.t_us)
            .unwrap();
        let t_us_max = events
            .iter()
            .filter(|e| e.kind == "ewma.update")
            .map(|e| e.t_us)
            .max()
            .unwrap();
        assert!(
            t_us_of_first < t_us_max / 2,
            "first retained ewma.update ({t_us_of_first} us) is not early history \
             (latest {t_us_max} us)"
        );
    }

    // And the merged view stays sequence-ordered across kinds.
    assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
}
