//! Integration: scripted runtime scenarios through the whole framework.

use acm::core::config::{ExperimentConfig, PredictorChoice};
use acm::core::framework::run_experiment;
use acm::core::policy::PolicyKind;
use acm::core::scenario::{Scenario, ScenarioAction, ScheduledAction};
use acm::sim::SimTime;

fn base(policy: PolicyKind) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::two_region_fig3(policy, 2016);
    cfg.predictor = PredictorChoice::Oracle;
    cfg.eras = 100;
    cfg
}

fn t(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

#[test]
fn scripted_policy_switch_rescues_sensible_routing() {
    let mut cfg = base(PolicyKind::SensibleRouting);
    cfg.scenario = Scenario::new(vec![ScheduledAction {
        at: t(1500), // era 50
        action: ScenarioAction::SwitchPolicy(PolicyKind::AvailableResources),
    }]);
    let tel = run_experiment(&cfg);
    // Diverged while Policy 1 ruled...
    let early: Vec<f64> = (0..2)
        .map(|i| {
            tel.rmttf(i).points()[30..45]
                .iter()
                .map(|p| p.value)
                .sum::<f64>()
                / 15.0
        })
        .collect();
    let early_spread = early[0].max(early[1]) / early[0].min(early[1]);
    assert!(early_spread > 1.5, "early spread {early_spread}");
    // ...converged after the switch.
    let late_spread = tel.rmttf_spread(25);
    assert!(late_spread < 1.2, "late spread {late_spread}");
}

#[test]
fn scripted_capacity_change_is_applied() {
    let mut cfg = base(PolicyKind::AvailableResources);
    cfg.eras = 40;
    cfg.scenario = Scenario::new(vec![
        // Add two VMs to Munich and activate them at era 20.
        ScheduledAction {
            at: t(600),
            action: ScenarioAction::AddVm { region: 1 },
        },
        ScheduledAction {
            at: t(600),
            action: ScenarioAction::AddVm { region: 1 },
        },
        ScheduledAction {
            at: t(600),
            action: ScenarioAction::SetTargetActive {
                region: 1,
                target: 5,
            },
        },
    ]);
    let tel = run_experiment(&cfg);
    let before = tel.active_vms(1).points()[10].value;
    let after = tel.active_vms(1).last().unwrap();
    assert_eq!(before, 3.0);
    assert_eq!(after, 5.0);
    // More Munich capacity shifts the Policy-2 equilibrium toward Munich.
    let f_before = tel.fraction(1).points()[15].value;
    let f_after = tel.fraction(1).tail_stats(10).mean();
    assert!(
        f_after > f_before * 1.2,
        "fractions should follow capacity: {f_before} -> {f_after}"
    );
}

#[test]
fn scripted_link_fault_matches_link_fault_config() {
    // The scenario mechanism must behave exactly like the legacy
    // link_faults list.
    let mut via_faults = base(PolicyKind::AvailableResources);
    via_faults.eras = 40;
    via_faults.link_faults = vec![acm::core::config::LinkFault {
        a: 0,
        b: 1,
        fail_at: t(300),
        recover_at: t(600),
    }];
    let tel_faults = run_experiment(&via_faults);

    let mut via_scenario = base(PolicyKind::AvailableResources);
    via_scenario.eras = 40;
    via_scenario.scenario = Scenario::new(vec![
        ScheduledAction {
            at: t(300),
            action: ScenarioAction::FailLink { a: 0, b: 1 },
        },
        ScheduledAction {
            at: t(600),
            action: ScenarioAction::RecoverLink { a: 0, b: 1 },
        },
    ]);
    let tel_scenario = run_experiment(&via_scenario);

    assert_eq!(tel_faults.to_csv(), tel_scenario.to_csv());
}

#[test]
fn invalid_scenario_is_rejected_at_validation() {
    let mut cfg = base(PolicyKind::AvailableResources);
    cfg.scenario = Scenario::new(vec![ScheduledAction {
        at: t(10),
        action: ScenarioAction::AddVm { region: 9 },
    }]);
    assert!(cfg.validate().is_err());
}
