//! Integration: era-synchronized sharded execution is invisible to the
//! results. A randomized world — regions x faults x arrivals — must
//! produce byte-identical telemetry and decision logs at any
//! `ACM_THREADS`, and the open-loop data plane must reach the same
//! per-shard outcomes at every width.

use acm::core::config::{ExperimentConfig, PredictorChoice, RegionSpec};
use acm::core::policy::PolicyKind;
use acm::core::DegradationConfig;
use acm::obs::{Obs, ObsConfig};
use acm::overlay::{ChaosLayer, FaultPlan, MessageFate, NodeId};
use acm::sim::rng::SimRng;
use acm::sim::shard::{ShardLayout, ShardedWorld};
use acm::sim::{Duration, SimTime};
use acm::workload::{ClientSchedule, OpenLoopArrivals, RateProfile};
use proptest::prelude::*;

/// A randomized deployment: 2-5 regions cycling the paper flavors with
/// seed-derived client schedules, a full-mesh overlay, a randomized fault
/// plan with message chaos, and degradation enabled.
fn randomized_config(seed: u64) -> ExperimentConfig {
    let mut gen = SimRng::new(seed ^ 0x5eed_5eed);
    let n = 2 + gen.index(4);
    let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, 7000 + seed);
    cfg.name = format!("shard-prop-{seed}");
    cfg.predictor = PredictorChoice::Oracle;
    cfg.eras = 6;
    cfg.regions = (0..n)
        .map(|i| {
            let mut region = match i % 3 {
                0 => ExperimentConfig::region1_ireland(),
                1 => ExperimentConfig::region2_frankfurt(),
                _ => ExperimentConfig::region3_munich(),
            };
            region.name = format!("r{i}-{}", region.name);
            let base = 64 + gen.index(449) as u32;
            let clients = match gen.index(3) {
                0 => ClientSchedule::Constant(base),
                1 => ClientSchedule::Step {
                    before: base,
                    after: 64 + gen.index(449) as u32,
                    at: SimTime::from_secs(90),
                },
                _ => ClientSchedule::Diurnal {
                    base,
                    amplitude: gen.index(base as usize) as u32,
                    period: Duration::from_secs(120),
                },
            };
            RegionSpec { region, clients }
        })
        .collect();
    let mut latencies = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            latencies.push((a, b, Duration::from_millis(5 + gen.index(40) as u64)));
        }
    }
    cfg.latencies = latencies;
    let nodes: Vec<NodeId> = (0..n).map(ExperimentConfig::node_of).collect();
    let links: Vec<(NodeId, NodeId)> = (0..n)
        .flat_map(|a| ((a + 1)..n).map(move |b| (NodeId(a as u32), NodeId(b as u32))))
        .collect();
    cfg.fault_plan = Some(
        FaultPlan::randomized(seed, &nodes, &links, SimTime::from_secs(180), 1.0)
            .with_message_chaos(0.08, Duration::from_millis(20)),
    );
    cfg.degradation = DegradationConfig::enabled();
    cfg
}

proptest! {
    /// The tentpole contract: a randomized world (regions x faults x
    /// arrivals) runs byte-identically — telemetry CSV and decision log,
    /// chaos plans included — under sharded execution at
    /// `ACM_THREADS` in {1, 2, 4}.
    #[test]
    fn randomized_worlds_shard_byte_identically_across_widths(seed in 0u64..16) {
        let run = || {
            let cfg = randomized_config(seed);
            let obs = Obs::new(ObsConfig::default());
            let tel = acm::core::framework::run_experiment_with_obs(&cfg, obs.clone());
            (tel.to_csv(), obs.events_jsonl())
        };
        let before = acm::exec::current_threads();
        acm::exec::configure_threads(1);
        let one = run();
        acm::exec::configure_threads(2);
        let two = run();
        acm::exec::configure_threads(4);
        let four = run();
        acm::exec::configure_threads(before);
        prop_assert_eq!(&one.0, &two.0, "telemetry diverged at 2 threads");
        prop_assert_eq!(&one.1, &two.1, "decision log diverged at 2 threads");
        prop_assert_eq!(&one.0, &four.0, "telemetry diverged at 4 threads");
        prop_assert_eq!(&one.1, &four.1, "decision log diverged at 4 threads");
    }
}

/// Per-shard outcome digest of a small open-loop data plane: arrivals
/// from pre-split streams, fates from pre-split chaos lenses, service
/// times from per-shard RNGs.
fn data_plane_digest(shards: usize) -> Vec<(u64, u64, u64)> {
    struct World {
        arrivals: OpenLoopArrivals,
        chaos: ChaosLayer,
        service: SimRng,
        accepted: u64,
        dropped: u64,
        completed: u64,
    }
    let profile = RateProfile::Burst {
        base: 40.0,
        peak: 120.0,
        period: Duration::from_secs(5),
        burst_len: Duration::from_secs(1),
    };
    let mut rng = SimRng::new(4242);
    let mut arrivals = OpenLoopArrivals::pre_split(&profile, shards, &mut rng);
    let plan =
        FaultPlan::scripted(9, Vec::new()).with_message_chaos(0.05, Duration::from_millis(10));
    let mut lenses = ChaosLayer::new(&plan).pre_split(shards);
    let mut services: Vec<SimRng> = (0..shards).map(|_| rng.split()).collect();
    let mut world = ShardedWorld::new(ShardLayout::balanced(shards, shards), &mut rng, |_, _| {
        World {
            arrivals: arrivals.remove(0),
            chaos: lenses.remove(0),
            service: services.remove(0),
            accepted: 0,
            dropped: 0,
            completed: 0,
        }
    });
    for era in 0..4u64 {
        let era_start = SimTime::from_secs(era * 10);
        let era_end = SimTime::from_secs((era + 1) * 10);
        world.step_era(|shard| {
            let from = NodeId(shard.index as u32);
            let to = NodeId(shard.index as u32 + 1000);
            let mut buf = Vec::new();
            shard
                .sim
                .world
                .arrivals
                .fill_window(era_start, era_end, &mut buf);
            for &at in &buf {
                shard.sim.schedule_at(at, move |s| {
                    s.world.accepted += 1;
                    match s.world.chaos.message_fate(s.now(), from, to) {
                        MessageFate::Drop => s.world.dropped += 1,
                        MessageFate::Deliver { extra_delay } => {
                            let svc = Duration::from_secs_f64(s.world.service.exponential(0.3));
                            s.schedule_at(s.now() + svc + extra_delay, |s| {
                                s.world.completed += 1;
                            });
                        }
                    }
                });
            }
            shard.sim.run_until(era_end);
        });
    }
    world
        .shards()
        .iter()
        .map(|s| {
            (
                s.sim.world.accepted,
                s.sim.world.dropped,
                s.sim.world.completed,
            )
        })
        .collect()
}

#[test]
fn open_loop_data_plane_is_width_independent() {
    let before = acm::exec::current_threads();
    acm::exec::configure_threads(1);
    let one = data_plane_digest(6);
    acm::exec::configure_threads(2);
    let two = data_plane_digest(6);
    acm::exec::configure_threads(4);
    let four = data_plane_digest(6);
    acm::exec::configure_threads(before);
    assert!(one.iter().any(|d| d.0 > 0), "arrivals must actually flow");
    assert_eq!(one, two, "data plane diverged at 2 threads");
    assert_eq!(one, four, "data plane diverged at 4 threads");
}
