//! Integration: the deterministic chaos layer and the leader's graceful
//! degradation, exercised through the whole stack — leader kills trigger
//! re-election, fault plans replay byte-identically at any thread width,
//! and re-admission hysteresis keeps the plan from oscillating.

use acm::core::config::{ExperimentConfig, PredictorChoice};
use acm::core::framework::{run_experiment, run_experiment_with_obs};
use acm::core::policy::PolicyKind;
use acm::core::DegradationConfig;
use acm::obs::{Obs, ObsConfig};
use acm::overlay::{FaultPlan, NodeId};
use acm::sim::{Duration, SimTime};
use proptest::prelude::*;

fn oracle(mut cfg: ExperimentConfig) -> ExperimentConfig {
    cfg.predictor = PredictorChoice::Oracle;
    cfg
}

#[test]
fn leader_kill_triggers_reelection_and_quarantines_the_dead_region() {
    let mut cfg = oracle(ExperimentConfig::three_region_fig4(
        PolicyKind::AvailableResources,
        2024,
    ));
    cfg.eras = 40;
    // Kill the initial leader (node 0) at era 10 and never recover it.
    cfg.fault_plan =
        Some(FaultPlan::scripted(11, Vec::new()).kill_leader_at(SimTime::from_secs(300)));
    cfg.degradation = DegradationConfig::enabled();
    let obs = Obs::new(ObsConfig::default());
    let tel = run_experiment_with_obs(&cfg, obs.clone());
    assert_eq!(tel.eras(), 40, "the loop must survive losing its leader");

    let events = obs.events_tail(usize::MAX);
    assert!(
        events.iter().any(|e| e.kind == "chaos.leader.kill"),
        "the kill must be logged"
    );
    // A new leader takes over in the same era the kill lands.
    let change = events
        .iter()
        .find(|e| e.kind == "leader.change")
        .expect("re-election after the leader kill");
    match change
        .fields
        .iter()
        .find(|(k, _)| *k == "leader")
        .map(|(_, v)| v)
    {
        Some(acm::obs::Value::U64(id)) => assert_ne!(*id, 0, "node 0 is dead; it cannot lead"),
        other => panic!("leader.change carries the new leader id, got {other:?}"),
    }
    // The dead region is quarantined and its flow goes to the survivors.
    assert!(
        events.iter().any(|e| e.kind == "region.quarantine"),
        "dead region must be quarantined"
    );
    let tail: Vec<f64> = tel.fraction(0).points()[30..]
        .iter()
        .map(|p| p.value)
        .collect();
    assert!(
        tail.iter().all(|v| *v == 0.0),
        "dead region still receives flow: {tail:?}"
    );
    let live_sum: f64 = (1..3).map(|j| tel.fraction(j).points()[35].value).sum();
    assert!(
        (live_sum - 1.0).abs() < 1e-9,
        "survivors must absorb the whole flow, got {live_sum}"
    );
}

#[test]
fn readmission_hysteresis_prevents_plan_oscillation() {
    let mut cfg = oracle(ExperimentConfig::two_region_fig3(
        PolicyKind::AvailableResources,
        77,
    ));
    cfg.eras = 45;
    // Partition region 1 for ten eras; on top, drop 5% of control
    // messages so the report-retry path is exercised the whole run.
    cfg.fault_plan = Some(
        FaultPlan::scripted(9, Vec::new())
            .partition_window(
                vec![NodeId(1)],
                SimTime::from_secs(300),
                SimTime::from_secs(600),
            )
            .with_message_chaos(0.05, Duration::from_millis(40)),
    );
    cfg.degradation = DegradationConfig::enabled();
    let obs = Obs::new(ObsConfig::default());
    let tel = run_experiment_with_obs(&cfg, obs.clone());

    let events = obs.events_tail(usize::MAX);
    let count = |kind: &str| events.iter().filter(|e| e.kind == kind).count();
    // One outage, one quarantine, one re-admission — message chaos plus
    // hysteresis must not produce extra health transitions.
    assert_eq!(
        count("region.quarantine"),
        1,
        "no oscillation into quarantine"
    );
    assert_eq!(count("region.readmit"), 1, "exactly one re-admission");
    // Once re-admitted, the region keeps its flow: the fraction series
    // never collapses back to zero after its post-heal recovery.
    let f1: Vec<f64> = tel.fraction(1).points().iter().map(|p| p.value).collect();
    let readmit = f1[21..]
        .iter()
        .position(|v| *v > 0.0)
        .map(|i| i + 21)
        .expect("region 1 regains flow after the heal");
    assert!(
        f1[readmit..].iter().all(|v| *v > 0.0),
        "flow flapped after re-admission: {:?}",
        &f1[readmit..]
    );
}

proptest! {
    /// The determinism contract of the chaos layer: a fixed plan and seed
    /// replays byte-identically — telemetry and the decision log — no
    /// matter how many worker threads execute the run.
    #[test]
    fn fault_plans_replay_byte_identically_across_thread_widths(seed in 0u64..24) {
        let run = || {
            let mut cfg = oracle(ExperimentConfig::two_region_fig3(
                PolicyKind::AvailableResources,
                900 + seed,
            ));
            cfg.eras = 8;
            cfg.fault_plan = Some(
                FaultPlan::randomized(
                    seed,
                    &[NodeId(0), NodeId(1)],
                    &[(NodeId(0), NodeId(1))],
                    SimTime::from_secs(240),
                    1.0,
                )
                .with_message_chaos(0.10, Duration::from_millis(25)),
            );
            cfg.degradation = DegradationConfig::enabled();
            let obs = Obs::new(ObsConfig::default());
            let tel = run_experiment_with_obs(&cfg, obs.clone());
            (tel.to_csv(), obs.events_jsonl())
        };
        let before = acm::exec::current_threads();
        acm::exec::configure_threads(1);
        let sequential = run();
        acm::exec::configure_threads(4);
        let parallel = run();
        acm::exec::configure_threads(before);
        prop_assert_eq!(sequential.0, parallel.0, "telemetry diverged");
        prop_assert_eq!(sequential.1, parallel.1, "decision log diverged");
    }
}

#[test]
fn scripted_crash_window_recovers_end_to_end() {
    // A slave region crashes for eight eras and comes back; with
    // degradation the run re-converges to a balanced plan.
    let mut cfg = oracle(ExperimentConfig::two_region_fig3(
        PolicyKind::AvailableResources,
        501,
    ));
    cfg.eras = 60;
    cfg.fault_plan = Some(FaultPlan::scripted(3, Vec::new()).crash_window(
        NodeId(1),
        SimTime::from_secs(360),
        SimTime::from_secs(600),
    ));
    cfg.degradation = DegradationConfig::enabled();
    let tel = run_experiment(&cfg);
    assert_eq!(tel.eras(), 60);
    assert!(tel.total_completed() > 50_000);
    // The tail of the run is balanced again (equal-RMTTF band).
    assert!(
        tel.rmttf_spread(10) < 1.35,
        "spread {}",
        tel.rmttf_spread(10)
    );
    let f1_tail = tel.fraction(1).points()[55].value;
    assert!(f1_tail > 0.0, "healed region ends the run with zero flow");
}
