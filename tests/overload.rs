//! Integration: behaviour at and beyond saturation — the closed-loop
//! interactive law, SLA-violation handling and graceful degradation when
//! the offered load approaches the deployment's capacity.

use acm::core::config::{ExperimentConfig, PredictorChoice};
use acm::core::framework::run_experiment;
use acm::core::policy::PolicyKind;
use acm::workload::ClientSchedule;

fn overload_cfg(clients_r1: u32, clients_r3: u32) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, 2016);
    cfg.predictor = PredictorChoice::Oracle;
    cfg.eras = 60;
    cfg.regions[0].clients = ClientSchedule::Constant(clients_r1);
    cfg.regions[1].clients = ClientSchedule::Constant(clients_r3);
    cfg
}

#[test]
fn closed_loop_throttles_under_saturation() {
    // 512 + 512 browsers offer ≈146 req/s against ~160 req/s of healthy
    // fresh capacity (5 medium + 3 private VMs, pre-degradation): the
    // system runs hot. The interactive law must keep λ finite and the run
    // must survive without a panic or starved region.
    let tel = run_experiment(&overload_cfg(512, 512));
    assert_eq!(tel.eras(), 60);
    // λ is bounded by N/Z and self-throttles below it when responses grow.
    let max_offerable = 1024.0 / 7.0;
    for p in tel.global_lambda().values() {
        assert!(p <= max_offerable + 1e-6, "λ {p} above the closed-loop cap");
        assert!(p > 0.0);
    }
    // Requests are still being served at scale.
    assert!(tel.total_completed() > 150_000);
    // Both regions keep meaningful shares.
    for i in 0..2 {
        assert!(tel.fraction(i).tail_stats(20).mean() > 0.02);
    }
}

#[test]
fn saturated_system_degrades_response_not_correctness() {
    let tel = run_experiment(&overload_cfg(512, 512));
    let resp = tel.tail_response(20);
    // Hot but finite; the rejuvenation churn at saturation costs latency,
    // which the closed loop feeds back as reduced offered load.
    assert!(resp.is_finite() && resp > 0.0);
    assert!(resp < 30.0, "response collapsed: {resp}s");
    // Heavy load means failures occur; the framework keeps cycling VMs.
    assert!(tel.total_proactive() + tel.total_reactive() > 20);
}

#[test]
fn light_load_baseline_is_snappy_and_stable() {
    let tel = run_experiment(&overload_cfg(32, 16));
    assert!(
        tel.tail_response(20) < 0.1,
        "resp {}",
        tel.tail_response(20)
    );
    // Under trivial load the VMs barely age: few rejuvenations.
    assert!(
        tel.total_proactive() + tel.total_reactive() < 20,
        "unexpected churn: {} + {}",
        tel.total_proactive(),
        tel.total_reactive()
    );
}

#[test]
fn offered_rate_reacts_to_response_feedback() {
    // At saturation the measured λ must sit visibly below the zero-response
    // upper bound N/Z — direct evidence the feedback operates.
    let tel = run_experiment(&overload_cfg(512, 512));
    let cap = 1024.0 / 7.0;
    let lambda_tail = tel.global_lambda().tail_stats(20).mean();
    assert!(
        lambda_tail < cap * 0.999,
        "no visible throttling: λ {lambda_tail} vs cap {cap}"
    );
}
