//! Integration: the analytic predictions of DESIGN.md §5 hold end-to-end.
//!
//! The fidelity model predicts Policy 1's equilibrium RMTTF imbalance on a
//! two-region deployment with capacity ratio `r` to be `√r` (fixed point
//! `f ∝ √C`), and Policy 2's to be 1 regardless. These tests pin the
//! ablation-A3 result as a CI-checked invariant.

use acm::core::config::{ExperimentConfig, PredictorChoice, RegionSpec};
use acm::core::framework::run_experiment;
use acm::core::policy::PolicyKind;
use acm::pcam::RegionConfig;
use acm::vm::VmFlavor;
use acm::workload::ClientSchedule;

/// Two same-size regions whose anomaly budgets differ by `ratio`.
fn deployment(ratio: f64, policy: PolicyKind) -> ExperimentConfig {
    let flavor_a = VmFlavor::m3_medium();
    let mut flavor_b = VmFlavor::m3_medium();
    flavor_b.name = format!("shrunk-{ratio}");
    let budget = flavor_a.ram_mb - flavor_a.baseline_resident_mb;
    flavor_b.ram_mb = flavor_a.baseline_resident_mb + budget / ratio;
    flavor_b.swap_mb = flavor_a.swap_mb / ratio;

    let mut cfg = ExperimentConfig::two_region_fig3(policy, 7);
    cfg.predictor = PredictorChoice::Oracle;
    cfg.eras = 100;
    cfg.regions = vec![
        RegionSpec {
            region: RegionConfig::new("big", flavor_a, 5, 4),
            clients: ClientSchedule::Constant(256),
        },
        RegionSpec {
            region: RegionConfig::new("small", flavor_b, 5, 4),
            clients: ClientSchedule::Constant(128),
        },
    ];
    cfg
}

#[test]
fn policy1_equilibrium_spread_tracks_sqrt_capacity_ratio() {
    for ratio in [2.0, 4.0] {
        let tel = run_experiment(&deployment(ratio, PolicyKind::SensibleRouting));
        let spread = tel.rmttf_spread(30);
        let theory = ratio.sqrt();
        assert!(
            (spread - theory).abs() / theory < 0.25,
            "ratio {ratio}: spread {spread} vs theory {theory}"
        );
    }
}

#[test]
fn policy2_spread_is_flat_in_capacity_ratio() {
    for ratio in [1.0, 4.0, 8.0] {
        let tel = run_experiment(&deployment(ratio, PolicyKind::AvailableResources));
        let spread = tel.rmttf_spread(30);
        assert!(spread < 1.1, "ratio {ratio}: spread {spread}");
    }
}

#[test]
fn homogeneous_regions_make_policy1_converge_too() {
    // The paper: sensible routing "is more suitable for less-heterogeneous
    // environments" — at ratio 1 it must work.
    let tel = run_experiment(&deployment(1.0, PolicyKind::SensibleRouting));
    let spread = tel.rmttf_spread(30);
    assert!(spread < 1.15, "homogeneous P1 spread {spread}");
}

#[test]
fn policy2_fractions_match_capacity_shares() {
    // At ratio r with equal VM counts, region capacities are C and C/r, so
    // Policy 2's fixed point is f = (r/(r+1), 1/(r+1)).
    let ratio = 4.0;
    let tel = run_experiment(&deployment(ratio, PolicyKind::AvailableResources));
    let f_big = tel.fraction(0).tail_stats(30).mean();
    let theory = ratio / (ratio + 1.0);
    assert!(
        (f_big - theory).abs() < 0.06,
        "f_big {f_big} vs theory {theory}"
    );
}
