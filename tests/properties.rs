//! Property-based tests (proptest) over the cross-crate invariants the
//! whole reproduction rests on.

use acm::core::ewma::RmttfEwma;
use acm::core::plan::ForwardPlan;
use acm::core::policy::{LoadBalancingPolicy, PolicyKind};
use acm::ml::dataset::Dataset;
use acm::ml::lasso::LassoRegression;
use acm::ml::linear::LinearRegression;
use acm::ml::rep_tree::{RepTree, RepTreeConfig};
use acm::sim::event::EventQueue;
use acm::sim::{Duration, SimRng, SimTime};
use acm::vm::anomaly::sample_binomial;
use proptest::prelude::*;

/// A probability-simplex strategy with entries bounded away from zero.
fn simplex(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.05f64..1.0, n).prop_map(|raw| {
        let total: f64 = raw.iter().sum();
        raw.into_iter().map(|x| x / total).collect()
    })
}

proptest! {
    #[test]
    fn policies_always_emit_probability_vectors(
        seed in 0u64..1_000,
        prev in simplex(4),
        rmttf in proptest::collection::vec(1.0f64..1e6, 4),
        lambda in 0.1f64..1e4,
    ) {
        let mut rng = SimRng::new(seed);
        for kind in PolicyKind::ALL {
            let policy = LoadBalancingPolicy::new(kind);
            let f = policy.next_fractions(&prev, &rmttf, lambda, &mut rng);
            let total: f64 = f.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9, "{kind}: sum {total}");
            prop_assert!(f.iter().all(|x| *x > 0.0 && x.is_finite()), "{kind}: {f:?}");
        }
    }

    #[test]
    fn ewma_stays_inside_the_input_hull(
        beta in 0.0f64..=1.0,
        inputs in proptest::collection::vec(0.0f64..1e6, 1..50),
    ) {
        let mut e = RmttfEwma::new(beta);
        let lo = inputs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = inputs.iter().cloned().fold(0.0f64, f64::max);
        for &x in &inputs {
            let v = e.update(x);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "escaped hull: {v}");
        }
    }

    #[test]
    fn forward_plan_is_row_stochastic_and_exact(
        ingress in simplex(3),
        target in simplex(3),
    ) {
        let plan = ForwardPlan::build(&ingress, &target);
        for i in 0..3 {
            let row_sum: f64 = (0..3).map(|j| plan.fraction(i, j)).sum();
            prop_assert!((row_sum - 1.0).abs() < 1e-9, "row {i} sums {row_sum}");
        }
        for (j, want) in target.iter().enumerate() {
            prop_assert!((plan.realised_share(j) - want).abs() < 1e-9);
        }
        let remote = plan.remote_fraction();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&remote));
    }

    #[test]
    fn event_queue_pops_in_nondecreasing_time_order(
        times in proptest::collection::vec(0u64..1_000_000, 1..200),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((at, _)) = q.pop() {
            prop_assert!(at >= last);
            last = at;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    #[test]
    fn binomial_samples_are_bounded_and_unbiased_enough(
        n in 1u64..10_000,
        p in 0.0f64..=1.0,
        seed in 0u64..1_000,
    ) {
        let mut rng = SimRng::new(seed);
        let x = sample_binomial(n, p, &mut rng);
        prop_assert!(x <= n);
    }

    #[test]
    fn duration_addition_is_commutative_and_monotone(
        a in 0u64..1u64 << 40,
        b in 0u64..1u64 << 40,
    ) {
        let da = Duration::from_micros(a);
        let db = Duration::from_micros(b);
        prop_assert_eq!(da + db, db + da);
        prop_assert!(da + db >= da);
        let t = SimTime::from_micros(a) + db;
        prop_assert_eq!(t.since(SimTime::from_micros(a)), db);
    }

    #[test]
    fn rep_tree_predictions_bounded_by_training_targets(
        seed in 0u64..500,
        rows in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 10..80),
    ) {
        let mut ds = Dataset::new(["x"]);
        for (x, y) in &rows {
            ds.push(vec![*x], *y);
        }
        let lo = rows.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
        let hi = rows.iter().map(|r| r.1).fold(0.0f64, f64::max);
        let tree = RepTree::fit(&ds, &RepTreeConfig::default(), &mut SimRng::new(seed));
        for probe in [-10.0, 0.0, 50.0, 100.0, 1000.0] {
            let p = tree.predict_one(&[probe]);
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "prediction {p} outside [{lo},{hi}]");
        }
    }

    #[test]
    fn lasso_at_zero_alpha_matches_ols_predictions(
        seed in 0u64..200,
    ) {
        let mut rng = SimRng::new(seed);
        let mut ds = Dataset::new(["a", "b"]);
        for _ in 0..60 {
            let a = rng.uniform(-1.0, 1.0);
            let b = rng.uniform(-1.0, 1.0);
            ds.push(vec![a, b], 3.0 * a - b + 0.5);
        }
        let lasso = LassoRegression::fit(&ds, 0.0);
        let ols = LinearRegression::fit(&ds);
        for probe in [[0.0, 0.0], [1.0, -1.0], [-0.5, 0.5]] {
            let d = (lasso.predict_one(&probe) - ols.predict_one(&probe)).abs();
            prop_assert!(d < 1e-3, "lasso/ols diverge by {d}");
        }
    }

    #[test]
    fn rng_split_streams_do_not_collide(
        seed in 0u64..10_000,
    ) {
        let mut parent = SimRng::new(seed);
        let mut a = parent.split();
        let mut b = parent.split();
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        prop_assert!(same < 4, "{same} collisions");
    }
}
