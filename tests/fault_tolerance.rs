//! Integration: overlay fault tolerance — partitions, rerouting, leader
//! election — exercised through the whole stack.

use acm::core::config::{ExperimentConfig, LinkFault, PredictorChoice};
use acm::core::framework::run_experiment;
use acm::core::policy::PolicyKind;
use acm::overlay::{election, NodeId, OverlayGraph, Transport};
use acm::sim::{Duration, SimTime};

fn oracle(mut cfg: ExperimentConfig) -> ExperimentConfig {
    cfg.predictor = PredictorChoice::Oracle;
    cfg
}

#[test]
fn control_loop_survives_a_mid_run_partition() {
    let mut cfg = oracle(ExperimentConfig::two_region_fig3(
        PolicyKind::AvailableResources,
        2016,
    ));
    cfg.eras = 60;
    cfg.link_faults = vec![LinkFault {
        a: 0,
        b: 1,
        fail_at: SimTime::from_secs(600),
        recover_at: SimTime::from_secs(1200),
    }];
    let tel = run_experiment(&cfg);
    assert_eq!(tel.eras(), 60);
    // Clients keep being served throughout.
    assert!(tel.total_completed() > 50_000);
    // After recovery the policy regains control and RMTTFs converge again.
    assert!(
        tel.rmttf_spread(10) < 1.35,
        "spread {}",
        tel.rmttf_spread(10)
    );
    // Response time never explodes, even during the partition.
    let worst = tel.global_response().values().fold(0.0_f64, f64::max);
    assert!(worst < 1.5, "worst response {worst}");
}

#[test]
fn partition_freezes_fractions_for_the_cut_region() {
    let mut cfg = oracle(ExperimentConfig::two_region_fig3(
        PolicyKind::AvailableResources,
        2016,
    ));
    cfg.eras = 40;
    // Permanent partition from era 10 on.
    cfg.link_faults = vec![LinkFault {
        a: 0,
        b: 1,
        fail_at: SimTime::from_secs(300),
        recover_at: SimTime::from_secs(1_000_000),
    }];
    let tel = run_experiment(&cfg);
    // Fractions recorded after the cut stay frozen at the last agreed
    // value: the leader cannot install plans on the unreachable region.
    let f = tel.fraction(1);
    let frozen: Vec<f64> = f.points()[12..].iter().map(|p| p.value).collect();
    let first = frozen[0];
    assert!(
        frozen.iter().all(|v| (v - first).abs() < 1e-9),
        "fraction moved during partition: {frozen:?}"
    );
}

#[test]
fn repeated_faults_heal_repeatedly() {
    let mut cfg = oracle(ExperimentConfig::three_region_fig4(
        PolicyKind::AvailableResources,
        2016,
    ));
    cfg.eras = 80;
    cfg.link_faults = vec![
        LinkFault {
            a: 0,
            b: 2,
            fail_at: SimTime::from_secs(300),
            recover_at: SimTime::from_secs(600),
        },
        LinkFault {
            a: 1,
            b: 2,
            fail_at: SimTime::from_secs(900),
            recover_at: SimTime::from_secs(1200),
        },
    ];
    let tel = run_experiment(&cfg);
    assert_eq!(tel.eras(), 80);
    // In the 3-region mesh a single link failure never partitions: the
    // overlay reroutes and the run converges as usual.
    assert!(
        tel.rmttf_spread(20) < 1.2,
        "spread {}",
        tel.rmttf_spread(20)
    );
}

#[test]
fn transport_reroutes_around_failed_link_end_to_end() {
    let mut t = Transport::new(OverlayGraph::full_mesh(&[
        (NodeId(0), NodeId(1), Duration::from_millis(25)),
        (NodeId(0), NodeId(2), Duration::from_millis(30)),
        (NodeId(1), NodeId(2), Duration::from_millis(12)),
    ]));
    assert_eq!(
        t.latency(NodeId(0), NodeId(2)),
        Some(Duration::from_millis(30))
    );
    t.fail_link(NodeId(0), NodeId(2));
    // Rerouted through Frankfurt: 25 + 12.
    assert_eq!(
        t.latency(NodeId(0), NodeId(2)),
        Some(Duration::from_millis(37))
    );
    t.recover_link(NodeId(0), NodeId(2));
    assert_eq!(
        t.latency(NodeId(0), NodeId(2)),
        Some(Duration::from_millis(30))
    );
}

#[test]
fn leader_election_recovers_from_cascading_failures() {
    let mut g = OverlayGraph::full_mesh(&[
        (NodeId(0), NodeId(1), Duration::from_millis(25)),
        (NodeId(0), NodeId(2), Duration::from_millis(30)),
        (NodeId(1), NodeId(2), Duration::from_millis(12)),
    ]);
    assert_eq!(election::elect(&g).leaders(), vec![NodeId(0)]);
    g.fail_node(NodeId(0));
    assert_eq!(election::elect(&g).leaders(), vec![NodeId(1)]);
    g.fail_node(NodeId(1));
    assert_eq!(election::elect(&g).leaders(), vec![NodeId(2)]);
    g.recover_node(NodeId(0));
    g.recover_node(NodeId(1));
    assert_eq!(election::elect(&g).leaders(), vec![NodeId(0)]);
}
