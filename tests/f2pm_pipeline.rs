//! Integration: the F2PM pipeline end-to-end across crates — harvest a
//! feature database from the VM substrate, train the model menu, deploy
//! the predictor inside a VMC and drive the full control loop with it.

use acm::core::config::{ExperimentConfig, PredictorChoice};
use acm::core::framework::{run_experiment, train_predictors};
use acm::core::policy::PolicyKind;
use acm::ml::model::ModelKind;
use acm::ml::toolchain::F2pmToolchain;
use acm::pcam::training::{collect_database, CollectionConfig};
use acm::sim::{SimRng, SimTime};
use acm::vm::{AnomalyConfig, FailureSpec, Vm, VmFlavor, VmId, VmState};

fn quick_collection() -> CollectionConfig {
    CollectionConfig {
        lambdas: vec![6.0, 12.0, 20.0],
        runs_per_lambda: 2,
        ..Default::default()
    }
}

#[test]
fn rep_tree_predictions_track_ground_truth_through_a_vm_lifetime() {
    let mut rng = SimRng::new(1);
    let db = collect_database(
        &VmFlavor::m3_medium(),
        &AnomalyConfig::default(),
        &FailureSpec::default(),
        &quick_collection(),
        &mut rng,
    );
    let toolchain = F2pmToolchain {
        models: vec![ModelKind::RepTree],
        ..Default::default()
    };
    let (predictor, report) = toolchain.run(&db, &mut rng);
    assert_eq!(predictor.kind(), ModelKind::RepTree);
    assert!(
        report.outcomes[0].metrics.r2 > 0.75,
        "{}",
        report.to_table()
    );

    // Walk a fresh VM through its life at a rate seen in training and
    // check relative prediction error at several ages.
    let mut vm = Vm::new(
        VmId(0),
        VmFlavor::m3_medium(),
        AnomalyConfig::default(),
        FailureSpec::default(),
        VmState::Active,
        SimRng::new(2),
    );
    let lambda = 12.0;
    let era = acm::sim::Duration::from_secs(30);
    let mut now = SimTime::ZERO;
    let mut checked = 0;
    for _ in 0..20 {
        let truth = vm.true_rttf(lambda);
        // Stop before the end of life: relative error on a tiny remaining
        // time is dominated by the tree's leaf granularity.
        if !truth.is_finite() || truth < 150.0 {
            break;
        }
        let pred = predictor.predict(vm.features(now, lambda).as_slice());
        let rel = (pred - truth).abs() / truth;
        assert!(rel < 0.6, "age {now}: pred {pred} vs truth {truth}");
        checked += 1;
        vm.process_era(now, era, lambda);
        now += era;
        if !vm.is_active() {
            break;
        }
    }
    assert!(checked >= 5, "too few checkpoints ({checked})");
}

#[test]
fn lasso_selection_drops_uninformative_features() {
    let mut rng = SimRng::new(3);
    let db = collect_database(
        &VmFlavor::m3_small(),
        &AnomalyConfig::default(),
        &FailureSpec::default(),
        &quick_collection(),
        &mut rng,
    );
    let (predictor, report) = F2pmToolchain::default().run(&db, &mut rng);
    // Some reduction must happen (the 12 features are partly redundant by
    // construction: resident/mem_util/free_ram are collinear).
    assert!(
        report.selected_features.len() < db.width(),
        "selected all {} features",
        db.width()
    );
    assert!(!report.selected_features.is_empty());
    assert_eq!(predictor.selected_features(), &report.selected_features[..]);
}

#[test]
fn trained_control_loop_reproduces_policy2_convergence() {
    // The paper's actual configuration: REP-Tree predictors end-to-end.
    let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, 2016);
    cfg.eras = 60;
    let tel = run_experiment(&cfg);
    assert!(
        tel.rmttf_spread(20) < 1.35,
        "trained P2 should still converge, spread {}",
        tel.rmttf_spread(20)
    );
    assert!(tel.tail_response(20) < 1.0);
}

#[test]
fn one_predictor_is_trained_per_distinct_flavor() {
    let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::SensibleRouting, 4);
    // Make both regions the same flavor: only one training run should occur.
    cfg.regions[1].region.flavor = cfg.regions[0].region.flavor.clone();
    let mut rng = SimRng::new(4);
    let map = train_predictors(&cfg, ModelKind::RepTree, &mut rng);
    assert_eq!(map.len(), 1);
}

#[test]
fn oracle_and_trained_predictor_agree_on_the_equilibrium() {
    let mut oracle_cfg = ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, 9);
    oracle_cfg.predictor = PredictorChoice::Oracle;
    oracle_cfg.eras = 60;
    let oracle_tel = run_experiment(&oracle_cfg);

    let mut trained_cfg = ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, 9);
    trained_cfg.eras = 60;
    let trained_tel = run_experiment(&trained_cfg);

    let fo = oracle_tel.fraction(0).tail_stats(20).mean();
    let ft = trained_tel.fraction(0).tail_stats(20).mean();
    assert!(
        (fo - ft).abs() < 0.1,
        "equilibria diverge: oracle {fo}, trained {ft}"
    );
}
