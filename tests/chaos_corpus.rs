//! Replays every committed chaos-corpus reproducer as a regression test.
//!
//! Each entry under `crates/chaos/corpus/` is a minimal fault plan that a
//! campaign once shrank from a violation. Entries carrying a test-only
//! injection must replay failing-then-fixed (the injected trace violates
//! the recorded invariant, the clean trace passes); entries without one
//! record a real fixed bug and must simply stay clean.

use acm::chaos::CorpusEntry;

#[test]
fn every_corpus_entry_replays_as_committed() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/crates/chaos/corpus");
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .expect("corpus directory exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "the committed corpus must not be empty");
    for path in paths {
        let text = std::fs::read_to_string(&path).expect("corpus entry is readable");
        let entry = CorpusEntry::from_json(&text)
            .unwrap_or_else(|e| panic!("{}: parse failed: {e}", path.display()));
        assert_eq!(
            entry.to_json() + "\n",
            text,
            "{}: entry does not re-serialize to the committed bytes",
            path.display()
        );
        assert_eq!(
            path.file_stem().and_then(|s| s.to_str()),
            Some(entry.name.as_str()),
            "{}: entry name must match the file stem",
            path.display()
        );
        entry
            .verify()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    }
}
