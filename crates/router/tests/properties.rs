//! Property-based tests for the request-routing data plane.
//!
//! The load-bearing claims, fuzzed over random plans and seeds:
//!
//! * with a neutral scorer, realized flow converges to the planned
//!   fractions `f_i` — including through mid-run plan swaps and with
//!   quarantined (zero-weight) regions, which must receive exactly
//!   zero requests;
//! * the routed sharded plane (chaos + plan swaps + latency feedback)
//!   produces byte-identical per-shard digests at 1 and 4 threads.

use acm_router::{run_routed_plane, LatencyAwareness, PlanStep, RequestRouter, RoutedPlaneConfig};
use acm_sim::rng::SimRng;
use proptest::prelude::*;

/// Builds a normalisable plan from raw weights, quarantining by mask.
fn plan_of(raw: &[f64], dead: &[bool]) -> PlanStep {
    PlanStep {
        fractions: raw.to_vec(),
        live: dead.iter().map(|d| !d).collect(),
    }
}

proptest! {
    /// Neutral scorer + randomized plan (some regions quarantined):
    /// realized flow tracks the live-renormalised plan within 1 %, and
    /// quarantined regions receive exactly zero.
    #[test]
    fn realized_flow_converges_to_planned_fractions(
        seed in 0u64..200,
        raw in proptest::collection::vec(0.05f64..10.0, 2..12),
        dead_bits in 0u32..64,
    ) {
        let n = raw.len();
        let dead: Vec<bool> = (0..n).map(|i| (dead_bits >> i) & 1 == 1).collect();
        // Keep at least one region live with positive weight.
        let any_live = dead.iter().any(|d| !d);
        let dead = if any_live { dead } else { vec![false; n] };

        let mut r = RequestRouter::new(n, LatencyAwareness::default(), SimRng::new(seed));
        let step = plan_of(&raw, &dead);
        prop_assert!(r.install(&step.fractions, Some(&step.live)));

        let requests = 400_000u64;
        for _ in 0..requests {
            r.route();
        }

        let masked: Vec<f64> = raw
            .iter()
            .zip(&dead)
            .map(|(w, d)| if *d { 0.0 } else { *w })
            .collect();
        let total: f64 = masked.iter().sum();
        let got = r.stats().realized_fractions();
        for i in 0..n {
            let want = masked[i] / total;
            if dead[i] {
                prop_assert_eq!(
                    r.stats().routed[i], 0,
                    "quarantined region {} was routed", i
                );
            }
            prop_assert!(
                (got[i] - want).abs() < 0.01,
                "region {}: realized {} vs planned {}",
                i, got[i], want
            );
        }
    }

    /// Mid-run plan swaps: cumulative flow is the request-weighted blend
    /// of the plans in force, each within tolerance on its own segment.
    #[test]
    fn flow_tracks_each_plan_across_mid_run_swaps(
        seed in 0u64..100,
        raw_a in proptest::collection::vec(0.1f64..5.0, 4),
        raw_b in proptest::collection::vec(0.1f64..5.0, 4),
    ) {
        let mut r = RequestRouter::new(4, LatencyAwareness::default(), SimRng::new(seed));
        let norm = |raw: &[f64]| {
            let t: f64 = raw.iter().sum();
            raw.iter().map(|w| w / t).collect::<Vec<f64>>()
        };
        let requests = 300_000u64;

        prop_assert!(r.install(&raw_a, None));
        for _ in 0..requests {
            r.route();
        }
        let mid = r.stats().routed.clone();

        prop_assert!(r.install(&raw_b, None));
        for _ in 0..requests {
            r.route();
        }
        let end = r.stats().routed.clone();

        let want_a = norm(&raw_a);
        let want_b = norm(&raw_b);
        for i in 0..4 {
            let got_a = mid[i] as f64 / requests as f64;
            let got_b = (end[i] - mid[i]) as f64 / requests as f64;
            prop_assert!(
                (got_a - want_a[i]).abs() < 0.01,
                "segment A region {}: {} vs {}", i, got_a, want_a[i]
            );
            prop_assert!(
                (got_b - want_b[i]).abs() < 0.01,
                "segment B region {}: {} vs {}", i, got_b, want_b[i]
            );
        }
    }
}

/// The routed mega plane — chaos, a quarantining plan schedule and
/// latency feedback all on — replays byte-identically at 1 vs 4 threads.
#[test]
fn routed_mega_run_is_byte_identical_1_vs_4_threads() {
    let mut cfg = RoutedPlaneConfig::new(6, 4, 1 << 13, 3, 4242);
    cfg.plans = vec![
        PlanStep::all_live(vec![0.3, 0.25, 0.2, 0.1, 0.1, 0.05]),
        PlanStep {
            fractions: vec![0.3, 0.25, 0.2, 0.1, 0.1, 0.05],
            live: vec![true, true, true, true, false, true],
        },
    ];
    let before = acm_exec::current_threads();
    let run = |threads: usize| {
        acm_exec::configure_threads(threads);
        run_routed_plane(&cfg)
    };
    let one = run(1);
    let four = run(4);
    acm_exec::configure_threads(before);
    assert_eq!(
        one.digests, four.digests,
        "routed plane digests diverge across thread widths"
    );
    assert!(one.decisions() > 0, "plane routed nothing");
    assert_eq!(
        one.arena_reuse, four.arena_reuse,
        "arena reuse is part of the deterministic footprint"
    );
}
