//! The allocation-free routing hot loop.
//!
//! A [`RequestRouter`] maps each arriving request to a region with
//! **weighted power-of-two-choices** over the planned flow fractions
//! `f_i`: two candidate regions are drawn from a prebuilt
//! [`WeightTable`] (alias sampling, O(1) each), then the
//! latency-scorer's prebuilt key decides which candidate serves the
//! request. Ties — including every tie while the scorer is neutral —
//! resolve to the *first* draw, so with no latency signal the realized
//! flow is exactly the table's marginal, i.e. converges to `f_i`.
//!
//! After warm-up the per-request path allocates nothing and touches no
//! atomics: two alias samples, two `f64` key reads, a handful of plain
//! `u64` counter bumps. Everything heap-shaped happens at **plan
//! install** time ([`RequestRouter::install`]), which double-buffers the
//! weight table (build into the spare, swap) so a routing call never
//! observes a half-built table.

use crate::latency::{LatencyAwareness, LatencyScorer};
use acm_sim::rng::SimRng;
use acm_sim::time::Duration;
use acm_sim::weights::WeightTable;

/// Plain (non-atomic) routing statistics, kept off the obs registry so
/// the hot loop never touches shared state; publish deltas via
/// [`RequestRouter::publish`] at era grain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterStats {
    /// Requests routed.
    pub decisions: u64,
    /// Decisions where the two candidate draws differed.
    pub distinct_pairs: u64,
    /// Decisions where the latency score overrode the first draw.
    pub latency_overrides: u64,
    /// Weight-table installs (plan swaps) applied.
    pub replans: u64,
    /// Requests routed to each region.
    pub routed: Vec<u64>,
}

impl RouterStats {
    fn new(regions: usize) -> Self {
        RouterStats {
            decisions: 0,
            distinct_pairs: 0,
            latency_overrides: 0,
            replans: 0,
            routed: vec![0; regions],
        }
    }

    /// Realized flow fraction per region (`routed[i] / decisions`), the
    /// quantity the convergence gate compares against planned `f_i`.
    pub fn realized_fractions(&self) -> Vec<f64> {
        if self.decisions == 0 {
            return vec![0.0; self.routed.len()];
        }
        self.routed
            .iter()
            .map(|&n| n as f64 / self.decisions as f64)
            .collect()
    }
}

/// Obs handles the router publishes era-grain deltas into; absent on
/// per-shard lenses and whenever obs is disabled.
struct RouterObs {
    decisions: acm_obs::Counter,
    distinct_pairs: acm_obs::Counter,
    latency_overrides: acm_obs::Counter,
    replans: acm_obs::Counter,
    routed: Vec<acm_obs::Counter>,
    latency_us: Vec<acm_obs::Hist>,
    /// Stats already published, so `publish` adds only deltas.
    published: RouterStats,
}

/// Weighted-P2C request router with latency-aware candidate scoring.
pub struct RequestRouter {
    regions: usize,
    table: WeightTable,
    /// Double buffer: `install` builds here, then swaps with `table`.
    spare: WeightTable,
    /// Reused masked-weight staging for installs (no per-install alloc).
    scratch: Vec<f64>,
    scorer: LatencyScorer,
    rng: SimRng,
    /// Bumped on every successful install; lets observers cheaply detect
    /// plan swaps.
    epoch: u64,
    stats: RouterStats,
    obs: Option<RouterObs>,
}

impl RequestRouter {
    /// A router over `regions` regions starting from a uniform table
    /// (every region weight 1) and no latency measurements. `rng` must be
    /// a dedicated split stream — the router owns it.
    pub fn new(regions: usize, awareness: LatencyAwareness, rng: SimRng) -> Self {
        assert!(regions > 0, "router needs at least one region");
        let uniform = vec![1.0; regions];
        RequestRouter {
            regions,
            table: WeightTable::build(&uniform),
            spare: WeightTable::build(&uniform),
            scratch: Vec::with_capacity(regions),
            scorer: LatencyScorer::new(regions, awareness),
            rng,
            epoch: 0,
            stats: RouterStats::new(regions),
            obs: None,
        }
    }

    /// Number of regions routed over.
    pub fn regions(&self) -> usize {
        self.regions
    }

    /// Install count: bumps once per applied [`RequestRouter::install`].
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The live weight table's normalised shares (zeros preserved).
    pub fn shares(&self) -> &[f64] {
        self.table.shares()
    }

    /// Routing statistics since construction (or the last lens split).
    pub fn stats(&self) -> &RouterStats {
        &self.stats
    }

    /// The latency scorer (read side: eligibility/exclusion probes).
    pub fn scorer(&self) -> &LatencyScorer {
        &self.scorer
    }

    /// Installs a new plan: region weights are `fractions[i]`, masked to
    /// zero wherever `live` says the region is quarantined. The table is
    /// built into the spare buffer and swapped in whole, so a concurrent
    /// reader of `shares()` never sees a half-built plan. Returns `false`
    /// (keeping the previous table) when no live region has positive
    /// weight *and* no region is live at all; if regions are live but all
    /// their planned fractions are zero, falls back to uniform-over-live
    /// so requests still drain somewhere sensible.
    pub fn install(&mut self, fractions: &[f64], live: Option<&[bool]>) -> bool {
        assert_eq!(fractions.len(), self.regions, "fraction vector length");
        if let Some(mask) = live {
            assert_eq!(mask.len(), self.regions, "live mask length");
        }
        self.scratch.clear();
        self.scratch.extend((0..self.regions).map(|i| {
            let alive = live.is_none_or(|m| m[i]);
            if alive {
                fractions[i].max(0.0)
            } else {
                0.0
            }
        }));
        if self.scratch.iter().all(|w| *w <= 0.0) {
            // All planned weight vanished. If anything is live, spread
            // uniformly over it; otherwise keep the previous table (the
            // control plane has bigger problems than routing bias).
            let mut any_live = false;
            for i in 0..self.regions {
                if live.is_none_or(|m| m[i]) {
                    self.scratch[i] = 1.0;
                    any_live = true;
                }
            }
            if !any_live {
                return false;
            }
        }
        self.spare.rebuild(&self.scratch);
        std::mem::swap(&mut self.table, &mut self.spare);
        self.epoch += 1;
        self.stats.replans += 1;
        // Plan swaps change which regions matter; recompute the exclusion
        // cutoff so stale keys don't linger into the new plan.
        self.scorer.refresh();
        true
    }

    /// Routes one request: two weighted candidate draws, the lower
    /// latency key wins, ties (and the neutral scorer) keep the first
    /// draw. Allocation-free and branch-light — this is the hot loop.
    #[inline]
    pub fn route(&mut self) -> usize {
        let a = self.table.sample(&mut self.rng);
        let b = self.table.sample(&mut self.rng);
        self.stats.decisions += 1;
        let pick = if a == b {
            a
        } else {
            self.stats.distinct_pairs += 1;
            let keys = self.scorer.keys();
            if keys[b] < keys[a] {
                self.stats.latency_overrides += 1;
                b
            } else {
                a
            }
        };
        self.stats.routed[pick] += 1;
        pick
    }

    /// Feeds one completed-request latency back into the scorer (and the
    /// per-region obs histogram when attached).
    #[inline]
    pub fn record_latency(&mut self, region: usize, latency: Duration) {
        let us = latency.as_micros();
        self.scorer.record_us(region, us as f64);
        if let Some(obs) = &self.obs {
            obs.latency_us[region].record(us);
        }
    }

    /// Clears a region's latency history (readmission after quarantine).
    pub fn reset_latency(&mut self, region: usize) {
        self.scorer.reset_region(region);
    }

    /// Attaches obs handles (`acm.router.*` counters plus per-region
    /// latency histograms). Call once at wiring time, off the hot path.
    pub fn set_obs(&mut self, obs: &acm_obs::ObsHandle) {
        if !obs.enabled() {
            self.obs = None;
            return;
        }
        self.obs = Some(RouterObs {
            decisions: obs.counter("acm.router.decisions"),
            distinct_pairs: obs.counter("acm.router.distinct_pairs"),
            latency_overrides: obs.counter("acm.router.latency_overrides"),
            replans: obs.counter("acm.router.replans"),
            routed: (0..self.regions)
                .map(|i| obs.counter(&format!("acm.router.routed.region{i}")))
                .collect(),
            latency_us: (0..self.regions)
                .map(|i| obs.histogram(&format!("acm.router.latency_us.region{i}")))
                .collect(),
            published: RouterStats::new(self.regions),
        });
    }

    /// Publishes the delta since the last publish into the attached obs
    /// counters (no-op when none attached). Era-grain, off the hot path.
    pub fn publish(&mut self) {
        let Some(obs) = &mut self.obs else { return };
        let s = &self.stats;
        let p = &mut obs.published;
        obs.decisions.add(s.decisions - p.decisions);
        obs.distinct_pairs.add(s.distinct_pairs - p.distinct_pairs);
        obs.latency_overrides
            .add(s.latency_overrides - p.latency_overrides);
        obs.replans.add(s.replans - p.replans);
        for i in 0..self.regions {
            obs.routed[i].add(s.routed[i] - p.routed[i]);
        }
        *p = s.clone();
    }

    /// Splits per-shard router lenses in shard-index order (the same
    /// discipline as `ChaosLayer::pre_split`): each lens gets its own
    /// child RNG stream, a copy of the live table, and fresh stats — so
    /// shards route concurrently yet byte-identically at any thread
    /// width. The parent keeps its stream untouched afterwards; merge
    /// lens stats back with [`RequestRouter::absorb`].
    pub fn pre_split(&mut self, shards: usize) -> Vec<RequestRouter> {
        (0..shards)
            .map(|_| RequestRouter {
                regions: self.regions,
                table: self.table.clone(),
                spare: self.spare.clone(),
                scratch: Vec::with_capacity(self.regions),
                scorer: self.scorer.clone(),
                rng: self.rng.split(),
                epoch: self.epoch,
                stats: RouterStats::new(self.regions),
                obs: None,
            })
            .collect()
    }

    /// Folds a lens's stats back into the parent (shard-index order at
    /// the era barrier). Latency state stays with the lens — per-shard
    /// scorers are intentionally independent streams.
    pub fn absorb(&mut self, lens: &RequestRouter) {
        self.stats.decisions += lens.stats.decisions;
        self.stats.distinct_pairs += lens.stats.distinct_pairs;
        self.stats.latency_overrides += lens.stats.latency_overrides;
        for i in 0..self.regions {
            self.stats.routed[i] += lens.stats.routed[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(regions: usize, seed: u64) -> RequestRouter {
        RequestRouter::new(regions, LatencyAwareness::default(), SimRng::new(seed))
    }

    #[test]
    fn neutral_scorer_converges_to_installed_fractions() {
        let mut r = mk(3, 42);
        assert!(r.install(&[0.5, 0.2, 0.3], None));
        let n = 200_000;
        for _ in 0..n {
            r.route();
        }
        let got = r.stats().realized_fractions();
        for (i, want) in [0.5, 0.2, 0.3].iter().enumerate() {
            assert!(
                (got[i] - want).abs() < 0.01,
                "region {i}: {} vs {want}",
                got[i]
            );
        }
    }

    #[test]
    fn quarantined_region_gets_exactly_zero() {
        let mut r = mk(3, 7);
        assert!(r.install(&[0.5, 0.2, 0.3], Some(&[true, false, true])));
        for _ in 0..100_000 {
            let pick = r.route();
            assert_ne!(pick, 1, "quarantined region was routed a request");
        }
        assert_eq!(r.stats().routed[1], 0);
        // Live regions pick up the slack proportionally (0.5 : 0.3).
        let got = r.stats().realized_fractions();
        assert!((got[0] - 0.625).abs() < 0.01, "{got:?}");
    }

    #[test]
    fn latency_exclusion_shifts_flow_away_from_slow_region() {
        let mut r = mk(2, 11);
        assert!(r.install(&[0.5, 0.5], None));
        // Region 1 is 10x slower; with threshold 2.0 it gets excluded.
        for _ in 0..64 {
            r.record_latency(0, Duration::from_micros(100));
            r.record_latency(1, Duration::from_micros(1000));
        }
        r.scorer.refresh();
        assert!(r.scorer().excluded(1));
        let n = 50_000;
        let before = r.stats().routed[1];
        for _ in 0..n {
            r.route();
        }
        let to_slow = (r.stats().routed[1] - before) as f64 / n as f64;
        // P2C with one excluded region: slow region only wins when both
        // draws land on it (~0.25), vs 0.5 without scoring.
        assert!(to_slow < 0.30, "slow region still gets {to_slow}");
        assert!(r.stats().latency_overrides > 0);
    }

    #[test]
    fn install_falls_back_to_uniform_over_live() {
        let mut r = mk(3, 5);
        // Planned weight lives only on the quarantined region.
        assert!(r.install(&[1.0, 0.0, 0.0], Some(&[false, true, true])));
        for _ in 0..10_000 {
            assert_ne!(r.route(), 0);
        }
        let got = r.stats().realized_fractions();
        assert!((got[1] - 0.5).abs() < 0.02, "{got:?}");
    }

    #[test]
    fn install_with_nothing_live_keeps_previous_table() {
        let mut r = mk(2, 5);
        assert!(r.install(&[0.9, 0.1], None));
        let epoch = r.epoch();
        assert!(!r.install(&[0.5, 0.5], Some(&[false, false])));
        assert_eq!(r.epoch(), epoch);
        assert!((r.shares()[0] - 0.9).abs() < 1e-12, "previous plan kept");
    }

    #[test]
    fn routing_is_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<usize> {
            let mut r = mk(4, seed);
            r.install(&[0.4, 0.3, 0.2, 0.1], None)
                .then_some(())
                .unwrap();
            (0..1000).map(|_| r.route()).collect()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4), "different seeds should diverge");
    }

    #[test]
    fn lenses_split_in_order_are_deterministic_and_absorb_back() {
        let mk_lenses = || {
            let mut parent = mk(3, 99);
            parent.install(&[0.6, 0.3, 0.1], None);
            parent.pre_split(4)
        };
        let picks = |lenses: &mut Vec<RequestRouter>| -> Vec<Vec<usize>> {
            lenses
                .iter_mut()
                .map(|l| (0..200).map(|_| l.route()).collect())
                .collect()
        };
        let mut a = mk_lenses();
        let mut b = mk_lenses();
        assert_eq!(picks(&mut a), picks(&mut b));

        let mut parent = mk(3, 99);
        parent.install(&[0.6, 0.3, 0.1], None);
        let mut lenses = parent.pre_split(2);
        for l in lenses.iter_mut() {
            for _ in 0..100 {
                l.route();
            }
        }
        for l in &lenses {
            parent.absorb(l);
        }
        assert_eq!(parent.stats().decisions, 200);
        assert_eq!(
            parent.stats().routed.iter().sum::<u64>(),
            200,
            "absorbed routed counts cover every decision"
        );
    }

    #[test]
    fn publish_pushes_deltas_to_obs_counters() {
        let obs = acm_obs::Obs::new(acm_obs::ObsConfig::default());
        let mut r = mk(2, 1);
        r.set_obs(&obs);
        r.install(&[0.5, 0.5], None);
        for _ in 0..100 {
            r.route();
        }
        r.publish();
        assert_eq!(obs.counter("acm.router.decisions").value(), 100);
        assert_eq!(obs.counter("acm.router.replans").value(), 1);
        for _ in 0..50 {
            r.route();
        }
        r.publish();
        assert_eq!(
            obs.counter("acm.router.decisions").value(),
            150,
            "publish adds deltas, not totals"
        );
        let routed: u64 = (0..2)
            .map(|i| obs.counter(&format!("acm.router.routed.region{i}")).value())
            .sum();
        assert_eq!(routed, 150);
    }

    #[test]
    fn record_latency_feeds_histogram() {
        let obs = acm_obs::Obs::new(acm_obs::ObsConfig::default());
        let mut r = mk(2, 1);
        r.set_obs(&obs);
        r.record_latency(0, Duration::from_micros(250));
        let snap = obs.histogram("acm.router.latency_us.region0").snapshot();
        assert_eq!(snap.count, 1);
    }
}
