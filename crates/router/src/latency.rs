//! Latency-aware region scoring (the scyllapy `LatencyAwareness` design).
//!
//! The weight table decides *how much* flow each region should get; the
//! scorer decides, between two weighted candidates, *which one serves this
//! request* — using decaying latency measurements from completed requests:
//!
//! * **minimum-measurement eligibility** — a region with fewer than
//!   `minimum_measurements` samples is never penalised (its comparison key
//!   is neutral, which also gives fresh regions a slight preference so
//!   they accumulate measurements quickly);
//! * **exclusion threshold** — an eligible region whose decayed latency
//!   exceeds `exclusion_threshold ×` the fastest eligible region's is
//!   pushed behind every non-excluded candidate;
//! * **decaying weights** — each sample folds into a per-region EWMA with
//!   weight `decay`, so older latencies fade.
//!
//! The hot comparison is one `f64` read per candidate: keys are prebuilt
//! on every sample and the exclusion cutoff is refreshed on an amortised
//! O(n)-every-`refresh_every`-samples schedule, so scoring never walks the
//! region list on the routing path.

use serde::{Deserialize, Serialize};

/// Additive key penalty that pushes an excluded region behind every
/// non-excluded one (measured keys are microseconds, far below this).
const EXCLUDED_PENALTY_US: f64 = 1e12;

/// Tuning knobs of the latency-aware scorer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyAwareness {
    /// Samples a region needs before latency can penalise it.
    pub minimum_measurements: u64,
    /// Eligible regions slower than `threshold ×` the fastest eligible
    /// region are excluded from preference (≥ 1).
    pub exclusion_threshold: f64,
    /// EWMA weight of the newest sample, in `(0, 1]`.
    pub decay: f64,
    /// Exclusion-cutoff refresh cadence, in recorded samples.
    pub refresh_every: u64,
}

impl Default for LatencyAwareness {
    fn default() -> Self {
        LatencyAwareness {
            minimum_measurements: 32,
            exclusion_threshold: 2.0,
            decay: 0.2,
            refresh_every: 1024,
        }
    }
}

impl LatencyAwareness {
    /// Sanity-checks the knobs.
    pub fn validate(&self) -> Result<(), String> {
        if self.exclusion_threshold < 1.0 || !self.exclusion_threshold.is_finite() {
            return Err("exclusion_threshold must be finite and >= 1".into());
        }
        if !(self.decay > 0.0 && self.decay <= 1.0) {
            return Err("decay must be in (0, 1]".into());
        }
        if self.refresh_every == 0 {
            return Err("refresh_every must be positive".into());
        }
        Ok(())
    }
}

/// Per-region decaying latency state and the prebuilt comparison keys the
/// router's hot loop reads.
#[derive(Debug, Clone)]
pub struct LatencyScorer {
    cfg: LatencyAwareness,
    /// Decayed latency per region, microseconds (0 until the first sample).
    ewma_us: Vec<f64>,
    /// Samples recorded per region.
    count: Vec<u64>,
    /// Prebuilt comparison key per region (lower routes first).
    key: Vec<f64>,
    /// Exclusion cutoff: `threshold × fastest eligible EWMA` (+∞ until an
    /// eligible region exists).
    cutoff_us: f64,
    /// Samples since the last cutoff refresh.
    since_refresh: u64,
}

impl LatencyScorer {
    /// A scorer over `regions` regions with no measurements yet.
    pub fn new(regions: usize, cfg: LatencyAwareness) -> Self {
        cfg.validate().expect("invalid latency awareness");
        LatencyScorer {
            cfg,
            ewma_us: vec![0.0; regions],
            count: vec![0; regions],
            key: vec![0.0; regions],
            cutoff_us: f64::INFINITY,
            since_refresh: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &LatencyAwareness {
        &self.cfg
    }

    /// Folds one completed-request latency sample (microseconds) into the
    /// region's decayed estimate and its prebuilt key. Amortised O(1):
    /// the full cutoff scan runs every `refresh_every` samples.
    #[inline]
    pub fn record_us(&mut self, region: usize, latency_us: f64) {
        debug_assert!(latency_us >= 0.0 && latency_us.is_finite());
        let c = self.count[region];
        self.ewma_us[region] = if c == 0 {
            latency_us
        } else {
            self.cfg.decay * latency_us + (1.0 - self.cfg.decay) * self.ewma_us[region]
        };
        self.count[region] = c + 1;
        self.since_refresh += 1;
        if self.since_refresh >= self.cfg.refresh_every {
            self.refresh();
        } else {
            self.key[region] = self.key_of(region);
        }
    }

    /// Recomputes the exclusion cutoff and every region's key (O(n); run
    /// automatically on the refresh cadence and after plan swaps).
    pub fn refresh(&mut self) {
        self.since_refresh = 0;
        let fastest = self
            .ewma_us
            .iter()
            .zip(&self.count)
            .filter(|(_, c)| **c >= self.cfg.minimum_measurements)
            .map(|(l, _)| *l)
            .fold(f64::INFINITY, f64::min);
        self.cutoff_us = fastest * self.cfg.exclusion_threshold;
        for r in 0..self.key.len() {
            self.key[r] = self.key_of(r);
        }
    }

    /// The comparison key of one region under the current cutoff.
    fn key_of(&self, region: usize) -> f64 {
        if self.count[region] < self.cfg.minimum_measurements {
            // Not enough data to judge: neutral (and slightly preferred,
            // so fresh regions reach eligibility).
            0.0
        } else if self.ewma_us[region] > self.cutoff_us {
            EXCLUDED_PENALTY_US + self.ewma_us[region]
        } else {
            self.ewma_us[region]
        }
    }

    /// The prebuilt comparison keys (lower routes first) — the single
    /// array the routing hot loop reads.
    #[inline]
    pub fn keys(&self) -> &[f64] {
        &self.key
    }

    /// Decayed latency estimate of a region, microseconds (0 = no data).
    pub fn ewma_us(&self, region: usize) -> f64 {
        self.ewma_us[region]
    }

    /// Samples recorded for a region.
    pub fn count(&self, region: usize) -> u64 {
        self.count[region]
    }

    /// Whether the region has enough measurements to be judged.
    pub fn eligible(&self, region: usize) -> bool {
        self.count[region] >= self.cfg.minimum_measurements
    }

    /// Whether the region is currently excluded (eligible and beyond the
    /// exclusion cutoff as of the last refresh).
    pub fn excluded(&self, region: usize) -> bool {
        self.key[region] >= EXCLUDED_PENALTY_US
    }

    /// Drops all measurement state (used when a region rejoins after an
    /// outage so stale latencies cannot linger).
    pub fn reset_region(&mut self, region: usize) {
        self.ewma_us[region] = 0.0;
        self.count[region] = 0;
        self.key[region] = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(min: u64, thr: f64) -> LatencyAwareness {
        LatencyAwareness {
            minimum_measurements: min,
            exclusion_threshold: thr,
            decay: 0.5,
            refresh_every: 4,
        }
    }

    #[test]
    fn fresh_regions_are_neutral_and_not_excluded() {
        let s = LatencyScorer::new(3, LatencyAwareness::default());
        assert_eq!(s.keys(), &[0.0, 0.0, 0.0]);
        assert!(!s.excluded(0));
        assert!(!s.eligible(0));
    }

    #[test]
    fn ewma_decays_toward_new_samples() {
        let mut s = LatencyScorer::new(1, cfg(1, 10.0));
        s.record_us(0, 100.0);
        assert_eq!(s.ewma_us(0), 100.0, "first sample seeds the estimate");
        s.record_us(0, 200.0);
        assert!((s.ewma_us(0) - 150.0).abs() < 1e-9, "decay 0.5 blend");
    }

    #[test]
    fn slow_region_is_excluded_after_refresh() {
        let mut s = LatencyScorer::new(2, cfg(2, 2.0));
        for _ in 0..4 {
            s.record_us(0, 100.0);
        }
        for _ in 0..4 {
            s.record_us(1, 1000.0); // 10x slower than region 0
        }
        s.refresh();
        assert!(!s.excluded(0));
        assert!(s.excluded(1), "10x slower than fastest at threshold 2");
        assert!(s.keys()[1] > s.keys()[0]);
    }

    #[test]
    fn under_measured_region_is_never_excluded() {
        let mut s = LatencyScorer::new(2, cfg(8, 2.0));
        for _ in 0..16 {
            s.record_us(0, 10.0);
        }
        s.record_us(1, 1_000_000.0); // one terrible sample, below the floor
        s.refresh();
        assert!(!s.excluded(1));
        assert_eq!(s.keys()[1], 0.0);
    }

    #[test]
    fn reset_region_clears_history() {
        let mut s = LatencyScorer::new(2, cfg(1, 2.0));
        for _ in 0..8 {
            s.record_us(1, 5000.0);
        }
        s.reset_region(1);
        assert_eq!(s.count(1), 0);
        assert_eq!(s.ewma_us(1), 0.0);
        assert!(!s.excluded(1));
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        assert!(cfg(1, 0.5).validate().is_err());
        let c = LatencyAwareness {
            decay: 0.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = LatencyAwareness {
            refresh_every: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        assert!(LatencyAwareness::default().validate().is_ok());
    }
}
