//! The routed data plane: open-loop arrivals × per-shard router lenses.
//!
//! [`run_routed_plane`] drives a sharded discrete-event world in which
//! every arriving request is individually routed to a region by a
//! per-shard [`RequestRouter`] lens, passed through a per-shard
//! [`ChaosLayer`] lens, serviced with a region-dependent latency, and —
//! when feedback is on — its completion latency folded back into the
//! shard's latency scorer. Plan swaps happen at era barriers, applied to
//! every lens in shard-index order.
//!
//! The harness exists once so the `mega_report` bench, the
//! `router_report` bench and the byte-identity tests all exercise the
//! *same* plane: per-shard outcome digests (including per-region routed
//! counts) must be identical at any `ACM_THREADS`, because every source
//! of randomness — arrivals, chaos, routing, service times — is a
//! pre-split stream and every barrier merge runs in shard-index order.

use crate::latency::LatencyAwareness;
use crate::router::RequestRouter;
use acm_overlay::{ChaosLayer, FaultPlan, MessageFate, NodeId};
use acm_sim::rng::SimRng;
use acm_sim::shard::{ShardLayout, ShardedWorld};
use acm_sim::time::{Duration, SimTime};
use acm_workload::{OpenLoopArrivals, RateProfile, THINK_TIME_MEAN_S};
use std::time::Instant;

/// One plan the plane installs at an era barrier.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanStep {
    /// Planned flow fraction per region.
    pub fractions: Vec<f64>,
    /// Liveness mask; quarantined (`false`) regions get zero weight.
    pub live: Vec<bool>,
}

impl PlanStep {
    /// A plan with every region live.
    pub fn all_live(fractions: Vec<f64>) -> Self {
        let live = vec![true; fractions.len()];
        PlanStep { fractions, live }
    }
}

/// Scale and behaviour knobs of the routed plane.
#[derive(Debug, Clone)]
pub struct RoutedPlaneConfig {
    /// Regions routed over.
    pub regions: usize,
    /// Shards (and router/chaos lenses). Fixed by config, not threads.
    pub shards: usize,
    /// Emulated browser population (sets the open-loop arrival rate).
    pub browsers: u64,
    /// Era count.
    pub eras: u64,
    /// Era length, seconds.
    pub era_s: u64,
    /// Master seed of every pre-split stream.
    pub seed: u64,
    /// Latency-scorer knobs for the router lenses.
    pub awareness: LatencyAwareness,
    /// Message chaos (2 % drop, up to 5 ms extra delay) on/off.
    pub chaos: bool,
    /// Feed completion latencies back into the router lenses.
    pub latency_feedback: bool,
    /// Plans installed at era barriers, cycled (`plans[era % len]`).
    /// Empty keeps the initial uniform table for the whole run.
    pub plans: Vec<PlanStep>,
    /// Mean service time per region, seconds (length `regions`). Distinct
    /// means give the latency scorer real signal.
    pub service_mean_s: Vec<f64>,
}

impl RoutedPlaneConfig {
    /// A plane with the defaults the benches use: chaos and latency
    /// feedback on, region `r` serving at mean `1 + r/2` seconds, no
    /// plan schedule (callers push [`PlanStep`]s as needed).
    pub fn new(regions: usize, shards: usize, browsers: u64, eras: u64, seed: u64) -> Self {
        RoutedPlaneConfig {
            regions,
            shards,
            browsers,
            eras,
            era_s: 10,
            seed,
            awareness: LatencyAwareness::default(),
            chaos: true,
            latency_feedback: true,
            plans: Vec::new(),
            service_mean_s: (0..regions).map(|r| 1.0 + r as f64 * 0.5).collect(),
        }
    }
}

/// One shard's width-independence digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardDigest {
    /// Requests that arrived on this shard.
    pub accepted: u64,
    /// Requests the chaos lens dropped.
    pub dropped: u64,
    /// Requests that completed service.
    pub completed: u64,
    /// Total extra delay the chaos lens injected, microseconds.
    pub chaos_delay_us: u64,
    /// Requests routed to each region by this shard's lens.
    pub routed: Vec<u64>,
}

/// Aggregate outcome of one plane run.
#[derive(Debug, Clone)]
pub struct PlaneOutcome {
    /// Simulator events executed across all shards.
    pub executed: u64,
    /// Wall-clock of the sharded run, seconds.
    pub wall_s: f64,
    /// Event-queue arena slots recycled across eras (all shards).
    pub arena_reuse: u64,
    /// Per-shard digests in shard-index order — byte-compare these
    /// across thread widths.
    pub digests: Vec<ShardDigest>,
}

impl PlaneOutcome {
    /// Routing decisions summed over shards.
    pub fn decisions(&self) -> u64 {
        self.digests.iter().map(|d| d.accepted).sum()
    }

    /// Per-region routed totals summed over shards.
    pub fn routed_totals(&self) -> Vec<u64> {
        let regions = self.digests.first().map_or(0, |d| d.routed.len());
        let mut out = vec![0u64; regions];
        for d in &self.digests {
            for (t, n) in out.iter_mut().zip(&d.routed) {
                *t += n;
            }
        }
        out
    }

    /// Realized flow fraction per region over the whole run.
    pub fn realized_fractions(&self) -> Vec<f64> {
        let total = self.decisions();
        self.routed_totals()
            .iter()
            .map(|&n| {
                if total == 0 {
                    0.0
                } else {
                    n as f64 / total as f64
                }
            })
            .collect()
    }
}

/// One shard's slice of the plane.
struct PlaneWorld {
    arrivals: OpenLoopArrivals,
    chaos: ChaosLayer,
    router: RequestRouter,
    service: SimRng,
    service_mean_s: Vec<f64>,
    latency_feedback: bool,
    buf: Vec<SimTime>,
    accepted: u64,
    dropped: u64,
    completed: u64,
    chaos_delay_us: u64,
}

/// Runs the routed plane once on the current `acm-exec` pool width.
pub fn run_routed_plane(cfg: &RoutedPlaneConfig) -> PlaneOutcome {
    assert_eq!(
        cfg.service_mean_s.len(),
        cfg.regions,
        "one service mean per region"
    );
    // Closed-loop equivalence: browsers / think-time arrivals per second,
    // split evenly over the shards as a flash-crowd profile.
    let rate = cfg.browsers as f64 / THINK_TIME_MEAN_S / cfg.shards as f64;
    let profile = RateProfile::Burst {
        base: rate * 0.7,
        peak: rate * 1.7,
        period: Duration::from_secs(7),
        burst_len: Duration::from_secs(2),
    };
    let mut rng = SimRng::new(cfg.seed);
    let mut arrivals = OpenLoopArrivals::pre_split(&profile, cfg.shards, &mut rng);
    let plan = if cfg.chaos {
        FaultPlan::scripted(13, Vec::new()).with_message_chaos(0.02, Duration::from_millis(5))
    } else {
        FaultPlan::scripted(13, Vec::new())
    };
    let mut chaos_lenses = ChaosLayer::new(&plan).pre_split(cfg.shards);
    let mut parent = RequestRouter::new(cfg.regions, cfg.awareness, rng.split());
    let mut router_lenses = parent.pre_split(cfg.shards);
    let mut services: Vec<SimRng> = (0..cfg.shards).map(|_| rng.split()).collect();

    let mut worlds: Vec<Option<PlaneWorld>> = (0..cfg.shards)
        .map(|_| {
            Some(PlaneWorld {
                arrivals: arrivals.remove(0),
                chaos: chaos_lenses.remove(0),
                router: router_lenses.remove(0),
                service: services.remove(0),
                service_mean_s: cfg.service_mean_s.clone(),
                latency_feedback: cfg.latency_feedback,
                buf: Vec::new(),
                accepted: 0,
                dropped: 0,
                completed: 0,
                chaos_delay_us: 0,
            })
        })
        .collect();
    let mut world = ShardedWorld::new(
        ShardLayout::balanced(cfg.shards, cfg.shards),
        &mut rng,
        |s, _| worlds[s].take().expect("one world per shard"),
    );
    let obs = acm_obs::Obs::new(acm_obs::ObsConfig::default());
    for shard in world.shards_mut() {
        shard.sim.set_obs(&obs);
    }

    let start = Instant::now();
    for era in 0..cfg.eras {
        // Barrier phase: install this era's plan on every lens in
        // shard-index order (the same table everywhere).
        if !cfg.plans.is_empty() {
            let step = &cfg.plans[(era as usize) % cfg.plans.len()];
            for shard in world.shards_mut() {
                shard
                    .sim
                    .world
                    .router
                    .install(&step.fractions, Some(&step.live));
            }
        }
        let era_start = SimTime::from_secs(era * cfg.era_s);
        let era_end = SimTime::from_secs((era + 1) * cfg.era_s);
        world.step_era(|shard| {
            let from = NodeId(shard.index as u32);
            let mut buf = std::mem::take(&mut shard.sim.world.buf);
            shard
                .sim
                .world
                .arrivals
                .fill_window(era_start, era_end, &mut buf);
            for &at in &buf {
                shard.sim.schedule_at(at, move |s| {
                    s.world.accepted += 1;
                    // The tentpole path: this request — not a bulk
                    // era-grain share — picks its region right now.
                    let region = s.world.router.route();
                    let to = NodeId(1_000_000 + region as u32);
                    match s.world.chaos.message_fate(s.now(), from, to) {
                        MessageFate::Drop => s.world.dropped += 1,
                        MessageFate::Deliver { extra_delay } => {
                            s.world.chaos_delay_us += extra_delay.as_micros();
                            let mean = s.world.service_mean_s[region];
                            let svc =
                                Duration::from_secs_f64(s.world.service.exponential(1.0 / mean));
                            let latency = svc + extra_delay;
                            s.schedule_at(s.now() + latency, move |s| {
                                s.world.completed += 1;
                                if s.world.latency_feedback {
                                    s.world.router.record_latency(region, latency);
                                }
                            });
                        }
                    }
                });
            }
            shard.sim.world.buf = buf;
            shard.sim.run_until(era_end);
        });
    }
    // Drain stragglers (completions scheduled past the last era end).
    let horizon = SimTime::from_secs(cfg.eras * cfg.era_s) + Duration::from_secs(60);
    world.step_era(|shard| {
        shard.sim.run_until(horizon);
    });
    let wall_s = start.elapsed().as_secs_f64();

    for shard in world.shards_mut() {
        shard.sim.flush_obs();
    }
    PlaneOutcome {
        executed: world.total_executed(),
        wall_s,
        arena_reuse: obs.counter("acm.sim.queue.arena_reuse").value(),
        digests: world
            .shards()
            .iter()
            .map(|s| {
                let w = &s.sim.world;
                ShardDigest {
                    accepted: w.accepted,
                    dropped: w.dropped,
                    completed: w.completed,
                    chaos_delay_us: w.chaos_delay_us,
                    routed: w.router.stats().routed.clone(),
                }
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> RoutedPlaneConfig {
        let mut cfg = RoutedPlaneConfig::new(4, 4, 1 << 12, 2, 2026);
        cfg.plans = vec![
            PlanStep::all_live(vec![0.4, 0.3, 0.2, 0.1]),
            PlanStep {
                fractions: vec![0.4, 0.3, 0.2, 0.1],
                live: vec![true, true, false, true],
            },
        ];
        cfg
    }

    #[test]
    fn routed_plane_is_byte_identical_across_widths() {
        let cfg = small_cfg();
        let before = acm_exec::current_threads();
        let run = |threads: usize| {
            acm_exec::configure_threads(threads);
            run_routed_plane(&cfg)
        };
        let one = run(1);
        let four = run(4);
        acm_exec::configure_threads(before);
        assert_eq!(one.digests, four.digests, "plane depends on thread width");
        assert!(one.decisions() > 0);
    }

    #[test]
    fn quarantined_region_receives_zero_flow_while_out() {
        let mut cfg = RoutedPlaneConfig::new(3, 2, 1 << 12, 2, 7);
        cfg.plans = vec![PlanStep {
            fractions: vec![0.5, 0.3, 0.2],
            live: vec![true, false, true],
        }];
        let out = run_routed_plane(&cfg);
        assert_eq!(out.routed_totals()[1], 0, "quarantined region was routed");
        assert!(out.decisions() > 0);
    }

    #[test]
    fn neutral_plane_converges_to_planned_fractions() {
        let mut cfg = RoutedPlaneConfig::new(3, 4, 1 << 15, 3, 11);
        cfg.latency_feedback = false; // neutral scorer: exact f_i marginal
        cfg.chaos = false;
        cfg.plans = vec![PlanStep::all_live(vec![0.5, 0.3, 0.2])];
        let out = run_routed_plane(&cfg);
        let got = out.realized_fractions();
        for (i, want) in [0.5, 0.3, 0.2].iter().enumerate() {
            assert!(
                (got[i] - want).abs() < 0.02,
                "region {i}: {} vs {want} over {} decisions",
                got[i],
                out.decisions()
            );
        }
    }
}
