//! Line-rate request-routing data plane for the ACM reproduction.
//!
//! The control plane (the MAPE loop in `acm-core`) plans *fractions*: a
//! share `f_i` of global client flow for every region, refreshed each
//! era. This crate is the data plane underneath that plan — the
//! per-request decision "which region serves *this* request", taken tens
//! of millions of times per second:
//!
//! * [`router`] — [`RequestRouter`]: weighted power-of-two-choices over
//!   the planned fractions. Two candidates drawn from a prebuilt
//!   alias-method [`WeightTable`], the latency score picks the winner.
//!   Allocation-free after warm-up; plans swap in atomically via a
//!   double-buffered table; quarantined regions carry zero weight and
//!   are *structurally* unsampleable.
//! * [`latency`] — [`LatencyScorer`]: decaying per-region latency
//!   estimates with minimum-measurement eligibility and an exclusion
//!   threshold relative to the fastest region (the scyllapy
//!   `LatencyAwareness` design), compiled down to one prebuilt `f64`
//!   key per region so the hot loop never walks the region list.
//! * [`plane`] — [`run_routed_plane`]: the sharded end-to-end harness
//!   (open-loop arrivals → per-shard router lens → chaos lens →
//!   region-dependent service → latency feedback) whose per-shard
//!   digests are byte-identical at any `ACM_THREADS`.
//!
//! Determinism follows the repo-wide pre-split discipline: the router
//! owns a dedicated [`SimRng`](acm_sim::rng::SimRng) stream and splits
//! per-shard lenses in shard-index order, exactly like
//! `ChaosLayer::pre_split`.
//!
//! [`WeightTable`]: acm_sim::weights::WeightTable

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod latency;
pub mod plane;
pub mod router;

pub use latency::{LatencyAwareness, LatencyScorer};
pub use plane::{run_routed_plane, PlanStep, PlaneOutcome, RoutedPlaneConfig, ShardDigest};
pub use router::{RequestRouter, RouterStats};
