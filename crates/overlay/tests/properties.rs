//! Property-based tests for the overlay.

use acm_overlay::election::elect;
use acm_overlay::graph::{NodeId, OverlayGraph};
use acm_overlay::routing::dijkstra;
use acm_overlay::{ChaosLayer, FaultPlan, Transport};
use acm_sim::rng::SimRng;
use acm_sim::time::{Duration, SimTime};
use proptest::prelude::*;

/// Builds a random graph from a seed: `n` nodes, ring + random chords,
/// optional random failures.
fn random_graph(seed: u64, n: u32, fail_prob: f64) -> OverlayGraph {
    let mut rng = SimRng::new(seed);
    let mut g = OverlayGraph::new();
    for i in 0..n {
        g.add_node(NodeId(i));
    }
    for i in 0..n {
        g.add_link(
            NodeId(i),
            NodeId((i + 1) % n),
            Duration::from_millis(rng.index(50) as u64 + 1),
        );
    }
    for i in 0..n {
        for j in (i + 2)..n {
            if rng.bernoulli(0.3) {
                g.add_link(
                    NodeId(i),
                    NodeId(j),
                    Duration::from_millis(rng.index(80) as u64 + 1),
                );
            }
        }
    }
    for i in 0..n {
        if rng.bernoulli(fail_prob) {
            g.fail_node(NodeId(i));
        }
    }
    g
}

proptest! {
    #[test]
    fn routes_only_traverse_usable_links(
        seed in 0u64..2_000,
        n in 3u32..12,
    ) {
        let g = random_graph(seed, n, 0.2);
        for src in 0..n {
            for dst in 0..n {
                if let Some(route) = dijkstra(&g, NodeId(src), NodeId(dst)) {
                    for hop in route.path.windows(2) {
                        prop_assert!(
                            g.link_usable(hop[0], hop[1]),
                            "route uses dead link {:?}",
                            hop
                        );
                    }
                    // Path endpoints match the query.
                    prop_assert_eq!(route.path.first(), Some(&NodeId(src)));
                    prop_assert_eq!(route.path.last(), Some(&NodeId(dst)));
                }
            }
        }
    }

    #[test]
    fn route_latency_equals_sum_of_hops(
        seed in 0u64..2_000,
        n in 3u32..10,
    ) {
        let g = random_graph(seed, n, 0.0);
        let route = dijkstra(&g, NodeId(0), NodeId(n - 1)).expect("connected ring");
        let mut total = Duration::ZERO;
        for hop in route.path.windows(2) {
            let hop_latency = g
                .usable_neighbors(hop[0])
                .into_iter()
                .find(|(m, _)| *m == hop[1])
                .map(|(_, d)| d)
                .expect("hop is a usable link");
            total += hop_latency;
        }
        prop_assert_eq!(total, route.latency);
    }

    #[test]
    fn triangle_inequality_for_routes(
        seed in 0u64..1_000,
        n in 3u32..10,
    ) {
        // Best route a->c is never worse than routing a->b->c.
        let g = random_graph(seed, n, 0.0);
        let (a, b, c) = (NodeId(0), NodeId(n / 2), NodeId(n - 1));
        let ac = dijkstra(&g, a, c).expect("connected").latency;
        let ab = dijkstra(&g, a, b).expect("connected").latency;
        let bc = dijkstra(&g, b, c).expect("connected").latency;
        prop_assert!(ac <= ab + bc);
    }

    #[test]
    fn partition_heal_round_trip_restores_all_pair_latencies(
        seed in 0u64..1_000,
        n in 3u32..10,
        k in 1u32..4,
    ) {
        // A chaos-layer partition of an arbitrary node group, later
        // healed, must leave the transport exactly where it started:
        // every pair's best-route latency is restored.
        let k = k.min(n - 1);
        let mut t = Transport::new(random_graph(seed, n, 0.0));
        let before: Vec<Option<Duration>> = (0..n)
            .flat_map(|a| (0..n).map(move |b| (a, b)))
            .map(|(a, b)| t.latency(NodeId(a), NodeId(b)))
            .collect();
        let group: Vec<NodeId> = (0..k).map(NodeId).collect();
        let plan = FaultPlan::scripted(seed, Vec::new()).partition_window(
            group,
            SimTime::from_secs(10),
            SimTime::from_secs(20),
        );
        let mut chaos = ChaosLayer::new(&plan);
        chaos.apply_due(SimTime::from_secs(10), &mut t, NodeId(0));
        // While partitioned, no route crosses the cut.
        for a in 0..k {
            for b in k..n {
                prop_assert_eq!(t.latency(NodeId(a), NodeId(b)), None);
            }
        }
        chaos.apply_due(SimTime::from_secs(20), &mut t, NodeId(0));
        prop_assert_eq!(chaos.open_partitions(), 0);
        let after: Vec<Option<Duration>> = (0..n)
            .flat_map(|a| (0..n).map(move |b| (a, b)))
            .map(|(a, b)| t.latency(NodeId(a), NodeId(b)))
            .collect();
        prop_assert_eq!(before, after);
    }

    #[test]
    fn every_partition_elects_exactly_its_minimum(
        seed in 0u64..2_000,
        n in 2u32..12,
    ) {
        let g = random_graph(seed, n, 0.3);
        let outcome = elect(&g);
        // Every alive node has a leader that is alive, reachable and no
        // larger than itself... the minimum of its component.
        for node in g.alive_nodes() {
            let leader = outcome.leader(node).expect("alive node has a leader");
            prop_assert!(g.is_alive(leader));
            prop_assert!(leader <= node);
            // The leader is reachable from the node.
            prop_assert!(
                dijkstra(&g, node, leader).is_some(),
                "{node} cannot reach its leader {leader}"
            );
            // No alive node reachable from `node` is smaller than the leader.
            for other in g.alive_nodes() {
                if dijkstra(&g, node, other).is_some() {
                    prop_assert!(leader <= other, "{node}: {other} < leader {leader}");
                }
            }
        }
    }
}
