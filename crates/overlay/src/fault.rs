//! Deterministic fault injection for the overlay.
//!
//! A [`FaultPlan`] is a seeded schedule of topology faults (link flaps,
//! node crashes, partitions with scheduled heals, leader kills) plus
//! optional probabilistic per-message chaos (drop / extra delay). The
//! [`ChaosLayer`] replays the plan against a [`Transport`]: scheduled
//! faults are applied at era boundaries by the control loop, message
//! chaos is consulted on every control-plane send.
//!
//! Determinism discipline (same as the exec pool's pre-split RNG rule):
//! the layer owns a private [`SimRng`] seeded from `FaultPlan::seed`, so
//! injecting faults never perturbs the experiment's master RNG stream —
//! a run with `fault_plan: None` and a run with an *empty* plan are
//! byte-identical, and any fixed plan+seed replays byte-identically at
//! every `ACM_THREADS` width. Every injected fault is emitted as an obs
//! event (`chaos.link.fail`, `chaos.partition`, …) stamped with its
//! scheduled sim time, so event logs stay seed-deterministic too.

use crate::graph::{LinkId, NodeId};
use crate::transport::Transport;
use acm_obs::{Counter, Hist, Obs, ObsHandle, TraceContext, Value};
use acm_sim::rng::SimRng;
use acm_sim::time::{Duration, SimTime};
use serde::{Deserialize, Serialize};

/// One injectable topology fault.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultAction {
    /// Cut the direct link `a`–`b`.
    FailLink(NodeId, NodeId),
    /// Restore the direct link `a`–`b`.
    RecoverLink(NodeId, NodeId),
    /// Crash a controller node (all its links stop carrying traffic).
    CrashNode(NodeId),
    /// Revive a crashed controller node.
    RecoverNode(NodeId),
    /// Isolate `group` from the rest of the overlay by cutting every
    /// currently-usable crossing link. The cut set is remembered so the
    /// matching [`FaultAction::Heal`] restores exactly those links.
    Partition(Vec<NodeId>),
    /// Undo the open partition with the same `group`.
    Heal(Vec<NodeId>),
    /// Crash whichever node is the leader when the fault fires (resolved
    /// at apply time, so it composes with earlier kills and elections).
    KillLeader,
}

/// A fault scheduled at an absolute sim time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault fires (applied at the first era boundary >= `at`).
    pub at: SimTime,
    /// What happens.
    pub action: FaultAction,
}

/// Probabilistic per-message chaos on control-plane sends.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MessageChaos {
    /// Probability that a routable message is dropped anyway.
    pub drop_prob: f64,
    /// Upper bound for uniform extra delivery delay (zero disables).
    pub extra_delay_max: Duration,
}

impl Default for MessageChaos {
    fn default() -> Self {
        MessageChaos {
            drop_prob: 0.0,
            extra_delay_max: Duration::ZERO,
        }
    }
}

impl MessageChaos {
    /// True when this config can never touch a message (no RNG draws).
    pub fn is_inert(&self) -> bool {
        self.drop_prob <= 0.0 && self.extra_delay_max.is_zero()
    }
}

/// A seeded, fully deterministic fault schedule.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the chaos layer's private RNG stream (message chaos).
    pub seed: u64,
    /// Scheduled topology faults (sorted by the layer on construction).
    pub events: Vec<FaultEvent>,
    /// Per-message drop/delay chaos.
    pub message: MessageChaos,
}

impl FaultPlan {
    /// A plan with only scripted events.
    pub fn scripted(seed: u64, events: Vec<FaultEvent>) -> Self {
        FaultPlan {
            seed,
            events,
            message: MessageChaos::default(),
        }
    }

    /// Appends a partition of `group` at `at`, healed at `heal_at`.
    pub fn partition_window(mut self, group: Vec<NodeId>, at: SimTime, heal_at: SimTime) -> Self {
        assert!(at <= heal_at, "heal must not precede the partition");
        self.events.push(FaultEvent {
            at,
            action: FaultAction::Partition(group.clone()),
        });
        self.events.push(FaultEvent {
            at: heal_at,
            action: FaultAction::Heal(group),
        });
        self
    }

    /// Appends a link flap: fail at `at`, recover at `recover_at`.
    pub fn link_flap(mut self, a: NodeId, b: NodeId, at: SimTime, recover_at: SimTime) -> Self {
        assert!(at <= recover_at, "recovery must not precede the failure");
        self.events.push(FaultEvent {
            at,
            action: FaultAction::FailLink(a, b),
        });
        self.events.push(FaultEvent {
            at: recover_at,
            action: FaultAction::RecoverLink(a, b),
        });
        self
    }

    /// Appends a node crash window: crash at `at`, revive at `recover_at`.
    pub fn crash_window(mut self, n: NodeId, at: SimTime, recover_at: SimTime) -> Self {
        assert!(at <= recover_at, "revival must not precede the crash");
        self.events.push(FaultEvent {
            at,
            action: FaultAction::CrashNode(n),
        });
        self.events.push(FaultEvent {
            at: recover_at,
            action: FaultAction::RecoverNode(n),
        });
        self
    }

    /// Appends a leader kill at `at` (no revival).
    pub fn kill_leader_at(mut self, at: SimTime) -> Self {
        self.events.push(FaultEvent {
            at,
            action: FaultAction::KillLeader,
        });
        self
    }

    /// Enables per-message chaos.
    pub fn with_message_chaos(mut self, drop_prob: f64, extra_delay_max: Duration) -> Self {
        self.message = MessageChaos {
            drop_prob,
            extra_delay_max,
        };
        self
    }

    /// Generates a seed-randomized schedule of link flaps and node crash
    /// windows over `[0, horizon)`. `intensity` scales the expected fault
    /// count (1.0 ≈ one flap per link and one crash per two nodes).
    /// Deterministic: the schedule is a pure function of the arguments.
    pub fn randomized(
        seed: u64,
        nodes: &[NodeId],
        links: &[(NodeId, NodeId)],
        horizon: SimTime,
        intensity: f64,
    ) -> Self {
        let mut rng = SimRng::new(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut events = Vec::new();
        let horizon_us = horizon.as_micros().max(1);
        // Outage length: between 2% and ~15% of the horizon, so recovery
        // always lands inside the run.
        let window = |rng: &mut SimRng| {
            let start = rng.index((horizon_us * 4 / 5) as usize) as u64;
            let len = horizon_us / 50 + rng.index((horizon_us / 8) as usize) as u64;
            let end = (start + len).min(horizon_us.saturating_sub(1));
            (SimTime::from_micros(start), SimTime::from_micros(end))
        };
        for &(a, b) in links {
            if rng.bernoulli(intensity.min(1.0)) {
                let (at, recover_at) = window(&mut rng);
                events.push(FaultEvent {
                    at,
                    action: FaultAction::FailLink(a, b),
                });
                events.push(FaultEvent {
                    at: recover_at,
                    action: FaultAction::RecoverLink(a, b),
                });
            }
        }
        for &n in nodes {
            if rng.bernoulli((intensity * 0.5).min(1.0)) {
                let (at, recover_at) = window(&mut rng);
                events.push(FaultEvent {
                    at,
                    action: FaultAction::CrashNode(n),
                });
                events.push(FaultEvent {
                    at: recover_at,
                    action: FaultAction::RecoverNode(n),
                });
            }
        }
        FaultPlan::scripted(seed, events)
    }

    /// Checks that every referenced node id is below `node_bound`, the
    /// message probabilities are sane, and the schedule is well-formed:
    /// no zero-length flap or crash windows (the fault and its recovery at
    /// the same instant replay as a silent no-op), no heal of a partition
    /// that was never cut (or cut only later), and no duplicate leader
    /// kills at the same instant ([`ChaosLayer::apply_due`] resolves the
    /// leader once per batch, so the second kill hits a corpse).
    ///
    /// A fuzzer can synthesize all of these at the window boundaries;
    /// rejecting them here keeps "plan replayed" meaning "plan happened".
    pub fn validate(&self, node_bound: u32) -> Result<(), String> {
        self.validate_in_era(node_bound, Duration::ZERO)
    }

    /// [`FaultPlan::validate`] with the control-era length known: two
    /// leader kills inside the *same era* are rejected (both land in one
    /// [`ChaosLayer::apply_due`] batch at the next era boundary and
    /// resolve to the same victim). `era == 0` falls back to the
    /// same-instant check only.
    pub fn validate_in_era(&self, node_bound: u32, era: Duration) -> Result<(), String> {
        let check = |n: NodeId| -> Result<(), String> {
            if n.0 >= node_bound {
                Err(format!(
                    "fault plan references {n} but the deployment has {node_bound} controllers"
                ))
            } else {
                Ok(())
            }
        };
        for ev in &self.events {
            match &ev.action {
                FaultAction::FailLink(a, b) | FaultAction::RecoverLink(a, b) => {
                    if a == b {
                        return Err(format!("link fault is a self-loop on {a}"));
                    }
                    check(*a)?;
                    check(*b)?;
                }
                FaultAction::CrashNode(n) | FaultAction::RecoverNode(n) => check(*n)?,
                FaultAction::Partition(group) | FaultAction::Heal(group) => {
                    if group.is_empty() {
                        return Err("partition group must not be empty".into());
                    }
                    for &n in group {
                        check(n)?;
                    }
                }
                FaultAction::KillLeader => {}
            }
        }
        if !(0.0..=1.0).contains(&self.message.drop_prob) {
            return Err(format!(
                "message drop probability {} outside [0, 1]",
                self.message.drop_prob
            ));
        }
        self.validate_schedule(era)
    }

    /// The schedule-shape half of validation, on the same stable time
    /// order the [`ChaosLayer`] replays.
    fn validate_schedule(&self, era: Duration) -> Result<(), String> {
        let mut schedule: Vec<&FaultEvent> = self.events.iter().collect();
        schedule.sort_by_key(|ev| ev.at);
        // Open fault windows, keyed by subject; matched exactly the way
        // components() pairs them (first recovery claims the first open
        // fault of its subject).
        let mut open_links: Vec<(LinkId, SimTime)> = Vec::new();
        let mut open_crashes: Vec<(NodeId, SimTime)> = Vec::new();
        let mut open_groups: Vec<(Vec<NodeId>, SimTime)> = Vec::new();
        let mut last_kill: Option<SimTime> = None;
        for ev in schedule {
            match &ev.action {
                FaultAction::FailLink(a, b) => open_links.push((LinkId::new(*a, *b), ev.at)),
                FaultAction::RecoverLink(a, b) => {
                    let id = LinkId::new(*a, *b);
                    if let Some(i) = open_links.iter().position(|(l, _)| *l == id) {
                        let (_, at) = open_links.remove(i);
                        if at == ev.at {
                            return Err(format!(
                                "zero-length flap of link {a}-{b} at {}us replays as a no-op",
                                ev.at.as_micros()
                            ));
                        }
                    }
                }
                FaultAction::CrashNode(n) => open_crashes.push((*n, ev.at)),
                FaultAction::RecoverNode(n) => {
                    if let Some(i) = open_crashes.iter().position(|(m, _)| m == n) {
                        let (_, at) = open_crashes.remove(i);
                        if at == ev.at {
                            return Err(format!(
                                "zero-length crash window of {n} at {}us replays as a no-op",
                                ev.at.as_micros()
                            ));
                        }
                    }
                }
                FaultAction::Partition(group) => {
                    let mut key = group.clone();
                    key.sort_unstable();
                    open_groups.push((key, ev.at));
                }
                FaultAction::Heal(group) => {
                    let mut key = group.clone();
                    key.sort_unstable();
                    match open_groups.iter().position(|(g, _)| *g == key) {
                        Some(i) => {
                            open_groups.remove(i);
                        }
                        None => {
                            return Err(format!(
                                "heal of group {group:?} at {}us precedes its partition",
                                ev.at.as_micros()
                            ));
                        }
                    }
                }
                FaultAction::KillLeader => {
                    if let Some(prev) = last_kill {
                        let same_batch = if era.is_zero() {
                            prev == ev.at
                        } else {
                            prev.as_micros() / era.as_micros()
                                == ev.at.as_micros() / era.as_micros()
                        };
                        if same_batch {
                            return Err(format!(
                                "duplicate leader kill at {}us: both land in one era batch \
                                 and resolve to the same victim",
                                ev.at.as_micros()
                            ));
                        }
                    }
                    last_kill = Some(ev.at);
                }
            }
        }
        Ok(())
    }

    // ---- mutation ops for the delta-debugging shrinker ----------------

    /// Decomposes the plan into shrinkable units: matched fault/recovery
    /// windows (flap, crash window, partition+heal — paired the same way
    /// [`FaultPlan::validate`] matches them: first recovery claims the
    /// first open fault of its subject) and lone events. Components are
    /// ordered by their earliest event time (ties by event index), so
    /// the decomposition is deterministic for a fixed plan.
    pub fn components(&self) -> Vec<PlanComponent> {
        let mut order: Vec<usize> = (0..self.events.len()).collect();
        order.sort_by_key(|&i| (self.events[i].at, i));
        let mut open_links: Vec<(LinkId, usize)> = Vec::new();
        let mut open_crashes: Vec<(NodeId, usize)> = Vec::new();
        let mut open_groups: Vec<(Vec<NodeId>, usize)> = Vec::new();
        let mut out = Vec::new();
        for i in order {
            match &self.events[i].action {
                FaultAction::FailLink(a, b) => open_links.push((LinkId::new(*a, *b), i)),
                FaultAction::RecoverLink(a, b) => {
                    let id = LinkId::new(*a, *b);
                    match open_links.iter().position(|(l, _)| *l == id) {
                        Some(k) => {
                            let (_, start) = open_links.remove(k);
                            out.push(PlanComponent {
                                indices: vec![start, i],
                                label: format!("flap {a}-{b}"),
                            });
                        }
                        None => out.push(PlanComponent {
                            indices: vec![i],
                            label: format!("recover-link {a}-{b}"),
                        }),
                    }
                }
                FaultAction::CrashNode(n) => open_crashes.push((*n, i)),
                FaultAction::RecoverNode(n) => {
                    match open_crashes.iter().position(|(m, _)| m == n) {
                        Some(k) => {
                            let (_, start) = open_crashes.remove(k);
                            out.push(PlanComponent {
                                indices: vec![start, i],
                                label: format!("crash {n}"),
                            });
                        }
                        None => out.push(PlanComponent {
                            indices: vec![i],
                            label: format!("recover-node {n}"),
                        }),
                    }
                }
                FaultAction::Partition(group) => {
                    let mut key = group.clone();
                    key.sort_unstable();
                    open_groups.push((key, i));
                }
                FaultAction::Heal(group) => {
                    let mut key = group.clone();
                    key.sort_unstable();
                    match open_groups.iter().position(|(g, _)| *g == key) {
                        Some(k) => {
                            let (_, start) = open_groups.remove(k);
                            out.push(PlanComponent {
                                indices: vec![start, i],
                                label: format!("partition {group:?}"),
                            });
                        }
                        None => out.push(PlanComponent {
                            indices: vec![i],
                            label: format!("heal {group:?}"),
                        }),
                    }
                }
                FaultAction::KillLeader => out.push(PlanComponent {
                    indices: vec![i],
                    label: "kill-leader".into(),
                }),
            }
        }
        // Unmatched opens (fault never recovered inside the plan).
        for (l, i) in open_links {
            out.push(PlanComponent {
                indices: vec![i],
                label: format!("fail-link {l:?}"),
            });
        }
        for (n, i) in open_crashes {
            out.push(PlanComponent {
                indices: vec![i],
                label: format!("crash-open {n}"),
            });
        }
        for (g, i) in open_groups {
            out.push(PlanComponent {
                indices: vec![i],
                label: format!("partition-open {g:?}"),
            });
        }
        out.sort_by_key(|c| {
            let first = *c.indices.iter().min().expect("component never empty");
            (self.events[first].at, first)
        });
        out
    }

    /// The plan with every event of `component` removed. Strictly
    /// smaller (fewer events) whenever the component is non-empty.
    pub fn without_component(&self, component: &PlanComponent) -> FaultPlan {
        let drop: Vec<usize> = component.indices.clone();
        let mut plan = self.clone();
        plan.events = plan
            .events
            .into_iter()
            .enumerate()
            .filter(|(i, _)| !drop.contains(i))
            .map(|(_, ev)| ev)
            .collect();
        plan
    }

    /// Halves a matched window's duration (recovery pulled toward the
    /// fault, floor 1µs so the result stays valid). Returns `None` for
    /// lone events or windows already at the floor — so repeated
    /// narrowing terminates (duration strictly decreases).
    pub fn narrow_component(&self, component: &PlanComponent) -> Option<FaultPlan> {
        let [start, end] = component.indices[..] else {
            return None;
        };
        let at = self.events[start].at;
        let recover = self.events[end].at;
        let len = recover.as_micros().checked_sub(at.as_micros())?;
        let new_len = (len / 2).max(1);
        if new_len >= len {
            return None;
        }
        let mut plan = self.clone();
        plan.events[end].at = SimTime::from_micros(at.as_micros() + new_len);
        Some(plan)
    }

    /// Weakens message chaos one quantized step: halves `drop_prob`
    /// (snapping to 0 below 1e-3) and halves the extra-delay bound
    /// (snapping to zero below 1ms). Returns `None` when already inert,
    /// so repeated weakening terminates.
    pub fn weaken_message(&self) -> Option<FaultPlan> {
        if self.message.is_inert() {
            return None;
        }
        let mut plan = self.clone();
        plan.message.drop_prob = match self.message.drop_prob / 2.0 {
            p if p < 1e-3 => 0.0,
            p => p,
        };
        let delay_us = self.message.extra_delay_max.as_micros() / 2;
        plan.message.extra_delay_max = if delay_us < 1_000 {
            Duration::ZERO
        } else {
            Duration::from_micros(delay_us)
        };
        Some(plan)
    }

    // ---- serialization (obs JSON writer / reader) ---------------------

    /// Serializes the plan as one JSON object via the obs writer —
    /// the corpus format for committed chaos reproducers.
    pub fn to_json(&self) -> String {
        use acm_obs::json::{array, JsonObject};
        let node_list = |group: &[NodeId]| array(group.iter().map(|n| n.0.to_string()));
        let events = array(self.events.iter().map(|ev| {
            let mut o = JsonObject::new();
            o.field_u64("at_us", ev.at.as_micros());
            match &ev.action {
                FaultAction::FailLink(a, b) => {
                    o.field_str("kind", "fail_link")
                        .field_u64("a", a.0 as u64)
                        .field_u64("b", b.0 as u64);
                }
                FaultAction::RecoverLink(a, b) => {
                    o.field_str("kind", "recover_link")
                        .field_u64("a", a.0 as u64)
                        .field_u64("b", b.0 as u64);
                }
                FaultAction::CrashNode(n) => {
                    o.field_str("kind", "crash_node")
                        .field_u64("node", n.0 as u64);
                }
                FaultAction::RecoverNode(n) => {
                    o.field_str("kind", "recover_node")
                        .field_u64("node", n.0 as u64);
                }
                FaultAction::Partition(group) => {
                    o.field_str("kind", "partition")
                        .field_raw("group", &node_list(group));
                }
                FaultAction::Heal(group) => {
                    o.field_str("kind", "heal")
                        .field_raw("group", &node_list(group));
                }
                FaultAction::KillLeader => {
                    o.field_str("kind", "kill_leader");
                }
            }
            o.finish()
        }));
        let mut msg = JsonObject::new();
        msg.field_f64("drop_prob", self.message.drop_prob)
            .field_u64("extra_delay_us", self.message.extra_delay_max.as_micros());
        let mut plan = JsonObject::new();
        plan.field_u64("seed", self.seed)
            .field_raw("message", &msg.finish())
            .field_raw("events", &events);
        plan.finish()
    }

    /// Parses a plan serialized by [`FaultPlan::to_json`]. Exact
    /// round-trip: `f64` text uses Rust's shortest-round-trip display
    /// and `u64` fields are parsed from the raw token.
    pub fn from_json(s: &str) -> Result<FaultPlan, String> {
        use acm_obs::json::JsonValue;
        let doc = acm_obs::json::parse(s)?;
        let want_u64 = |v: &JsonValue, key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(|f| f.as_u64())
                .ok_or_else(|| format!("fault plan JSON: missing u64 field {key:?}"))
        };
        let node = |v: &JsonValue, key: &str| -> Result<NodeId, String> {
            let raw = want_u64(v, key)?;
            u32::try_from(raw)
                .map(NodeId)
                .map_err(|_| format!("fault plan JSON: node id {raw} overflows u32"))
        };
        let group = |v: &JsonValue| -> Result<Vec<NodeId>, String> {
            v.get("group")
                .and_then(|g| g.as_array())
                .ok_or_else(|| "fault plan JSON: missing group array".to_string())?
                .iter()
                .map(|n| {
                    n.as_u64()
                        .and_then(|raw| u32::try_from(raw).ok())
                        .map(NodeId)
                        .ok_or_else(|| "fault plan JSON: bad node id in group".to_string())
                })
                .collect()
        };
        let seed = want_u64(&doc, "seed")?;
        let msg = doc
            .get("message")
            .ok_or_else(|| "fault plan JSON: missing message".to_string())?;
        let message = MessageChaos {
            drop_prob: msg
                .get("drop_prob")
                .and_then(|p| p.as_f64())
                .ok_or_else(|| "fault plan JSON: missing drop_prob".to_string())?,
            extra_delay_max: Duration::from_micros(want_u64(msg, "extra_delay_us")?),
        };
        let mut events = Vec::new();
        for ev in doc
            .get("events")
            .and_then(|e| e.as_array())
            .ok_or_else(|| "fault plan JSON: missing events array".to_string())?
        {
            let at = SimTime::from_micros(want_u64(ev, "at_us")?);
            let kind = ev
                .get("kind")
                .and_then(|k| k.as_str())
                .ok_or_else(|| "fault plan JSON: event missing kind".to_string())?;
            let action = match kind {
                "fail_link" => FaultAction::FailLink(node(ev, "a")?, node(ev, "b")?),
                "recover_link" => FaultAction::RecoverLink(node(ev, "a")?, node(ev, "b")?),
                "crash_node" => FaultAction::CrashNode(node(ev, "node")?),
                "recover_node" => FaultAction::RecoverNode(node(ev, "node")?),
                "partition" => FaultAction::Partition(group(ev)?),
                "heal" => FaultAction::Heal(group(ev)?),
                "kill_leader" => FaultAction::KillLeader,
                other => return Err(format!("fault plan JSON: unknown event kind {other:?}")),
            };
            events.push(FaultEvent { at, action });
        }
        Ok(FaultPlan {
            seed,
            events,
            message,
        })
    }
}

/// One shrinkable unit of a [`FaultPlan`]: a matched fault/recovery
/// window or a lone event. `indices` point into the owning plan's
/// `events` vector (1 or 2 entries, fault first).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanComponent {
    /// Event indices in the owning plan (fault before recovery).
    pub indices: Vec<usize>,
    /// Short human label for shrinker logs ("flap vmc0-vmc1", …).
    pub label: String,
}

/// What the chaos layer decided for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageFate {
    /// Deliver, with this much chaos-injected extra delay.
    Deliver {
        /// Extra delivery delay on top of the route latency.
        extra_delay: Duration,
    },
    /// Drop the message even though a route exists.
    Drop,
}

/// Replays a [`FaultPlan`] against a [`Transport`].
#[derive(Debug, Clone)]
pub struct ChaosLayer {
    /// Sorted schedule (stable by time, insertion order on ties).
    schedule: Vec<FaultEvent>,
    /// Index of the next unapplied event.
    next: usize,
    message: MessageChaos,
    /// Private stream: never touches the experiment's master RNG.
    rng: SimRng,
    /// Open partitions and the exact links each one cut.
    open_partitions: Vec<(Vec<NodeId>, Vec<LinkId>)>,
    /// Root span of the most recently applied fault (tracing hubs only):
    /// the causal anchor downstream suspicion/quarantine chains hang off.
    last_ctx: Option<TraceContext>,
    hub: ObsHandle,
    ctr_faults: Counter,
    ctr_msg_drops: Counter,
    ctr_msg_delays: Counter,
    hist_extra_delay: Hist,
}

impl ChaosLayer {
    /// Builds the layer from a plan. The plan's events are stably sorted
    /// by time; ties apply in insertion order.
    pub fn new(plan: &FaultPlan) -> Self {
        let mut schedule = plan.events.clone();
        schedule.sort_by_key(|ev| ev.at);
        ChaosLayer {
            schedule,
            next: 0,
            message: plan.message,
            rng: SimRng::new(plan.seed),
            open_partitions: Vec::new(),
            last_ctx: None,
            hub: Obs::noop(),
            ctr_faults: Counter::default(),
            ctr_msg_drops: Counter::default(),
            ctr_msg_delays: Counter::default(),
            hist_extra_delay: Hist::default(),
        }
    }

    /// Attaches observability: `acm.overlay.chaos.{faults,msg_drops,
    /// msg_delays}` counters, `acm.overlay.chaos.extra_delay_us`
    /// histogram, and one event per injected fault.
    pub fn set_obs(&mut self, obs: &ObsHandle) {
        self.hub = obs.clone();
        self.ctr_faults = obs.counter("acm.overlay.chaos.faults");
        self.ctr_msg_drops = obs.counter("acm.overlay.chaos.msg_drops");
        self.ctr_msg_delays = obs.counter("acm.overlay.chaos.msg_delays");
        self.hist_extra_delay = obs.histogram("acm.overlay.chaos.extra_delay_us");
    }

    /// Derives one chaos *lens* per shard, RNG streams split off this
    /// layer's private stream in shard-index order. Each lens carries the
    /// full plan state but draws independently, so shards can decide
    /// [`message_fate`] for their own traffic in parallel without racing
    /// on a shared stream — the split order (not the execution order)
    /// fixes every draw, keeping sharded runs byte-identical at any
    /// thread width. Fault *application* ([`apply_due`]) must stay on the
    /// parent layer at the era barrier: lenses are for per-message
    /// decisions only.
    ///
    /// [`message_fate`]: ChaosLayer::message_fate
    /// [`apply_due`]: ChaosLayer::apply_due
    pub fn pre_split(&mut self, shards: usize) -> Vec<ChaosLayer> {
        (0..shards)
            .map(|_| {
                let mut lens = self.clone();
                lens.rng = self.rng.split();
                lens
            })
            .collect()
    }

    /// Scheduled faults not yet applied.
    pub fn pending(&self) -> usize {
        self.schedule.len() - self.next
    }

    /// Currently open (unhealed) partitions.
    pub fn open_partitions(&self) -> usize {
        self.open_partitions.len()
    }

    /// Applies every scheduled fault with `at <= now` to the transport.
    /// `leader` resolves [`FaultAction::KillLeader`]. Returns `true` when
    /// the topology changed (caller should re-elect).
    pub fn apply_due(&mut self, now: SimTime, transport: &mut Transport, leader: NodeId) -> bool {
        let mut changed = false;
        while self.next < self.schedule.len() && self.schedule[self.next].at <= now {
            let ev = self.schedule[self.next].clone();
            self.next += 1;
            self.apply(&ev, transport, leader);
            changed = true;
        }
        changed
    }

    fn apply(&mut self, ev: &FaultEvent, transport: &mut Transport, leader: NodeId) {
        let t_us = ev.at.as_micros();
        self.ctr_faults.inc();
        match &ev.action {
            FaultAction::FailLink(a, b) => {
                transport.fail_link(*a, *b);
                self.emit_node_fault(t_us, "chaos.link.fail", *a, Some(*b));
            }
            FaultAction::RecoverLink(a, b) => {
                transport.recover_link(*a, *b);
                self.emit_node_fault(t_us, "chaos.link.recover", *a, Some(*b));
            }
            FaultAction::CrashNode(n) => {
                transport.fail_node(*n);
                self.emit_node_fault(t_us, "chaos.node.crash", *n, None);
            }
            FaultAction::RecoverNode(n) => {
                transport.recover_node(*n);
                self.emit_node_fault(t_us, "chaos.node.recover", *n, None);
            }
            FaultAction::KillLeader => {
                transport.fail_node(leader);
                self.emit_node_fault(t_us, "chaos.leader.kill", leader, None);
            }
            FaultAction::Partition(group) => {
                let cut = self.cut_links(transport, group);
                for l in &cut {
                    transport.fail_link(l.a, l.b);
                }
                self.emit_fault(
                    t_us,
                    "chaos.partition",
                    vec![
                        ("group_size", Value::U64(group.len() as u64)),
                        ("cut_links", Value::U64(cut.len() as u64)),
                        ("first", Value::U64(u64::from(group[0].0))),
                    ],
                );
                self.open_partitions.push((group.clone(), cut));
            }
            FaultAction::Heal(group) => {
                let mut key: Vec<NodeId> = group.clone();
                key.sort_unstable();
                let found = self.open_partitions.iter().position(|(g, _)| {
                    let mut gs = g.clone();
                    gs.sort_unstable();
                    gs == key
                });
                if let Some(i) = found {
                    let (_, cut) = self.open_partitions.remove(i);
                    for l in &cut {
                        transport.recover_link(l.a, l.b);
                    }
                    self.emit_fault(
                        t_us,
                        "chaos.heal",
                        vec![
                            ("group_size", Value::U64(group.len() as u64)),
                            ("restored_links", Value::U64(cut.len() as u64)),
                        ],
                    );
                }
            }
        }
    }

    /// The usable links crossing the `group` boundary right now. Links
    /// already down (by an earlier fault) are not included, so the
    /// matching heal restores exactly what this partition cut.
    fn cut_links(&self, transport: &Transport, group: &[NodeId]) -> Vec<LinkId> {
        let g = transport.graph();
        let mut cut = Vec::new();
        for &x in group {
            for (m, _) in g.usable_neighbors(x) {
                if !group.contains(&m) {
                    let id = LinkId::new(x, m);
                    if !cut.contains(&id) {
                        cut.push(id);
                    }
                }
            }
        }
        cut
    }

    fn emit_node_fault(&mut self, t_us: u64, kind: &'static str, n: NodeId, peer: Option<NodeId>) {
        let mut fields = vec![("node", Value::U64(u64::from(n.0)))];
        if let Some(p) = peer {
            fields.push(("peer", Value::U64(u64::from(p.0))));
        }
        self.emit_fault(t_us, kind, fields);
    }

    /// Emits one fault event. On a tracing hub the event opens a *root*
    /// span (faults are first causes, they have no parent) and the
    /// context is retained so the control loop can hang suspicion and
    /// quarantine chains off the most recent fault; on a plain hub this
    /// is byte-identical to `hub.emit`.
    fn emit_fault(&mut self, t_us: u64, kind: &'static str, fields: Vec<(&'static str, Value)>) {
        self.last_ctx = self
            .hub
            .emit_caused(t_us, kind, fields, None)
            .or(self.last_ctx);
    }

    /// Root span of the most recently applied fault, if the hub traces.
    /// Persists across eras on purpose: an unhealed partition from era
    /// 10 is still the cause of report losses in era 15.
    pub fn last_trace_ctx(&self) -> Option<TraceContext> {
        self.last_ctx
    }

    /// Decides the fate of one routable control-plane message. Draws from
    /// the private RNG only when message chaos is configured, so plans
    /// without it stay draw-free. Self-sends are never touched.
    pub fn message_fate(&mut self, now: SimTime, from: NodeId, to: NodeId) -> MessageFate {
        if from == to || self.message.is_inert() {
            return MessageFate::Deliver {
                extra_delay: Duration::ZERO,
            };
        }
        if self.message.drop_prob > 0.0 && self.rng.bernoulli(self.message.drop_prob) {
            self.ctr_msg_drops.inc();
            self.hub.emit(
                now.as_micros(),
                "chaos.msg.drop",
                vec![
                    ("from", Value::U64(u64::from(from.0))),
                    ("to", Value::U64(u64::from(to.0))),
                ],
            );
            return MessageFate::Drop;
        }
        let max_us = self.message.extra_delay_max.as_micros();
        let extra = if max_us == 0 {
            Duration::ZERO
        } else {
            let d = Duration::from_micros(self.rng.index(max_us as usize + 1) as u64);
            if !d.is_zero() {
                self.ctr_msg_delays.inc();
                self.hist_extra_delay.record(d.as_micros());
            }
            d
        };
        MessageFate::Deliver { extra_delay: extra }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::OverlayGraph;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn transport() -> Transport {
        Transport::new(OverlayGraph::full_mesh(&[
            (n(0), n(1), ms(30)),
            (n(1), n(2), ms(20)),
            (n(0), n(2), ms(100)),
        ]))
    }

    fn all_pairs(t: &mut Transport) -> Vec<Option<Duration>> {
        let mut out = Vec::new();
        for i in 0..3 {
            for j in 0..3 {
                out.push(t.latency(n(i), n(j)));
            }
        }
        out
    }

    #[test]
    fn partition_cuts_and_heal_restores_exactly() {
        let plan = FaultPlan::scripted(7, Vec::new()).partition_window(vec![n(2)], t(10), t(50));
        let mut layer = ChaosLayer::new(&plan);
        let mut tr = transport();
        let before = all_pairs(&mut tr);

        assert!(layer.apply_due(t(10), &mut tr, n(0)));
        assert_eq!(layer.open_partitions(), 1);
        assert_eq!(tr.latency(n(0), n(2)), None);
        assert_eq!(tr.latency(n(2), n(1)), None);
        assert_eq!(tr.latency(n(0), n(1)), Some(ms(30)), "intra side unhurt");

        assert!(layer.apply_due(t(50), &mut tr, n(0)));
        assert_eq!(layer.open_partitions(), 0);
        assert_eq!(all_pairs(&mut tr), before, "heal restores everything");
    }

    #[test]
    fn heal_does_not_recover_links_cut_by_other_faults() {
        // Link 0-2 goes down independently before the partition; the heal
        // must leave it down.
        let mut plan =
            FaultPlan::scripted(7, Vec::new()).partition_window(vec![n(2)], t(10), t(50));
        plan.events.insert(
            0,
            FaultEvent {
                at: t(5),
                action: FaultAction::FailLink(n(0), n(2)),
            },
        );
        let mut layer = ChaosLayer::new(&plan);
        let mut tr = transport();
        layer.apply_due(t(50), &mut tr, n(0));
        assert_eq!(tr.latency(n(0), n(2)), Some(ms(50)), "via 1 only");
        assert!(tr.graph().link_failed(n(0), n(2)));
    }

    #[test]
    fn kill_leader_resolves_at_apply_time() {
        let plan = FaultPlan::scripted(1, Vec::new()).kill_leader_at(t(30));
        let mut layer = ChaosLayer::new(&plan);
        let mut tr = transport();
        assert!(!layer.apply_due(t(29), &mut tr, n(0)), "not due yet");
        assert!(layer.apply_due(t(31), &mut tr, n(1)));
        assert!(!tr.graph().is_alive(n(1)));
        assert!(tr.graph().is_alive(n(0)));
    }

    #[test]
    fn schedule_applies_in_time_order_and_once() {
        let plan = FaultPlan::scripted(1, Vec::new())
            .link_flap(n(0), n(1), t(20), t(40))
            .crash_window(n(2), t(10), t(30));
        let mut layer = ChaosLayer::new(&plan);
        let mut tr = transport();
        layer.apply_due(t(15), &mut tr, n(0));
        assert!(!tr.graph().is_alive(n(2)));
        assert!(tr.graph().link_usable(n(0), n(1)));
        layer.apply_due(t(25), &mut tr, n(0));
        assert!(!tr.graph().link_usable(n(0), n(1)));
        layer.apply_due(t(100), &mut tr, n(0));
        assert!(tr.graph().is_alive(n(2)));
        assert!(tr.graph().link_usable(n(0), n(1)));
        assert_eq!(layer.pending(), 0);
        assert!(!layer.apply_due(SimTime::MAX, &mut tr, n(0)));
    }

    #[test]
    fn pre_split_lenses_draw_independent_deterministic_streams() {
        let plan =
            FaultPlan::scripted(11, Vec::new()).with_message_chaos(0.5, Duration::from_millis(20));
        let fates = |layer: &mut ChaosLayer| -> Vec<MessageFate> {
            (0..32)
                .map(|_| layer.message_fate(t(1), n(0), n(1)))
                .collect()
        };
        let mut a = ChaosLayer::new(&plan);
        let mut b = ChaosLayer::new(&plan);
        let mut lenses_a = a.pre_split(3);
        let mut lenses_b = b.pre_split(3);
        for (la, lb) in lenses_a.iter_mut().zip(lenses_b.iter_mut()) {
            assert_eq!(
                fates(la),
                fates(lb),
                "same plan, same split order, same draws"
            );
        }
        assert_ne!(
            fates(&mut lenses_a[0]),
            fates(&mut lenses_a[1]),
            "lenses must not share a stream"
        );
        // Lenses carry the plan: applying faults through a lens still works.
        assert_eq!(lenses_a[0].pending(), 0);
    }

    #[test]
    fn randomized_plans_are_pure_functions_of_their_inputs() {
        let nodes = [n(0), n(1), n(2)];
        let links = [(n(0), n(1)), (n(1), n(2)), (n(0), n(2))];
        let a = FaultPlan::randomized(42, &nodes, &links, t(3600), 1.0);
        let b = FaultPlan::randomized(42, &nodes, &links, t(3600), 1.0);
        assert_eq!(a, b);
        let c = FaultPlan::randomized(43, &nodes, &links, t(3600), 1.0);
        assert_ne!(a, c, "different seed, different schedule");
        assert!(!a.events.is_empty());
        for ev in &a.events {
            assert!(ev.at < t(3600));
        }
        a.validate(3).expect("generated plan is in-bounds");
    }

    #[test]
    fn message_chaos_is_deterministic_and_inert_when_unconfigured() {
        let plan = FaultPlan::scripted(9, Vec::new()).with_message_chaos(0.3, ms(40));
        let fates = |p: &FaultPlan| {
            let mut layer = ChaosLayer::new(p);
            (0..200)
                .map(|i| layer.message_fate(t(i), n(0), n(1)))
                .collect::<Vec<_>>()
        };
        assert_eq!(fates(&plan), fates(&plan), "same seed, same fates");
        let drops = fates(&plan)
            .iter()
            .filter(|f| matches!(f, MessageFate::Drop))
            .count();
        assert!(drops > 20 && drops < 120, "~30% of 200, got {drops}");

        // Unconfigured chaos delivers everything without touching the RNG.
        let inert = FaultPlan::scripted(9, Vec::new());
        let mut layer = ChaosLayer::new(&inert);
        for i in 0..50 {
            assert_eq!(
                layer.message_fate(t(i), n(0), n(1)),
                MessageFate::Deliver {
                    extra_delay: Duration::ZERO
                }
            );
        }
        // Self-sends are never dropped even under heavy chaos.
        let cruel = FaultPlan::scripted(9, Vec::new()).with_message_chaos(1.0, Duration::ZERO);
        let mut layer = ChaosLayer::new(&cruel);
        assert_eq!(
            layer.message_fate(t(0), n(1), n(1)),
            MessageFate::Deliver {
                extra_delay: Duration::ZERO
            }
        );
        assert_eq!(layer.message_fate(t(0), n(0), n(1)), MessageFate::Drop);
    }

    #[test]
    fn validate_rejects_out_of_bounds_and_bad_probabilities() {
        let plan = FaultPlan::scripted(0, Vec::new()).crash_window(n(5), t(1), t(2));
        assert!(plan.validate(3).is_err());
        assert!(plan.validate(6).is_ok());
        let bad = FaultPlan::scripted(0, Vec::new()).with_message_chaos(1.5, Duration::ZERO);
        assert!(bad.validate(3).is_err());
        let empty_group = FaultPlan::scripted(
            0,
            vec![FaultEvent {
                at: t(0),
                action: FaultAction::Partition(Vec::new()),
            }],
        );
        assert!(empty_group.validate(3).is_err());
    }

    #[test]
    fn faults_emit_obs_events() {
        let obs = Obs::new(acm_obs::ObsConfig::default());
        let plan = FaultPlan::scripted(3, Vec::new())
            .partition_window(vec![n(2)], t(10), t(20))
            .kill_leader_at(t(30));
        let mut layer = ChaosLayer::new(&plan);
        layer.set_obs(&obs);
        let mut tr = transport();
        layer.apply_due(t(40), &mut tr, n(0));
        let kinds: Vec<&str> = obs.events_tail(10).into_iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec!["chaos.partition", "chaos.heal", "chaos.leader.kill"]
        );
        assert_eq!(obs.counter("acm.overlay.chaos.faults").value(), 3);
        assert!(layer.last_trace_ctx().is_none(), "plain hub opens no spans");
    }

    #[test]
    fn traced_faults_open_root_spans_and_retain_the_last_context() {
        let obs = Obs::new(acm_obs::ObsConfig::traced(0xfa11));
        let plan = FaultPlan::scripted(3, Vec::new())
            .partition_window(vec![n(2)], t(10), t(20))
            .kill_leader_at(t(30));
        let mut layer = ChaosLayer::new(&plan);
        layer.set_obs(&obs);
        let mut tr = transport();
        layer.apply_due(t(40), &mut tr, n(0));

        let spans = obs.spans();
        assert_eq!(spans.len(), 3, "one span per fault");
        for s in &spans {
            assert_eq!(s.parent, 0, "faults are first causes (root spans)");
            assert_eq!(s.trace, s.id, "roots start their own trace");
        }
        let last = layer.last_trace_ctx().expect("tracing hub keeps context");
        assert_eq!(last.span, spans[2].id, "context tracks the latest fault");
        // Every chaos event carries its span id.
        for ev in obs.events_tail(10) {
            let span = ev
                .fields
                .iter()
                .find(|(k, _)| *k == "span")
                .expect("traced fault events carry a span field");
            assert!(matches!(span.1, Value::U64(v) if v != 0));
        }
    }

    #[test]
    fn validate_rejects_zero_length_windows() {
        let flap = FaultPlan::scripted(1, Vec::new()).link_flap(n(0), n(1), t(10), t(10));
        assert!(flap.validate(3).unwrap_err().contains("zero-length flap"));
        let crash = FaultPlan::scripted(1, Vec::new()).crash_window(n(2), t(5), t(5));
        assert!(crash
            .validate(3)
            .unwrap_err()
            .contains("zero-length crash window"));
        // A real window passes.
        let ok = FaultPlan::scripted(1, Vec::new()).link_flap(n(0), n(1), t(10), t(11));
        assert!(ok.validate(3).is_ok());
    }

    #[test]
    fn validate_rejects_heal_before_cut_and_unmatched_heal() {
        let early = FaultPlan::scripted(1, Vec::new())
            .kill_leader_at(t(1)) // unrelated noise
            .partition_window(vec![n(2)], t(40), t(50));
        assert!(early.validate(3).is_ok());
        // Heal scheduled before its partition: stable time order sees the
        // heal first, so there is no open group to close.
        let mut bad = FaultPlan::scripted(1, Vec::new());
        bad.events.push(FaultEvent {
            at: t(10),
            action: FaultAction::Heal(vec![n(2)]),
        });
        bad.events.push(FaultEvent {
            at: t(20),
            action: FaultAction::Partition(vec![n(2)]),
        });
        assert!(bad
            .validate(3)
            .unwrap_err()
            .contains("precedes its partition"));
        // A heal with no partition at all is equally malformed.
        let mut lone = FaultPlan::scripted(1, Vec::new());
        lone.events.push(FaultEvent {
            at: t(10),
            action: FaultAction::Heal(vec![n(1)]),
        });
        assert!(lone.validate(3).is_err());
    }

    #[test]
    fn validate_rejects_duplicate_leader_kills_in_one_era() {
        let same_instant = FaultPlan::scripted(1, Vec::new())
            .kill_leader_at(t(10))
            .kill_leader_at(t(10));
        assert!(same_instant
            .validate(3)
            .unwrap_err()
            .contains("duplicate leader kill"));
        // Different instants, same 30s era: only the era-aware check sees it.
        let same_era = FaultPlan::scripted(1, Vec::new())
            .kill_leader_at(t(31))
            .kill_leader_at(t(40));
        assert!(same_era.validate(3).is_ok());
        assert!(same_era
            .validate_in_era(3, Duration::from_secs(30))
            .unwrap_err()
            .contains("duplicate leader kill"));
        // Adjacent eras are fine.
        let spread = FaultPlan::scripted(1, Vec::new())
            .kill_leader_at(t(31))
            .kill_leader_at(t(65));
        assert!(spread.validate_in_era(3, Duration::from_secs(30)).is_ok());
    }

    #[test]
    fn components_pair_windows_and_mutations_shrink() {
        let plan = FaultPlan::scripted(7, Vec::new())
            .link_flap(n(0), n(1), t(10), t(30))
            .crash_window(n(2), t(5), t(25))
            .kill_leader_at(t(50))
            .with_message_chaos(0.2, Duration::from_secs(2));
        let comps = plan.components();
        assert_eq!(comps.len(), 3);
        // Ordered by earliest event time: crash (5s), flap (10s), kill (50s).
        assert!(comps[0].label.starts_with("crash"));
        assert_eq!(comps[0].indices.len(), 2);
        assert!(comps[1].label.starts_with("flap"));
        assert_eq!(comps[2].label, "kill-leader");
        assert_eq!(comps[2].indices.len(), 1);

        let dropped = plan.without_component(&comps[1]);
        assert_eq!(dropped.events.len(), plan.events.len() - 2);
        assert!(dropped.validate(3).is_ok());

        let narrowed = plan.narrow_component(&comps[0]).expect("window narrows");
        let comps2 = narrowed.components();
        let (s, e) = (comps2[0].indices[0], comps2[0].indices[1]);
        assert_eq!(
            narrowed.events[e].at.as_micros() - narrowed.events[s].at.as_micros(),
            t(10).as_micros(),
            "20s window halves to 10s"
        );
        assert!(
            plan.narrow_component(&comps[2]).is_none(),
            "lone events don't narrow"
        );

        // Narrowing terminates: duration strictly decreases to the 1µs floor.
        let mut cur = plan.clone();
        let mut steps = 0usize;
        while let Some(next) = {
            let c = cur.components();
            cur.narrow_component(&c[0])
        } {
            cur = next;
            steps += 1;
            assert!(steps < 64, "narrowing must terminate");
        }

        // Message weakening terminates at inert.
        let mut m = plan.clone();
        let mut steps = 0usize;
        while let Some(next) = m.weaken_message() {
            m = next;
            steps += 1;
            assert!(steps < 64, "weakening must terminate");
        }
        assert!(m.message.is_inert());
    }

    #[test]
    fn plan_json_round_trips_exactly() {
        let plan = FaultPlan::scripted(u64::MAX - 3, Vec::new())
            .link_flap(n(0), n(1), t(10), t(30))
            .crash_window(n(2), t(5), t(25))
            .partition_window(vec![n(1), n(2)], t(40), t(60))
            .kill_leader_at(t(50))
            .with_message_chaos(0.0625, Duration::from_millis(1500));
        let json = plan.to_json();
        let back = FaultPlan::from_json(&json).expect("round trip parses");
        assert_eq!(back, plan, "byte-exact plan round trip");
        assert_eq!(back.to_json(), json, "re-serialization is stable");
        // Malformed documents are rejected, not misparsed.
        assert!(FaultPlan::from_json("{}").is_err());
        assert!(FaultPlan::from_json("{\"seed\":1}").is_err());
        let unknown = json.replace("kill_leader", "explode");
        assert!(FaultPlan::from_json(&unknown).is_err());
    }
}
