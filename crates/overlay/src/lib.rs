//! Overlay network between VM controllers.
//!
//! "The interconnection among the various controllers is actuated via an
//! overlay network, which selects the path with the smallest latency among
//! two given controllers, and is able to reroute connections in case of a
//! network link failure. Among all the regions' VMCs, a leader VMC is
//! automatically elected using \[a fault-tolerant algorithm\]" (paper
//! Sec. III, citing Avresky & Natchev \[33\]).
//!
//! This crate provides exactly those three capabilities on top of the
//! simulation kernel:
//!
//! * [`graph`] — the weighted controller topology,
//! * [`routing`] — smallest-latency paths (Dijkstra) with failure-aware
//!   rerouting,
//! * [`election`] — leader election that tolerates multiple node and link
//!   failures (per-partition minimum-id convergecast, re-run on any
//!   membership change),
//! * [`heartbeat`] — the eventually-perfect failure detector that tells the
//!   election when to re-run,
//! * [`transport`] — latency-faithful message delivery for the control
//!   loop, scheduled on the discrete-event simulator,
//! * [`fault`] — seeded deterministic fault injection (link flaps, node
//!   crashes, partitions with scheduled heals, leader kills, per-message
//!   drop/delay chaos) replayed against the transport,
//! * [`staging`] — shard-boundary outboxes that defer cross-shard message
//!   delivery to the era barrier and merge it back in shard-index order,
//!   preserving the unsharded delivery order byte for byte.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod election;
pub mod fault;
pub mod graph;
pub mod heartbeat;
pub mod routing;
pub mod staging;
pub mod transport;

pub use election::{ElectionOutcome, Elector};
pub use fault::{
    ChaosLayer, FaultAction, FaultEvent, FaultPlan, MessageChaos, MessageFate, PlanComponent,
};
pub use graph::{LinkId, NodeId, OverlayGraph};
pub use heartbeat::{FailureDetector, HeartbeatConfig};
pub use routing::{Route, Router};
pub use staging::{drain_in_shard_order, ShardOutbox, StagedMessage};
pub use transport::Transport;
