//! Fault-tolerant leader election among the VM controllers.
//!
//! The paper elects a leader VMC "using the algorithm in \[33\] [Avresky &
//! Natchev], which has been shown to be tolerant to multiple node and link
//! failures". We implement the same guarantee with a round-based flooding
//! election: every alive node repeatedly exchanges the smallest controller
//! id it has heard of with its usable neighbours; after at most
//! `diameter` rounds each connected component agrees on its minimum id.
//! Any membership change (node/link failure or recovery) simply re-runs the
//! election — the algorithm is self-stabilising because the fixed point
//! depends only on the current topology.
//!
//! [`Elector`] tracks the last outcome and reports leadership changes, and
//! counts rounds/messages so the overhead can be benchmarked.

use crate::graph::{NodeId, OverlayGraph};
use acm_obs::{Counter, Hist, ObsHandle};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Result of one election run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ElectionOutcome {
    /// Leader per alive node (nodes in the same partition share a leader).
    pub leader_of: BTreeMap<NodeId, NodeId>,
    /// Synchronous rounds until every node stabilised.
    pub rounds: usize,
    /// Total point-to-point messages exchanged.
    pub messages: usize,
}

impl ElectionOutcome {
    /// Leader seen by a given node, if the node is alive.
    pub fn leader(&self, n: NodeId) -> Option<NodeId> {
        self.leader_of.get(&n).copied()
    }

    /// Distinct leaders (one per connected component of alive nodes).
    pub fn leaders(&self) -> Vec<NodeId> {
        let mut ls: Vec<NodeId> = self.leader_of.values().copied().collect();
        ls.sort_unstable();
        ls.dedup();
        ls
    }
}

/// Runs the flooding election on the current topology.
pub fn elect(g: &OverlayGraph) -> ElectionOutcome {
    let alive = g.alive_nodes();
    // Every node starts by nominating itself.
    let mut belief: BTreeMap<NodeId, NodeId> = alive.iter().map(|&n| (n, n)).collect();
    let mut rounds = 0;
    let mut messages = 0;
    loop {
        let mut next = belief.clone();
        let mut changed = false;
        for &n in &alive {
            for (m, _) in g.usable_neighbors(n) {
                messages += 1;
                let heard = belief[&n];
                if heard < next[&m] {
                    next.insert(m, heard);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
        belief = next;
        rounds += 1;
        assert!(
            rounds <= alive.len() + 1,
            "election failed to converge within the diameter bound"
        );
    }
    ElectionOutcome {
        leader_of: belief,
        rounds,
        messages,
    }
}

/// Stateful elector: re-elects on demand and reports leadership changes.
#[derive(Debug, Clone, Default)]
pub struct Elector {
    last: Option<ElectionOutcome>,
    elections_run: u64,
    /// Instrumentation; inert until [`Elector::set_obs`].
    hist_rounds: Hist,
    hist_messages: Hist,
    ctr_changes: Counter,
}

impl Elector {
    /// Creates an elector with no history.
    pub fn new() -> Self {
        Elector::default()
    }

    /// Attaches observability: per-election round/message histograms
    /// (`acm.overlay.election.rounds` / `.messages`) and a leadership-change
    /// counter (`acm.overlay.election.leader_changes`).
    pub fn set_obs(&mut self, obs: &ObsHandle) {
        self.hist_rounds = obs.histogram("acm.overlay.election.rounds");
        self.hist_messages = obs.histogram("acm.overlay.election.messages");
        self.ctr_changes = obs.counter("acm.overlay.election.leader_changes");
    }

    /// Runs an election and returns `(outcome, leadership_changed)` where
    /// the flag compares the new leader map against the previous one.
    pub fn re_elect(&mut self, g: &OverlayGraph) -> (&ElectionOutcome, bool) {
        let outcome = elect(g);
        self.elections_run += 1;
        self.hist_rounds.record(outcome.rounds as u64);
        self.hist_messages.record(outcome.messages as u64);
        let changed = self
            .last
            .as_ref()
            .is_none_or(|prev| prev.leader_of != outcome.leader_of);
        if changed {
            self.ctr_changes.inc();
        }
        self.last = Some(outcome);
        (self.last.as_ref().unwrap(), changed)
    }

    /// The most recent outcome, if any election has run.
    pub fn current(&self) -> Option<&ElectionOutcome> {
        self.last.as_ref()
    }

    /// How many elections have run.
    pub fn elections_run(&self) -> u64 {
        self.elections_run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acm_sim::time::Duration;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn triangle() -> OverlayGraph {
        OverlayGraph::full_mesh(&[
            (n(0), n(1), ms(10)),
            (n(1), n(2), ms(10)),
            (n(0), n(2), ms(10)),
        ])
    }

    #[test]
    fn elects_the_minimum_id() {
        let out = elect(&triangle());
        assert_eq!(out.leaders(), vec![n(0)]);
        for i in 0..3 {
            assert_eq!(out.leader(n(i)), Some(n(0)));
        }
    }

    #[test]
    fn survives_leader_failure() {
        let mut g = triangle();
        g.fail_node(n(0));
        let out = elect(&g);
        assert_eq!(out.leaders(), vec![n(1)]);
        assert_eq!(out.leader(n(0)), None, "dead node has no leader view");
    }

    #[test]
    fn survives_multiple_link_failures() {
        // Chain 0-1-2-3-4; kill 2 middle links -> 3 partitions.
        let mut g = OverlayGraph::new();
        for i in 0..4 {
            g.add_link(n(i), n(i + 1), ms(5));
        }
        g.fail_link(n(1), n(2));
        g.fail_link(n(3), n(4));
        let out = elect(&g);
        assert_eq!(out.leaders(), vec![n(0), n(2), n(4)]);
        assert_eq!(out.leader(n(1)), Some(n(0)));
        assert_eq!(out.leader(n(3)), Some(n(2)));
        assert_eq!(out.leader(n(4)), Some(n(4)));
    }

    #[test]
    fn rounds_bounded_by_diameter() {
        // Path graph of 10 nodes: diameter 9.
        let mut g = OverlayGraph::new();
        for i in 0..9 {
            g.add_link(n(i), n(i + 1), ms(1));
        }
        let out = elect(&g);
        assert!(out.rounds <= 10, "rounds {}", out.rounds);
        assert_eq!(out.leaders(), vec![n(0)]);
        assert!(out.messages > 0);
    }

    #[test]
    fn single_node_elects_itself() {
        let mut g = OverlayGraph::new();
        g.add_node(n(7));
        let out = elect(&g);
        assert_eq!(out.leader(n(7)), Some(n(7)));
        assert_eq!(out.rounds, 0);
    }

    #[test]
    fn elector_reports_changes() {
        let mut g = triangle();
        let mut e = Elector::new();
        let (_, changed) = e.re_elect(&g);
        assert!(changed, "first election is always a change");
        let (_, changed) = e.re_elect(&g);
        assert!(!changed, "stable topology keeps the leader");
        g.fail_node(n(0));
        let (out, changed) = e.re_elect(&g);
        assert!(changed);
        assert_eq!(out.leaders(), vec![n(1)]);
        // Recovery flips leadership back.
        g.recover_node(n(0));
        let (out, changed) = e.re_elect(&g);
        assert!(changed);
        assert_eq!(out.leaders(), vec![n(0)]);
        assert_eq!(e.elections_run(), 4);
    }

    #[test]
    fn elector_metrics_count_elections_and_changes() {
        let obs = acm_obs::Obs::new(acm_obs::ObsConfig::default());
        let mut g = triangle();
        let mut e = Elector::new();
        e.set_obs(&obs);
        e.re_elect(&g); // change (first election)
        e.re_elect(&g); // stable
        g.fail_node(n(0));
        e.re_elect(&g); // change
        assert_eq!(
            obs.counter("acm.overlay.election.leader_changes").value(),
            2
        );
        let rounds = obs.histogram("acm.overlay.election.rounds").snapshot();
        assert_eq!(rounds.count, 3, "every election records a round sample");
        let messages = obs.histogram("acm.overlay.election.messages").snapshot();
        assert!(messages.max >= messages.min);
    }
}
