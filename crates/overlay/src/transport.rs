//! Latency-faithful message delivery between controllers.
//!
//! [`Transport`] wraps the topology and the route cache, tracks
//! sent/dropped counters, and schedules deliveries on the discrete-event
//! simulator after the route latency. Messages to unreachable nodes are
//! dropped (the control loop tolerates this: a slave whose report is lost
//! simply keeps its previous plan for one era — the same behaviour a lost
//! TCP connection would produce in the real deployment).

use crate::graph::{NodeId, OverlayGraph};
use crate::routing::Router;
use acm_obs::{Counter, Hist, ObsHandle, Timer};
use acm_sim::sim::Simulator;
use acm_sim::time::Duration;

/// Message-passing facade over the overlay.
#[derive(Debug, Clone, Default)]
pub struct Transport {
    graph: OverlayGraph,
    router: Router,
    sent: u64,
    dropped: u64,
    /// Instrumentation; inert until [`Transport::set_obs`].
    route_timer: Timer,
    hist_hops: Hist,
    hist_hop_latency: Hist,
    ctr_sent: Counter,
    ctr_dropped: Counter,
    ctr_unroutable: Counter,
}

impl Transport {
    /// Creates a transport over a topology.
    pub fn new(graph: OverlayGraph) -> Self {
        Transport {
            graph,
            router: Router::new(),
            sent: 0,
            dropped: 0,
            route_timer: Timer::default(),
            hist_hops: Hist::default(),
            hist_hop_latency: Hist::default(),
            ctr_sent: Counter::default(),
            ctr_dropped: Counter::default(),
            ctr_unroutable: Counter::default(),
        }
    }

    /// Attaches observability: `acm.overlay.transport.route_ns` times every
    /// route computation/cache hit, `…transport.hops` and
    /// `…transport.hop_latency_us` record the shape of each delivered
    /// route, and `…transport.{sent,dropped,unroutable}` export the send
    /// counters (unroutable counts sends with no usable path — today the
    /// only way a transport-level send can drop).
    pub fn set_obs(&mut self, obs: &ObsHandle) {
        self.route_timer = obs.timer("acm.overlay.transport.route_ns");
        self.hist_hops = obs.histogram("acm.overlay.transport.hops");
        self.hist_hop_latency = obs.histogram("acm.overlay.transport.hop_latency_us");
        self.ctr_sent = obs.counter("acm.overlay.transport.sent");
        self.ctr_dropped = obs.counter("acm.overlay.transport.dropped");
        self.ctr_unroutable = obs.counter("acm.overlay.transport.unroutable");
    }

    /// Read access to the topology.
    pub fn graph(&self) -> &OverlayGraph {
        &self.graph
    }

    /// Current smallest-latency delay between two controllers, or `None`
    /// when unreachable.
    pub fn latency(&mut self, from: NodeId, to: NodeId) -> Option<Duration> {
        self.router.latency(&self.graph, from, to)
    }

    /// Fails a link and invalidates routes.
    pub fn fail_link(&mut self, a: NodeId, b: NodeId) {
        self.graph.fail_link(a, b);
        self.router.invalidate();
    }

    /// Recovers a link and invalidates routes.
    pub fn recover_link(&mut self, a: NodeId, b: NodeId) {
        self.graph.recover_link(a, b);
        self.router.invalidate();
    }

    /// Fails a node and invalidates routes.
    pub fn fail_node(&mut self, n: NodeId) {
        self.graph.fail_node(n);
        self.router.invalidate();
    }

    /// Recovers a node and invalidates routes.
    pub fn recover_node(&mut self, n: NodeId) {
        self.graph.recover_node(n);
        self.router.invalidate();
    }

    /// Attempts a send: returns the delivery delay (and counts it sent), or
    /// `None` and counts a drop. The caller schedules the delivery — this
    /// keeps `Transport` usable both inside and outside a simulator world.
    pub fn prepare_send(&mut self, from: NodeId, to: NodeId) -> Option<Duration> {
        let route = {
            let _span = self.route_timer.start();
            self.router.route(&self.graph, from, to)
        };
        match route {
            Some(r) => {
                self.sent += 1;
                self.ctr_sent.inc();
                self.hist_hops.record(r.hops() as u64);
                for hop in r.path.windows(2) {
                    if let Some(d) = self.graph.link_latency(hop[0], hop[1]) {
                        self.hist_hop_latency.record(d.as_micros());
                    }
                }
                Some(r.latency)
            }
            None => {
                self.dropped += 1;
                self.ctr_dropped.inc();
                self.ctr_unroutable.inc();
                None
            }
        }
    }

    /// Messages successfully dispatched.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Messages dropped for unreachability.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Sends a message on the simulator: `handler` runs after the route latency.
/// Returns `false` (message dropped) when `to` is unreachable from `from`.
pub fn send<W>(
    sim: &mut Simulator<W>,
    transport: &mut Transport,
    from: NodeId,
    to: NodeId,
    handler: impl FnOnce(&mut Simulator<W>) + Send + 'static,
) -> bool {
    match transport.prepare_send(from, to) {
        Some(delay) => {
            sim.schedule_in(delay, handler);
            true
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn transport() -> Transport {
        Transport::new(OverlayGraph::full_mesh(&[
            (n(0), n(1), ms(30)),
            (n(1), n(2), ms(20)),
            (n(0), n(2), ms(100)),
        ]))
    }

    #[test]
    fn delivers_after_route_latency() {
        let mut t = transport();
        let mut sim = Simulator::new(Vec::<u64>::new());
        assert!(send(&mut sim, &mut t, n(0), n(2), |s| {
            let now = s.now().as_micros();
            s.world.push(now);
        }));
        sim.run_to_completion(10);
        // Best route 0-1-2 = 50ms.
        assert_eq!(sim.world, vec![ms(50).as_micros()]);
        assert_eq!(t.sent(), 1);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn drops_to_unreachable_destination() {
        let mut t = transport();
        t.fail_node(n(1));
        t.fail_link(n(0), n(2));
        let mut sim = Simulator::new(0u32);
        assert!(!send(&mut sim, &mut t, n(0), n(2), |s| s.world += 1));
        sim.run_to_completion(10);
        assert_eq!(sim.world, 0);
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn failure_changes_latency_and_recovery_restores_it() {
        let mut t = transport();
        assert_eq!(t.latency(n(0), n(2)), Some(ms(50)));
        t.fail_link(n(0), n(1));
        assert_eq!(t.latency(n(0), n(2)), Some(ms(100)));
        t.recover_link(n(0), n(1));
        assert_eq!(t.latency(n(0), n(2)), Some(ms(50)));
    }

    #[test]
    fn node_failure_and_recovery_round_trip() {
        let mut t = transport();
        t.fail_node(n(2));
        assert_eq!(t.latency(n(0), n(2)), None);
        t.recover_node(n(2));
        assert_eq!(t.latency(n(0), n(2)), Some(ms(50)));
    }

    #[test]
    fn self_send_is_immediate() {
        let mut t = transport();
        assert_eq!(t.prepare_send(n(1), n(1)), Some(Duration::ZERO));
    }

    #[test]
    fn transport_metrics_mirror_counters_and_record_route_shape() {
        let obs = acm_obs::Obs::new(acm_obs::ObsConfig::default());
        let mut t = transport();
        t.set_obs(&obs);
        // Best route 0-1-2: two hops of 30ms and 20ms.
        assert!(t.prepare_send(n(0), n(2)).is_some());
        t.fail_node(n(1));
        t.fail_link(n(0), n(2));
        assert!(t.prepare_send(n(0), n(2)).is_none());

        assert_eq!(obs.counter("acm.overlay.transport.sent").value(), t.sent());
        assert_eq!(
            obs.counter("acm.overlay.transport.dropped").value(),
            t.dropped()
        );
        assert_eq!(obs.counter("acm.overlay.transport.unroutable").value(), 1);
        let hops = obs.histogram("acm.overlay.transport.hops").snapshot();
        assert_eq!(hops.count, 1);
        let hop_lat = obs
            .histogram("acm.overlay.transport.hop_latency_us")
            .snapshot();
        assert_eq!(hop_lat.count, 2, "one sample per hop");
        let route_ns = obs.histogram("acm.overlay.transport.route_ns").snapshot();
        assert_eq!(route_ns.count, 2, "timed on hit and miss alike");
    }
}
