//! Latency-faithful message delivery between controllers.
//!
//! [`Transport`] wraps the topology and the route cache, tracks
//! sent/dropped counters, and schedules deliveries on the discrete-event
//! simulator after the route latency. Messages to unreachable nodes are
//! dropped (the control loop tolerates this: a slave whose report is lost
//! simply keeps its previous plan for one era — the same behaviour a lost
//! TCP connection would produce in the real deployment).

use crate::graph::{NodeId, OverlayGraph};
use crate::routing::Router;
use acm_sim::sim::Simulator;
use acm_sim::time::Duration;

/// Message-passing facade over the overlay.
#[derive(Debug, Clone, Default)]
pub struct Transport {
    graph: OverlayGraph,
    router: Router,
    sent: u64,
    dropped: u64,
}

impl Transport {
    /// Creates a transport over a topology.
    pub fn new(graph: OverlayGraph) -> Self {
        Transport {
            graph,
            router: Router::new(),
            sent: 0,
            dropped: 0,
        }
    }

    /// Read access to the topology.
    pub fn graph(&self) -> &OverlayGraph {
        &self.graph
    }

    /// Current smallest-latency delay between two controllers, or `None`
    /// when unreachable.
    pub fn latency(&mut self, from: NodeId, to: NodeId) -> Option<Duration> {
        self.router.latency(&self.graph, from, to)
    }

    /// Fails a link and invalidates routes.
    pub fn fail_link(&mut self, a: NodeId, b: NodeId) {
        self.graph.fail_link(a, b);
        self.router.invalidate();
    }

    /// Recovers a link and invalidates routes.
    pub fn recover_link(&mut self, a: NodeId, b: NodeId) {
        self.graph.recover_link(a, b);
        self.router.invalidate();
    }

    /// Fails a node and invalidates routes.
    pub fn fail_node(&mut self, n: NodeId) {
        self.graph.fail_node(n);
        self.router.invalidate();
    }

    /// Recovers a node and invalidates routes.
    pub fn recover_node(&mut self, n: NodeId) {
        self.graph.recover_node(n);
        self.router.invalidate();
    }

    /// Attempts a send: returns the delivery delay (and counts it sent), or
    /// `None` and counts a drop. The caller schedules the delivery — this
    /// keeps `Transport` usable both inside and outside a simulator world.
    pub fn prepare_send(&mut self, from: NodeId, to: NodeId) -> Option<Duration> {
        match self.latency(from, to) {
            Some(d) => {
                self.sent += 1;
                Some(d)
            }
            None => {
                self.dropped += 1;
                None
            }
        }
    }

    /// Messages successfully dispatched.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Messages dropped for unreachability.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Sends a message on the simulator: `handler` runs after the route latency.
/// Returns `false` (message dropped) when `to` is unreachable from `from`.
pub fn send<W>(
    sim: &mut Simulator<W>,
    transport: &mut Transport,
    from: NodeId,
    to: NodeId,
    handler: impl FnOnce(&mut Simulator<W>) + 'static,
) -> bool {
    match transport.prepare_send(from, to) {
        Some(delay) => {
            sim.schedule_in(delay, handler);
            true
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn transport() -> Transport {
        Transport::new(OverlayGraph::full_mesh(&[
            (n(0), n(1), ms(30)),
            (n(1), n(2), ms(20)),
            (n(0), n(2), ms(100)),
        ]))
    }

    #[test]
    fn delivers_after_route_latency() {
        let mut t = transport();
        let mut sim = Simulator::new(Vec::<u64>::new());
        assert!(send(&mut sim, &mut t, n(0), n(2), |s| {
            let now = s.now().as_micros();
            s.world.push(now);
        }));
        sim.run_to_completion(10);
        // Best route 0-1-2 = 50ms.
        assert_eq!(sim.world, vec![ms(50).as_micros()]);
        assert_eq!(t.sent(), 1);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn drops_to_unreachable_destination() {
        let mut t = transport();
        t.fail_node(n(1));
        t.fail_link(n(0), n(2));
        let mut sim = Simulator::new(0u32);
        assert!(!send(&mut sim, &mut t, n(0), n(2), |s| s.world += 1));
        sim.run_to_completion(10);
        assert_eq!(sim.world, 0);
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn failure_changes_latency_and_recovery_restores_it() {
        let mut t = transport();
        assert_eq!(t.latency(n(0), n(2)), Some(ms(50)));
        t.fail_link(n(0), n(1));
        assert_eq!(t.latency(n(0), n(2)), Some(ms(100)));
        t.recover_link(n(0), n(1));
        assert_eq!(t.latency(n(0), n(2)), Some(ms(50)));
    }

    #[test]
    fn node_failure_and_recovery_round_trip() {
        let mut t = transport();
        t.fail_node(n(2));
        assert_eq!(t.latency(n(0), n(2)), None);
        t.recover_node(n(2));
        assert_eq!(t.latency(n(0), n(2)), Some(ms(50)));
    }

    #[test]
    fn self_send_is_immediate() {
        let mut t = transport();
        assert_eq!(t.prepare_send(n(1), n(1)), Some(Duration::ZERO));
    }
}
