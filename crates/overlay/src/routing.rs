//! Smallest-latency routing with failure-aware rerouting.
//!
//! Dijkstra over the *usable* subgraph (failed nodes and links excluded).
//! [`Router`] caches computed routes and is invalidated wholesale whenever
//! the failure state changes — topologies here are a handful of controllers,
//! so recomputation is trivially cheap but the cache keeps the hot control
//! loop allocation-free.

use crate::graph::{NodeId, OverlayGraph};
use acm_sim::time::Duration;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BinaryHeap};

/// A computed route.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    /// Node sequence, source first, destination last.
    pub path: Vec<NodeId>,
    /// Total end-to-end latency.
    pub latency: Duration,
}

impl Route {
    /// Number of hops (links) on the route.
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }
}

/// Route cache keyed on `(src, dst)`.
#[derive(Debug, Clone, Default)]
pub struct Router {
    cache: BTreeMap<(NodeId, NodeId), Option<Route>>,
}

impl Router {
    /// Creates an empty router.
    pub fn new() -> Self {
        Router::default()
    }

    /// Smallest-latency route between two alive nodes, or `None` when the
    /// destination is unreachable (partition, failed endpoint).
    pub fn route(&mut self, g: &OverlayGraph, src: NodeId, dst: NodeId) -> Option<Route> {
        if let Some(cached) = self.cache.get(&(src, dst)) {
            return cached.clone();
        }
        let route = dijkstra(g, src, dst);
        self.cache.insert((src, dst), route.clone());
        route
    }

    /// Latency of the best route, if any.
    pub fn latency(&mut self, g: &OverlayGraph, src: NodeId, dst: NodeId) -> Option<Duration> {
        self.route(g, src, dst).map(|r| r.latency)
    }

    /// Drops every cached route. Call after any failure/recovery event.
    pub fn invalidate(&mut self) {
        self.cache.clear();
    }

    /// Number of cached entries (diagnostics).
    pub fn cached_routes(&self) -> usize {
        self.cache.len()
    }
}

/// Plain Dijkstra on the usable subgraph.
///
/// ```
/// use acm_overlay::graph::{NodeId, OverlayGraph};
/// use acm_overlay::routing::dijkstra;
/// use acm_sim::Duration;
/// let mut g = OverlayGraph::new();
/// g.add_link(NodeId(0), NodeId(1), Duration::from_millis(10));
/// g.add_link(NodeId(1), NodeId(2), Duration::from_millis(10));
/// g.add_link(NodeId(0), NodeId(2), Duration::from_millis(50));
/// let route = dijkstra(&g, NodeId(0), NodeId(2)).unwrap();
/// assert_eq!(route.path, vec![NodeId(0), NodeId(1), NodeId(2)]);
/// ```
pub fn dijkstra(g: &OverlayGraph, src: NodeId, dst: NodeId) -> Option<Route> {
    if !g.is_alive(src) || !g.is_alive(dst) {
        return None;
    }
    if src == dst {
        return Some(Route {
            path: vec![src],
            latency: Duration::ZERO,
        });
    }
    let mut dist: BTreeMap<NodeId, Duration> = BTreeMap::new();
    let mut prev: BTreeMap<NodeId, NodeId> = BTreeMap::new();
    // Max-heap on Reverse ordering via tuple of (negated comparison): use
    // std::cmp::Reverse over (Duration, NodeId) for determinism on ties.
    let mut heap: BinaryHeap<std::cmp::Reverse<(Duration, NodeId)>> = BinaryHeap::new();
    dist.insert(src, Duration::ZERO);
    heap.push(std::cmp::Reverse((Duration::ZERO, src)));

    while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
        if dist.get(&u).is_some_and(|best| *best < d) {
            continue; // stale entry
        }
        if u == dst {
            break;
        }
        for (v, w) in g.usable_neighbors(u) {
            let nd = d + w;
            if dist.get(&v).is_none_or(|best| nd < *best) {
                dist.insert(v, nd);
                prev.insert(v, u);
                heap.push(std::cmp::Reverse((nd, v)));
            }
        }
    }

    let latency = *dist.get(&dst)?;
    let mut path = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = *prev.get(&cur).expect("reachable node has a predecessor");
        path.push(cur);
    }
    path.reverse();
    Some(Route { path, latency })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    /// Triangle plus a pendant: 0-1 (10), 1-2 (10), 0-2 (50), 2-3 (5).
    fn diamond() -> OverlayGraph {
        let mut g = OverlayGraph::new();
        g.add_link(n(0), n(1), ms(10));
        g.add_link(n(1), n(2), ms(10));
        g.add_link(n(0), n(2), ms(50));
        g.add_link(n(2), n(3), ms(5));
        g
    }

    #[test]
    fn picks_the_smallest_latency_path() {
        let g = diamond();
        let r = dijkstra(&g, n(0), n(2)).unwrap();
        assert_eq!(r.path, vec![n(0), n(1), n(2)]);
        assert_eq!(r.latency, ms(20));
        assert_eq!(r.hops(), 2);
    }

    #[test]
    fn reroutes_around_a_failed_link() {
        let mut g = diamond();
        g.fail_link(n(0), n(1));
        let r = dijkstra(&g, n(0), n(2)).unwrap();
        assert_eq!(r.path, vec![n(0), n(2)]);
        assert_eq!(r.latency, ms(50));
    }

    #[test]
    fn reroutes_around_a_failed_node() {
        let mut g = diamond();
        g.fail_node(n(1));
        let r = dijkstra(&g, n(0), n(3)).unwrap();
        assert_eq!(r.path, vec![n(0), n(2), n(3)]);
        assert_eq!(r.latency, ms(55));
    }

    #[test]
    fn partition_is_unreachable() {
        let mut g = diamond();
        g.fail_node(n(1));
        g.fail_link(n(0), n(2));
        assert!(dijkstra(&g, n(0), n(3)).is_none());
        // But the other side of the partition still routes.
        assert!(dijkstra(&g, n(2), n(3)).is_some());
    }

    #[test]
    fn self_route_is_zero() {
        let g = diamond();
        let r = dijkstra(&g, n(2), n(2)).unwrap();
        assert_eq!(r.latency, Duration::ZERO);
        assert_eq!(r.hops(), 0);
    }

    #[test]
    fn dead_endpoints_yield_none() {
        let mut g = diamond();
        g.fail_node(n(0));
        assert!(dijkstra(&g, n(0), n(1)).is_none());
        assert!(dijkstra(&g, n(1), n(0)).is_none());
        assert!(dijkstra(&g, n(9), n(1)).is_none());
    }

    #[test]
    fn matches_bellman_ford_oracle_on_random_graphs() {
        use acm_sim::rng::SimRng;
        let mut rng = SimRng::new(99);
        for trial in 0..20 {
            // Random connected-ish graph on 8 nodes.
            let mut g = OverlayGraph::new();
            for i in 0..8 {
                g.add_node(n(i));
            }
            for i in 0..8u32 {
                for j in (i + 1)..8 {
                    if rng.bernoulli(0.45) {
                        g.add_link(n(i), n(j), ms(rng.index(100) as u64 + 1));
                    }
                }
            }
            // Bellman–Ford oracle from node 0.
            let nodes: Vec<NodeId> = g.nodes().collect();
            let mut dist: BTreeMap<NodeId, Option<Duration>> =
                nodes.iter().map(|&v| (v, None)).collect();
            dist.insert(n(0), Some(Duration::ZERO));
            for _ in 0..nodes.len() {
                for &u in &nodes {
                    let Some(du) = dist[&u] else { continue };
                    for (v, w) in g.usable_neighbors(u) {
                        let nd = du + w;
                        if dist[&v].is_none_or(|best| nd < best) {
                            dist.insert(v, Some(nd));
                        }
                    }
                }
            }
            for &v in &nodes {
                let got = dijkstra(&g, n(0), v).map(|r| r.latency);
                assert_eq!(got, dist[&v], "trial {trial} node {v}");
            }
        }
    }

    #[test]
    fn router_cache_and_invalidation() {
        let mut g = diamond();
        let mut router = Router::new();
        let r1 = router.route(&g, n(0), n(2)).unwrap();
        assert_eq!(r1.latency, ms(20));
        assert_eq!(router.cached_routes(), 1);
        // Failure without invalidation: stale cache by design...
        g.fail_link(n(0), n(1));
        assert_eq!(router.route(&g, n(0), n(2)).unwrap().latency, ms(20));
        // ...until the caller invalidates.
        router.invalidate();
        assert_eq!(router.route(&g, n(0), n(2)).unwrap().latency, ms(50));
    }
}
