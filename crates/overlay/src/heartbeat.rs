//! Heartbeat-based failure detection between controllers.
//!
//! The round-based election in [`crate::election`] needs something to tell
//! it *when* to re-run: in the deployed system each VMC heartbeats its
//! peers over the overlay and suspects a peer after a silence timeout
//! (the standard eventually-perfect failure-detector construction).
//! [`FailureDetector`] implements that suspicion logic; the event-driven
//! tests drive it together with [`crate::transport`] delays to show that
//! leader failover happens within one timeout.

use crate::graph::NodeId;
use acm_obs::{Counter, ObsHandle};
use acm_sim::time::{Duration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Heartbeat cadence and suspicion timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeartbeatConfig {
    /// How often every node emits heartbeats.
    pub period: Duration,
    /// Silence after which a peer is suspected. Must exceed the period plus
    /// the worst overlay delay, or healthy peers flap.
    pub timeout: Duration,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig {
            period: Duration::from_secs(5),
            timeout: Duration::from_secs(16),
        }
    }
}

impl HeartbeatConfig {
    /// Validates the timing relationship.
    pub fn validate(&self) -> Result<(), String> {
        if self.period.is_zero() {
            return Err("heartbeat period must be positive".into());
        }
        if self.timeout <= self.period {
            return Err("timeout must exceed the heartbeat period".into());
        }
        Ok(())
    }
}

/// One node's view of its peers' liveness.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FailureDetector {
    cfg: HeartbeatConfig,
    /// Most recent heartbeat received per peer.
    last_heard: BTreeMap<NodeId, SimTime>,
    suspected: BTreeSet<NodeId>,
    /// Count of suspicion transitions (flap diagnostics).
    transitions: u64,
    /// Instrumentation; inert until [`FailureDetector::set_obs`].
    ctr_heartbeats: Counter,
    ctr_suspicions: Counter,
    ctr_rehabilitations: Counter,
}

impl FailureDetector {
    /// Creates a detector for the given peers; every peer starts trusted
    /// with a grace period of one timeout from `now`.
    pub fn new(
        cfg: HeartbeatConfig,
        peers: impl IntoIterator<Item = NodeId>,
        now: SimTime,
    ) -> Self {
        cfg.validate().expect("invalid heartbeat config");
        FailureDetector {
            cfg,
            last_heard: peers.into_iter().map(|p| (p, now)).collect(),
            suspected: BTreeSet::new(),
            transitions: 0,
            ctr_heartbeats: Counter::default(),
            ctr_suspicions: Counter::default(),
            ctr_rehabilitations: Counter::default(),
        }
    }

    /// Attaches observability: counts heartbeats received
    /// (`acm.overlay.heartbeat.received`), new suspicions
    /// (`acm.overlay.heartbeat.suspicions`) and rehabilitations
    /// (`acm.overlay.heartbeat.rehabilitations`).
    pub fn set_obs(&mut self, obs: &ObsHandle) {
        self.ctr_heartbeats = obs.counter("acm.overlay.heartbeat.received");
        self.ctr_suspicions = obs.counter("acm.overlay.heartbeat.suspicions");
        self.ctr_rehabilitations = obs.counter("acm.overlay.heartbeat.rehabilitations");
    }

    /// The configuration in force.
    pub fn config(&self) -> HeartbeatConfig {
        self.cfg
    }

    /// Records a heartbeat from `from` at `now`. A suspected peer that
    /// speaks again is rehabilitated (eventually-perfect behaviour).
    /// Returns `true` if the peer was previously suspected.
    pub fn record_heartbeat(&mut self, from: NodeId, now: SimTime) -> bool {
        self.ctr_heartbeats.inc();
        self.last_heard.insert(from, now);
        let was_suspected = self.suspected.remove(&from);
        if was_suspected {
            self.transitions += 1;
            self.ctr_rehabilitations.inc();
        }
        was_suspected
    }

    /// Evaluates timeouts at `now`; returns peers that just became
    /// suspected (newly silent past the timeout).
    pub fn check(&mut self, now: SimTime) -> Vec<NodeId> {
        let mut newly = Vec::new();
        for (&peer, &heard) in &self.last_heard {
            if self.suspected.contains(&peer) {
                continue;
            }
            if now.saturating_since(heard) > self.cfg.timeout {
                newly.push(peer);
            }
        }
        for &p in &newly {
            self.suspected.insert(p);
            self.transitions += 1;
            self.ctr_suspicions.inc();
        }
        newly
    }

    /// Whether `peer` is currently suspected.
    pub fn is_suspected(&self, peer: NodeId) -> bool {
        self.suspected.contains(&peer)
    }

    /// How long `peer` has been silent at `now` (zero if heard in the
    /// future, `None` for an unknown peer). Diagnostic companion to
    /// [`FailureDetector::check`] — lets callers report *how stale* a
    /// suspicion is, not just that it happened.
    pub fn silent_for(&self, peer: NodeId, now: SimTime) -> Option<Duration> {
        self.last_heard.get(&peer).map(|&h| now.saturating_since(h))
    }

    /// Currently trusted peers.
    pub fn trusted(&self) -> Vec<NodeId> {
        self.last_heard
            .keys()
            .filter(|p| !self.suspected.contains(p))
            .copied()
            .collect()
    }

    /// Suspicion transitions so far (both directions).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::OverlayGraph;
    use crate::transport::{send, Transport};
    use acm_sim::sim::Simulator;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn cfg() -> HeartbeatConfig {
        HeartbeatConfig {
            period: Duration::from_secs(5),
            timeout: Duration::from_secs(16),
        }
    }

    #[test]
    fn silent_peer_becomes_suspected_after_timeout() {
        let mut fd = FailureDetector::new(cfg(), [n(1), n(2)], t(0));
        fd.record_heartbeat(n(1), t(10));
        // At t=15 nothing has timed out (n2 last heard at 0 + 16 > 15).
        assert!(fd.check(t(15)).is_empty());
        // At t=17, n2 is silent past the timeout; n1 is fine.
        assert_eq!(fd.check(t(17)), vec![n(2)]);
        assert!(fd.is_suspected(n(2)));
        assert!(!fd.is_suspected(n(1)));
        assert_eq!(fd.trusted(), vec![n(1)]);
    }

    #[test]
    fn heartbeat_rehabilitates_a_suspect() {
        let mut fd = FailureDetector::new(cfg(), [n(1)], t(0));
        fd.check(t(100));
        assert!(fd.is_suspected(n(1)));
        assert!(fd.record_heartbeat(n(1), t(101)));
        assert!(!fd.is_suspected(n(1)));
        assert_eq!(fd.transitions(), 2);
    }

    #[test]
    fn chatty_peer_is_never_suspected() {
        let mut fd = FailureDetector::new(cfg(), [n(1)], t(0));
        for s in (0..1000).step_by(5) {
            fd.record_heartbeat(n(1), t(s));
            assert!(fd.check(t(s + 4)).is_empty());
        }
        assert_eq!(fd.transitions(), 0);
    }

    #[test]
    fn silent_for_reports_the_silence_age() {
        let mut fd = FailureDetector::new(cfg(), [n(1)], t(0));
        fd.record_heartbeat(n(1), t(10));
        assert_eq!(fd.silent_for(n(1), t(25)), Some(Duration::from_secs(15)));
        assert_eq!(fd.silent_for(n(1), t(5)), Some(Duration::ZERO), "saturates");
        assert_eq!(fd.silent_for(n(9), t(25)), None, "unknown peer");
    }

    #[test]
    fn already_suspected_peers_are_not_reported_again() {
        let mut fd = FailureDetector::new(cfg(), [n(1)], t(0));
        assert_eq!(fd.check(t(100)), vec![n(1)]);
        assert!(fd.check(t(200)).is_empty(), "no duplicate suspicion");
    }

    #[test]
    fn detector_metrics_count_heartbeats_and_transitions() {
        let obs = acm_obs::Obs::new(acm_obs::ObsConfig::default());
        let mut fd = FailureDetector::new(cfg(), [n(1), n(2)], t(0));
        fd.set_obs(&obs);
        fd.record_heartbeat(n(1), t(1));
        fd.record_heartbeat(n(1), t(2));
        fd.check(t(100)); // both silent past the timeout → 2 suspicions
        fd.record_heartbeat(n(2), t(101)); // rehabilitates n2
        assert_eq!(obs.counter("acm.overlay.heartbeat.received").value(), 3);
        assert_eq!(obs.counter("acm.overlay.heartbeat.suspicions").value(), 2);
        assert_eq!(
            obs.counter("acm.overlay.heartbeat.rehabilitations").value(),
            1
        );
    }

    #[test]
    #[should_panic(expected = "timeout must exceed")]
    fn invalid_config_panics() {
        let bad = HeartbeatConfig {
            period: Duration::from_secs(10),
            timeout: Duration::from_secs(5),
        };
        let _ = FailureDetector::new(bad, [n(1)], t(0));
    }

    /// Event-driven failover drill: three controllers heartbeat over the
    /// transport; controller 0 (the leader) dies at t = 60 s; the survivors
    /// suspect it within one timeout and re-elect controller 1.
    #[test]
    fn leader_failover_within_one_timeout() {
        struct World {
            transport: Transport,
            detectors: Vec<FailureDetector>, // index = node id
            dead: Vec<bool>,
            leader_seen_by_1: NodeId,
            suspected_at: Option<SimTime>,
        }

        let graph = OverlayGraph::full_mesh(&[
            (n(0), n(1), Duration::from_millis(25)),
            (n(0), n(2), Duration::from_millis(30)),
            (n(1), n(2), Duration::from_millis(12)),
        ]);
        let peers = |me: u32| (0..3).filter(move |i| *i != me).map(n);
        let world = World {
            transport: Transport::new(graph),
            detectors: (0..3)
                .map(|i| FailureDetector::new(cfg(), peers(i), SimTime::ZERO))
                .collect(),
            dead: vec![false; 3],
            leader_seen_by_1: n(0),
            suspected_at: None,
        };
        let mut sim = Simulator::new(world);

        // Heartbeat + check loop per node, every period.
        fn tick(sim: &mut Simulator<World>, me: u32) {
            let now = sim.now();
            if sim.world.dead[me as usize] {
                return;
            }
            // Emit heartbeats to every peer.
            for peer in 0..3u32 {
                if peer == me || sim.world.dead[peer as usize] {
                    continue;
                }
                let (from, to) = (n(me), n(peer));
                // Borrow dance: take the transport out to schedule delivery.
                let mut transport = std::mem::take(&mut sim.world.transport);
                send(sim, &mut transport, from, to, move |s| {
                    let now = s.now();
                    s.world.detectors[peer as usize].record_heartbeat(from, now);
                });
                sim.world.transport = transport;
            }
            // Check suspicions; node 1 re-elects if it suspects the leader.
            let newly = sim.world.detectors[me as usize].check(now);
            if me == 1 && newly.contains(&n(0)) {
                sim.world.leader_seen_by_1 = n(1); // next-smallest trusted id
                sim.world.suspected_at = Some(now);
            }
            sim.schedule_in(Duration::from_secs(5), move |s| tick(s, me));
        }
        for me in 0..3 {
            sim.schedule_at(SimTime::ZERO, move |s| tick(s, me));
        }
        // Kill the leader at t = 60.
        sim.schedule_at(t(60), |s| s.world.dead[0] = true);

        sim.run_until(t(200));

        let w = &sim.world;
        assert_eq!(w.leader_seen_by_1, n(1), "failover must have happened");
        let at = w.suspected_at.expect("suspicion recorded");
        assert!(
            at > t(60) && at <= t(60) + cfg().timeout + Duration::from_secs(5),
            "failover too slow: {at}"
        );
    }
}
