//! The controller topology: an undirected graph weighted by link latency,
//! with dynamic node/link failure state.

use acm_sim::time::Duration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of an overlay node (a VM controller).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vmc{}", self.0)
    }
}

/// Identifier of an undirected link, normalised so `a <= b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId {
    /// Lower endpoint.
    pub a: NodeId,
    /// Upper endpoint.
    pub b: NodeId,
}

impl LinkId {
    /// Creates a normalised link id. Panics on self-loops.
    pub fn new(x: NodeId, y: NodeId) -> Self {
        assert_ne!(x, y, "self-loop links are not allowed");
        if x <= y {
            LinkId { a: x, b: y }
        } else {
            LinkId { a: y, b: x }
        }
    }
}

/// A weighted undirected overlay topology with failure state.
///
/// Deterministic iteration everywhere (BTree storage): the control loop's
/// behaviour must not depend on hash ordering.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OverlayGraph {
    /// Adjacency: node → (neighbor → latency).
    adj: BTreeMap<NodeId, BTreeMap<NodeId, Duration>>,
    failed_nodes: Vec<NodeId>,
    failed_links: Vec<LinkId>,
}

impl OverlayGraph {
    /// Creates an empty topology.
    pub fn new() -> Self {
        OverlayGraph::default()
    }

    /// Adds a node (idempotent).
    pub fn add_node(&mut self, n: NodeId) {
        self.adj.entry(n).or_default();
    }

    /// Adds (or updates) an undirected link with the given latency. Both
    /// endpoints are created if absent.
    pub fn add_link(&mut self, x: NodeId, y: NodeId, latency: Duration) {
        assert_ne!(x, y, "self-loop links are not allowed");
        self.adj.entry(x).or_default().insert(y, latency);
        self.adj.entry(y).or_default().insert(x, latency);
    }

    /// All node ids in ascending order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.adj.keys().copied()
    }

    /// Number of nodes (including failed ones).
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// True if the node exists (failed or not).
    pub fn contains(&self, n: NodeId) -> bool {
        self.adj.contains_key(&n)
    }

    /// Marks a node as failed (its links stop carrying traffic).
    pub fn fail_node(&mut self, n: NodeId) {
        if !self.failed_nodes.contains(&n) {
            self.failed_nodes.push(n);
        }
    }

    /// Clears a node failure.
    pub fn recover_node(&mut self, n: NodeId) {
        self.failed_nodes.retain(|x| *x != n);
    }

    /// Marks a link as failed.
    pub fn fail_link(&mut self, x: NodeId, y: NodeId) {
        let id = LinkId::new(x, y);
        if !self.failed_links.contains(&id) {
            self.failed_links.push(id);
        }
    }

    /// Clears a link failure.
    pub fn recover_link(&mut self, x: NodeId, y: NodeId) {
        let id = LinkId::new(x, y);
        self.failed_links.retain(|l| *l != id);
    }

    /// True when the node exists and is not failed.
    pub fn is_alive(&self, n: NodeId) -> bool {
        self.contains(n) && !self.failed_nodes.contains(&n)
    }

    /// True when the link exists and neither it nor its endpoints are down.
    pub fn link_usable(&self, x: NodeId, y: NodeId) -> bool {
        self.is_alive(x)
            && self.is_alive(y)
            && self.adj.get(&x).is_some_and(|nbrs| nbrs.contains_key(&y))
            && !self.failed_links.contains(&LinkId::new(x, y))
    }

    /// Usable neighbors of `n` with link latencies, in ascending id order.
    pub fn usable_neighbors(&self, n: NodeId) -> Vec<(NodeId, Duration)> {
        if !self.is_alive(n) {
            return Vec::new();
        }
        self.adj
            .get(&n)
            .map(|nbrs| {
                nbrs.iter()
                    .filter(|(m, _)| self.link_usable(n, **m))
                    .map(|(m, d)| (*m, *d))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// All alive nodes.
    pub fn alive_nodes(&self) -> Vec<NodeId> {
        self.nodes().filter(|n| self.is_alive(*n)).collect()
    }

    /// Raw latency of the direct link `x`–`y`, regardless of failure
    /// state, or `None` when no such link exists.
    pub fn link_latency(&self, x: NodeId, y: NodeId) -> Option<Duration> {
        self.adj.get(&x).and_then(|nbrs| nbrs.get(&y)).copied()
    }

    /// True when the link exists and is explicitly marked failed (endpoint
    /// failures do not count).
    pub fn link_failed(&self, x: NodeId, y: NodeId) -> bool {
        self.failed_links.contains(&LinkId::new(x, y))
    }

    /// Builds a fully-connected topology from per-node pairwise latencies —
    /// the common shape for a handful of geographically-distributed VMCs.
    pub fn full_mesh(latencies: &[(NodeId, NodeId, Duration)]) -> Self {
        let mut g = OverlayGraph::new();
        for (a, b, d) in latencies {
            g.add_link(*a, *b, *d);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn link_id_is_normalised() {
        assert_eq!(LinkId::new(n(3), n(1)), LinkId::new(n(1), n(3)));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let _ = LinkId::new(n(1), n(1));
    }

    #[test]
    fn add_link_creates_nodes_and_adjacency() {
        let mut g = OverlayGraph::new();
        g.add_link(n(0), n(1), ms(20));
        assert_eq!(g.node_count(), 2);
        assert!(g.link_usable(n(0), n(1)));
        assert!(g.link_usable(n(1), n(0)));
        assert_eq!(g.usable_neighbors(n(0)), vec![(n(1), ms(20))]);
    }

    #[test]
    fn node_failure_disables_its_links() {
        let mut g = OverlayGraph::new();
        g.add_link(n(0), n(1), ms(10));
        g.add_link(n(1), n(2), ms(10));
        g.fail_node(n(1));
        assert!(!g.is_alive(n(1)));
        assert!(!g.link_usable(n(0), n(1)));
        assert!(g.usable_neighbors(n(0)).is_empty());
        assert_eq!(g.alive_nodes(), vec![n(0), n(2)]);
        g.recover_node(n(1));
        assert!(g.link_usable(n(0), n(1)));
    }

    #[test]
    fn link_failure_and_recovery() {
        let mut g = OverlayGraph::new();
        g.add_link(n(0), n(1), ms(10));
        g.fail_link(n(1), n(0)); // order-insensitive
        assert!(!g.link_usable(n(0), n(1)));
        assert!(g.is_alive(n(0)) && g.is_alive(n(1)));
        g.recover_link(n(0), n(1));
        assert!(g.link_usable(n(0), n(1)));
    }

    #[test]
    fn double_fail_is_idempotent() {
        let mut g = OverlayGraph::new();
        g.add_link(n(0), n(1), ms(10));
        g.fail_node(n(0));
        g.fail_node(n(0));
        g.recover_node(n(0));
        assert!(g.is_alive(n(0)));
    }

    #[test]
    fn full_mesh_builder() {
        let g = OverlayGraph::full_mesh(&[
            (n(0), n(1), ms(25)),
            (n(0), n(2), ms(40)),
            (n(1), n(2), ms(15)),
        ]);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.usable_neighbors(n(2)).len(), 2);
    }

    #[test]
    fn nonexistent_node_queries_are_safe() {
        let g = OverlayGraph::new();
        assert!(!g.is_alive(n(9)));
        assert!(g.usable_neighbors(n(9)).is_empty());
        assert!(!g.link_usable(n(9), n(8)));
    }
}
