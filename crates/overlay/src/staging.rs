//! Shard-boundary message staging.
//!
//! Under sharded execution a cross-region control message cannot be
//! handed to the destination the instant it is sent: the destination may
//! live on another shard that is concurrently mid-era, and touching its
//! state would both race and make the outcome depend on thread timing.
//! Instead each shard appends its outbound messages to a private
//! [`ShardOutbox`] (recording the transport + chaos delay it already
//! decided), and at the era barrier the outboxes are drained with
//! [`drain_in_shard_order`]: shard-index order between shards, staging
//! order within a shard.
//!
//! For contiguous shard layouts this merged order is exactly the order an
//! unsharded sequential sweep over the items would have produced — the
//! property the byte-identity contract rests on, pinned by this module's
//! tests against an immediate-delivery simulator run.

use crate::graph::NodeId;
use acm_obs::TraceContext;
use acm_sim::time::{Duration, SimTime};

/// One staged cross-shard message: routing envelope plus the delivery
/// delay the sender-side transport/chaos decision already fixed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StagedMessage<P> {
    /// Sending overlay node.
    pub from: NodeId,
    /// Destination overlay node.
    pub to: NodeId,
    /// Instant the send happened.
    pub sent_at: SimTime,
    /// Route latency plus any chaos-injected extra delay.
    pub delay: Duration,
    /// Causal trace context piggybacked on the message, so receivers on
    /// other shards can parent their reactions to the sender's span.
    /// `None` when tracing is off — the common case.
    pub ctx: Option<TraceContext>,
    /// Message body.
    pub payload: P,
}

impl<P> StagedMessage<P> {
    /// Instant the message reaches its destination.
    pub fn deliver_at(&self) -> SimTime {
        self.sent_at + self.delay
    }
}

/// Per-shard staging buffer for outbound messages.
///
/// The buffer's allocation survives [`drain_in_shard_order`], so an era
/// loop reuses it instead of reallocating every barrier.
#[derive(Debug, Clone)]
pub struct ShardOutbox<P> {
    shard: usize,
    staged: Vec<StagedMessage<P>>,
}

impl<P> ShardOutbox<P> {
    /// Creates the outbox of shard `shard`.
    pub fn new(shard: usize) -> Self {
        ShardOutbox {
            shard,
            staged: Vec::new(),
        }
    }

    /// The owning shard's index.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Stages a message. Order of pushes is the order the unsharded path
    /// would have sent them in — it is preserved through the drain.
    pub fn push(&mut self, msg: StagedMessage<P>) {
        self.staged.push(msg);
    }

    /// Messages currently staged.
    pub fn len(&self) -> usize {
        self.staged.len()
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.staged.is_empty()
    }
}

/// The era-barrier exchange: drains every outbox in shard-index order,
/// preserving per-shard staging order, and returns the merged message
/// list. Outboxes keep their allocations for the next era. Panics if the
/// outboxes are not passed in ascending shard order — the merge order is
/// a correctness property, not a convention.
pub fn drain_in_shard_order<P>(outboxes: &mut [ShardOutbox<P>]) -> Vec<StagedMessage<P>> {
    assert!(
        outboxes.windows(2).all(|w| w[0].shard < w[1].shard),
        "outboxes must be drained in ascending shard order"
    );
    let total = outboxes.iter().map(|o| o.staged.len()).sum();
    let mut out = Vec::with_capacity(total);
    for ob in outboxes {
        out.append(&mut ob.staged);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::OverlayGraph;
    use crate::transport::{send, Transport};
    use acm_sim::sim::Simulator;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn mesh() -> Transport {
        Transport::new(OverlayGraph::full_mesh(&[
            (n(0), n(1), ms(30)),
            (n(0), n(2), ms(30)),
            (n(0), n(3), ms(30)),
            (n(1), n(2), ms(10)),
            (n(1), n(3), ms(20)),
            (n(2), n(3), ms(10)),
        ]))
    }

    /// The satellite contract: staging + index-ordered drain delivers in
    /// exactly the order the unsharded immediate-send path does — same
    /// instants, same tie-break among simultaneous deliveries.
    #[test]
    fn staged_drain_preserves_the_unsharded_delivery_order() {
        let leader = n(0);
        let senders = [n(1), n(2), n(3), n(1), n(2), n(3)];

        // Unsharded path: sequential sweep, immediate schedule.
        let mut sim = Simulator::new(Vec::<(u64, u32)>::new());
        let mut tr = mesh();
        for (k, &from) in senders.iter().enumerate() {
            let tag = from.0 * 100 + k as u32;
            assert!(send(&mut sim, &mut tr, from, leader, move |s| {
                s.world.push((s.now().as_micros(), tag));
            }));
        }
        sim.run_to_completion(100);
        let sequential = sim.world;

        // Sharded path: senders split over two shards (contiguous in the
        // sweep order), each staging into its outbox; barrier drains in
        // shard order and schedules the deliveries.
        let mut sim = Simulator::new(Vec::<(u64, u32)>::new());
        let mut tr = mesh();
        let mut outboxes = [ShardOutbox::new(0), ShardOutbox::new(1)];
        for (k, &from) in senders.iter().enumerate() {
            let shard = if k < 3 { 0 } else { 1 };
            let delay = tr.prepare_send(from, leader).expect("routable");
            outboxes[shard].push(StagedMessage {
                from,
                to: leader,
                sent_at: sim.now(),
                delay,
                ctx: None,
                payload: from.0 * 100 + k as u32,
            });
        }
        for msg in drain_in_shard_order(&mut outboxes) {
            let tag = msg.payload;
            sim.schedule_at(msg.deliver_at(), move |s| {
                s.world.push((s.now().as_micros(), tag));
            });
        }
        sim.run_to_completion(100);

        assert_eq!(sim.world, sequential, "staging must not reorder delivery");
        assert!(outboxes.iter().all(|o| o.is_empty()), "drain empties all");
    }

    #[test]
    fn drain_merges_in_shard_then_staging_order() {
        let stage = |ob: &mut ShardOutbox<u32>, payload: u32| {
            ob.push(StagedMessage {
                from: n(1),
                to: n(0),
                sent_at: SimTime::ZERO,
                delay: ms(5),
                ctx: None,
                payload,
            });
        };
        let mut obs = [
            ShardOutbox::new(0),
            ShardOutbox::new(1),
            ShardOutbox::new(2),
        ];
        stage(&mut obs[1], 3);
        stage(&mut obs[0], 1);
        stage(&mut obs[0], 2);
        stage(&mut obs[2], 4);
        let merged: Vec<u32> = drain_in_shard_order(&mut obs)
            .into_iter()
            .map(|m| m.payload)
            .collect();
        assert_eq!(merged, vec![1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "ascending shard order")]
    fn out_of_order_outboxes_are_rejected() {
        let mut obs: [ShardOutbox<u32>; 2] = [ShardOutbox::new(1), ShardOutbox::new(0)];
        let _ = drain_in_shard_order(&mut obs);
    }

    #[test]
    fn deliver_at_adds_the_delay() {
        let m = StagedMessage {
            from: n(0),
            to: n(1),
            sent_at: SimTime::from_secs(10),
            delay: ms(250),
            ctx: None,
            payload: (),
        };
        assert_eq!(m.deliver_at(), SimTime::from_secs(10) + ms(250));
    }

    #[test]
    fn trace_context_survives_staging_and_drain() {
        let ctx = TraceContext {
            trace: 0xdead_beef,
            span: 0x42,
        };
        let mut obs = [ShardOutbox::new(0), ShardOutbox::new(1)];
        obs[1].push(StagedMessage {
            from: n(1),
            to: n(0),
            sent_at: SimTime::ZERO,
            delay: ms(5),
            ctx: Some(ctx),
            payload: 7u32,
        });
        let merged = drain_in_shard_order(&mut obs);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].ctx, Some(ctx), "context rides the message");
    }
}
