//! Property-based tests for the simulation kernel.

use acm_sim::event::EventQueue;
use acm_sim::rng::SimRng;
use acm_sim::stats::{Histogram, OnlineStats, P2Quantile};
use acm_sim::time::{Duration, SimTime};
use proptest::prelude::*;

proptest! {
    #[test]
    fn online_stats_merge_equals_sequential(
        xs in proptest::collection::vec(-1e6f64..1e6, 2..200),
        split in 1usize..199,
    ) {
        let split = split.min(xs.len() - 1);
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..split] {
            a.push(x);
        }
        for &x in &xs[split..] {
            b.push(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!(
            (a.variance() - whole.variance()).abs()
                < 1e-6 * (1.0 + whole.variance().abs())
        );
    }

    #[test]
    fn p2_quantile_tracks_exact_quantile(
        seed in 0u64..500,
        q in 0.05f64..0.95,
    ) {
        let mut rng = SimRng::new(seed);
        let mut est = P2Quantile::new(q);
        let mut xs = Vec::with_capacity(5_000);
        for _ in 0..5_000 {
            let x = rng.uniform(0.0, 1.0);
            est.push(x);
            xs.push(x);
        }
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let exact = xs[((xs.len() as f64 - 1.0) * q) as usize];
        prop_assert!(
            (est.estimate() - exact).abs() < 0.05,
            "q={q}: est {} vs exact {exact}",
            est.estimate()
        );
    }

    #[test]
    fn histogram_conserves_counts(
        xs in proptest::collection::vec(-10.0f64..20.0, 0..500),
    ) {
        let mut h = Histogram::new(0.0, 10.0, 7);
        for &x in &xs {
            h.push(x);
        }
        let binned: u64 = h.bins().iter().sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), xs.len() as u64);
        prop_assert_eq!(h.count(), xs.len() as u64);
    }

    #[test]
    fn event_queue_cancellation_preserves_survivors(
        times in proptest::collection::vec(0u64..10_000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule(SimTime::from_micros(t), i))
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                prop_assert!(q.cancel(*id));
            } else {
                expected.push(i);
            }
        }
        prop_assert_eq!(q.len(), expected.len());
        let mut delivered: Vec<usize> = Vec::new();
        while let Some((_, payload)) = q.pop() {
            delivered.push(payload);
        }
        delivered.sort_unstable();
        prop_assert_eq!(delivered, expected);
    }

    #[test]
    fn uniform_draws_respect_bounds(
        seed in 0u64..1_000,
        lo in -100.0f64..100.0,
        width in 0.0f64..100.0,
    ) {
        let mut rng = SimRng::new(seed);
        let hi = lo + width;
        for _ in 0..100 {
            let x = rng.uniform(lo, hi);
            prop_assert!(x >= lo && x <= hi, "{x} outside [{lo},{hi}]");
        }
    }

    #[test]
    fn exponential_is_positive_and_finite(
        seed in 0u64..1_000,
        mean in 1e-3f64..1e3,
    ) {
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            let x = rng.exponential(mean);
            prop_assert!(x >= 0.0 && x.is_finite());
        }
    }

    #[test]
    fn duration_mul_is_monotone(
        micros in 0u64..1u64 << 40,
        f1 in 0.0f64..10.0,
        extra in 0.0f64..10.0,
    ) {
        let d = Duration::from_micros(micros);
        prop_assert!(d.mul_f64(f1) <= d.mul_f64(f1 + extra) + Duration::from_micros(1));
    }

    #[test]
    fn weighted_index_never_picks_zero_weight(
        seed in 0u64..1_000,
        idx in 0usize..4,
    ) {
        let mut rng = SimRng::new(seed);
        let mut weights = [1.0, 1.0, 1.0, 1.0];
        weights[idx] = 0.0;
        for _ in 0..200 {
            prop_assert_ne!(rng.weighted_index(&weights), idx);
        }
    }
}

// ---------------------------------------------------------------------------
// Differential properties: the arena event queue vs two independent models.
// ---------------------------------------------------------------------------

/// One step of a random event-queue workload.
#[derive(Debug, Clone, Copy)]
enum QueueOp {
    /// Schedule at the given microsecond timestamp.
    Schedule(u64),
    /// Cancel the k-th oldest still-held handle (no-op when none are held).
    Cancel(usize),
    /// Pop the earliest live event.
    Pop,
    /// Drop every pending event.
    Clear,
}

fn op_strategy() -> impl Strategy<Value = QueueOp> {
    // Weights: scheduling dominates, clears are rare — the mix the
    // simulator actually produces.
    (0u32..100, 0u64..50_000, 0usize..64).prop_map(|(sel, at, k)| match sel {
        0..=49 => QueueOp::Schedule(at),
        50..=69 => QueueOp::Cancel(k),
        70..=97 => QueueOp::Pop,
        _ => QueueOp::Clear,
    })
}

/// A naive but obviously-correct pending-event model: a Vec of
/// `(time, seq, payload)` scanned linearly for the minimum.
#[derive(Default)]
struct NaiveQueue {
    entries: Vec<(SimTime, u64, u64)>,
    next_seq: u64,
}

impl NaiveQueue {
    fn schedule(&mut self, at: SimTime, payload: u64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push((at, seq, payload));
        seq
    }

    fn cancel(&mut self, seq: u64) -> bool {
        match self.entries.iter().position(|e| e.1 == seq) {
            Some(i) => {
                self.entries.remove(i);
                true
            }
            None => false,
        }
    }

    fn pop(&mut self) -> Option<(SimTime, u64)> {
        let min = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| (e.0, e.1))
            .map(|(i, _)| i)?;
        let (at, _, payload) = self.entries.remove(min);
        Some((at, payload))
    }
}

proptest! {
    #[test]
    fn arena_queue_matches_naive_model(
        ops in proptest::collection::vec(op_strategy(), 1..400),
    ) {
        let mut arena = EventQueue::new();
        let mut naive = NaiveQueue::default();
        // Handles held for future cancellation, oldest first.
        let mut handles: Vec<(acm_sim::EventId, u64)> = Vec::new();
        let mut payload = 0u64;
        for op in ops {
            match op {
                QueueOp::Schedule(at) => {
                    let at = SimTime::from_micros(at);
                    let id = arena.schedule(at, payload);
                    let seq = naive.schedule(at, payload);
                    handles.push((id, seq));
                    payload += 1;
                }
                QueueOp::Cancel(k) => {
                    if !handles.is_empty() {
                        let (id, seq) = handles.remove(k % handles.len());
                        let a = arena.cancel(id);
                        let b = naive.cancel(seq);
                        prop_assert_eq!(a, b, "cancel outcome diverged");
                    }
                }
                QueueOp::Pop => {
                    let a = arena.pop();
                    let b = naive.pop();
                    prop_assert_eq!(a, b, "pop diverged");
                    if let Some((_, gone)) = a {
                        handles.retain(|(_, s)| *s != gone);
                    }
                }
                QueueOp::Clear => {
                    arena.clear();
                    naive.entries.clear();
                    handles.clear();
                }
            }
            prop_assert_eq!(arena.len(), naive.entries.len());
            prop_assert_eq!(arena.peek_time(), naive.entries.iter().map(|e| (e.0, e.1)).min().map(|(at, _)| at));
        }
        // Drain both: every remaining event must match, in order.
        loop {
            let (a, b) = (arena.pop(), naive.pop());
            prop_assert_eq!(a, b, "drain diverged");
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn arena_queue_matches_seed_implementation(
        ops in proptest::collection::vec(op_strategy(), 1..400),
    ) {
        let mut arena = EventQueue::new();
        let mut seed = acm_sim::legacy::EventQueue::new();
        let mut handles: Vec<(acm_sim::EventId, acm_sim::legacy::EventId)> = Vec::new();
        let mut payload = 0u64;
        for op in ops {
            match op {
                QueueOp::Schedule(at) => {
                    let at = SimTime::from_micros(at);
                    handles.push((arena.schedule(at, payload), seed.schedule(at, payload)));
                    payload += 1;
                }
                QueueOp::Cancel(k) => {
                    if !handles.is_empty() {
                        let (a, b) = handles.remove(k % handles.len());
                        prop_assert_eq!(arena.cancel(a), seed.cancel(b));
                    }
                }
                QueueOp::Pop => {
                    let (a, b) = (arena.pop(), seed.pop());
                    prop_assert_eq!(a, b, "pop diverged from seed queue");
                }
                QueueOp::Clear => {
                    arena.clear();
                    seed.clear();
                    handles.clear();
                }
            }
            prop_assert_eq!(arena.len(), seed.len());
            prop_assert_eq!(arena.peek_time(), seed.peek_time());
        }
    }
}
