//! Time-series recording for the figure harness.
//!
//! The paper's figures are time series (RMTTF, workload fraction `f_i`, mean
//! response time per control-loop era). [`TimeSeries`] stores `(t, value)`
//! points, supports windowed summaries used by the convergence detectors in
//! the integration tests, and renders the CSV emitted by the `fig3`/`fig4`
//! binaries.

use crate::stats::OnlineStats;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One observation of a named signal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Instant of the observation.
    pub t: SimTime,
    /// Observed value.
    pub value: f64,
}

/// An append-only series of timestamped observations.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    points: Vec<SeriesPoint>,
}

impl TimeSeries {
    /// Creates an empty series with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends an observation. Timestamps must be non-decreasing.
    pub fn push(&mut self, t: SimTime, value: f64) {
        if let Some(last) = self.points.last() {
            assert!(t >= last.t, "time series must be appended in order");
        }
        self.points.push(SeriesPoint { t, value });
    }

    /// All recorded points.
    pub fn points(&self) -> &[SeriesPoint] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The most recent value, if any.
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|p| p.value)
    }

    /// Values only, in time order.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.points.iter().map(|p| p.value)
    }

    /// Summary statistics over the final `n` points (or all, if fewer).
    pub fn tail_stats(&self, n: usize) -> OnlineStats {
        let start = self.points.len().saturating_sub(n);
        let mut s = OnlineStats::new();
        for p in &self.points[start..] {
            s.push(p.value);
        }
        s
    }

    /// Mean over points with `t >= from`.
    pub fn mean_since(&self, from: SimTime) -> f64 {
        let mut s = OnlineStats::new();
        for p in self.points.iter().filter(|p| p.t >= from) {
            s.push(p.value);
        }
        s.mean()
    }

    /// Coefficient of variation of the final `n` points — the stability
    /// metric used to compare policy oscillation (paper claims Policy 2's
    /// `f_i` oscillates least).
    pub fn tail_cv(&self, n: usize) -> f64 {
        self.tail_stats(n).cv()
    }

    /// Largest absolute step between consecutive points in the final `n`
    /// points — captures the "many redirections of the request flow" the
    /// paper attributes to Policy 1.
    pub fn tail_max_step(&self, n: usize) -> f64 {
        let start = self.points.len().saturating_sub(n);
        self.points[start..]
            .windows(2)
            .map(|w| (w[1].value - w[0].value).abs())
            .fold(0.0, f64::max)
    }
}

/// A bundle of aligned series sharing time stamps (one CSV table).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SeriesTable {
    series: Vec<TimeSeries>,
}

impl SeriesTable {
    /// Creates a table with the given column names.
    pub fn new<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        SeriesTable {
            series: names.into_iter().map(TimeSeries::new).collect(),
        }
    }

    /// Appends one row: a timestamp plus one value per column.
    ///
    /// Panics if `values.len()` differs from the number of columns.
    pub fn push_row(&mut self, t: SimTime, values: &[f64]) {
        assert_eq!(
            values.len(),
            self.series.len(),
            "row width must match column count"
        );
        for (s, v) in self.series.iter_mut().zip(values) {
            s.push(t, *v);
        }
    }

    /// Column accessor by name.
    pub fn column(&self, name: &str) -> Option<&TimeSeries> {
        self.series.iter().find(|s| s.name() == name)
    }

    /// All columns.
    pub fn columns(&self) -> &[TimeSeries] {
        &self.series
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.series.first().map_or(0, TimeSeries::len)
    }

    /// Renders the table as CSV with a `time_s` first column.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("time_s");
        for s in &self.series {
            out.push(',');
            out.push_str(s.name());
        }
        out.push('\n');
        for i in 0..self.rows() {
            let t = self.series[0].points()[i].t;
            let _ = write!(out, "{:.3}", t.as_secs_f64());
            for s in &self.series {
                let _ = write!(out, ",{:.6}", s.points()[i].value);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn push_and_read_back() {
        let mut ts = TimeSeries::new("rmttf");
        ts.push(t(1), 100.0);
        ts.push(t(2), 90.0);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.last(), Some(90.0));
        assert_eq!(ts.name(), "rmttf");
        assert_eq!(ts.values().collect::<Vec<_>>(), vec![100.0, 90.0]);
    }

    #[test]
    #[should_panic(expected = "appended in order")]
    fn out_of_order_push_panics() {
        let mut ts = TimeSeries::new("x");
        ts.push(t(5), 1.0);
        ts.push(t(4), 2.0);
    }

    #[test]
    fn equal_timestamps_are_allowed() {
        let mut ts = TimeSeries::new("x");
        ts.push(t(5), 1.0);
        ts.push(t(5), 2.0);
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn tail_stats_window() {
        let mut ts = TimeSeries::new("x");
        for (i, v) in [100.0, 100.0, 10.0, 12.0, 11.0].iter().enumerate() {
            ts.push(t(i as u64), *v);
        }
        let s = ts.tail_stats(3);
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 11.0).abs() < 1e-12);
        // Window larger than the series uses everything.
        assert_eq!(ts.tail_stats(99).count(), 5);
    }

    #[test]
    fn mean_since_filters_by_time() {
        let mut ts = TimeSeries::new("x");
        ts.push(t(0), 100.0);
        ts.push(t(10), 1.0);
        ts.push(t(20), 3.0);
        assert!((ts.mean_since(t(10)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn tail_max_step_detects_oscillation() {
        let mut smooth = TimeSeries::new("smooth");
        let mut jumpy = TimeSeries::new("jumpy");
        for i in 0..20u64 {
            smooth.push(t(i), 0.5 + 0.001 * i as f64);
            jumpy.push(t(i), if i % 2 == 0 { 0.2 } else { 0.8 });
        }
        assert!(jumpy.tail_max_step(10) > 10.0 * smooth.tail_max_step(10));
    }

    #[test]
    fn table_round_trip_and_csv() {
        let mut table = SeriesTable::new(["a", "b"]);
        table.push_row(t(1), &[1.0, 2.0]);
        table.push_row(t(2), &[3.0, 4.0]);
        assert_eq!(table.rows(), 2);
        assert_eq!(table.column("b").unwrap().last(), Some(4.0));
        assert!(table.column("missing").is_none());
        let csv = table.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("time_s,a,b"));
        assert_eq!(lines.next(), Some("1.000,1.000000,2.000000"));
        assert_eq!(lines.next(), Some("2.000,3.000000,4.000000"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut table = SeriesTable::new(["a", "b"]);
        table.push_row(t(1), &[1.0]);
    }
}
