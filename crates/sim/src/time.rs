//! Simulated time.
//!
//! Time is measured in whole microseconds held in a `u64`. Integer ticks make
//! event ordering exact and reproducible: two events scheduled at the same
//! instant compare equal and fall back to the scheduling sequence number,
//! which floating-point timestamps cannot guarantee across platforms.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// Number of microsecond ticks per second.
pub const TICKS_PER_SECOND: u64 = 1_000_000;

/// A span of simulated time (non-negative, microsecond resolution).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(u64);

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from raw microsecond ticks.
    pub const fn from_micros(micros: u64) -> Self {
        Duration(micros)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Duration(millis * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Duration(secs * TICKS_PER_SECOND)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond. Negative or non-finite inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            return Duration::ZERO;
        }
        if secs.is_infinite() {
            return Duration(u64::MAX);
        }
        // Saturate rather than wrap on absurdly large spans.
        let ticks = (secs * TICKS_PER_SECOND as f64).round();
        if ticks >= u64::MAX as f64 {
            Duration(u64::MAX)
        } else {
            Duration(ticks as u64)
        }
    }

    /// Raw microsecond ticks.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SECOND as f64
    }

    /// This duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the duration by a non-negative scalar, rounding to the
    /// nearest tick.
    pub fn mul_f64(self, factor: f64) -> Duration {
        Duration::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(
            self.0
                .checked_sub(rhs.0)
                .expect("duration subtraction underflow"),
        )
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// An absolute instant on the simulated clock.
///
/// The simulation epoch is `SimTime::ZERO`; instants only ever move forward.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw microsecond ticks since the epoch.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant from whole seconds since the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * TICKS_PER_SECOND)
    }

    /// Creates an instant from fractional seconds since the epoch.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(Duration::from_secs_f64(secs).as_micros())
    }

    /// Raw microsecond ticks since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SECOND as f64
    }

    /// Time elapsed since `earlier`. Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since called with a later instant"),
        )
    }

    /// Time elapsed since `earlier`, or zero if `earlier` is in the future.
    pub const fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.as_micros()))
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_roundtrips_through_seconds() {
        let d = Duration::from_secs_f64(1.5);
        assert_eq!(d.as_micros(), 1_500_000);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn duration_from_negative_seconds_clamps_to_zero() {
        assert_eq!(Duration::from_secs_f64(-3.0), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(f64::NAN), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(f64::NEG_INFINITY), Duration::ZERO);
    }

    #[test]
    fn duration_from_huge_seconds_saturates() {
        assert_eq!(Duration::from_secs_f64(f64::INFINITY).as_micros(), u64::MAX);
        assert_eq!(Duration::from_secs_f64(1e30).as_micros(), u64::MAX);
    }

    #[test]
    fn duration_arithmetic() {
        let a = Duration::from_millis(250);
        let b = Duration::from_millis(750);
        assert_eq!(a + b, Duration::from_secs(1));
        assert_eq!(b - a, Duration::from_millis(500));
        assert_eq!(a.saturating_sub(b), Duration::ZERO);
        assert_eq!(a.mul_f64(4.0), Duration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn duration_sub_underflow_panics() {
        let _ = Duration::from_millis(1) - Duration::from_millis(2);
    }

    #[test]
    fn simtime_advances_and_diffs() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + Duration::from_secs(10);
        assert_eq!(t1.since(t0), Duration::from_secs(10));
        assert_eq!(t1 - t0, Duration::from_secs(10));
        assert_eq!(t0.saturating_since(t1), Duration::ZERO);
    }

    #[test]
    fn simtime_ordering_is_total() {
        let a = SimTime::from_micros(5);
        let b = SimTime::from_micros(6);
        assert!(a < b);
        assert!(b <= SimTime::MAX);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(format!("{}", Duration::from_millis(1500)), "1.500000s");
        assert_eq!(format!("{}", SimTime::from_secs(2)), "t=2.000000s");
    }
}
