//! Online statistics used by telemetry and the figure harness.
//!
//! All accumulators are single-pass and O(1) per observation so they can be
//! updated on every simulated request without perturbing performance:
//!
//! * [`OnlineStats`] — Welford mean/variance with min/max.
//! * [`P2Quantile`] — the P² streaming quantile estimator (Jain & Chlamtac),
//!   used for response-time percentiles without storing samples.
//! * [`Histogram`] — fixed-width binning for distribution dumps.

use serde::{Deserialize, Serialize};

/// Welford single-pass mean/variance accumulator with min/max tracking.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation. Non-finite values are ignored (and debug-panic),
    /// so a single pathological sample cannot poison a whole run's telemetry.
    pub fn push(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "non-finite observation {x}");
        if !x.is_finite() {
            return;
        }
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// True when no observations have been added.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Coefficient of variation (std dev / |mean|); 0 for empty or zero-mean.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m.abs()
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// P² streaming quantile estimator for a single quantile `q`.
///
/// Keeps five markers; after five initial samples the estimate tracks the
/// target quantile with O(1) space. Accuracy is adequate for reporting
/// p50/p95/p99 response times in the figure harness.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights.
    heights: [f64; 5],
    /// Marker positions (1-based sample indices).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments.
    increments: [f64; 5],
    n: usize,
    initial: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for quantile `q` in `(0, 1)`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0,1)");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            n: 0,
            initial: Vec::with_capacity(5),
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.n += 1;
        if self.initial.len() < 5 {
            self.initial.push(x);
            if self.initial.len() == 5 {
                self.initial.sort_by(|a, b| a.partial_cmp(b).unwrap());
                self.heights.copy_from_slice(&self.initial);
            }
            return;
        }

        // Find cell k such that heights[k] <= x < heights[k+1].
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments) {
            *d += inc;
        }

        // Adjust interior markers with the piecewise-parabolic formula.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right = self.positions[i + 1] - self.positions[i];
            let left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let s = d.signum();
                let parabolic = self.heights[i]
                    + s / (self.positions[i + 1] - self.positions[i - 1])
                        * ((self.positions[i] - self.positions[i - 1] + s)
                            * (self.heights[i + 1] - self.heights[i])
                            / right
                            + (self.positions[i + 1] - self.positions[i] - s)
                                * (self.heights[i] - self.heights[i - 1])
                                / (-left));
                let new_height =
                    if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                        parabolic
                    } else {
                        // Linear fallback.
                        let j = if s > 0.0 { i + 1 } else { i - 1 };
                        self.heights[i]
                            + s * (self.heights[j] - self.heights[i])
                                / (self.positions[j] - self.positions[i])
                    };
                self.heights[i] = new_height;
                self.positions[i] += s;
            }
        }
    }

    /// Current estimate of the target quantile. With fewer than five samples
    /// falls back to the empirical quantile of what has been seen.
    pub fn estimate(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        if self.initial.len() < 5 {
            let mut xs = self.initial.clone();
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let idx = ((xs.len() as f64 - 1.0) * self.q).round() as usize;
            return xs[idx];
        }
        self.heights[2]
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.n
    }
}

/// Fixed-width histogram over `[lo, hi)` with saturating under/overflow bins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width cells spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total observations, including under/overflow.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// In-range bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// `(bin_center, count)` pairs for reporting.
    pub fn centers(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(move |(i, c)| (self.lo + w * (i as f64 + 0.5), *c))
    }

    /// Empirical quantile from the binned data (approximate; in-range only).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        let in_range: u64 = self.bins.iter().sum();
        if in_range == 0 {
            return self.lo;
        }
        let target = (q * in_range as f64).ceil().max(1.0) as u64;
        let mut acc = 0;
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, c) in self.bins.iter().enumerate() {
            acc += c;
            if acc >= target {
                return self.lo + w * (i as f64 + 0.5);
            }
        }
        self.hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn online_stats_basic_moments() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_empty_is_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.is_empty());
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn online_stats_single_observation() {
        let mut s = OnlineStats::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let mut rng = SimRng::new(77);
        let xs: Vec<f64> = (0..1000).map(|_| rng.normal(10.0, 3.0)).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..400] {
            a.push(x);
        }
        for &x in &xs[400..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn p2_tracks_median_of_uniform() {
        let mut rng = SimRng::new(21);
        let mut est = P2Quantile::new(0.5);
        for _ in 0..50_000 {
            est.push(rng.uniform(0.0, 100.0));
        }
        let e = est.estimate();
        assert!((e - 50.0).abs() < 2.0, "median estimate {e}");
    }

    #[test]
    fn p2_tracks_p95_of_exponential() {
        let mut rng = SimRng::new(22);
        let mut est = P2Quantile::new(0.95);
        for _ in 0..100_000 {
            est.push(rng.exponential(1.0));
        }
        // True p95 of Exp(1) is ln(20) = 2.9957.
        let e = est.estimate();
        assert!((e - 2.9957).abs() < 0.25, "p95 estimate {e}");
    }

    #[test]
    fn p2_small_samples_fall_back_to_empirical() {
        let mut est = P2Quantile::new(0.5);
        est.push(10.0);
        est.push(30.0);
        est.push(20.0);
        let e = est.estimate();
        assert_eq!(e, 20.0);
        assert_eq!(est.count(), 3);
    }

    #[test]
    fn histogram_bins_and_quantiles() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..100 {
            h.push(i as f64 / 10.0); // 0.0 .. 9.9 uniformly
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
        assert!(h.bins().iter().all(|&c| c == 10));
        let median = h.quantile(0.5);
        assert!((median - 4.5).abs() <= 1.0, "median {median}");
    }

    #[test]
    fn histogram_under_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(-5.0);
        h.push(2.0);
        h.push(0.5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn histogram_centers_are_midpoints() {
        let h = Histogram::new(0.0, 4.0, 4);
        let centers: Vec<f64> = h.centers().map(|(c, _)| c).collect();
        assert_eq!(centers, vec![0.5, 1.5, 2.5, 3.5]);
    }
}
