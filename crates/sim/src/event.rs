//! The pending-event set.
//!
//! A min-heap keyed by `(SimTime, sequence)`. The monotonic sequence number
//! guarantees that events scheduled for the same instant fire in the order
//! they were scheduled — a requirement for reproducibility that a bare
//! `BinaryHeap<SimTime>` cannot provide (heap order among equal keys is
//! unspecified). Events may be cancelled in O(1) by id; cancelled entries are
//! skipped lazily on pop.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Opaque handle identifying a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

struct Entry<T> {
    at: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we need earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A cancellable, deterministic future-event list.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    /// Sequence numbers still awaiting delivery (not fired, not cancelled).
    pending: HashSet<u64>,
    /// Cancelled-but-still-in-heap entries, skipped lazily on pop.
    cancelled: HashSet<u64>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `at`. Returns a handle for cancellation.
    pub fn schedule(&mut self, at: SimTime, payload: T) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
        self.pending.insert(seq);
        EventId(seq)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event was
    /// still pending (it will not be delivered), `false` if it already fired
    /// or was already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.pending.remove(&id.0) {
            self.cancelled.insert(id.0);
            true
        } else {
            false
        }
    }

    /// Removes and returns the earliest live event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.pending.remove(&entry.seq);
            return Some((entry.at, entry.payload));
        }
        None
    }

    /// Timestamp of the earliest live event, if any, without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop cancelled heads so the peek is accurate.
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
            } else {
                return Some(entry.at);
            }
        }
        None
    }

    /// Number of live (not cancelled) pending events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.pending.clear();
        self.cancelled.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3), "c");
        q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        assert_eq!(q.pop(), Some((t(1), "a")));
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert_eq!(q.pop(), Some((t(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(99)));
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), ());
        q.schedule(t(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(4), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(4)));
        assert_eq!(q.pop(), Some((t(4), "b")));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_schedule_pop_is_stable() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 1);
        q.schedule(t(10) + Duration::from_micros(1), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        q.schedule(t(10), 3); // earlier than remaining event
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 2);
    }
}
