//! The pending-event set.
//!
//! An implicit **4-ary min-heap** keyed by `(SimTime, sequence)` over a
//! generation-tagged **slot arena**. The monotonic sequence number
//! guarantees that events scheduled for the same instant fire in the order
//! they were scheduled — a requirement for reproducibility that a bare heap
//! ordered by time alone cannot provide (order among equal keys is
//! unspecified). Cancellation is O(1): the event's slot is invalidated by
//! bumping its generation, and the orphaned heap entry is skipped lazily on
//! pop. No hashing happens anywhere on the schedule/cancel/pop path — the
//! seed implementation's two per-operation `HashSet`s are replaced by direct
//! slot indexing (the seed code survives as [`crate::legacy::EventQueue`]
//! for differential tests and benchmark baselines).
//!
//! The 4-ary layout halves the tree depth of a binary heap, and the heap is
//! stored struct-of-arrays with `(time, seq)` packed into one 16-byte
//! integer key: the four children a sift step compares share a single cache
//! line, which benches measurably faster for the push/pop mix the simulator
//! produces.

use crate::time::SimTime;

/// Opaque handle identifying a scheduled event, usable for cancellation.
///
/// Handles are generation-tagged: once the event fires or is cancelled, the
/// handle goes stale and any further [`EventQueue::cancel`] with it returns
/// `false`, even if the underlying slot has been reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId {
    slot: u32,
    gen: u32,
}

/// Sentinel terminating the free list.
const NIL: u32 = u32::MAX;

/// One arena slot. `payload` is `Some` exactly while the event is live
/// (scheduled, not yet fired or cancelled); `next_free` threads the free
/// list through vacant slots.
struct Slot<T> {
    gen: u32,
    payload: Option<T>,
    next_free: u32,
}

/// Slot reference carried alongside each heap key: the arena slot plus its
/// generation at schedule time, so tombstones of cancelled events are
/// recognisable.
#[derive(Clone, Copy)]
struct HeapMeta {
    slot: u32,
    gen: u32,
}

/// Packs `(time, seq)` into one integer: microsecond ticks in the high 64
/// bits, the sequence number in the low 64. A single wide compare gives the
/// exact `(time, seq)` lexicographic order.
#[inline]
fn pack_key(at: SimTime, seq: u64) -> u128 {
    ((at.as_micros() as u128) << 64) | seq as u128
}

/// Recovers the timestamp from a packed key.
#[inline]
fn key_time(key: u128) -> SimTime {
    SimTime::from_micros((key >> 64) as u64)
}

/// A cancellable, deterministic future-event list.
///
/// The heap is stored struct-of-arrays: `keys` carries only the 16-byte
/// packed ordering keys, so the four children a sift step compares fit in a
/// single cache line; the slot references travel in the parallel `meta`
/// array and are touched only when an entry actually moves.
pub struct EventQueue<T> {
    /// Implicit 4-ary min-heap of packed `(time, seq)` keys.
    keys: Vec<u128>,
    /// Slot reference of each heap entry, index-aligned with `keys`.
    meta: Vec<HeapMeta>,
    /// Slot arena holding payloads, indexed by `HeapMeta::slot`.
    slots: Vec<Slot<T>>,
    /// Head of the vacant-slot free list (`NIL` when every slot is in use).
    free_head: u32,
    next_seq: u64,
    /// Count of live (scheduled, not cancelled) events.
    live: usize,
    /// Cumulative count of schedules that reused a vacant arena slot
    /// instead of growing the arena — each one is an allocation the
    /// clear-and-reuse discipline saved.
    reused_slots: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            keys: Vec::new(),
            meta: Vec::new(),
            slots: Vec::new(),
            free_head: NIL,
            next_seq: 0,
            live: 0,
            reused_slots: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` events before any
    /// reallocation.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            keys: Vec::with_capacity(capacity),
            meta: Vec::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free_head: NIL,
            next_seq: 0,
            live: 0,
            reused_slots: 0,
        }
    }

    /// Schedules `payload` to fire at `at`. Returns a handle for cancellation.
    pub fn schedule(&mut self, at: SimTime, payload: T) -> EventId {
        let slot = match self.free_head {
            NIL => {
                let idx = self.slots.len() as u32;
                assert!(idx != NIL, "event queue slot arena exhausted");
                self.slots.push(Slot {
                    gen: 0,
                    payload: Some(payload),
                    next_free: NIL,
                });
                idx
            }
            idx => {
                let s = &mut self.slots[idx as usize];
                self.free_head = s.next_free;
                s.next_free = NIL;
                s.payload = Some(payload);
                self.reused_slots += 1;
                idx
            }
        };
        let gen = self.slots[slot as usize].gen;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.keys.push(pack_key(at, seq));
        self.meta.push(HeapMeta { slot, gen });
        self.sift_up(self.keys.len() - 1);
        self.live += 1;
        EventId { slot, gen }
    }

    /// Cancels a previously scheduled event in O(1). Returns `true` if the
    /// event was still pending (it will not be delivered), `false` if it
    /// already fired or was already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        match self.slots.get_mut(id.slot as usize) {
            Some(s) if s.gen == id.gen && s.payload.is_some() => {
                s.payload = None;
                s.gen = s.gen.wrapping_add(1); // stale-proof the handle
                s.next_free = self.free_head;
                self.free_head = id.slot;
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// Removes and returns the earliest live event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        while let Some((key, meta)) = self.pop_min() {
            let s = &mut self.slots[meta.slot as usize];
            if s.gen != meta.gen {
                continue; // tombstone of a cancelled event
            }
            let payload = s.payload.take().expect("live slot holds a payload");
            s.gen = s.gen.wrapping_add(1);
            s.next_free = self.free_head;
            self.free_head = meta.slot;
            self.live -= 1;
            return Some((key_time(key), payload));
        }
        None
    }

    /// Timestamp of the earliest live event, if any, without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(&key) = self.keys.first() {
            let meta = self.meta[0];
            if self.slots[meta.slot as usize].gen == meta.gen {
                return Some(key_time(key));
            }
            self.pop_min(); // discard the cancelled head
        }
        None
    }

    /// Number of live (not cancelled) pending events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Cumulative number of schedules that reused a vacant arena slot
    /// rather than growing the arena. [`clear`] keeps the arena (and this
    /// counter), so across-era reuse shows up here as saved allocations —
    /// the simulator surfaces the tally as `acm.sim.queue.arena_reuse`.
    ///
    /// [`clear`]: EventQueue::clear
    pub fn reused_slots(&self) -> u64 {
        self.reused_slots
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        self.keys.clear();
        self.meta.clear();
        self.free_head = NIL;
        for (idx, s) in self.slots.iter_mut().enumerate() {
            if s.payload.take().is_some() {
                s.gen = s.gen.wrapping_add(1);
            }
            s.next_free = self.free_head;
            self.free_head = idx as u32;
        }
        self.live = 0;
    }

    /// Removes and returns the root heap entry (live or tombstone).
    #[inline]
    fn pop_min(&mut self) -> Option<(u128, HeapMeta)> {
        if self.keys.is_empty() {
            return None;
        }
        let min_key = self.keys.swap_remove(0);
        let min_meta = self.meta.swap_remove(0);
        if !self.keys.is_empty() {
            self.sift_down(0);
        }
        Some((min_key, min_meta))
    }

    /// Restores the heap property upward from `idx`.
    #[inline]
    fn sift_up(&mut self, mut idx: usize) {
        let key = self.keys[idx];
        let meta = self.meta[idx];
        while idx > 0 {
            let parent = (idx - 1) / 4;
            let pk = self.keys[parent];
            if pk <= key {
                break;
            }
            self.keys[idx] = pk;
            self.meta[idx] = self.meta[parent];
            idx = parent;
        }
        self.keys[idx] = key;
        self.meta[idx] = meta;
    }

    /// Restores the heap property downward from `idx`.
    #[inline]
    fn sift_down(&mut self, mut idx: usize) {
        let len = self.keys.len();
        let key = self.keys[idx];
        let meta = self.meta[idx];
        loop {
            let first_child = idx * 4 + 1;
            if first_child >= len {
                break;
            }
            let last_child = (first_child + 4).min(len);
            let mut best = first_child;
            let mut best_key = self.keys[first_child];
            for c in (first_child + 1)..last_child {
                let k = self.keys[c];
                if k < best_key {
                    best = c;
                    best_key = k;
                }
            }
            if key <= best_key {
                break;
            }
            self.keys[idx] = best_key;
            self.meta[idx] = self.meta[best];
            idx = best;
        }
        self.keys[idx] = key;
        self.meta[idx] = meta;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3), "c");
        q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        assert_eq!(q.pop(), Some((t(1), "a")));
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert_eq!(q.pop(), Some((t(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId { slot: 99, gen: 0 }));
    }

    #[test]
    fn stale_handle_does_not_cancel_slot_reuse() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        assert_eq!(q.pop(), Some((t(1), "a")));
        // The slot is vacant; scheduling reuses it with a bumped generation.
        let b = q.schedule(t(2), "b");
        assert!(!q.cancel(a), "handle from the fired event must be stale");
        assert!(q.cancel(b));
        assert!(q.is_empty());
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), ());
        q.schedule(t(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(4), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(4)));
        assert_eq!(q.pop(), Some((t(4), "b")));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert!(!q.cancel(a), "handles die with clear()");
        // The queue is fully usable afterwards and reuses its slots.
        q.schedule(t(3), 3);
        assert_eq!(q.pop(), Some((t(3), 3)));
    }

    #[test]
    fn interleaved_schedule_pop_is_stable() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 1);
        q.schedule(t(10) + Duration::from_micros(1), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        q.schedule(t(10), 3); // earlier than remaining event
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    fn slots_are_recycled() {
        let mut q = EventQueue::new();
        for round in 0..50u64 {
            let ids: Vec<EventId> = (0..8).map(|i| q.schedule(t(round + i), i)).collect();
            q.cancel(ids[3]);
            q.cancel(ids[5]);
            let mut popped = 0;
            while q.pop().is_some() {
                popped += 1;
            }
            assert_eq!(popped, 6);
        }
        // 8 concurrent events max → the arena never grows past 8 slots.
        assert!(q.slots.len() <= 8, "arena grew to {}", q.slots.len());
    }

    #[test]
    fn reused_slots_counts_arena_recycling_across_clear() {
        let mut q = EventQueue::new();
        for i in 0..4u64 {
            q.schedule(t(i), i);
        }
        assert_eq!(q.reused_slots(), 0, "first fills grow the arena");
        q.clear();
        for i in 0..4u64 {
            q.schedule(t(i), i);
        }
        assert_eq!(q.reused_slots(), 4, "post-clear schedules reuse slots");
        // Pop-then-schedule also recycles.
        let _ = q.pop();
        q.schedule(t(9), 9);
        assert_eq!(q.reused_slots(), 5);
    }

    #[test]
    fn heavy_cancel_interleaving_matches_fifo_semantics() {
        let mut q = EventQueue::new();
        let mut expected = Vec::new();
        let mut ids = Vec::new();
        for i in 0..200u64 {
            let at = t(i % 13);
            ids.push((q.schedule(at, i), at, i));
        }
        for (k, (id, at, v)) in ids.into_iter().enumerate() {
            if k % 3 == 0 {
                assert!(q.cancel(id));
            } else {
                expected.push((at, v));
            }
        }
        expected.sort_by_key(|&(at, v)| (at, v)); // seq order == schedule order
        let mut delivered = Vec::new();
        while let Some(e) = q.pop() {
            delivered.push(e);
        }
        assert_eq!(delivered, expected);
    }
}
