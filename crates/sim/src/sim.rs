//! The simulation driver.
//!
//! [`Simulator<W>`] owns a user-supplied *world* `W` (the mutable model
//! state) and a queue of boxed event handlers. Handlers receive `&mut
//! Simulator<W>` so they can both mutate the world and schedule follow-up
//! events; this is the classic event-oriented style (each handler is one
//! state transition at one instant).
//!
//! Execution is strictly deterministic: time never goes backwards, and
//! simultaneous events run in scheduling order (see [`crate::event`]).

use crate::event::{EventId, EventQueue};
use crate::time::{Duration, SimTime};
use acm_obs::{Counter, ObsHandle};

/// Handlers are `Send` so a whole `Simulator` (with its pending-event
/// queue) can migrate between worker threads of the sharded era loop —
/// see [`crate::shard`].
type Handler<W> = Box<dyn FnOnce(&mut Simulator<W>) + Send>;

/// Outcome of a bounded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained before the limit was reached.
    Quiescent,
    /// The time deadline was reached with events still pending.
    DeadlineReached,
    /// The step budget was exhausted with events still pending.
    StepBudgetExhausted,
}

/// A discrete-event simulator owning the model state `W`.
///
/// ```
/// use acm_sim::{Duration, SimTime, Simulator};
/// let mut sim = Simulator::new(0u32);
/// sim.schedule_at(SimTime::from_secs(5), |s| {
///     s.world += 1;
///     s.schedule_in(Duration::from_secs(2), |s| s.world += 10);
/// });
/// sim.run_to_completion(100);
/// assert_eq!(sim.world, 11);
/// assert_eq!(sim.now(), SimTime::from_secs(7));
/// ```
pub struct Simulator<W> {
    now: SimTime,
    queue: EventQueue<Handler<W>>,
    /// The model state. Public so event handlers can reach it directly.
    pub world: W,
    executed: u64,
    /// Push/pop tallies batched as plain integers on the hot path and
    /// published to the counters below only at run boundaries
    /// ([`Simulator::flush_obs`]) — enabled observability costs the event
    /// chain a register increment, not an atomic RMW per event.
    pending_push: u64,
    pending_pop: u64,
    /// Queue instrumentation; inert until [`Simulator::set_obs`] resolves
    /// live handles. Values lag the hot path until the next flush.
    ctr_push: Counter,
    ctr_pop: Counter,
    /// Arena-reuse tally already published, so flushes emit deltas of the
    /// queue's cumulative [`EventQueue::reused_slots`] figure.
    reuse_flushed: u64,
    ctr_arena_reuse: Counter,
}

impl<W> Simulator<W> {
    /// Creates a simulator at the epoch with the given world.
    pub fn new(world: W) -> Self {
        Simulator {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            world,
            executed: 0,
            pending_push: 0,
            pending_pop: 0,
            ctr_push: Counter::default(),
            ctr_pop: Counter::default(),
            reuse_flushed: 0,
            ctr_arena_reuse: Counter::default(),
        }
    }

    /// Attaches observability: counts queue pushes (`acm.sim.queue.push`),
    /// pops (`acm.sim.queue.pop`) and arena-slot reuse
    /// (`acm.sim.queue.arena_reuse` — allocations the clear-and-reuse
    /// arena saved). Metrics never feed back into the model, so attaching
    /// this cannot perturb determinism. Tallies batched before the call
    /// are flushed to the previous handles first.
    pub fn set_obs(&mut self, obs: &ObsHandle) {
        self.flush_obs();
        self.ctr_push = obs.counter("acm.sim.queue.push");
        self.ctr_pop = obs.counter("acm.sim.queue.pop");
        self.ctr_arena_reuse = obs.counter("acm.sim.queue.arena_reuse");
    }

    /// Publishes the batched push/pop tallies to the attached counters.
    /// Runs automatically when [`Simulator::step`], [`Simulator::run_until`]
    /// or [`Simulator::run_to_completion`] returns; call it manually only
    /// if counters are read while handlers are mid-flight.
    pub fn flush_obs(&mut self) {
        if self.pending_push > 0 {
            self.ctr_push.add(self.pending_push);
            self.pending_push = 0;
        }
        if self.pending_pop > 0 {
            self.ctr_pop.add(self.pending_pop);
            self.pending_pop = 0;
        }
        let reused = self.queue.reused_slots();
        if reused > self.reuse_flushed {
            self.ctr_arena_reuse.add(reused - self.reuse_flushed);
            self.reuse_flushed = reused;
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Live events currently pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `handler` to run at the absolute instant `at`.
    ///
    /// Panics if `at` is in the past — the model must never rewind time.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        handler: impl FnOnce(&mut Simulator<W>) + Send + 'static,
    ) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at} < {})",
            self.now
        );
        self.pending_push += 1;
        self.queue.schedule(at, Box::new(handler))
    }

    /// Schedules `handler` to run after `delay`.
    pub fn schedule_in(
        &mut self,
        delay: Duration,
        handler: impl FnOnce(&mut Simulator<W>) + Send + 'static,
    ) -> EventId {
        let at = self.now + delay;
        self.pending_push += 1;
        self.queue.schedule(at, Box::new(handler))
    }

    /// Cancels a pending event. Returns `true` if it had not yet fired.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Executes the single earliest pending event. Returns `false` when the
    /// queue is empty.
    pub fn step(&mut self) -> bool {
        let advanced = self.step_inner();
        self.flush_obs();
        advanced
    }

    /// The un-flushed step used by the run loops.
    #[inline]
    fn step_inner(&mut self) -> bool {
        match self.queue.pop() {
            Some((at, handler)) => {
                debug_assert!(at >= self.now);
                self.now = at;
                self.executed += 1;
                self.pending_pop += 1;
                handler(self);
                true
            }
            None => false,
        }
    }

    /// Runs until the queue drains or simulated time would pass `deadline`.
    ///
    /// Events stamped exactly at `deadline` are executed; the first event
    /// strictly after it is left pending and the clock is advanced to
    /// `deadline` so a subsequent `run_until` resumes cleanly.
    pub fn run_until(&mut self, deadline: SimTime) -> RunOutcome {
        let outcome = loop {
            match self.queue.peek_time() {
                None => {
                    self.now = self.now.max(deadline);
                    break RunOutcome::Quiescent;
                }
                Some(at) if at > deadline => {
                    self.now = deadline;
                    break RunOutcome::DeadlineReached;
                }
                Some(_) => {
                    self.step_inner();
                }
            }
        };
        self.flush_obs();
        outcome
    }

    /// Runs until the queue drains, or at most `max_steps` events.
    pub fn run_to_completion(&mut self, max_steps: u64) -> RunOutcome {
        let mut outcome = RunOutcome::Quiescent;
        for _ in 0..max_steps {
            if !self.step_inner() {
                self.flush_obs();
                return outcome;
            }
        }
        if !self.queue.is_empty() {
            outcome = RunOutcome::StepBudgetExhausted;
        }
        self.flush_obs();
        outcome
    }
}

impl<W> Simulator<W> {
    /// Schedules a periodic event: `handler` runs every `period` starting at
    /// `first`, until it returns `false`.
    pub fn schedule_periodic(
        &mut self,
        first: SimTime,
        period: Duration,
        handler: impl FnMut(&mut Simulator<W>) -> bool + Send + 'static,
    ) {
        assert!(!period.is_zero(), "periodic events need a positive period");
        fn tick<W>(
            sim: &mut Simulator<W>,
            period: Duration,
            mut handler: impl FnMut(&mut Simulator<W>) -> bool + Send + 'static,
        ) {
            if handler(sim) {
                let next = sim.now() + period;
                sim.schedule_at(next, move |s| tick(s, period, handler));
            }
        }
        self.schedule_at(first, move |s| tick(s, period, handler));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct World {
        log: Vec<(u64, &'static str)>,
        counter: u32,
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn events_fire_in_time_order_and_advance_clock() {
        let mut sim = Simulator::new(World::default());
        sim.schedule_at(t(5), |s| s.world.log.push((s.now().as_micros(), "b")));
        sim.schedule_at(t(2), |s| s.world.log.push((s.now().as_micros(), "a")));
        assert_eq!(sim.run_to_completion(100), RunOutcome::Quiescent);
        assert_eq!(
            sim.world.log,
            vec![(t(2).as_micros(), "a"), (t(5).as_micros(), "b")]
        );
        assert_eq!(sim.now(), t(5));
        assert_eq!(sim.executed(), 2);
    }

    #[test]
    fn handlers_can_schedule_follow_ups() {
        let mut sim = Simulator::new(World::default());
        sim.schedule_at(t(1), |s| {
            s.world.counter += 1;
            s.schedule_in(Duration::from_secs(1), |s2| {
                s2.world.counter += 10;
            });
        });
        sim.run_to_completion(100);
        assert_eq!(sim.world.counter, 11);
        assert_eq!(sim.now(), t(2));
    }

    #[test]
    fn run_until_stops_at_deadline_and_resumes() {
        let mut sim = Simulator::new(World::default());
        for i in 1..=10 {
            sim.schedule_at(t(i), move |s| s.world.counter += 1);
        }
        assert_eq!(sim.run_until(t(4)), RunOutcome::DeadlineReached);
        assert_eq!(sim.world.counter, 4);
        assert_eq!(sim.now(), t(4));
        assert_eq!(sim.run_until(t(20)), RunOutcome::Quiescent);
        assert_eq!(sim.world.counter, 10);
        // Quiescent run advances the clock to the deadline.
        assert_eq!(sim.now(), t(20));
    }

    #[test]
    fn deadline_inclusive_of_events_at_deadline() {
        let mut sim = Simulator::new(World::default());
        sim.schedule_at(t(3), |s| s.world.counter += 1);
        sim.run_until(t(3));
        assert_eq!(sim.world.counter, 1);
    }

    #[test]
    fn cancelled_events_do_not_run() {
        let mut sim = Simulator::new(World::default());
        let id = sim.schedule_at(t(1), |s| s.world.counter += 1);
        sim.schedule_at(t(2), |s| s.world.counter += 100);
        assert!(sim.cancel(id));
        sim.run_to_completion(10);
        assert_eq!(sim.world.counter, 100);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut sim = Simulator::new(World::default());
        sim.schedule_at(t(5), |s| {
            s.schedule_at(t(1), |_| {});
        });
        sim.run_to_completion(10);
    }

    #[test]
    fn step_budget_reports_exhaustion() {
        let mut sim = Simulator::new(World::default());
        // Self-perpetuating event chain.
        fn again(s: &mut Simulator<World>) {
            s.world.counter += 1;
            s.schedule_in(Duration::from_secs(1), again);
        }
        sim.schedule_at(t(0), again);
        assert_eq!(sim.run_to_completion(50), RunOutcome::StepBudgetExhausted);
        assert_eq!(sim.world.counter, 50);
    }

    #[test]
    fn periodic_runs_until_told_to_stop() {
        let mut sim = Simulator::new(World::default());
        sim.schedule_periodic(t(1), Duration::from_secs(2), |s| {
            s.world.counter += 1;
            s.world.counter < 5
        });
        sim.run_to_completion(100);
        assert_eq!(sim.world.counter, 5);
        // Ticks at t = 1, 3, 5, 7, 9.
        assert_eq!(sim.now(), t(9));
    }

    #[test]
    fn queue_counters_track_pushes_and_pops() {
        let obs = acm_obs::Obs::new(acm_obs::ObsConfig::default());
        let mut sim = Simulator::new(World::default());
        sim.set_obs(&obs);
        for i in 1..=5 {
            sim.schedule_at(t(i), |s| s.world.counter += 1);
        }
        sim.run_to_completion(100);
        assert_eq!(obs.counter("acm.sim.queue.push").value(), 5);
        assert_eq!(obs.counter("acm.sim.queue.pop").value(), 5);
    }

    #[test]
    fn batched_counters_flush_at_run_boundaries() {
        let obs = acm_obs::Obs::new(acm_obs::ObsConfig::default());
        let mut sim = Simulator::new(World::default());
        sim.set_obs(&obs);
        sim.schedule_at(t(1), |s| s.world.counter += 1);
        // Batched on the hot path: not yet published…
        assert_eq!(obs.counter("acm.sim.queue.push").value(), 0);
        sim.flush_obs();
        // …until an explicit or boundary flush.
        assert_eq!(obs.counter("acm.sim.queue.push").value(), 1);
        assert!(sim.step());
        assert_eq!(obs.counter("acm.sim.queue.pop").value(), 1);
    }

    #[test]
    fn arena_reuse_counter_reports_saved_allocations() {
        let obs = acm_obs::Obs::new(acm_obs::ObsConfig::default());
        let mut sim = Simulator::new(World::default());
        sim.set_obs(&obs);
        // Era 1 grows the arena; eras 2..4 recycle it slot for slot.
        for era in 0..4u64 {
            for i in 0..8u64 {
                sim.schedule_at(t(era * 100 + i), |s| s.world.counter += 1);
            }
            sim.run_until(t(era * 100 + 50));
        }
        assert_eq!(obs.counter("acm.sim.queue.arena_reuse").value(), 24);
        assert_eq!(obs.counter("acm.sim.queue.push").value(), 32);
    }

    #[test]
    fn simultaneous_events_run_in_schedule_order() {
        let mut sim = Simulator::new(World::default());
        sim.schedule_at(t(1), |s| s.world.log.push((0, "first")));
        sim.schedule_at(t(1), |s| s.world.log.push((0, "second")));
        sim.schedule_at(t(1), |s| s.world.log.push((0, "third")));
        sim.run_to_completion(10);
        let names: Vec<_> = sim.world.log.iter().map(|(_, n)| *n).collect();
        assert_eq!(names, vec!["first", "second", "third"]);
    }
}
