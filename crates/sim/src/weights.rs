//! Weighted-selection primitives shared by every sampling call site.
//!
//! Two consumers need the same audited arithmetic: the intra-region
//! balancer normalises raw health/capacity weights into shares, and the
//! request router draws millions of region indices per second from the
//! planned flow fractions `f_i`. [`WeightTable`] packages both: a
//! normalised share vector plus a Walker/Vose **alias table** giving O(1)
//! weighted sampling with *exact* exclusion of zero-weight entries — an
//! index whose weight is zero can never be returned, no matter what the
//! RNG draws, because it is simply absent from the compacted slots. The
//! table is rebuilt in place ([`WeightTable::rebuild`]) so a router that
//! swaps plans era after era allocates nothing after warm-up.

use crate::rng::SimRng;
use serde::{Deserialize, Serialize};

/// A prebuilt weighted-sampling table over indices `0..len`.
///
/// ```
/// use acm_sim::rng::SimRng;
/// use acm_sim::weights::WeightTable;
/// let t = WeightTable::build(&[0.7, 0.0, 0.3]);
/// let mut rng = SimRng::new(1);
/// for _ in 0..1000 {
///     assert_ne!(t.sample(&mut rng), 1, "zero weight is never drawn");
/// }
/// assert!((t.shares()[0] - 0.7).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightTable {
    /// Normalised shares, zeros preserved (len = input len).
    shares: Vec<f64>,
    /// Region/index behind each compact slot (positive-weight only).
    slot_index: Vec<u32>,
    /// Acceptance probability of each slot's own index.
    prob: Vec<f64>,
    /// Index (not slot) to fall through to when the acceptance roll fails.
    alias: Vec<u32>,
}

impl WeightTable {
    /// Builds a table from non-negative weights (need not be normalised).
    /// Panics if any weight is negative or non-finite, or if all are zero.
    pub fn build(weights: &[f64]) -> Self {
        let mut t = WeightTable {
            shares: Vec::new(),
            slot_index: Vec::new(),
            prob: Vec::new(),
            alias: Vec::new(),
        };
        t.rebuild(weights);
        t
    }

    /// Rebuilds the table in place for a new weight vector, reusing every
    /// allocation (the per-plan-swap path of the request router). Same
    /// panics as [`WeightTable::build`].
    pub fn rebuild(&mut self, weights: &[f64]) {
        let total = checked_total(weights);
        assert!(total > 0.0, "at least one weight must be positive");
        self.shares.clear();
        self.shares.extend(weights.iter().map(|w| w / total));

        // Compact to positive-weight entries: zero-weight indices never
        // enter a slot, so sampling can never return them.
        self.slot_index.clear();
        self.slot_index.extend(
            (0..weights.len())
                .filter(|&i| weights[i] > 0.0)
                .map(|i| i as u32),
        );
        let m = self.slot_index.len();
        self.prob.clear();
        self.prob.resize(m, 0.0);
        self.alias.clear();
        self.alias.resize(m, 0);

        // Vose's alias construction over the compact slots. `scaled[k]` is
        // the slot's share times the slot count; slots below 1 are topped
        // up by slots above 1.
        let mut scaled: Vec<f64> = self
            .slot_index
            .iter()
            .map(|&i| self.shares[i as usize] * m as f64)
            .collect();
        let mut small: Vec<usize> = Vec::with_capacity(m);
        let mut large: Vec<usize> = Vec::with_capacity(m);
        for (k, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(k);
            } else {
                large.push(k);
            }
        }
        // Peek-then-pop: evaluating both pops in a tuple pattern would
        // silently discard one slot when the other stack runs dry.
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            large.pop();
            self.prob[s] = scaled[s];
            self.alias[s] = self.slot_index[l];
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Leftovers (floating-point slack) accept with certainty.
        for k in large.into_iter().chain(small) {
            self.prob[k] = 1.0;
            self.alias[k] = self.slot_index[k];
        }
    }

    /// Number of indices the table spans (including zero-weight ones).
    pub fn len(&self) -> usize {
        self.shares.len()
    }

    /// True when the table spans no indices.
    pub fn is_empty(&self) -> bool {
        self.shares.is_empty()
    }

    /// Number of positive-weight indices actually sampleable.
    pub fn support(&self) -> usize {
        self.slot_index.len()
    }

    /// The normalised shares (zeros preserved, sums to 1).
    pub fn shares(&self) -> &[f64] {
        &self.shares
    }

    /// Draws one index with probability proportional to its weight: one
    /// slot pick plus one acceptance roll, O(1) and allocation-free.
    #[inline]
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let k = rng.index(self.slot_index.len());
        if rng.f64() < self.prob[k] {
            self.slot_index[k] as usize
        } else {
            self.alias[k] as usize
        }
    }

    /// Normalises raw non-negative weights into shares summing to 1 — the
    /// balancer-facing half of the primitive (no table construction).
    /// Same panics as [`WeightTable::build`].
    pub fn normalize(raw: &[f64]) -> Vec<f64> {
        let total = checked_total(raw);
        assert!(total > 0.0, "at least one weight must be positive");
        raw.iter().map(|w| w / total).collect()
    }
}

/// Validates weights and returns their sum.
fn checked_total(weights: &[f64]) -> f64 {
    assert!(!weights.is_empty(), "weight vector must be non-empty");
    weights
        .iter()
        .inspect(|w| {
            assert!(
                w.is_finite() && **w >= 0.0,
                "weights must be finite and non-negative"
            )
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_are_normalised_with_zeros_preserved() {
        let t = WeightTable::build(&[2.0, 0.0, 6.0]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.support(), 2);
        assert!((t.shares()[0] - 0.25).abs() < 1e-12);
        assert_eq!(t.shares()[1], 0.0);
        assert!((t.shares()[2] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn sampling_tracks_weights() {
        let t = WeightTable::build(&[1.0, 3.0, 6.0]);
        let mut rng = SimRng::new(7);
        let mut counts = [0u64; 3];
        let n = 300_000;
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        for (i, want) in [0.1, 0.3, 0.6].iter().enumerate() {
            let got = counts[i] as f64 / n as f64;
            assert!((got - want).abs() < 0.01, "index {i}: {got} vs {want}");
        }
    }

    #[test]
    fn zero_weight_indices_are_never_sampled() {
        let t = WeightTable::build(&[0.0, 1.0, 0.0, 2.0, 0.0]);
        let mut rng = SimRng::new(9);
        for _ in 0..50_000 {
            let i = t.sample(&mut rng);
            assert!(i == 1 || i == 3, "sampled zero-weight index {i}");
        }
    }

    #[test]
    fn single_positive_weight_is_certain() {
        let t = WeightTable::build(&[0.0, 5.0]);
        let mut rng = SimRng::new(3);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    fn rebuild_reuses_and_matches_build() {
        let mut t = WeightTable::build(&[1.0, 1.0]);
        t.rebuild(&[0.0, 2.0, 8.0]);
        let fresh = WeightTable::build(&[0.0, 2.0, 8.0]);
        assert_eq!(t, fresh);
    }

    #[test]
    fn rebuild_is_deterministic_sampling() {
        let a = WeightTable::build(&[0.5, 0.2, 0.3]);
        let b = WeightTable::build(&[0.5, 0.2, 0.3]);
        let mut ra = SimRng::new(11);
        let mut rb = SimRng::new(11);
        for _ in 0..1000 {
            assert_eq!(a.sample(&mut ra), b.sample(&mut rb));
        }
    }

    #[test]
    fn normalize_matches_manual_division() {
        let s = WeightTable::normalize(&[2.0, 6.0]);
        assert_eq!(s, vec![0.25, 0.75]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn all_zero_weights_panic() {
        let _ = WeightTable::build(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_panics() {
        let _ = WeightTable::build(&[1.0, -0.5]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_weights_panic() {
        let _ = WeightTable::build(&[]);
    }

    #[test]
    fn heavily_skewed_weights_stay_exact() {
        let t = WeightTable::build(&[1e-9, 1.0]);
        let mut rng = SimRng::new(5);
        let hits = (0..100_000).filter(|_| t.sample(&mut rng) == 0).count();
        // Share 1e-9: essentially never, but the slot still exists.
        assert!(hits < 5, "{hits} hits on a 1e-9 share");
        assert_eq!(t.support(), 2);
    }
}
