//! Era-synchronized sharded world execution.
//!
//! The world — any indexed set of model entities (regions, overlay
//! endpoints, …) — is partitioned into **shards**: contiguous index
//! ranges, each owning a private [`Simulator`] (its own event queue) and a
//! pre-split [`SimRng`] stream. Within an **era** every shard advances
//! independently, so shards can run on separate threads of the `acm-exec`
//! pool; at the era **barrier** cross-shard effects are exchanged in
//! shard-index order.
//!
//! Determinism discipline (the whole point of the design):
//!
//! 1. **Shard count is a function of the configuration, never of the
//!    thread count.** The same layout runs at `ACM_THREADS=1` and
//!    `ACM_THREADS=64`; threads only change *where* a shard executes.
//! 2. **Pre-split RNG.** Each shard's stream is split off the parent in
//!    index order at construction; no draw ever crosses a shard boundary
//!    mid-era.
//! 3. **Index-ordered merge.** Everything a shard exports at the barrier
//!    (messages, reports, child obs hubs) is merged in shard-index order,
//!    and entries within one shard keep their emission order — the merged
//!    result is byte-identical to a sequential sweep over the items.
//!
//! Together these make a sharded run reproduce the unsharded event stream
//! bit for bit at any thread width.

use crate::rng::SimRng;
use crate::sim::Simulator;
use std::ops::Range;

/// Deterministic partition of `0..items` into contiguous shard ranges.
///
/// Layouts are pure functions of `(items, shards)` — thread count never
/// enters — so every run of a given configuration shards identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardLayout {
    /// `bounds[s]..bounds[s + 1]` is shard `s`'s item range.
    bounds: Vec<usize>,
}

impl ShardLayout {
    /// Splits `items` into at most `shards` contiguous ranges of
    /// near-equal size (sizes differ by at most one, larger shards
    /// first). `shards` is clamped to `[1, max(items, 1)]`, so no shard
    /// is ever empty unless there are no items at all.
    pub fn balanced(items: usize, shards: usize) -> Self {
        let shards = shards.clamp(1, items.max(1));
        let mut bounds = Vec::with_capacity(shards + 1);
        for s in 0..=shards {
            bounds.push(items * s / shards);
        }
        ShardLayout { bounds }
    }

    /// Splits `items` into near-equal contiguous ranges of at most
    /// `max_chunk` items each (the batch-size dual of
    /// [`ShardLayout::balanced`]: callers bound memory per batch instead
    /// of fixing the batch count). `max_chunk` is clamped to at least 1.
    pub fn chunks(items: usize, max_chunk: usize) -> Self {
        let max_chunk = max_chunk.max(1);
        ShardLayout::balanced(items, items.div_ceil(max_chunk).max(1))
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Total number of items across all shards.
    pub fn items(&self) -> usize {
        *self.bounds.last().expect("bounds never empty")
    }

    /// Item range owned by shard `s`.
    pub fn range(&self, s: usize) -> Range<usize> {
        self.bounds[s]..self.bounds[s + 1]
    }

    /// The shard owning item `i`.
    pub fn shard_of(&self, i: usize) -> usize {
        assert!(i < self.items(), "item {i} outside the layout");
        // bounds is sorted; find the last bound <= i.
        self.bounds.partition_point(|b| *b <= i) - 1
    }

    /// Iterates `(shard, range)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Range<usize>)> + '_ {
        (0..self.shards()).map(|s| (s, self.range(s)))
    }
}

/// One shard: a contiguous slice of the world with its private event
/// queue and RNG stream.
///
/// The simulator's queue lives for the whole run — eras schedule into and
/// drain from the same arena, so event-slot allocations are recycled
/// across eras (surfaced as `acm.sim.queue.arena_reuse`).
pub struct Shard<W> {
    /// Shard index within the layout.
    pub index: usize,
    /// Item range this shard owns.
    pub items: Range<usize>,
    /// The shard-local discrete-event simulator.
    pub sim: Simulator<W>,
    /// Pre-split RNG stream, private to this shard.
    pub rng: SimRng,
}

/// A world partitioned into era-synchronized shards.
///
/// [`step_era`] advances every shard concurrently on the global
/// `acm-exec` pool (exact sequential path at one thread), then returns so
/// the caller can run its barrier exchange — index-ordered merges of
/// whatever the shards staged.
///
/// [`step_era`]: ShardedWorld::step_era
pub struct ShardedWorld<W> {
    layout: ShardLayout,
    shards: Vec<Shard<W>>,
}

impl<W> ShardedWorld<W> {
    /// Builds the shards: worlds come from `make_world(shard, range)` in
    /// index order, and each shard's RNG is split off `rng` in the same
    /// order — construction order is the determinism anchor.
    pub fn new(
        layout: ShardLayout,
        rng: &mut SimRng,
        mut make_world: impl FnMut(usize, Range<usize>) -> W,
    ) -> Self {
        let shards = layout
            .iter()
            .map(|(s, range)| Shard {
                index: s,
                items: range.clone(),
                sim: Simulator::new(make_world(s, range)),
                rng: rng.split(),
            })
            .collect();
        ShardedWorld { layout, shards }
    }

    /// The partition driving this world.
    pub fn layout(&self) -> &ShardLayout {
        &self.layout
    }

    /// Shared access to the shards, in index order.
    pub fn shards(&self) -> &[Shard<W>] {
        &self.shards
    }

    /// Mutable access to the shards, in index order (barrier-phase state
    /// exchange).
    pub fn shards_mut(&mut self) -> &mut [Shard<W>] {
        &mut self.shards
    }

    /// Advances every shard through one era by calling `advance` on each,
    /// concurrently on the global `acm-exec` pool. Returns once all
    /// shards hit the barrier. With one participant the shards run
    /// inline in index order — the exact sequential path.
    pub fn step_era<F>(&mut self, advance: F)
    where
        W: Send,
        F: Fn(&mut Shard<W>) + Sync,
    {
        acm_exec::for_each_mut(&mut self.shards, |_, shard| advance(shard));
    }

    /// Total events executed across all shards.
    pub fn total_executed(&self) -> u64 {
        self.shards.iter().map(|s| s.sim.executed()).sum()
    }
}

/// Index-ordered merge: flattens per-shard staged values in shard order,
/// preserving each shard's internal order — the canonical barrier merge.
/// For contiguous shard layouts this equals the order a sequential sweep
/// over the items would have produced.
pub fn merge_in_shard_order<T>(staged: Vec<Vec<T>>) -> Vec<T> {
    let total = staged.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for batch in staged {
        out.extend(batch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{Duration, SimTime};

    #[test]
    fn balanced_layout_covers_all_items_contiguously() {
        for items in [0usize, 1, 5, 7, 16, 100] {
            for shards in [1usize, 2, 3, 4, 8, 200] {
                let l = ShardLayout::balanced(items, shards);
                assert!(l.shards() >= 1);
                assert!(l.shards() <= shards.max(1));
                assert_eq!(l.items(), items);
                let mut next = 0;
                for (_, r) in l.iter() {
                    assert_eq!(r.start, next, "items={items} shards={shards}");
                    assert!(r.end >= r.start);
                    next = r.end;
                }
                assert_eq!(next, items);
                for i in 0..items {
                    let s = l.shard_of(i);
                    assert!(l.range(s).contains(&i));
                }
            }
        }
    }

    #[test]
    fn chunk_layout_bounds_every_batch() {
        for items in [0usize, 1, 5, 64, 200, 201] {
            for max_chunk in [1usize, 3, 32, 64, 1000] {
                let l = ShardLayout::chunks(items, max_chunk);
                assert_eq!(l.items(), items);
                for (_, r) in l.iter() {
                    assert!(
                        r.len() <= max_chunk,
                        "items={items} max={max_chunk} got {}",
                        r.len()
                    );
                }
            }
        }
        // Degenerate max_chunk clamps instead of dividing by zero.
        assert_eq!(ShardLayout::chunks(10, 0).items(), 10);
    }

    #[test]
    fn layout_is_independent_of_anything_but_its_inputs() {
        assert_eq!(
            ShardLayout::balanced(10, 3),
            ShardLayout::balanced(10, 3),
            "layouts are pure functions of (items, shards)"
        );
        // No empty shards: 3 items over 8 requested shards -> 3 shards.
        assert_eq!(ShardLayout::balanced(3, 8).shards(), 3);
    }

    #[test]
    fn sharded_era_is_byte_identical_across_widths() {
        // Each shard schedules deterministic events per era and logs
        // (time, draw) pairs; the merged logs must match exactly no
        // matter how many pool threads execute the shards.
        let run = |threads: usize| -> Vec<Vec<(u64, u64)>> {
            let before = acm_exec::current_threads();
            acm_exec::configure_threads(threads);
            let mut rng = SimRng::new(42);
            let mut world = ShardedWorld::new(ShardLayout::balanced(8, 4), &mut rng, |_, _| {
                Vec::<(u64, u64)>::new()
            });
            for era in 0..5u64 {
                let era_end = SimTime::from_secs((era + 1) * 10);
                world.step_era(|shard| {
                    for k in 0..20u64 {
                        let at = shard.sim.now()
                            + Duration::from_millis(1 + (k * 97 + shard.index as u64) % 9000);
                        let draw = shard.rng.next_u64();
                        shard.sim.schedule_at(at, move |s| {
                            s.world.push((s.now().as_micros(), draw));
                        });
                    }
                    shard.sim.run_until(era_end);
                });
            }
            let logs = world.shards().iter().map(|s| s.sim.world.clone()).collect();
            acm_exec::configure_threads(before);
            logs
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one, four, "sharded eras must not depend on thread width");
        assert!(one.iter().all(|log| !log.is_empty()));
    }

    #[test]
    fn merge_preserves_shard_then_emission_order() {
        let merged = merge_in_shard_order(vec![vec![1, 2], vec![], vec![3], vec![4, 5]]);
        assert_eq!(merged, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn shard_queues_recycle_arena_slots_across_eras() {
        let mut rng = SimRng::new(7);
        let obs = acm_obs::Obs::new(acm_obs::ObsConfig::default());
        let mut world = ShardedWorld::new(ShardLayout::balanced(2, 2), &mut rng, |_, _| 0u64);
        for shard in world.shards_mut() {
            shard.sim.set_obs(&obs);
        }
        for era in 0..3u64 {
            let era_end = SimTime::from_secs((era + 1) * 10);
            world.step_era(|shard| {
                for _ in 0..16 {
                    shard
                        .sim
                        .schedule_in(Duration::from_secs(1), |s| s.world += 1);
                }
                shard.sim.run_until(era_end);
            });
        }
        // Era 1 grows each arena to 16 slots; eras 2-3 reuse them all.
        assert_eq!(obs.counter("acm.sim.queue.arena_reuse").value(), 2 * 32);
    }
}
