//! The seed repository's event-queue implementation, retained verbatim as a
//! baseline: `std::collections::BinaryHeap` plus two per-operation
//! `HashSet`s. The production queue ([`crate::event::EventQueue`]) replaced
//! it with an implicit 4-ary heap over a generation-tagged slot arena; this
//! copy exists so that (a) differential property tests can pit the two
//! implementations against each other on random workloads, and (b) the
//! `perf_report` benchmark can quantify the speedup against the exact seed
//! code rather than a reconstruction. Not part of the public simulation API.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Opaque handle identifying a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

struct Entry<T> {
    at: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we need earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The seed's cancellable, deterministic future-event list.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    /// Sequence numbers still awaiting delivery (not fired, not cancelled).
    pending: HashSet<u64>,
    /// Cancelled-but-still-in-heap entries, skipped lazily on pop.
    cancelled: HashSet<u64>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `at`. Returns a handle for cancellation.
    pub fn schedule(&mut self, at: SimTime, payload: T) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
        self.pending.insert(seq);
        EventId(seq)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event was
    /// still pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.pending.remove(&id.0) {
            self.cancelled.insert(id.0);
            true
        } else {
            false
        }
    }

    /// Removes and returns the earliest live event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.pending.remove(&entry.seq);
            return Some((entry.at, entry.payload));
        }
        None
    }

    /// Timestamp of the earliest live event, if any, without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
            } else {
                return Some(entry.at);
            }
        }
        None
    }

    /// Number of live (not cancelled) pending events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.pending.clear();
        self.cancelled.clear();
    }
}
