//! Deterministic random number generation for the simulator.
//!
//! We implement xoshiro256++ directly rather than pulling in `rand`'s default
//! (thread-local, OS-seeded) generators: the figure regenerators must be
//! bit-reproducible from a `u64` seed, and the workload/anomaly models need a
//! handful of distributions (`rand_distr` is not on the approved dependency
//! list). The generator is *splittable* — [`SimRng::split`] derives an
//! independent child stream, which lets each VM, browser and region own a
//! private stream so that adding a component never perturbs the draws seen by
//! the others.

use serde::{Deserialize, Serialize};

/// SplitMix64 step, used for seeding and for deriving child streams.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic, splittable PRNG (xoshiro256++) with the distribution
/// samplers needed by the ACM models.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            SimRng::new(seed.wrapping_add(1))
        } else {
            SimRng { s }
        }
    }

    /// Derives an independent child generator. The child's stream is a
    /// deterministic function of the parent state, and the parent advances,
    /// so successive splits yield distinct streams.
    pub fn split(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`. Panics if `lo > hi` or either is non-finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "bad uniform range"
        );
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)` via Lemire's multiply-shift rejection.
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        let n = n as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo >= n || lo >= n.wrapping_neg() % n {
                return (m >> 64) as usize;
            }
        }
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Exponential variate with the given mean (inverse-CDF method).
    /// Panics if `mean` is not positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive"
        );
        // 1 - U avoids ln(0); U in [0,1) so 1-U in (0,1].
        -mean * (1.0 - self.f64()).ln()
    }

    /// Standard normal variate via the polar (Marsaglia) method.
    pub fn standard_normal(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.f64() - 1.0;
            let v = 2.0 * self.f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Normal variate with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        mean + std_dev * self.standard_normal()
    }

    /// Log-normal variate parameterised by the underlying normal's `mu` and
    /// `sigma`. Used for heavy-ish-tailed service demands.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Poisson variate with the given mean: Knuth's product method for small
    /// means, a rounded-and-clamped normal approximation for large ones.
    pub fn poisson(&mut self, mean: f64) -> u64 {
        assert!(
            mean.is_finite() && mean >= 0.0,
            "poisson mean must be non-negative"
        );
        if mean == 0.0 {
            return 0;
        }
        if mean < 30.0 {
            let limit = (-mean).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= self.f64();
                if p <= limit {
                    return k;
                }
                k += 1;
            }
        } else {
            self.normal(mean, mean.sqrt()).round().max(0.0) as u64
        }
    }

    /// Pareto variate with scale `x_min > 0` and shape `alpha > 0`.
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        assert!(
            x_min > 0.0 && alpha > 0.0,
            "pareto parameters must be positive"
        );
        x_min / (1.0 - self.f64()).powf(1.0 / alpha)
    }

    /// Zipf-distributed rank in `[0, n)` with exponent `s >= 0`, via inverse
    /// transform on the precomputed CDF held by [`ZipfTable`]. For repeated
    /// draws build the table once.
    pub fn zipf(&mut self, table: &ZipfTable) -> usize {
        table.sample(self)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.index(xs.len())]
    }

    /// Samples an index according to non-negative `weights` (need not be
    /// normalised). Panics if all weights are zero or any is negative.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights
            .iter()
            .inspect(|w| assert!(**w >= 0.0 && w.is_finite(), "weights must be non-negative"))
            .sum();
        assert!(total > 0.0, "at least one weight must be positive");
        let mut target = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            target -= w;
            if target < 0.0 {
                return i;
            }
        }
        // Floating-point slack: fall back to the last positive weight.
        weights
            .iter()
            .rposition(|w| *w > 0.0)
            .expect("positive weight exists")
    }
}

/// Precomputed CDF for Zipf sampling over `n` ranks with exponent `s`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZipfTable {
    cdf: Vec<f64>,
}

impl ZipfTable {
    /// Builds the table. Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf support must be non-empty");
        assert!(
            s >= 0.0 && s.is_finite(),
            "zipf exponent must be non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfTable { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the table has a single rank.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.f64();
        self.cdf
            .partition_point(|c| *c <= u)
            .min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(
            same < 4,
            "streams should be nearly disjoint, {same} collisions"
        );
    }

    #[test]
    fn split_streams_are_independent_and_deterministic() {
        let mut parent1 = SimRng::new(7);
        let mut parent2 = SimRng::new(7);
        let mut c1 = parent1.split();
        let mut c2 = parent2.split();
        for _ in 0..32 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
        // Second split from the same parent yields a different stream.
        let mut c3 = parent1.split();
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut rng = SimRng::new(3);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SimRng::new(4);
        for _ in 0..1_000 {
            let x = rng.uniform(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&x));
        }
        assert_eq!(rng.uniform(3.0, 3.0), 3.0);
    }

    #[test]
    fn index_is_unbiased_enough() {
        let mut rng = SimRng::new(5);
        let mut counts = [0usize; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[rng.index(7)] += 1;
        }
        let expect = n as f64 / 7.0;
        for c in counts {
            assert!(
                (c as f64 - expect).abs() < expect * 0.1,
                "count {c} vs {expect}"
            );
        }
    }

    #[test]
    fn exponential_mean_matches() {
        let mut rng = SimRng::new(6);
        let n = 200_000;
        let mean = 2.5;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let sample_mean = sum / n as f64;
        assert!(
            (sample_mean - mean).abs() < 0.05,
            "sample mean {sample_mean}"
        );
    }

    #[test]
    fn normal_moments_match() {
        let mut rng = SimRng::new(8);
        let n = 200_000usize;
        let (mu, sd) = (3.0, 1.5);
        let xs: Vec<f64> = (0..n).map(|_| rng.normal(mu, sd)).collect();
        let m: f64 = xs.iter().sum::<f64>() / n as f64;
        let v: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n as f64;
        assert!((m - mu).abs() < 0.03, "mean {m}");
        assert!((v.sqrt() - sd).abs() < 0.03, "sd {}", v.sqrt());
    }

    #[test]
    fn bernoulli_edge_cases() {
        let mut rng = SimRng::new(9);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
        assert!(!rng.bernoulli(-1.0));
        assert!(rng.bernoulli(2.0));
        let hits = (0..100_000).filter(|_| rng.bernoulli(0.1)).count();
        assert!((hits as f64 - 10_000.0).abs() < 600.0, "hits {hits}");
    }

    #[test]
    fn poisson_mean_and_variance_match() {
        let mut rng = SimRng::new(33);
        // Small-mean regime (Knuth).
        let n = 100_000;
        let xs: Vec<u64> = (0..n).map(|_| rng.poisson(4.0)).collect();
        let mean = xs.iter().sum::<u64>() as f64 / n as f64;
        let var = xs.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
        // Large-mean regime (normal approximation).
        let ys: Vec<u64> = (0..n).map(|_| rng.poisson(400.0)).collect();
        let mean = ys.iter().sum::<u64>() as f64 / n as f64;
        assert!((mean - 400.0).abs() < 0.5, "mean {mean}");
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn pareto_respects_scale() {
        let mut rng = SimRng::new(10);
        for _ in 0..1_000 {
            assert!(rng.pareto(1.5, 2.0) >= 1.5);
        }
    }

    #[test]
    fn zipf_is_monotone_in_rank() {
        let mut rng = SimRng::new(11);
        let table = ZipfTable::new(10, 1.0);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.zipf(&table)] += 1;
        }
        // Rank 0 must dominate rank 9 by roughly 10x for s=1.
        assert!(counts[0] > counts[9] * 5, "{counts:?}");
        // All ranks hit.
        assert!(counts.iter().all(|c| *c > 0));
    }

    #[test]
    fn weighted_index_tracks_weights() {
        let mut rng = SimRng::new(12);
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[rng.weighted_index(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(13);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_returns_member() {
        let mut rng = SimRng::new(14);
        let xs = [10, 20, 30];
        for _ in 0..100 {
            assert!(xs.contains(rng.choose(&xs)));
        }
    }

    #[test]
    fn log_normal_is_positive() {
        let mut rng = SimRng::new(15);
        for _ in 0..1_000 {
            assert!(rng.log_normal(0.0, 1.0) > 0.0);
        }
    }
}
