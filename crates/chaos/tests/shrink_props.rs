//! Property tests over the shrinker and the campaign determinism
//! contract, driving *real* experiment runs (Oracle predictor keeps a
//! 40-era case around ten milliseconds in debug).

use acm_chaos::{
    build_case, case_from_parts, run_campaign, run_case, shrink_plan, CampaignConfig, Injection,
};
use acm_obs::{Obs, ObsConfig};
use acm_overlay::FaultPlan;
use proptest::prelude::*;

const LEAK: Injection = Injection::LeakFlow {
    region: 1,
    frac: 0.06,
};

/// Replays `plan` under the fixed case context and renders the verdict
/// canonically.
fn verdict_line(case_seed: u64, regions: usize, eras: usize, plan: &FaultPlan) -> String {
    run_case(&case_from_parts(
        case_seed,
        regions,
        eras,
        plan.clone(),
        LEAK,
    ))
    .line()
}

proptest! {
    /// Every candidate a shrink step can propose (drop a component,
    /// narrow a window, weaken message chaos) evaluates to the same
    /// verdict when replayed — the delta-debugging loop never acts on a
    /// flaky signal.
    #[test]
    fn shrink_step_evaluation_is_deterministic(
        seed in any::<u64>(),
        index in 0usize..3,
    ) {
        let cc = CampaignConfig {
            seed,
            injection: LEAK,
            ..CampaignConfig::default()
        };
        let case = build_case(&cc, index);
        let regions = case.cfg.regions.len();
        let plan = case.cfg.fault_plan.clone().expect("chaos case has a plan");
        let mut candidates = vec![plan.clone()];
        let components = plan.components();
        if let Some(c) = components.first() {
            candidates.push(plan.without_component(c));
            candidates.extend(plan.narrow_component(c));
        }
        candidates.extend(plan.weaken_message());
        for candidate in candidates {
            let first = verdict_line(case.case_seed, regions, cc.eras, &candidate);
            let again = verdict_line(case.case_seed, regions, cc.eras, &candidate);
            prop_assert_eq!(first, again, "seed {:#x} index {}", seed, index);
        }
    }

    /// Shrinking a known-violating plan terminates (bounded attempts)
    /// at a plan that still violates, and never grows the plan.
    #[test]
    fn shrinking_a_violating_plan_terminates_still_violating(
        frac in 0.01f64..0.3,
    ) {
        // Campaign case 0 of the default seed deterministically
        // quarantines region 1, so any positive leak trips
        // quarantine_zero_flow (the committed corpus entry came from
        // exactly this case).
        let injection = Injection::LeakFlow { region: 1, frac };
        let cc = CampaignConfig {
            injection,
            ..CampaignConfig::default()
        };
        let case = build_case(&cc, 0);
        let regions = case.cfg.regions.len();
        let plan = case.cfg.fault_plan.clone().expect("chaos case has a plan");
        let mut still_violates = |p: &FaultPlan| {
            run_case(&case_from_parts(case.case_seed, regions, cc.eras, p.clone(), injection))
                .violations
                .iter()
                .any(|v| v.invariant == "quarantine_zero_flow")
        };
        prop_assert!(still_violates(&plan), "base case must violate (frac {frac})");
        let outcome = shrink_plan(&plan, &mut still_violates);
        prop_assert!(
            still_violates(&outcome.plan),
            "shrunk plan no longer violates (frac {frac})"
        );
        prop_assert!(outcome.plan.events.len() <= plan.events.len());
        prop_assert!(outcome.attempts < 2000, "shrink hit the attempt ceiling");
    }
}

/// A small campaign produces a byte-identical fingerprint at 1 and 4
/// worker threads (the `chaos_sweep` gate checks the full-size version
/// of this in release mode).
#[test]
fn campaign_fingerprint_is_identical_across_thread_widths() {
    let cc = CampaignConfig {
        plans: 12,
        ..CampaignConfig::default()
    };
    let before = acm_exec::current_threads();
    acm_exec::configure_threads(1);
    let seq = run_campaign(&cc, &Obs::new(ObsConfig::default()));
    acm_exec::configure_threads(4);
    let par = run_campaign(&cc, &Obs::new(ObsConfig::default()));
    acm_exec::configure_threads(before);
    assert_eq!(
        seq.fingerprint, par.fingerprint,
        "campaign fingerprints diverge between 1 and 4 threads"
    );
    assert_eq!(seq.verdicts.len(), 12);
}
