//! The committed reproducer corpus.
//!
//! Every violation a campaign finds is shrunk to a minimal plan and
//! serialized as one JSON document (written with the obs JSON writer,
//! read back with its parser — no external serde). Entries live under
//! `crates/chaos/corpus/` and are replayed by tier-1 as regression
//! tests with failing-then-fixed semantics: with the entry's (test-only)
//! injection the expected invariant must still fire; without it the run
//! must be clean — proving both that the bug reproduces and that the
//! production system does not exhibit it.

use crate::campaign::{case_from_parts, run_case, Injection, Verdict};
use acm_obs::json::{self, JsonObject, JsonValue};
use acm_overlay::FaultPlan;

/// One committed minimal reproducer.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusEntry {
    /// Stable entry name (doubles as the file stem).
    pub name: String,
    /// Invariant expected to fire on replay-with-injection.
    pub invariant: String,
    /// Deployment shape (2 = fig-3, 3 = fig-4).
    pub regions: usize,
    /// Eras per replay run.
    pub eras: usize,
    /// Per-case seed (drives workload + chaos RNG streams).
    pub case_seed: u64,
    /// The test-only trace perturbation that exposes the violation.
    pub injection: Injection,
    /// The minimal fault plan.
    pub plan: FaultPlan,
}

impl CorpusEntry {
    /// Serializes the entry as one JSON document.
    pub fn to_json(&self) -> String {
        let mut inj = JsonObject::new();
        match self.injection {
            Injection::None => {
                inj.field_str("kind", "none");
            }
            Injection::LeakFlow { region, frac } => {
                inj.field_str("kind", "leak_flow")
                    .field_u64("region", region as u64)
                    .field_f64("frac", frac);
            }
            Injection::DoubleReadmit { region } => {
                inj.field_str("kind", "double_readmit")
                    .field_u64("region", region as u64);
            }
        }
        let mut o = JsonObject::new();
        o.field_str("name", &self.name)
            .field_str("invariant", &self.invariant)
            .field_u64("regions", self.regions as u64)
            .field_u64("eras", self.eras as u64)
            .field_u64("case_seed", self.case_seed)
            .field_raw("injection", &inj.finish())
            .field_raw("plan", &self.plan.to_json());
        o.finish()
    }

    /// Parses an entry serialized by [`CorpusEntry::to_json`].
    pub fn from_json(s: &str) -> Result<CorpusEntry, String> {
        let doc = json::parse(s)?;
        let str_field = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("corpus entry: missing string field {key:?}"))
        };
        let u64_field = |key: &str| -> Result<u64, String> {
            doc.get(key)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("corpus entry: missing u64 field {key:?}"))
        };
        let inj = doc
            .get("injection")
            .ok_or_else(|| "corpus entry: missing injection".to_string())?;
        let inj_u64 = |key: &str| -> Result<usize, String> {
            inj.get(key)
                .and_then(|v| v.as_u64())
                .map(|v| v as usize)
                .ok_or_else(|| format!("corpus entry: injection missing {key:?}"))
        };
        let injection = match inj.get("kind").and_then(JsonValue::as_str) {
            Some("none") => Injection::None,
            Some("leak_flow") => Injection::LeakFlow {
                region: inj_u64("region")?,
                frac: inj
                    .get("frac")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| "corpus entry: leak_flow missing frac".to_string())?,
            },
            Some("double_readmit") => Injection::DoubleReadmit {
                region: inj_u64("region")?,
            },
            other => {
                return Err(format!("corpus entry: unknown injection kind {other:?}"));
            }
        };
        let plan_raw = doc
            .get("plan")
            .ok_or_else(|| "corpus entry: missing plan".to_string())?;
        // Round-trip the sub-object through text: FaultPlan owns its
        // parsing, this module owns only the envelope.
        let plan = FaultPlan::from_json(&render(plan_raw))?;
        Ok(CorpusEntry {
            name: str_field("name")?,
            invariant: str_field("invariant")?,
            regions: u64_field("regions")? as usize,
            eras: u64_field("eras")? as usize,
            case_seed: u64_field("case_seed")?,
            injection,
            plan,
        })
    }

    /// Replays the entry with its injection armed. A healthy corpus
    /// entry yields a verdict violating `self.invariant`.
    pub fn replay(&self) -> Verdict {
        run_case(&case_from_parts(
            self.case_seed,
            self.regions,
            self.eras,
            self.plan.clone(),
            self.injection,
        ))
    }

    /// Replays the entry with the injection disarmed. A healthy corpus
    /// entry yields a clean verdict — the production system does not
    /// exhibit the violation.
    pub fn replay_clean(&self) -> Verdict {
        run_case(&case_from_parts(
            self.case_seed,
            self.regions,
            self.eras,
            self.plan.clone(),
            Injection::None,
        ))
    }

    /// Checks the entry against its committed semantics.
    ///
    /// Injected entries are failing-then-fixed: the injected replay must
    /// violate `self.invariant` and the clean replay must pass. Entries
    /// with [`Injection::None`] record a real bug that has since been
    /// fixed — the (single) replay must stay clean forever.
    pub fn verify(&self) -> Result<(), String> {
        if self.injection.is_none() {
            let clean = self.replay_clean();
            if !clean.ok() {
                return Err(format!(
                    "entry {:?}: fixed-bug regression resurfaced: {}",
                    self.name,
                    clean.line()
                ));
            }
            return Ok(());
        }
        let bad = self.replay();
        if !bad.violations.iter().any(|v| v.invariant == self.invariant) {
            return Err(format!(
                "entry {:?}: injected replay did not violate {:?} (got: {})",
                self.name,
                self.invariant,
                bad.line()
            ));
        }
        let clean = self.replay_clean();
        if !clean.ok() {
            return Err(format!(
                "entry {:?}: clean replay is not clean: {}",
                self.name,
                clean.line()
            ));
        }
        Ok(())
    }
}

/// Renders a parsed [`JsonValue`] back to text (for nested sub-object
/// hand-off between parsers).
fn render(v: &JsonValue) -> String {
    match v {
        JsonValue::Null => "null".to_string(),
        JsonValue::Bool(b) => b.to_string(),
        JsonValue::Num(t) => t.clone(),
        JsonValue::Str(s) => {
            let mut out = String::new();
            json::push_escaped(&mut out, s);
            out
        }
        JsonValue::Arr(items) => {
            let inner: Vec<String> = items.iter().map(render).collect();
            format!("[{}]", inner.join(","))
        }
        JsonValue::Obj(fields) => {
            let inner: Vec<String> = fields
                .iter()
                .map(|(k, val)| {
                    let mut key = String::new();
                    json::push_escaped(&mut key, k);
                    format!("{key}:{}", render(val))
                })
                .collect();
            format!("{{{}}}", inner.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acm_overlay::NodeId;
    use acm_sim::time::{Duration, SimTime};

    #[test]
    fn corpus_entry_round_trips() {
        let entry = CorpusEntry {
            name: "leak-demo".into(),
            invariant: "quarantine_zero_flow".into(),
            regions: 2,
            eras: 40,
            case_seed: 0xdead_beef_cafe_f00d,
            injection: Injection::LeakFlow {
                region: 1,
                frac: 0.125,
            },
            plan: FaultPlan::scripted(7, Vec::new())
                .crash_window(NodeId(1), SimTime::from_secs(150), SimTime::from_secs(450))
                .with_message_chaos(0.0, Duration::ZERO),
        };
        let json = entry.to_json();
        let back = CorpusEntry::from_json(&json).expect("round trip parses");
        assert_eq!(back, entry);
        assert_eq!(back.to_json(), json, "stable re-serialization");
        assert!(CorpusEntry::from_json("{\"name\":\"x\"}").is_err());
    }
}
