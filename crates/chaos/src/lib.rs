//! Chaos campaigns as a model checker for the proactive control plane.
//!
//! The crate turns the PR 5 fault layer and degradation machinery into
//! machine-checked territory: hundreds of seed-randomized [`FaultPlan`]s
//! run against the sharded world on the exec pool, a pluggable
//! [`Invariant`] catalogue is evaluated every era over the run's
//! *observable* trace (telemetry + obs events), violations are shrunk by
//! a delta-debugging [`shrink_plan`] loop to minimal reproducers, and
//! those reproducers are committed as a [`CorpusEntry`] corpus that
//! tier-1 replays as regression tests.
//!
//! Everything is deterministic end to end: cases are pure functions of
//! `(campaign seed, index)`, runs replay byte-identically at every
//! `ACM_THREADS` width, and the campaign fingerprint (canonical verdict
//! lines) is compared verbatim across widths by the `chaos_sweep` gate.
//!
//! [`FaultPlan`]: acm_overlay::FaultPlan

pub mod campaign;
pub mod corpus;
pub mod invariant;
pub mod shrink;

pub use campaign::{
    build_case, case_from_parts, run_campaign, run_case, CampaignConfig, CampaignReport, ChaosCase,
    Injection, Intensity, RunTrace, Verdict,
};
pub use corpus::CorpusEntry;
pub use invariant::{
    standard_invariants, ConvergenceAfterHeal, EraView, FlowConservation, HealthTransition,
    Invariant, QuarantineZeroFlow, ReelectionBound, SingleReadmitPerOutage, TransitionKind,
    Violation,
};
pub use shrink::{shrink_plan, ShrinkOutcome};
