//! Machine-checked era invariants over a finished chaos run.
//!
//! An [`Invariant`] observes one [`EraView`] per era, in era order, and
//! may also run a final end-of-run sweep. Views are reconstructed from
//! the run's telemetry and obs event log (the same artifacts every
//! production run emits), so invariants check the system's *observable*
//! behaviour — never privileged internal state — and anything they catch
//! is by construction visible to an operator too.
//!
//! The catalogue (see DESIGN.md §11):
//! - [`QuarantineZeroFlow`]: an installed plan never routes flow to a
//!   quarantined region (freeze eras are exempt — the control plane
//!   deliberately keeps stale fractions while the router masks them).
//! - [`FlowConservation`]: flow fractions sum to 1 within epsilon, every
//!   era, no exceptions.
//! - [`SingleReadmitPerOutage`]: each outage (a region's k-th
//!   quarantine) is readmitted at most once — a second readmit for the
//!   same ordinal is probation oscillation. When the plan's message
//!   chaos is inert, outages with enough horizon left must also readmit
//!   *exactly* once.
//! - [`ReelectionBound`]: after a leader kill, a new leader appears
//!   within the heartbeat-derived era bound (as long as anyone is alive
//!   to elect).
//! - [`ConvergenceAfterHeal`]: within N eras of the last scheduled fault
//!   activity, every region that can recover (not permanently dead) is
//!   live again. Armed only when message chaos is inert — under ongoing
//!   random message loss there is no convergence guarantee to check.

/// Which way a region's health moved this era.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitionKind {
    /// Live → Quarantined.
    Quarantine,
    /// Quarantined → Probation.
    Probation,
    /// Probation/Quarantined → Live.
    Readmit,
}

/// One health transition, as reconstructed from the event log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthTransition {
    /// Region index in the deployment.
    pub region: usize,
    /// Transition direction.
    pub kind: TransitionKind,
    /// Lifetime quarantine ordinal the transition belongs to (1-based;
    /// the `outage` field stamped on `region.*` events).
    pub outage: u32,
}

/// Everything an invariant may observe about one era.
#[derive(Debug)]
pub struct EraView<'a> {
    /// Era index (0-based).
    pub era: usize,
    /// Total eras in the run.
    pub eras_total: usize,
    /// Control-plane flow fractions recorded at this era's end.
    pub fractions: &'a [f64],
    /// True when a plan was installed this era (false: frozen or the
    /// pre-degradation unconditional path did not emit).
    pub installed: bool,
    /// Quarantine state after this era's health transitions (true =
    /// excluded from the plan: quarantined or on probation).
    pub excluded: &'a [bool],
    /// Permanently dead regions as of this era: crashed or leader-killed
    /// with no scheduled recovery anywhere later in the plan.
    pub dead: &'a [bool],
    /// This era's health transitions, in emission order.
    pub transitions: &'a [HealthTransition],
    /// `chaos.leader.kill` faults applied at this era's start.
    pub kills_applied: u32,
    /// `leader.change` events observed this era.
    pub leader_changes: u32,
    /// Nodes still alive (not crashed/killed) after this era's faults.
    pub alive_nodes: u32,
    /// Last era with any scheduled fault activity (`None`: no faults).
    pub last_activity_era: Option<usize>,
    /// True when the plan carries no per-message drop/delay chaos.
    pub message_inert: bool,
}

/// A violated invariant, pinned to the era that exposed it.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Invariant name (stable, used for corpus matching).
    pub invariant: &'static str,
    /// Era the violation surfaced in.
    pub era: usize,
    /// Human-readable specifics.
    pub detail: String,
}

impl Violation {
    /// Canonical one-line rendering (byte-stable across runs).
    pub fn line(&self) -> String {
        format!("{}@era{}: {}", self.invariant, self.era, self.detail)
    }
}

/// A pluggable property checked once per era plus a final sweep.
pub trait Invariant {
    /// Stable name used in verdicts and corpus entries.
    fn name(&self) -> &'static str;
    /// Checks one era; eras arrive in order.
    fn check_era(&mut self, view: &EraView) -> Option<Violation>;
    /// End-of-run sweep for obligations that need the whole horizon.
    fn check_end(&mut self) -> Option<Violation> {
        None
    }
}

/// The standard catalogue, in evaluation order.
pub fn standard_invariants() -> Vec<Box<dyn Invariant + Send>> {
    vec![
        Box::new(FlowConservation::default()),
        Box::new(QuarantineZeroFlow::default()),
        Box::new(SingleReadmitPerOutage::default()),
        Box::new(ReelectionBound::default()),
        Box::new(ConvergenceAfterHeal::default()),
    ]
}

/// Flow fractions must sum to 1 within `eps`, every era.
#[derive(Debug, Clone)]
pub struct FlowConservation {
    /// Tolerance on `|sum - 1|`.
    pub eps: f64,
}

impl Default for FlowConservation {
    fn default() -> Self {
        FlowConservation { eps: 1e-6 }
    }
}

impl Invariant for FlowConservation {
    fn name(&self) -> &'static str {
        "flow_conservation"
    }

    fn check_era(&mut self, view: &EraView) -> Option<Violation> {
        let sum: f64 = view.fractions.iter().sum();
        if (sum - 1.0).abs() > self.eps {
            return Some(Violation {
                invariant: self.name(),
                era: view.era,
                detail: format!("fractions sum to {sum}"),
            });
        }
        None
    }
}

/// An installed plan must pin every excluded region to zero flow.
/// Freeze eras are exempt: the control plane deliberately retains the
/// stale fractions and the data-plane router masks them instead.
#[derive(Debug, Clone)]
pub struct QuarantineZeroFlow {
    /// Tolerance on a quarantined region's fraction.
    pub eps: f64,
}

impl Default for QuarantineZeroFlow {
    fn default() -> Self {
        QuarantineZeroFlow { eps: 1e-9 }
    }
}

impl Invariant for QuarantineZeroFlow {
    fn name(&self) -> &'static str {
        "quarantine_zero_flow"
    }

    fn check_era(&mut self, view: &EraView) -> Option<Violation> {
        if !view.installed {
            return None;
        }
        for (j, (&f, &excluded)) in view.fractions.iter().zip(view.excluded).enumerate() {
            if excluded && f > self.eps {
                return Some(Violation {
                    invariant: self.name(),
                    era: view.era,
                    detail: format!("region {j} is excluded but carries fraction {f}"),
                });
            }
        }
        None
    }
}

/// Each outage readmits at most once; with inert message chaos and
/// enough horizon left, exactly once.
#[derive(Debug, Clone, Default)]
pub struct SingleReadmitPerOutage {
    /// `(region, outage ordinal, quarantine era)` seen so far.
    outages: Vec<(usize, u32, usize)>,
    /// `(region, outage ordinal)` already readmitted.
    readmitted: Vec<(usize, u32)>,
    eras_total: usize,
    message_inert: bool,
    /// Eras an outage needs before the "exactly one" obligation arms:
    /// probation hysteresis plus slack for the outage itself.
    readmit_budget: usize,
}

impl SingleReadmitPerOutage {
    /// Tracker with a custom end-of-run readmit budget (default 20).
    pub fn with_budget(budget: usize) -> Self {
        SingleReadmitPerOutage {
            readmit_budget: budget,
            ..Default::default()
        }
    }

    fn budget(&self) -> usize {
        if self.readmit_budget == 0 {
            20
        } else {
            self.readmit_budget
        }
    }
}

impl Invariant for SingleReadmitPerOutage {
    fn name(&self) -> &'static str {
        "single_readmit_per_outage"
    }

    fn check_era(&mut self, view: &EraView) -> Option<Violation> {
        self.eras_total = view.eras_total;
        self.message_inert = view.message_inert;
        // A dead region (crashed or killed with no revival scheduled)
        // owes no readmission — its quarantine rightly lasts forever.
        // Deadness is monotone, so dropping the obligation once is safe.
        self.outages
            .retain(|&(region, _, _)| view.dead.get(region) != Some(&true));
        for tr in view.transitions {
            match tr.kind {
                TransitionKind::Quarantine => {
                    self.outages.push((tr.region, tr.outage, view.era));
                }
                TransitionKind::Probation => {}
                TransitionKind::Readmit => {
                    let key = (tr.region, tr.outage);
                    if self.readmitted.contains(&key) {
                        return Some(Violation {
                            invariant: self.name(),
                            era: view.era,
                            detail: format!(
                                "region {} outage {} readmitted twice (oscillation)",
                                tr.region, tr.outage
                            ),
                        });
                    }
                    self.readmitted.push(key);
                }
            }
        }
        None
    }

    fn check_end(&mut self) -> Option<Violation> {
        if !self.message_inert {
            // Under random message loss an outage can legitimately start
            // too late to finish; only the at-most-once half applies.
            return None;
        }
        let budget = self.budget();
        for &(region, outage, era) in &self.outages {
            let enough_horizon = era + budget < self.eras_total;
            if enough_horizon && !self.readmitted.contains(&(region, outage)) {
                return Some(Violation {
                    invariant: self.name(),
                    era,
                    detail: format!(
                        "region {region} outage {outage} (era {era}) never readmitted \
                         within {budget} eras"
                    ),
                });
            }
        }
        None
    }
}

/// A leader kill must be answered by a `leader.change` within the bound
/// — unless nobody is left alive to elect.
#[derive(Debug, Clone)]
pub struct ReelectionBound {
    /// Eras allowed between the kill and the next leader change.
    pub bound_eras: usize,
    pending_kill: Option<usize>,
}

impl Default for ReelectionBound {
    fn default() -> Self {
        // Re-election is synchronous with fault application in this
        // implementation; one era of slack keeps the bound meaningful
        // rather than implementation-exact.
        ReelectionBound {
            bound_eras: 1,
            pending_kill: None,
        }
    }
}

impl Invariant for ReelectionBound {
    fn name(&self) -> &'static str {
        "reelection_bound"
    }

    fn check_era(&mut self, view: &EraView) -> Option<Violation> {
        if view.kills_applied > 0 && view.alive_nodes > 0 {
            self.pending_kill = Some(view.era);
        }
        if view.leader_changes > 0 {
            self.pending_kill = None;
        }
        if let Some(kill_era) = self.pending_kill {
            if view.era >= kill_era + self.bound_eras {
                self.pending_kill = None;
                return Some(Violation {
                    invariant: self.name(),
                    era: view.era,
                    detail: format!(
                        "leader killed at era {kill_era}, no re-election within \
                         {} eras",
                        self.bound_eras
                    ),
                });
            }
        }
        None
    }
}

/// Within `budget_eras` of the last scheduled fault activity, every
/// region that is not permanently dead must be live again. Armed only
/// for plans with inert message chaos.
#[derive(Debug, Clone)]
pub struct ConvergenceAfterHeal {
    /// Eras allowed between the last heal and full health.
    pub budget_eras: usize,
}

impl Default for ConvergenceAfterHeal {
    fn default() -> Self {
        // Staleness TTL (2) + probation hysteresis (3) + retry slack,
        // doubled for margin: well above any healthy readmit path.
        ConvergenceAfterHeal { budget_eras: 12 }
    }
}

impl Invariant for ConvergenceAfterHeal {
    fn name(&self) -> &'static str {
        "convergence_after_heal"
    }

    fn check_era(&mut self, view: &EraView) -> Option<Violation> {
        if !view.message_inert {
            return None;
        }
        let last = view.last_activity_era?;
        if view.era < last.saturating_add(self.budget_eras) {
            return None;
        }
        for (j, (&excluded, &dead)) in view.excluded.iter().zip(view.dead).enumerate() {
            if excluded && !dead {
                return Some(Violation {
                    invariant: self.name(),
                    era: view.era,
                    detail: format!(
                        "region {j} still excluded {} eras after the last heal (era {last})",
                        view.era - last
                    ),
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view<'a>(
        era: usize,
        fractions: &'a [f64],
        excluded: &'a [bool],
        dead: &'a [bool],
        transitions: &'a [HealthTransition],
    ) -> EraView<'a> {
        EraView {
            era,
            eras_total: 40,
            fractions,
            installed: true,
            excluded,
            dead,
            transitions,
            kills_applied: 0,
            leader_changes: 0,
            alive_nodes: 2,
            last_activity_era: None,
            message_inert: true,
        }
    }

    #[test]
    fn flow_conservation_flags_bad_sums() {
        let mut inv = FlowConservation::default();
        assert!(inv
            .check_era(&view(0, &[0.5, 0.5], &[false, false], &[false, false], &[]))
            .is_none());
        let v = inv
            .check_era(&view(1, &[0.5, 0.6], &[false, false], &[false, false], &[]))
            .expect("sum 1.1 violates");
        assert_eq!(v.era, 1);
    }

    #[test]
    fn quarantine_zero_flow_is_freeze_aware() {
        let mut inv = QuarantineZeroFlow::default();
        let mut v = view(3, &[0.7, 0.3], &[false, true], &[false, false], &[]);
        assert!(
            inv.check_era(&v).is_some(),
            "installed + leaked = violation"
        );
        v.installed = false;
        assert!(inv.check_era(&v).is_none(), "freeze eras are exempt");
    }

    #[test]
    fn double_readmit_is_oscillation() {
        let mut inv = SingleReadmitPerOutage::default();
        let q = [HealthTransition {
            region: 1,
            kind: TransitionKind::Quarantine,
            outage: 1,
        }];
        let r = [HealthTransition {
            region: 1,
            kind: TransitionKind::Readmit,
            outage: 1,
        }];
        assert!(inv
            .check_era(&view(2, &[1.0, 0.0], &[false, true], &[false, false], &q))
            .is_none());
        assert!(inv
            .check_era(&view(6, &[0.6, 0.4], &[false, false], &[false, false], &r))
            .is_none());
        let v = inv
            .check_era(&view(9, &[0.6, 0.4], &[false, false], &[false, false], &r))
            .expect("second readmit of outage 1 violates");
        assert!(v.detail.contains("oscillation"));
    }

    #[test]
    fn missing_readmit_is_flagged_at_end_when_message_inert() {
        let mut inv = SingleReadmitPerOutage::with_budget(5);
        let q = [HealthTransition {
            region: 0,
            kind: TransitionKind::Quarantine,
            outage: 1,
        }];
        inv.check_era(&view(2, &[0.0, 1.0], &[true, false], &[false, false], &q));
        assert!(
            inv.check_end().is_some(),
            "outage at era 2 of 40 must readmit"
        );

        // Same outage but with message chaos: the obligation is waived.
        let mut lossy = SingleReadmitPerOutage::with_budget(5);
        let mut v = view(2, &[0.0, 1.0], &[true, false], &[false, false], &q);
        v.message_inert = false;
        lossy.check_era(&v);
        assert!(lossy.check_end().is_none());
    }

    #[test]
    fn dead_regions_owe_no_readmission() {
        // Quarantine at era 2, the region's node dies for good at era 4
        // (e.g. a leader kill): the permanent quarantine is correct and
        // the end sweep must not demand a readmit.
        let mut inv = SingleReadmitPerOutage::with_budget(5);
        let q = [HealthTransition {
            region: 0,
            kind: TransitionKind::Quarantine,
            outage: 1,
        }];
        inv.check_era(&view(2, &[0.0, 1.0], &[true, false], &[false, false], &q));
        inv.check_era(&view(4, &[0.0, 1.0], &[true, false], &[true, false], &[]));
        assert!(inv.check_end().is_none(), "dead region is exempt");
    }

    #[test]
    fn reelection_bound_tolerates_total_wipeout() {
        let mut inv = ReelectionBound::default();
        let mut v = view(5, &[1.0, 0.0], &[false, true], &[false, true], &[]);
        v.kills_applied = 1;
        v.alive_nodes = 0; // everyone dead: nothing to elect
        assert!(inv.check_era(&v).is_none());
        let v6 = view(6, &[1.0, 0.0], &[false, true], &[false, true], &[]);
        assert!(inv.check_era(&v6).is_none(), "no pending obligation");

        // With survivors the obligation is real.
        let mut strict = ReelectionBound::default();
        let mut k = view(5, &[1.0, 0.0], &[false, true], &[false, true], &[]);
        k.kills_applied = 1;
        assert!(strict.check_era(&k).is_none(), "same era: within bound");
        let missed = view(6, &[1.0, 0.0], &[false, true], &[false, true], &[]);
        assert!(strict.check_era(&missed).is_some(), "bound of 1 era blown");
    }

    #[test]
    fn convergence_ignores_dead_regions_and_lossy_plans() {
        let mut inv = ConvergenceAfterHeal { budget_eras: 3 };
        let mut v = view(20, &[1.0, 0.0], &[false, true], &[false, true], &[]);
        v.last_activity_era = Some(10);
        assert!(inv.check_era(&v).is_none(), "dead region is exempt");
        let mut alive = view(20, &[1.0, 0.0], &[false, true], &[false, false], &[]);
        alive.last_activity_era = Some(10);
        assert!(
            inv.check_era(&alive).is_some(),
            "healable region must return"
        );
        alive.message_inert = false;
        assert!(
            inv.check_era(&alive).is_none(),
            "lossy plans have no convergence guarantee"
        );
    }
}
