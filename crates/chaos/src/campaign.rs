//! Campaign generation and execution.
//!
//! A campaign is `plans` seed-randomized [`ChaosCase`]s, each a pure
//! function of `(campaign seed, index)`: a deployment config (fig-3 or
//! fig-4 shape, degradation enabled in the tolerant TTL regime) plus a
//! [`FaultPlan`] mixing flap storms, partitions, crash windows, leader
//! kills, and per-message chaos under [`Intensity`] knobs. Cases run on
//! the exec pool via the panic-isolating deterministic collect
//! ([`acm_exec::try_map_collect`]) in bounded batches
//! ([`ShardLayout::chunks`]), so one crashing run is a *finding*, not the
//! end of the sweep, and verdict order is always index order — the
//! campaign fingerprint is byte-identical at every `ACM_THREADS` width.
//!
//! The observation channel is strictly what production emits: each run's
//! telemetry and obs event log are reconstructed into per-era
//! [`EraView`]s and fed to the invariant catalogue. The test-only
//! [`Injection`] hook perturbs the *observed* trace (never the system
//! under test) so the detection/shrinking machinery itself is testable
//! end to end.

use crate::invariant::{
    standard_invariants, EraView, HealthTransition, Invariant, TransitionKind, Violation,
};
use acm_core::config::PredictorChoice;
use acm_core::framework::run_experiment_with_obs;
use acm_core::policy::PolicyKind;
use acm_core::telemetry::ExperimentTelemetry;
use acm_core::{DegradationConfig, ExperimentConfig};
use acm_obs::{Obs, ObsConfig, Value};
use acm_overlay::{FaultPlan, HeartbeatConfig, NodeId};
use acm_sim::rng::SimRng;
use acm_sim::shard::ShardLayout;
use acm_sim::time::{Duration, SimTime};

/// Probability knobs scaling how much of each fault family a generated
/// plan carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Intensity {
    /// Per-link flap and per-node crash-window probability scale
    /// (forwarded to [`FaultPlan::randomized`]).
    pub fault: f64,
    /// Probability the plan carries one single-region partition window.
    pub partition: f64,
    /// Probability the plan kills the leader once.
    pub kill: f64,
    /// Probability the plan adds per-message drop/delay chaos.
    pub message: f64,
}

impl Default for Intensity {
    fn default() -> Self {
        Intensity {
            fault: 0.7,
            partition: 0.5,
            kill: 0.25,
            message: 0.4,
        }
    }
}

/// A whole campaign: how many plans, from which seed, at what shape.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Master seed; case `i` derives its own stream from `(seed, i)`.
    pub seed: u64,
    /// Number of randomized plans to run.
    pub plans: usize,
    /// Eras per run (40 keeps a case in the low milliseconds while
    /// leaving room for quarantine + readmit + convergence).
    pub eras: usize,
    /// Fault-family intensity knobs.
    pub intensity: Intensity,
    /// Test-only trace perturbation (always [`Injection::None`] in
    /// production sweeps).
    pub injection: Injection,
    /// Max cases per parallel batch (bounds peak memory).
    pub batch: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0xC4A0_5EED,
            plans: 200,
            eras: 40,
            intensity: Intensity::default(),
            injection: Injection::None,
            batch: 64,
        }
    }
}

/// Test-only perturbation of the observed trace, used to prove the
/// checker catches what it claims to catch. Never touches the system
/// under test — only the [`EraView`]s the invariants see.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Injection {
    /// No perturbation (production).
    None,
    /// Pretend the plan leaked `frac` flow to `region` while it was
    /// quarantined (shifted from the largest live region, so flow still
    /// sums to 1 and only `quarantine_zero_flow` fires).
    LeakFlow {
        /// Region whose observed fraction is inflated.
        region: usize,
        /// Leaked fraction.
        frac: f64,
    },
    /// Duplicate every readmit of `region` (probation oscillation).
    DoubleReadmit {
        /// Region whose readmits are doubled.
        region: usize,
    },
}

impl Injection {
    /// True for the production no-op.
    pub fn is_none(&self) -> bool {
        matches!(self, Injection::None)
    }
}

/// One runnable case: deployment config + fault plan.
#[derive(Debug, Clone)]
pub struct ChaosCase {
    /// Case index within the campaign.
    pub index: usize,
    /// Per-case seed (derived, recorded in verdicts).
    pub case_seed: u64,
    /// The deployment the plan runs against.
    pub cfg: ExperimentConfig,
    /// Observed-trace perturbation (test-only).
    pub injection: Injection,
}

/// The outcome of one case.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Case index.
    pub index: usize,
    /// Per-case seed.
    pub case_seed: u64,
    /// Invariant violations, in detection order (empty = pass).
    pub violations: Vec<Violation>,
    /// Panic message if the run itself crashed (a finding too).
    pub crashed: Option<String>,
}

impl Verdict {
    /// True when the case passed cleanly.
    pub fn ok(&self) -> bool {
        self.violations.is_empty() && self.crashed.is_none()
    }

    /// Canonical one-line rendering; the campaign fingerprint is these
    /// lines joined, so it must be byte-stable for a fixed seed.
    pub fn line(&self) -> String {
        if let Some(msg) = &self.crashed {
            return format!(
                "plan {:04} seed {:#018x} CRASH {msg}",
                self.index, self.case_seed
            );
        }
        if self.violations.is_empty() {
            format!("plan {:04} seed {:#018x} ok", self.index, self.case_seed)
        } else {
            let lines: Vec<String> = self.violations.iter().map(|v| v.line()).collect();
            format!(
                "plan {:04} seed {:#018x} VIOLATION {}",
                self.index,
                self.case_seed,
                lines.join("; ")
            )
        }
    }
}

/// A finished campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Per-case verdicts in index order.
    pub verdicts: Vec<Verdict>,
    /// Canonical fingerprint: every verdict line joined by `\n`.
    pub fingerprint: String,
}

impl CampaignReport {
    /// Cases with at least one violation.
    pub fn violating(&self) -> Vec<&Verdict> {
        self.verdicts
            .iter()
            .filter(|v| !v.violations.is_empty())
            .collect()
    }

    /// Cases whose run panicked.
    pub fn crashed(&self) -> usize {
        self.verdicts.iter().filter(|v| v.crashed.is_some()).count()
    }
}

/// Derives the deployment + plan for case `index` — a pure function of
/// `(cc.seed, index)`, so any case replays in isolation.
pub fn build_case(cc: &CampaignConfig, index: usize) -> ChaosCase {
    let case_seed = acm_obs::trace::mix(cc.seed, index as u64);
    // Alternate deployment shapes: every third case runs the three-region
    // fig-4 topology, the rest the two-region fig-3 one.
    let regions = if index % 3 == 2 { 3 } else { 2 };
    let mut cfg = if regions == 3 {
        ExperimentConfig::three_region_fig4(PolicyKind::AvailableResources, case_seed)
    } else {
        ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, case_seed)
    };
    cfg.name = format!("chaos-{index:04}");
    cfg.eras = cc.eras;
    // Oracle predictor: no model training inside the campaign inner loop.
    cfg.predictor = PredictorChoice::Oracle;
    // Tolerant TTL regime: quarantine decisions come from report-age
    // staleness, with the suspicion detector slack enough (5 eras of
    // silence) that probabilistic message chaos cannot trip it.
    cfg.degradation = DegradationConfig::enabled();
    cfg.degradation.heartbeat = HeartbeatConfig {
        period: Duration::from_secs(10),
        timeout: Duration::from_micros(cfg.era.as_micros() * 5),
    };
    cfg.fault_plan = Some(build_plan(cc, case_seed, regions, cfg.era));
    ChaosCase {
        index,
        case_seed,
        cfg,
        injection: cc.injection,
    }
}

/// Rebuilds a runnable case from its serialized parts (corpus replay):
/// the same deployment derivation as [`build_case`], but with the plan
/// supplied instead of generated.
pub fn case_from_parts(
    case_seed: u64,
    regions: usize,
    eras: usize,
    plan: FaultPlan,
    injection: Injection,
) -> ChaosCase {
    let mut cfg = if regions >= 3 {
        ExperimentConfig::three_region_fig4(PolicyKind::AvailableResources, case_seed)
    } else {
        ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, case_seed)
    };
    cfg.name = format!("chaos-replay-{case_seed:016x}");
    cfg.eras = eras;
    cfg.predictor = PredictorChoice::Oracle;
    cfg.degradation = DegradationConfig::enabled();
    cfg.degradation.heartbeat = HeartbeatConfig {
        period: Duration::from_secs(10),
        timeout: Duration::from_micros(cfg.era.as_micros() * 5),
    };
    cfg.fault_plan = Some(plan);
    ChaosCase {
        index: 0,
        case_seed,
        cfg,
        injection,
    }
}

/// Seed-randomized plan: flaps + crash windows from the stock generator,
/// then (by intensity) one partition window, one leader kill, and
/// per-message chaos. All scheduled activity lands in the first ~60% of
/// the horizon so heals leave room for readmission and convergence.
fn build_plan(cc: &CampaignConfig, case_seed: u64, regions: usize, era: Duration) -> FaultPlan {
    let era_us = era.as_micros();
    let nodes: Vec<NodeId> = (0..regions as u32).map(NodeId).collect();
    let mut links = Vec::new();
    for a in 0..regions as u32 {
        for b in (a + 1)..regions as u32 {
            links.push((NodeId(a), NodeId(b)));
        }
    }
    let active_eras = (cc.eras * 3 / 5).max(4);
    let horizon = SimTime::from_micros(era_us * active_eras as u64);
    let mut plan = FaultPlan::randomized(case_seed, &nodes, &links, horizon, cc.intensity.fault);
    let mut rng = SimRng::new(acm_obs::trace::mix(case_seed, 0x91A6_0000_0001));
    if rng.bernoulli(cc.intensity.partition) && regions > 1 {
        // Partition a non-leader region (the leader-cut case is a
        // different scenario family, exercised by trace_report).
        let victim = nodes[1 + rng.index(regions - 1)];
        let at_era = 1 + rng.index(active_eras / 2);
        let len_eras = 2 + rng.index(4);
        let at = SimTime::from_micros(at_era as u64 * era_us + era_us / 3);
        let heal = SimTime::from_micros((at_era + len_eras) as u64 * era_us + era_us / 3);
        plan = plan.partition_window(vec![victim], at, heal);
    }
    if rng.bernoulli(cc.intensity.kill) {
        let at_era = 2 + rng.index(active_eras / 2);
        plan = plan.kill_leader_at(SimTime::from_micros(at_era as u64 * era_us + era_us / 2));
    }
    if rng.bernoulli(cc.intensity.message) {
        let drop = rng.uniform(0.02, 0.12);
        let delay = Duration::from_millis(rng.index(1200) as u64);
        plan = plan.with_message_chaos(drop, delay);
    }
    plan
}

/// Runs one case end to end and checks every invariant.
pub fn run_case(case: &ChaosCase) -> Verdict {
    let obs = Obs::new(ObsConfig::default());
    let tel = run_experiment_with_obs(&case.cfg, obs.clone());
    let mut trace = RunTrace::build(&case.cfg, &tel, &obs);
    trace.inject(case.injection);
    Verdict {
        index: case.index,
        case_seed: case.case_seed,
        violations: trace.check(&mut standard_invariants()),
        crashed: None,
    }
}

/// Runs the whole campaign on the exec pool: bounded batches, panic
/// isolation, verdicts in index order. Campaign counters land on
/// `obs` under `acm.chaos.campaign.*`.
pub fn run_campaign(cc: &CampaignConfig, obs: &Obs) -> CampaignReport {
    let ctr_plans = obs.counter("acm.chaos.campaign.plans");
    let ctr_violations = obs.counter("acm.chaos.campaign.violations");
    let ctr_crashes = obs.counter("acm.chaos.campaign.crashes");
    let ctr_eras = obs.counter("acm.chaos.campaign.eras_checked");
    let layout = ShardLayout::chunks(cc.plans, cc.batch.max(1));
    let mut verdicts = Vec::with_capacity(cc.plans);
    for (_, range) in layout.iter() {
        let indices: Vec<usize> = range.collect();
        let batch = acm_exec::try_map_collect(indices.clone(), |i| run_case(&build_case(cc, i)));
        for (slot, outcome) in indices.into_iter().zip(batch) {
            let verdict = match outcome {
                Ok(v) => v,
                Err(msg) => Verdict {
                    index: slot,
                    case_seed: acm_obs::trace::mix(cc.seed, slot as u64),
                    violations: Vec::new(),
                    crashed: Some(msg),
                },
            };
            ctr_plans.inc();
            if !verdict.violations.is_empty() {
                ctr_violations.add(verdict.violations.len() as u64);
            }
            if verdict.crashed.is_some() {
                ctr_crashes.inc();
            }
            ctr_eras.add(cc.eras as u64);
            verdicts.push(verdict);
        }
    }
    let fingerprint = verdicts
        .iter()
        .map(|v| v.line())
        .collect::<Vec<_>>()
        .join("\n");
    CampaignReport {
        verdicts,
        fingerprint,
    }
}

/// The per-era observable record of one finished run, reconstructed
/// from telemetry + the obs event log.
#[derive(Debug, Clone)]
pub struct RunTrace {
    eras: usize,
    fractions: Vec<Vec<f64>>,
    installed: Vec<bool>,
    excluded: Vec<Vec<bool>>,
    dead: Vec<Vec<bool>>,
    transitions: Vec<Vec<HealthTransition>>,
    kills: Vec<u32>,
    leader_changes: Vec<u32>,
    alive: Vec<u32>,
    last_activity_era: Option<usize>,
    message_inert: bool,
}

impl RunTrace {
    /// Reconstructs the observable trace of a finished run.
    pub fn build(cfg: &ExperimentConfig, tel: &ExperimentTelemetry, obs: &Obs) -> RunTrace {
        let n = cfg.regions.len();
        let eras = tel.eras();
        let era_us = cfg.era.as_micros().max(1);
        let names: Vec<&str> = cfg.regions.iter().map(|r| r.region.name.as_str()).collect();
        let fractions: Vec<Vec<f64>> = (0..eras)
            .map(|e| (0..n).map(|j| tel.fraction(j).points()[e].value).collect())
            .collect();
        let mut installed = vec![false; eras];
        let mut transitions: Vec<Vec<HealthTransition>> = vec![Vec::new(); eras];
        let mut kills = vec![0u32; eras];
        let mut leader_changes = vec![0u32; eras];
        let mut last_activity_era = None;
        // Per-node crash/recover timeline (era, crashed?) from chaos events.
        let mut node_marks: Vec<Vec<(usize, bool)>> = vec![Vec::new(); n];

        let field_u64 = |ev: &acm_obs::EventRecord, key: &str| -> Option<u64> {
            ev.fields.iter().find_map(|(k, v)| {
                if *k == key {
                    match v {
                        Value::U64(x) => Some(*x),
                        Value::I64(x) => u64::try_from(*x).ok(),
                        _ => None,
                    }
                } else {
                    None
                }
            })
        };
        let field_str = |ev: &acm_obs::EventRecord, key: &str| -> Option<String> {
            ev.fields.iter().find_map(|(k, v)| {
                if *k == key {
                    match v {
                        Value::Str(s) => Some(s.clone()),
                        _ => None,
                    }
                } else {
                    None
                }
            })
        };

        for ev in obs.events_tail(usize::MAX) {
            match ev.kind {
                "plan.install" => {
                    if let Some(e) = field_u64(&ev, "era") {
                        if (e as usize) < eras {
                            installed[e as usize] = true;
                        }
                    }
                }
                "region.quarantine" | "region.probation" | "region.readmit" => {
                    let Some(e) = field_u64(&ev, "era") else {
                        continue;
                    };
                    let Some(name) = field_str(&ev, "region") else {
                        continue;
                    };
                    let Some(j) = names.iter().position(|r| *r == name) else {
                        continue;
                    };
                    let outage = field_u64(&ev, "outage").unwrap_or(0) as u32;
                    let kind = match ev.kind {
                        "region.quarantine" => TransitionKind::Quarantine,
                        "region.probation" => TransitionKind::Probation,
                        _ => TransitionKind::Readmit,
                    };
                    if (e as usize) < eras {
                        transitions[e as usize].push(HealthTransition {
                            region: j,
                            kind,
                            outage,
                        });
                    }
                }
                "leader.change" => {
                    let e = (ev.t_us / era_us) as usize;
                    if e < eras {
                        leader_changes[e] += 1;
                    }
                }
                kind if kind.starts_with("chaos.") => {
                    // Scheduled faults apply at the first era start >= at.
                    let e = (ev.t_us.div_ceil(era_us)) as usize;
                    if e >= eras {
                        continue;
                    }
                    last_activity_era = Some(last_activity_era.map_or(e, |p: usize| p.max(e)));
                    let node = field_u64(&ev, "node").map(|x| x as usize);
                    match kind {
                        "chaos.leader.kill" => {
                            kills[e] += 1;
                            if let Some(jn) = node {
                                if jn < n {
                                    node_marks[jn].push((e, true));
                                }
                            }
                        }
                        "chaos.node.crash" => {
                            if let Some(jn) = node {
                                if jn < n {
                                    node_marks[jn].push((e, true));
                                }
                            }
                        }
                        "chaos.node.recover" => {
                            if let Some(jn) = node {
                                if jn < n {
                                    node_marks[jn].push((e, false));
                                }
                            }
                        }
                        _ => {}
                    }
                }
                _ => {}
            }
        }

        // Roll the health mask and the crash timeline forward era by era.
        let mut excluded = vec![vec![false; n]; eras];
        let mut dead = vec![vec![false; n]; eras];
        let mut alive = vec![n as u32; eras];
        let mut mask = vec![false; n];
        let mut crashed = vec![false; n];
        for e in 0..eras {
            for j in 0..n {
                for &(me, down) in &node_marks[j] {
                    if me == e {
                        crashed[j] = down;
                    }
                }
            }
            for tr in &transitions[e] {
                match tr.kind {
                    TransitionKind::Quarantine => mask[tr.region] = true,
                    TransitionKind::Probation => mask[tr.region] = true,
                    TransitionKind::Readmit => mask[tr.region] = false,
                }
            }
            excluded[e].copy_from_slice(&mask);
            alive[e] = crashed.iter().filter(|&&c| !c).count() as u32;
            for j in 0..n {
                // Dead: crashed now with no recovery scheduled later.
                dead[e][j] = crashed[j] && !node_marks[j].iter().any(|&(me, down)| me > e && !down);
            }
        }

        let message_inert = cfg
            .fault_plan
            .as_ref()
            .map(|p| p.message.is_inert())
            .unwrap_or(true);
        RunTrace {
            eras,
            fractions,
            installed,
            excluded,
            dead,
            transitions,
            kills,
            leader_changes,
            alive,
            last_activity_era,
            message_inert,
        }
    }

    /// Applies a test-only perturbation to the observed trace.
    pub fn inject(&mut self, injection: Injection) {
        match injection {
            Injection::None => {}
            Injection::LeakFlow { region, frac } => {
                for e in 0..self.eras {
                    if !(self.installed[e] && self.excluded[e].get(region) == Some(&true)) {
                        continue;
                    }
                    // Shift flow from the largest region so conservation
                    // still holds and only quarantine_zero_flow fires.
                    let donor = (0..self.fractions[e].len())
                        .filter(|&j| j != region)
                        .max_by(|&a, &b| self.fractions[e][a].total_cmp(&self.fractions[e][b]));
                    if let Some(d) = donor {
                        let shift = frac.min(self.fractions[e][d]);
                        self.fractions[e][d] -= shift;
                        self.fractions[e][region] += shift;
                    }
                }
            }
            Injection::DoubleReadmit { region } => {
                for per_era in &mut self.transitions {
                    let dup: Vec<HealthTransition> = per_era
                        .iter()
                        .filter(|tr| tr.region == region && tr.kind == TransitionKind::Readmit)
                        .copied()
                        .collect();
                    per_era.extend(dup);
                }
            }
        }
    }

    /// Evaluates `invariants` over every era plus the end sweep,
    /// collecting at most one violation per invariant (the first).
    pub fn check(&self, invariants: &mut [Box<dyn Invariant + Send>]) -> Vec<Violation> {
        let mut out = Vec::new();
        let mut tripped = vec![false; invariants.len()];
        for e in 0..self.eras {
            let view = EraView {
                era: e,
                eras_total: self.eras,
                fractions: &self.fractions[e],
                installed: self.installed[e],
                excluded: &self.excluded[e],
                dead: &self.dead[e],
                transitions: &self.transitions[e],
                kills_applied: self.kills[e],
                leader_changes: self.leader_changes[e],
                alive_nodes: self.alive[e],
                last_activity_era: self.last_activity_era,
                message_inert: self.message_inert,
            };
            for (i, inv) in invariants.iter_mut().enumerate() {
                if tripped[i] {
                    continue;
                }
                if let Some(v) = inv.check_era(&view) {
                    tripped[i] = true;
                    out.push(v);
                }
            }
        }
        for (i, inv) in invariants.iter_mut().enumerate() {
            if tripped[i] {
                continue;
            }
            if let Some(v) = inv.check_end() {
                out.push(v);
            }
        }
        out
    }

    /// Number of eras in the trace.
    pub fn eras(&self) -> usize {
        self.eras
    }

    /// Eras in which at least one region was excluded from the plan.
    pub fn excluded_eras(&self) -> usize {
        self.excluded
            .iter()
            .filter(|m| m.iter().any(|&x| x))
            .count()
    }
}
