//! Delta-debugging shrinker for violating fault plans.
//!
//! Given a plan whose run violates some invariant, [`shrink_plan`]
//! greedily minimizes it while re-running the (deterministic) checker
//! after every candidate cut. Three move families, tried strongest
//! first each round:
//!
//! 1. **Drop a component** — a matched fault/recovery window or lone
//!    event ([`FaultPlan::components`]); removes whole faults.
//! 2. **Narrow a window** — halve a surviving window's duration
//!    ([`FaultPlan::narrow_component`]).
//! 3. **Weaken message chaos** — quantized halving with snap-to-zero
//!    ([`FaultPlan::weaken_message`]).
//!
//! Termination is well-founded: every *accepted* move strictly
//! decreases the measure `(event count, total window length in µs,
//! message-chaos weight)` in lexicographic-sum terms, and a round that
//! accepts nothing ends the loop. The checker is a pure function of the
//! plan (same seed → same verdict), so shrinking is deterministic and
//! the final plan still violates — both properties are proptested.

use acm_overlay::FaultPlan;

/// The result of a shrink.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The minimized plan (still violating under the caller's check).
    pub plan: FaultPlan,
    /// Accepted shrink moves.
    pub steps: u32,
    /// Candidate plans evaluated (accepted + rejected).
    pub attempts: u32,
}

/// Safety valve on checker invocations; generously above what the
/// strictly-decreasing measure allows for any campaign-sized plan.
const MAX_ATTEMPTS: u32 = 2_000;

/// Greedily minimizes `plan` while `still_violates` holds. The caller's
/// closure must be deterministic (it re-runs the world; all campaign
/// runs are) and must return `true` for the input plan — otherwise the
/// input is already "minimal" and is returned unchanged.
pub fn shrink_plan<F>(plan: &FaultPlan, mut still_violates: F) -> ShrinkOutcome
where
    F: FnMut(&FaultPlan) -> bool,
{
    let mut current = plan.clone();
    let mut steps = 0u32;
    let mut attempts = 0u32;
    loop {
        let mut progressed = false;

        // 1. Try dropping each component, first-fit.
        for c in current.components() {
            if attempts >= MAX_ATTEMPTS {
                return ShrinkOutcome {
                    plan: current,
                    steps,
                    attempts,
                };
            }
            let candidate = current.without_component(&c);
            attempts += 1;
            if still_violates(&candidate) {
                current = candidate;
                steps += 1;
                progressed = true;
                break;
            }
        }
        if progressed {
            continue;
        }

        // 2. Try narrowing each surviving window, first-fit.
        for c in current.components() {
            let Some(candidate) = current.narrow_component(&c) else {
                continue;
            };
            if attempts >= MAX_ATTEMPTS {
                return ShrinkOutcome {
                    plan: current,
                    steps,
                    attempts,
                };
            }
            attempts += 1;
            if still_violates(&candidate) {
                current = candidate;
                steps += 1;
                progressed = true;
                break;
            }
        }
        if progressed {
            continue;
        }

        // 3. Try weakening message chaos one quantized step.
        if let Some(candidate) = current.weaken_message() {
            if attempts < MAX_ATTEMPTS {
                attempts += 1;
                if still_violates(&candidate) {
                    current = candidate;
                    steps += 1;
                    continue;
                }
            }
        }

        return ShrinkOutcome {
            plan: current,
            steps,
            attempts,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acm_overlay::NodeId;
    use acm_sim::time::{Duration, SimTime};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn shrink_drops_irrelevant_components_and_keeps_the_culprit() {
        let plan = FaultPlan::scripted(9, Vec::new())
            .link_flap(n(0), n(1), t(10), t(40))
            .crash_window(n(2), t(100), t(400))
            .kill_leader_at(t(700))
            .with_message_chaos(0.1, Duration::from_secs(1));
        // "Violation" := the plan still contains the crash window of vmc2.
        let culprit = |p: &FaultPlan| p.components().iter().any(|c| c.label == "crash vmc2");
        assert!(culprit(&plan));
        let out = shrink_plan(&plan, culprit);
        assert!(culprit(&out.plan), "shrinking preserves the violation");
        assert_eq!(out.plan.events.len(), 2, "only the crash window remains");
        assert!(out.plan.message.is_inert(), "message chaos weakened away");
        assert!(out.steps >= 3);
        // The surviving window was narrowed to the floor.
        let comps = out.plan.components();
        assert_eq!(comps.len(), 1);
        let (s, e) = (comps[0].indices[0], comps[0].indices[1]);
        assert_eq!(
            out.plan.events[e].at.as_micros() - out.plan.events[s].at.as_micros(),
            1,
            "window narrowed to the 1µs floor"
        );
    }

    #[test]
    fn shrink_of_a_non_violating_plan_is_identity() {
        let plan = FaultPlan::scripted(1, Vec::new()).link_flap(n(0), n(1), t(5), t(6));
        let out = shrink_plan(&plan, |_| false);
        assert_eq!(out.plan, plan);
        assert_eq!(out.steps, 0);
    }

    #[test]
    fn shrink_terminates_on_always_violating_checks() {
        // Worst case: everything "violates", so every move is accepted
        // until the measure bottoms out at the empty inert plan.
        let plan = FaultPlan::scripted(4, Vec::new())
            .link_flap(n(0), n(1), t(1), t(1000))
            .crash_window(n(1), t(2), t(2000))
            .partition_window(vec![n(2)], t(3), t(3000))
            .kill_leader_at(t(50))
            .with_message_chaos(0.9, Duration::from_secs(30));
        let out = shrink_plan(&plan, |_| true);
        assert!(out.plan.events.is_empty());
        assert!(out.plan.message.is_inert());
        assert!(out.attempts < MAX_ATTEMPTS);
    }
}
