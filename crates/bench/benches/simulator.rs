//! Micro-bench: the simulation substrate — event-queue throughput, RNG
//! draws, and one VM control era (the inner loop of every experiment).

use acm_sim::event::EventQueue;
use acm_sim::rng::SimRng;
use acm_sim::sim::Simulator;
use acm_sim::time::{Duration, SimTime};
use acm_vm::{AnomalyConfig, FailureSpec, Vm, VmFlavor, VmId, VmState};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        let mut rng = SimRng::new(1);
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule(SimTime::from_micros(rng.next_u64() % 1_000_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum += v;
            }
            black_box(sum)
        })
    });
}

fn bench_simulator(c: &mut Criterion) {
    c.bench_function("simulator_10k_events", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(0u64);
            fn chain(s: &mut Simulator<u64>) {
                s.world += 1;
                if s.world < 10_000 {
                    s.schedule_in(Duration::from_micros(10), chain);
                }
            }
            sim.schedule_at(SimTime::ZERO, chain);
            sim.run_to_completion(u64::MAX);
            black_box(sim.world)
        })
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng_exponential_1k", |b| {
        let mut rng = SimRng::new(3);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1000 {
                acc += rng.exponential(7.0);
            }
            black_box(acc)
        })
    });
}

fn bench_vm_era(c: &mut Criterion) {
    c.bench_function("vm_process_era", |b| {
        let mut vm = Vm::new(
            VmId(0),
            VmFlavor::m3_medium(),
            AnomalyConfig::default(),
            FailureSpec::default(),
            VmState::Active,
            SimRng::new(4),
        );
        let mut now = SimTime::ZERO;
        let era = Duration::from_secs(30);
        b.iter(|| {
            let out = vm.process_era(now, era, 10.0);
            now += era;
            if !vm.is_active() {
                vm.start_rejuvenation(now, Duration::from_secs(1));
                now += Duration::from_secs(1);
                vm.poll_rejuvenation(now);
                vm.activate(now);
            }
            black_box(out)
        })
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_simulator,
    bench_rng,
    bench_vm_era
);
criterion_main!(benches);
