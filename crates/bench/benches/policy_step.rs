//! Micro-bench: one `POLICY()` evaluation (paper Alg. 2 inner call) for
//! each policy at growing region counts — the leader-side cost of the
//! planning state.

use acm_core::ewma::RmttfEwma;
use acm_core::plan::ForwardPlan;
use acm_core::policy::{uniform_fractions, LoadBalancingPolicy, PolicyKind};
use acm_sim::rng::SimRng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_step");
    for &n in &[3usize, 16, 128] {
        let mut rng = SimRng::new(7);
        let prev = uniform_fractions(n);
        let rmttf: Vec<f64> = (0..n).map(|_| rng.uniform(100.0, 1000.0)).collect();
        for kind in PolicyKind::ALL {
            let policy = LoadBalancingPolicy::new(kind);
            group.bench_with_input(BenchmarkId::new(kind.name(), n), &n, |b, _| {
                let mut r = SimRng::new(9);
                b.iter(|| {
                    black_box(policy.next_fractions(
                        black_box(&prev),
                        black_box(&rmttf),
                        100.0,
                        &mut r,
                    ))
                })
            });
        }
    }
    group.finish();
}

fn bench_forward_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("forward_plan");
    for &n in &[3usize, 16, 128] {
        let mut rng = SimRng::new(11);
        let norm = |raw: Vec<f64>| {
            let s: f64 = raw.iter().sum();
            raw.into_iter().map(|x| x / s).collect::<Vec<_>>()
        };
        let ingress = norm((0..n).map(|_| rng.uniform(0.1, 1.0)).collect());
        let target = norm((0..n).map(|_| rng.uniform(0.1, 1.0)).collect());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(ForwardPlan::build(black_box(&ingress), black_box(&target))))
        });
    }
    group.finish();
}

fn bench_ewma(c: &mut Criterion) {
    c.bench_function("ewma_update_1k", |b| {
        let mut rng = SimRng::new(13);
        let inputs: Vec<f64> = (0..1000).map(|_| rng.uniform(100.0, 1000.0)).collect();
        b.iter(|| {
            let mut e = RmttfEwma::new(0.8);
            let mut last = 0.0;
            for &x in &inputs {
                last = e.update(x);
            }
            black_box(last)
        })
    });
}

criterion_group!(benches, bench_policies, bench_forward_plan, bench_ewma);
criterion_main!(benches);
