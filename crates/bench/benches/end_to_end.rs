//! Macro-bench: full control-loop eras and whole experiments — what one
//! wall-clock second of harness time buys in simulated cluster time.

use acm_core::config::{ExperimentConfig, PredictorChoice};
use acm_core::control_loop::ControlLoop;
use acm_core::framework::{build_vmcs, run_experiment};
use acm_core::policy::PolicyKind;
use acm_sim::rng::SimRng;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn oracle_cfg(eras: usize) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::three_region_fig4(PolicyKind::AvailableResources, 7);
    cfg.predictor = PredictorChoice::Oracle;
    cfg.eras = eras;
    cfg
}

fn bench_single_era(c: &mut Criterion) {
    c.bench_function("control_loop_step_era", |b| {
        let cfg = oracle_cfg(1);
        let mut rng = SimRng::new(cfg.seed);
        let vmcs = build_vmcs(&cfg, &mut rng);
        let mut cl = ControlLoop::new(&cfg, vmcs, rng);
        b.iter(|| {
            cl.step_era();
            black_box(cl.now())
        })
    });
}

fn bench_full_experiment(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment");
    group.sample_size(10);
    group.bench_function("fig4_oracle_40_eras", |b| {
        let cfg = oracle_cfg(40);
        b.iter(|| black_box(run_experiment(&cfg)))
    });
    group.finish();
}

criterion_group!(benches, bench_single_era, bench_full_experiment);
criterion_main!(benches);
