//! Micro-bench: F2PM model training and prediction per family on a real
//! harvested feature database — the cost of the toolchain's initial phase
//! and of the per-era RTTF predictions in Alg. 1.

use acm_ml::model::{ModelKind, Regressor};
use acm_pcam::training::{collect_database, CollectionConfig};
use acm_sim::rng::SimRng;
use acm_vm::{AnomalyConfig, FailureSpec, VmFlavor};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_models(c: &mut Criterion) {
    let mut rng = SimRng::new(2016);
    let db = collect_database(
        &VmFlavor::m3_medium(),
        &AnomalyConfig::default(),
        &FailureSpec::default(),
        &CollectionConfig::default(),
        &mut rng,
    );

    let mut train = c.benchmark_group("ml_train");
    train.sample_size(10);
    for kind in ModelKind::ALL {
        train.bench_function(kind.name(), |b| {
            b.iter(|| {
                let mut r = SimRng::new(5);
                black_box(kind.fit(black_box(&db), &mut r))
            })
        });
    }
    train.finish();

    let mut predict = c.benchmark_group("ml_predict");
    let row = db.row(db.len() / 2).to_vec();
    for kind in ModelKind::ALL {
        let mut r = SimRng::new(5);
        let model = kind.fit(&db, &mut r);
        predict.bench_function(kind.name(), |b| {
            b.iter(|| black_box(model.predict_one(black_box(&row))))
        });
    }
    predict.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
