//! Micro-bench: F2PM model training and prediction per family on a real
//! harvested feature database — the cost of the toolchain's initial phase
//! and of the per-era RTTF predictions in Alg. 1.

use acm_ml::model::{ModelKind, Regressor};
use acm_pcam::training::{collect_database, CollectionConfig};
use acm_sim::rng::SimRng;
use acm_vm::{AnomalyConfig, FailureSpec, VmFlavor};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_models(c: &mut Criterion) {
    let mut rng = SimRng::new(2016);
    let db = collect_database(
        &VmFlavor::m3_medium(),
        &AnomalyConfig::default(),
        &FailureSpec::default(),
        &CollectionConfig::default(),
        &mut rng,
    );

    let mut train = c.benchmark_group("ml_train");
    train.sample_size(10);
    for kind in ModelKind::ALL {
        train.bench_function(kind.name(), |b| {
            b.iter(|| {
                let mut r = SimRng::new(5);
                black_box(kind.fit(black_box(&db), &mut r))
            })
        });
    }
    train.finish();

    let mut predict = c.benchmark_group("ml_predict");
    let row = db.row(db.len() / 2).to_vec();
    for kind in ModelKind::ALL {
        let mut r = SimRng::new(5);
        let model = kind.fit(&db, &mut r);
        predict.bench_function(kind.name(), |b| {
            b.iter(|| black_box(model.predict_one(black_box(&row))))
        });
    }
    predict.finish();

    // Batched vs scalar tree prediction over a realistic era-sized block of
    // rows; asserts the batch path is exactly equivalent before timing it.
    let mut batch = c.benchmark_group("ml_predict_batch");
    let rows: Vec<Vec<f64>> = (0..256).map(|i| db.row(i % db.len()).to_vec()).collect();
    let mut r = SimRng::new(5);
    let tree = match ModelKind::RepTree.fit(&db, &mut r) {
        acm_ml::model::AnyModel::RepTree(t) => t,
        _ => unreachable!("RepTree.fit returns a tree"),
    };
    let scalar: Vec<f64> = rows.iter().map(|row| tree.predict_one(row)).collect();
    assert_eq!(tree.predict_batch(&rows), scalar, "batch must match scalar");
    batch.bench_function("rep_tree_scalar_256", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for row in &rows {
                acc += tree.predict_one(black_box(row));
            }
            black_box(acc)
        })
    });
    batch.bench_function("rep_tree_batch_256", |b| {
        let mut out = Vec::with_capacity(rows.len());
        b.iter(|| {
            tree.predict_batch_into(rows.iter().map(|r| r.as_slice()), &mut out);
            black_box(out.iter().sum::<f64>())
        })
    });
    batch.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
