//! Micro-bench: overlay routing and leader election — the control-plane
//! costs of Analyze/Execute message exchange and of VMC failover.

use acm_overlay::election;
use acm_overlay::graph::{NodeId, OverlayGraph};
use acm_overlay::routing::dijkstra;
use acm_sim::rng::SimRng;
use acm_sim::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn random_graph(n: u32, edge_prob: f64, seed: u64) -> OverlayGraph {
    let mut rng = SimRng::new(seed);
    let mut g = OverlayGraph::new();
    for i in 0..n {
        g.add_node(NodeId(i));
    }
    // Ring for connectivity plus random chords.
    for i in 0..n {
        g.add_link(
            NodeId(i),
            NodeId((i + 1) % n),
            Duration::from_millis(rng.index(50) as u64 + 1),
        );
    }
    for i in 0..n {
        for j in (i + 2)..n {
            if rng.bernoulli(edge_prob) {
                g.add_link(
                    NodeId(i),
                    NodeId(j),
                    Duration::from_millis(rng.index(80) as u64 + 1),
                );
            }
        }
    }
    g
}

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("dijkstra");
    for &n in &[3u32, 16, 64] {
        let g = random_graph(n, 0.1, 42);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(dijkstra(&g, NodeId(0), NodeId(n - 1))))
        });
    }
    group.finish();
}

fn bench_election(c: &mut Criterion) {
    let mut group = c.benchmark_group("leader_election");
    for &n in &[3u32, 16, 64] {
        let g = random_graph(n, 0.1, 43);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(election::elect(&g)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_routing, bench_election);
criterion_main!(benches);
