//! Shared harness code for the figure-regeneration binaries.
//!
//! Every evaluation artefact of the paper has a binary here (see
//! `DESIGN.md` §4 for the index):
//!
//! * `fig3` — 2-region hybrid, all three policies (paper Figure 3),
//! * `fig4` — 3-region hybrid (paper Figure 4),
//! * `model_selection` — the F2PM model ranking behind the REP-Tree choice,
//! * `ablation_beta` / `ablation_k` / `ablation_heterogeneity` /
//!   `ablation_rejuvenation` — design-choice sweeps.
//!
//! Binaries write CSVs under `results/` and print a qualitative-claim
//! scorecard comparing the run against the paper's reported shape.

pub mod plot;

use acm_core::config::ExperimentConfig;
use acm_core::framework::run_experiment;
use acm_core::telemetry::ExperimentTelemetry;
use std::fs;
use std::path::{Path, PathBuf};

/// Where the regenerated figure data lands.
pub const RESULTS_DIR: &str = "results";

/// Runs one experiment and writes its telemetry CSV to
/// `results/<name>.csv`. Returns the telemetry for claim checking.
pub fn run_and_dump(cfg: &ExperimentConfig) -> ExperimentTelemetry {
    let tel = run_experiment(cfg);
    let dir = Path::new(RESULTS_DIR);
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {RESULTS_DIR}: {e}");
        return tel;
    }
    let path: PathBuf = dir.join(format!("{}.csv", cfg.name));
    match fs::write(&path, tel.to_csv()) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
    tel
}

/// One pass/fail line of the qualitative scorecard.
pub struct Claim {
    /// Claim id (e.g. "C2").
    pub id: &'static str,
    /// What the paper reports.
    pub statement: String,
    /// Whether this run reproduced it.
    pub holds: bool,
    /// The measured quantity backing the verdict.
    pub evidence: String,
}

impl Claim {
    /// Formats the scorecard line.
    pub fn line(&self) -> String {
        format!(
            "[{}] {} — {} ({})",
            if self.holds { "PASS" } else { "FAIL" },
            self.id,
            self.statement,
            self.evidence
        )
    }
}

/// Prints a scorecard and returns how many claims failed.
pub fn print_scorecard(claims: &[Claim]) -> usize {
    println!("\n--- qualitative claims vs paper ---");
    let mut failures = 0;
    for c in claims {
        println!("{}", c.line());
        if !c.holds {
            failures += 1;
        }
    }
    failures
}

/// Tail window used for steady-state statistics (last third of the run).
pub fn tail_window(tel: &ExperimentTelemetry) -> usize {
    (tel.eras() / 3).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_line_formats() {
        let c = Claim {
            id: "C1",
            statement: "x".into(),
            holds: true,
            evidence: "y".into(),
        };
        assert_eq!(c.line(), "[PASS] C1 — x (y)");
        let c = Claim { holds: false, ..c };
        assert!(c.line().starts_with("[FAIL]"));
    }
}
