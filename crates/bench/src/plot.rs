//! Terminal time-series rendering.
//!
//! The paper's figures are line plots; the regenerator binaries dump full
//! CSVs for real plotting *and* render the series as small ASCII charts so
//! the shapes (convergence, oscillation, spikes) are visible straight from
//! the terminal.

/// Renders one or more aligned series as an ASCII chart.
///
/// Each series gets its own glyph; overlapping points show the glyph of the
/// last series drawn. The y-range spans all series jointly (so convergence
/// of two RMTTF lines is visible as the glyphs meeting).
pub fn ascii_chart(title: &str, series: &[(&str, &[f64])], width: usize, height: usize) -> String {
    assert!(width >= 10 && height >= 3, "chart too small");
    assert!(!series.is_empty(), "nothing to plot");
    let glyphs = ['*', 'o', '+', 'x', '#', '@'];

    let n = series.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
    if n == 0 {
        return format!("{title}\n(empty series)\n");
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for (_, values) in series {
        for &v in values.iter().filter(|v| v.is_finite()) {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !lo.is_finite() || !hi.is_finite() {
        return format!("{title}\n(no finite data)\n");
    }
    if (hi - lo).abs() < 1e-12 {
        hi = lo + 1.0; // flat line: give it one unit of headroom
    }

    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, values)) in series.iter().enumerate() {
        let glyph = glyphs[si % glyphs.len()];
        for (i, &v) in values.iter().enumerate() {
            if !v.is_finite() {
                continue;
            }
            let x = if values.len() == 1 {
                0
            } else {
                i * (width - 1) / (values.len() - 1)
            };
            let frac = (v - lo) / (hi - lo);
            let y = ((1.0 - frac) * (height - 1) as f64).round() as usize;
            grid[y.min(height - 1)][x] = glyph;
        }
    }

    let mut out = String::new();
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(si, (name, _))| format!("{} {name}", glyphs[si % glyphs.len()]))
        .collect();
    out.push_str(&format!("{title}   [{}]\n", legend.join("  ")));
    for (row, line) in grid.iter().enumerate() {
        let label = if row == 0 {
            format!("{hi:>10.1} |")
        } else if row == height - 1 {
            format!("{lo:>10.1} |")
        } else {
            format!("{:>10} |", "")
        };
        out.push_str(&label);
        out.extend(line.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>11}+{}\n", "", "-".repeat(width)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_min_and_max_labels() {
        let values: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let chart = ascii_chart("ramp", &[("up", &values)], 40, 8);
        assert!(chart.contains("49.0"));
        assert!(chart.contains("0.0"));
        assert!(chart.contains("* up"));
        assert_eq!(chart.lines().count(), 10); // title + 8 rows + axis
    }

    #[test]
    fn two_series_use_distinct_glyphs() {
        let a: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..20).map(|i| (20 - i) as f64).collect();
        let chart = ascii_chart("cross", &[("a", &a), ("b", &b)], 30, 6);
        assert!(chart.contains('*'));
        assert!(chart.contains('o'));
    }

    #[test]
    fn flat_series_does_not_divide_by_zero() {
        let flat = vec![5.0; 10];
        let chart = ascii_chart("flat", &[("c", &flat)], 20, 4);
        assert!(chart.contains('*'));
    }

    #[test]
    fn empty_series_is_handled() {
        let chart = ascii_chart("none", &[("e", &[])], 20, 4);
        assert!(chart.contains("empty"));
    }

    #[test]
    fn non_finite_values_are_skipped() {
        let values = [1.0, f64::NAN, 3.0];
        let chart = ascii_chart("nan", &[("n", &values)], 20, 4);
        assert!(chart.contains('*'));
    }
}
