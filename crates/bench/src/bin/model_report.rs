//! Model-lifecycle report.
//!
//! Drives the versioned model registry (background refits, shadow
//! evaluation, promote/rollback) through the full control loop and
//! verifies its contract, writing the numbers to `BENCH_PR9.json` at the
//! repository root:
//!
//! * **Promotion under drift** — regions run a memory-leak profile 3x
//!   the one the serving models were trained on; the drift monitor must
//!   fire, background refits must be collected at their era boundary and
//!   at least one live-fitted candidate must be promoted.
//! * **Poison resistance** — after an honest warm-up, every refit is
//!   target-shuffled (the `poison_refits` chaos hook): the shadow gate
//!   must reject them all, the incumbent keeps serving.
//! * **Plan-phase isolation** — refits train on the exec pool and join
//!   at a fixed era boundary outside the Plan span; the Plan-phase p99
//!   with the lifecycle on must stay within a generous factor of the
//!   lifecycle-off baseline.
//! * **Why-chain completeness** — on a traced run every `model.promote`
//!   chains off its `model.refit.start`, and refits chain off the
//!   `drift.signal` that triggered them.
//! * **Thread-width identity** — telemetry, final model versions and the
//!   event count must be byte-identical at `ACM_THREADS` ∈ {1, 2, 4}.
//!
//! ```text
//! cargo run --release -p acm-bench --bin model_report [-- --gate]
//! ```

use acm_core::config::ExperimentConfig;
use acm_core::control_loop::ControlLoop;
use acm_core::policy::PolicyKind;
use acm_ml::model::ModelKind;
use acm_ml::toolchain::{F2pmToolchain, RttfPredictor};
use acm_obs::{EventRecord, Value};
use acm_pcam::training::{collect_database, CollectionConfig};
use acm_pcam::{DriftConfig, LifecycleConfig, RttfSource, Vmc};
use acm_sim::rng::SimRng;
use std::time::Instant;

/// Eras of the promotion scenario.
const PROMOTION_ERAS: usize = 60;
/// Honest warm-up, drain and poisoned-phase eras of the poison scenario.
const POISON_WARMUP_ERAS: usize = 30;
const POISON_DRAIN_ERAS: usize = 10;
const POISON_ERAS: usize = 40;
/// Plan-phase p99 with the lifecycle on may exceed the lifecycle-off
/// baseline by at most this factor (refits must never run inside Plan).
const PLAN_P99_FACTOR: f64 = 10.0;
/// Absolute escape hatch for the plan-phase gate: when both p99s are
/// this small the ratio is noise, not a regression.
const PLAN_P99_ESCAPE_NS: f64 = 1_000_000.0;

struct Report {
    entries: Vec<(String, f64)>,
    failures: Vec<String>,
}

impl Report {
    fn push(&mut self, name: &str, value: f64) {
        println!("{name:<52} {value:>16.3}");
        self.entries.push((name.to_string(), value));
    }

    fn gate(&mut self, ok: bool, what: String) {
        if !ok {
            println!("  GATE VIOLATION: {what}");
            self.failures.push(what);
        }
    }

    fn to_json(&self) -> String {
        let mut o = acm_obs::json::JsonObject::new();
        for (name, value) in &self.entries {
            o.field_f64(name, (value * 1000.0).round() / 1000.0);
        }
        o.field_u64("gate_violations", self.failures.len() as u64);
        let mut s = o.finish();
        s.push('\n');
        s
    }
}

/// The drifted deployment: Fig. 3 regions leaking memory 3x faster than
/// any training profile assumed, a sensitive drift monitor and a
/// lifecycle tuned to act within the scenario's era budget.
fn drifted_cfg() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, 42);
    for spec in &mut cfg.regions {
        spec.region.anomaly.leak_size_mb *= 3.0;
    }
    cfg.drift = DriftConfig {
        window: 8,
        miss_bound: 0.25,
        min_samples: 2,
    };
    cfg.lifecycle = LifecycleConfig {
        enabled: true,
        min_labelled_rows: 20,
        shadow_min_samples: 6,
        cooldown_eras: 4,
        ..Default::default()
    };
    cfg
}

/// Trains one stale predictor per region: fitted to the DEFAULT anomaly
/// profile of the region's flavor, i.e. the world before it drifted.
fn train_stale_models(cfg: &ExperimentConfig) -> Vec<RttfPredictor> {
    let mut rng = SimRng::new(7);
    let quick = CollectionConfig {
        lambdas: vec![4.0, 8.0, 16.0],
        runs_per_lambda: 3,
        ..Default::default()
    };
    cfg.regions
        .iter()
        .map(|spec| {
            let db = collect_database(
                &spec.region.flavor,
                &acm_vm::AnomalyConfig::default(),
                &spec.region.failure_spec,
                &quick,
                &mut rng,
            );
            F2pmToolchain {
                models: vec![ModelKind::RepTree],
                ..Default::default()
            }
            .run(&db, &mut rng)
            .0
        })
        .collect()
}

/// Wires the control loop from pre-trained models (cloned per call so
/// every width/run starts from the identical state).
fn build_loop(cfg: &ExperimentConfig, models: &[RttfPredictor]) -> ControlLoop {
    let mut rng = SimRng::new(cfg.seed);
    let vmcs: Vec<Vmc> = cfg
        .regions
        .iter()
        .zip(models)
        .map(|(spec, m)| {
            Vmc::new(
                spec.region.clone(),
                RttfSource::Model(m.clone()),
                rng.split(),
            )
        })
        .collect();
    ControlLoop::new(cfg, vmcs, rng)
}

fn count(events: &[EventRecord], kind: &str) -> usize {
    events.iter().filter(|e| e.kind == kind).count()
}

fn versions(cl: &ControlLoop) -> Vec<u64> {
    cl.vmcs()
        .iter()
        .map(|v| v.lifecycle().map_or(0, |l| l.version()))
        .collect()
}

/// Promotion under injected drift: the whole pipeline must turn over.
fn promotion_scenario(report: &mut Report, models: &[RttfPredictor]) {
    let cfg = drifted_cfg();
    let mut cl = build_loop(&cfg, models);
    let start = Instant::now();
    cl.run(PROMOTION_ERAS);
    let wall = start.elapsed().as_secs_f64();
    report.push("promotion_eras_per_s", PROMOTION_ERAS as f64 / wall);

    let events = cl.obs().events_tail(usize::MAX);
    let started = count(&events, "model.refit.start");
    let done = count(&events, "model.refit.done");
    let promoted = count(&events, "model.promote");
    report.push("promotion_refits_started", started as f64);
    report.push("promotion_refits_done", done as f64);
    report.push("promotion_promotions", promoted as f64);
    report.push(
        "promotion_rejections",
        count(&events, "model.reject") as f64,
    );
    report.push(
        "promotion_rollbacks",
        count(&events, "model.rollback") as f64,
    );
    let vs = versions(&cl);
    report.push(
        "promotion_max_serving_version",
        *vs.iter().max().unwrap() as f64,
    );
    report.gate(started >= 1, "lifecycle: no refit ever submitted".into());
    report.gate(done >= 1, "lifecycle: no refit ever collected".into());
    report.gate(
        promoted >= 1,
        "lifecycle: drift never produced a promotion".into(),
    );
    report.gate(
        vs.iter().any(|v| *v > 1),
        "lifecycle: no region serves a refit model".into(),
    );
    // Every submitted refit is either collected or still in flight at
    // the cut — at most one pending per region.
    report.gate(
        started - done <= cl.vmcs().len(),
        format!(
            "lifecycle: {} refits submitted, only {done} collected",
            started
        ),
    );
}

/// Honest warm-up, then poisoned refits only: zero further promotions.
fn poison_scenario(report: &mut Report, models: &[RttfPredictor]) {
    let mut cfg = drifted_cfg();
    // Hair-trigger drift so refits keep coming in both phases.
    cfg.drift = DriftConfig {
        window: 8,
        miss_bound: 0.01,
        min_samples: 1,
    };
    let mut cl = build_loop(&cfg, models);
    cl.run(POISON_WARMUP_ERAS);
    cl.set_lifecycle_poison(true);
    // Drain refits that were in flight (honestly trained) at the flip.
    cl.run(POISON_DRAIN_ERAS);
    let events = cl.obs().events_tail(usize::MAX);
    let honest_promotions = count(&events, "model.promote");
    let honest_refits = count(&events, "model.refit.done");
    report.push("poison_honest_promotions", honest_promotions as f64);
    report.gate(
        honest_promotions >= 1,
        "poison: warm-up produced no promotion to defend".into(),
    );

    cl.run(POISON_ERAS);
    let events = cl.obs().events_tail(usize::MAX);
    let final_promotions = count(&events, "model.promote");
    let final_refits = count(&events, "model.refit.done");
    report.push(
        "poison_phase_refits_done",
        (final_refits - honest_refits) as f64,
    );
    report.push(
        "poison_phase_promotions",
        (final_promotions - honest_promotions) as f64,
    );
    report.gate(
        final_refits > honest_refits,
        "poison: poisoned phase collected no refits".into(),
    );
    report.gate(
        final_promotions == honest_promotions,
        format!(
            "poison: {} target-shuffled candidate(s) promoted",
            final_promotions - honest_promotions
        ),
    );
}

/// Plan-phase p99 with the lifecycle on vs off: background refits must
/// never leak into the leader's Plan span.
fn plan_isolation_scenario(report: &mut Report, models: &[RttfPredictor]) {
    let plan_p99 = |cfg: &ExperimentConfig| -> f64 {
        let mut cl = build_loop(cfg, models);
        cl.run(PROMOTION_ERAS);
        cl.obs()
            .metrics()
            .iter()
            .find_map(|m| match &m.value {
                acm_obs::MetricValue::Histogram(h) if m.name == "acm.core.control_loop.plan_ns" => {
                    Some(h.p99() as f64)
                }
                _ => None,
            })
            .expect("plan timer histogram missing")
    };
    let on = plan_p99(&drifted_cfg());
    let mut off_cfg = drifted_cfg();
    off_cfg.lifecycle.enabled = false;
    let off = plan_p99(&off_cfg);
    report.push("plan_p99_ns_lifecycle_on", on);
    report.push("plan_p99_ns_lifecycle_off", off);
    let ok = on <= off * PLAN_P99_FACTOR || on <= PLAN_P99_ESCAPE_NS;
    report.gate(
        ok,
        format!("plan isolation: p99 {on:.0}ns vs baseline {off:.0}ns exceeds {PLAN_P99_FACTOR}x"),
    );
}

/// Traced run: the drift -> refit -> promote why-chain must be complete.
fn trace_chain_scenario(report: &mut Report, models: &[RttfPredictor]) {
    let mut cfg = drifted_cfg();
    cfg.obs = acm_obs::ObsConfig::traced(2026);
    let mut cl = build_loop(&cfg, models);
    cl.run(PROMOTION_ERAS);
    let events = cl.obs().events_tail(usize::MAX);
    let field = |e: &EventRecord, k: &str| -> Option<u64> {
        e.fields.iter().find_map(|(n, v)| match (n, v) {
            (name, Value::U64(u)) if *name == k => Some(*u),
            _ => None,
        })
    };
    let spans_of = |kind: &str| -> Vec<u64> {
        events
            .iter()
            .filter(|e| e.kind == kind)
            .filter_map(|e| field(e, "span"))
            .collect()
    };
    let causes_of = |kind: &str| -> Vec<u64> {
        events
            .iter()
            .filter(|e| e.kind == kind)
            .filter_map(|e| field(e, "cause"))
            .collect()
    };
    let drift_spans = spans_of("drift.signal");
    let refit_spans = spans_of("model.refit.start");
    let refit_causes = causes_of("model.refit.start");
    let promote_causes = causes_of("model.promote");
    let refits_off_drift = refit_causes
        .iter()
        .filter(|c| drift_spans.contains(c))
        .count();
    let promotes_off_refit = promote_causes
        .iter()
        .filter(|c| refit_spans.contains(c))
        .count();
    report.push("trace_drift_signals", drift_spans.len() as f64);
    report.push("trace_refits_chained_to_drift", refits_off_drift as f64);
    report.push("trace_promotes_chained_to_refit", promotes_off_refit as f64);
    report.gate(
        !drift_spans.is_empty(),
        "trace: no drift.signal root".into(),
    );
    report.gate(
        refits_off_drift >= 1,
        "trace: no refit chains off a drift.signal".into(),
    );
    report.gate(
        !promote_causes.is_empty() && promotes_off_refit == promote_causes.len(),
        "trace: a promotion does not chain off its refit".into(),
    );
}

/// The full lifecycle loop at 1/2/4 threads: telemetry, event count and
/// final serving versions must be identical at every width.
fn width_scenario(report: &mut Report, models: &[RttfPredictor]) {
    let cfg = drifted_cfg();
    let before = acm_exec::current_threads();
    let mut baseline: Option<(String, usize, Vec<u64>)> = None;
    for threads in [1usize, 2, 4] {
        acm_exec::configure_threads(threads);
        let mut cl = build_loop(&cfg, models);
        let start = Instant::now();
        cl.run(PROMOTION_ERAS);
        let wall = start.elapsed().as_secs_f64();
        acm_exec::configure_threads(before);
        report.push(
            &format!("width_eras_per_s_{threads}t"),
            PROMOTION_ERAS as f64 / wall,
        );
        let state = (
            cl.telemetry().to_csv(),
            cl.obs().events_len(),
            versions(&cl),
        );
        match &baseline {
            None => baseline = Some(state),
            Some(b) => {
                let identical = *b == state;
                report.push(
                    &format!("width_identity_1t_vs_{threads}t_ok"),
                    f64::from(identical),
                );
                report.gate(
                    identical,
                    format!("width: lifecycle run diverges between 1 and {threads} threads"),
                );
            }
        }
    }
}

fn main() {
    let gate = std::env::args().any(|a| a == "--gate");
    let mut report = Report {
        entries: Vec::new(),
        failures: Vec::new(),
    };

    println!(
        "model-lifecycle report ({} mode, {} cores)\n",
        if gate { "gated" } else { "report" },
        acm_exec::available_threads()
    );
    println!("training stale per-region models (pre-drift profiles)");
    let cfg = drifted_cfg();
    let models = train_stale_models(&cfg);

    println!("\npromotion under injected drift ({PROMOTION_ERAS} eras)");
    promotion_scenario(&mut report, &models);
    println!("\npoisoned refits after an honest warm-up");
    poison_scenario(&mut report, &models);
    println!("\nplan-phase isolation (lifecycle on vs off)");
    plan_isolation_scenario(&mut report, &models);
    println!("\nwhy-chain completeness (traced run)");
    trace_chain_scenario(&mut report, &models);
    println!("\nthread-width sweep (1/2/4 threads)");
    width_scenario(&mut report, &models);

    let json = report.to_json();
    match std::fs::write("BENCH_PR9.json", &json) {
        Ok(()) => println!("\nwrote BENCH_PR9.json"),
        Err(e) => eprintln!("\nwarning: cannot write BENCH_PR9.json: {e}"),
    }

    if report.failures.is_empty() {
        println!("all gates hold");
    } else {
        eprintln!("\n{} gate violation(s):", report.failures.len());
        for f in &report.failures {
            eprintln!("  FAIL: {f}");
        }
        std::process::exit(1);
    }
}
