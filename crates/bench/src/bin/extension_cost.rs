//! Extension E1 (DESIGN.md §4): pricing the paper's deployments and
//! evaluating the cost-aware policy.
//!
//! The paper's introduction motivates multi-cloud heterogeneity with VM
//! pricing but never evaluates it. This harness prices every policy's
//! Figure-4 run (2016-era on-demand rates: Ireland m3.medium $0.073/h,
//! Frankfurt m3.small $0.047/h, amortised private Munich $0.015/h) and
//! adds the cost-aware Policy-2 variant, which discounts each region's
//! resource estimate by its price.
//!
//! ```text
//! cargo run --release -p acm-bench --bin extension_cost
//! ```

use acm_core::config::{ExperimentConfig, PredictorChoice};
use acm_core::cost::price_run;
use acm_core::framework::run_experiment;
use acm_core::policy::PolicyKind;
use rayon::prelude::*;
use std::fs;

fn main() {
    println!("Extension E1 — run cost per policy (fig4 deployment, oracle, 1 h simulated)\n");
    println!(
        "{:<28} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "policy", "spread", "total $", "$ / Mreq", "f_munich", "resp(ms)"
    );

    let mut csv = String::from("policy,spread,total_usd,usd_per_mreq,f_munich,resp_ms\n");
    let rows: Vec<(String, String)> = PolicyKind::EXTENDED
        .par_iter()
        .map(|&policy| {
            let mut cfg = ExperimentConfig::three_region_fig4(policy, 2016);
            cfg.predictor = PredictorChoice::Oracle;
            cfg.name = format!("extension-cost-{policy}");
            let prices: Vec<f64> = cfg.regions.iter().map(|r| r.region.vm_hour_usd).collect();
            let tel = run_experiment(&cfg);
            let report = price_run(&tel, &prices, cfg.era);
            let w = tel.eras() / 3;
            let f_munich = tel.fraction(2).tail_stats(w).mean();
            (
                format!(
                    "{:<28} {:>10.3} {:>12.4} {:>12.3} {:>10.3} {:>10.0}",
                    policy.name(),
                    tel.rmttf_spread(w),
                    report.total_usd,
                    report.usd_per_mreq,
                    f_munich,
                    tel.tail_response(w) * 1000.0
                ),
                format!(
                    "{},{:.4},{:.4},{:.4},{:.4},{:.1}\n",
                    policy.name(),
                    tel.rmttf_spread(w),
                    report.total_usd,
                    report.usd_per_mreq,
                    f_munich,
                    tel.tail_response(w) * 1000.0
                ),
            )
        })
        .collect();
    for (line, csv_line) in rows {
        println!("{line}");
        csv.push_str(&csv_line);
    }

    if fs::create_dir_all("results").is_ok() {
        let _ = fs::write("results/extension_cost.csv", csv);
        println!("\nwrote results/extension_cost.csv");
    }
    println!("\nThe cost-aware variant pushes extra flow onto the cheap private region");
    println!("(higher f_munich) at some RMTTF-balance cost; since billing follows the");
    println!("ACTIVE VM census rather than the flow, total $ only moves when the shift");
    println!("changes rejuvenation/starvation behaviour — the interesting trade-off");
    println!("the paper's cost motivation leaves unexplored.");
}
