//! Regenerates **Figure 3** of the paper: the two-region hybrid deployment
//! (EC2 Ireland 6 × m3.medium + private Munich 4 VMs), one column per
//! policy, rows = (RMTTF per region, workload fraction `f_i` per region,
//! client response time).
//!
//! ```text
//! cargo run --release -p acm-bench --bin fig3
//! ```
//!
//! Writes `results/fig3-<policy>.csv` (full per-era series, the plottable
//! figure data) and prints a steady-state summary plus the qualitative
//! scorecard (claims C1–C4 of DESIGN.md §1).

use acm_bench::plot::ascii_chart;
use acm_bench::{print_scorecard, run_and_dump, tail_window, Claim};
use acm_core::config::ExperimentConfig;
use acm_core::policy::PolicyKind;
use acm_core::telemetry::ExperimentTelemetry;

fn charts(tel: &ExperimentTelemetry) {
    let names = tel.region_names();
    let rmttf: Vec<(&str, Vec<f64>)> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), tel.rmttf(i).values().collect()))
        .collect();
    let rmttf_refs: Vec<(&str, &[f64])> = rmttf.iter().map(|(n, v)| (*n, v.as_slice())).collect();
    print!("{}", ascii_chart("RMTTF (s)", &rmttf_refs, 100, 10));
    let fracs: Vec<(&str, Vec<f64>)> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), tel.fraction(i).values().collect()))
        .collect();
    let frac_refs: Vec<(&str, &[f64])> = fracs.iter().map(|(n, v)| (*n, v.as_slice())).collect();
    print!("{}", ascii_chart("fraction f_i", &frac_refs, 100, 8));
    let resp: Vec<f64> = tel.global_response().values().map(|v| v * 1000.0).collect();
    print!(
        "{}",
        ascii_chart("client response (ms)", &[("global", &resp)], 100, 6)
    );
}

fn summarise(policy: PolicyKind, tel: &ExperimentTelemetry) {
    let w = tail_window(tel);
    println!("\n=== {policy} ===");
    println!(
        "{:>16} {:>12} {:>10} {:>12}",
        "region", "rmttf(s)", "f", "resp(ms)"
    );
    for (i, name) in tel.region_names().iter().enumerate() {
        println!(
            "{:>16} {:>12.0} {:>10.3} {:>12.1}",
            name,
            tel.rmttf(i).tail_stats(w).mean(),
            tel.fraction(i).tail_stats(w).mean(),
            tel.response(i).tail_stats(w).mean() * 1000.0,
        );
    }
    println!(
        "spread={:.3}  converged={}  f-oscillation={:.4}  max-f-step={:.3}  client-resp={:.0} ms",
        tel.rmttf_spread(w),
        tel.convergence_era(1.25)
            .map_or("never".into(), |e| format!("era {e}")),
        tel.fraction_oscillation(w),
        tel.fraction_max_step(w),
        tel.tail_response(w) * 1000.0,
    );
}

fn main() {
    println!("Figure 3 — two heterogeneous regions, three policies, 120 eras x 30 s");
    println!("(CSV columns: per-region RMTTF, f, response, active VMs + global signals)");

    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2016);

    let mut tels = Vec::new();
    for policy in PolicyKind::ALL {
        let cfg = ExperimentConfig::two_region_fig3(policy, seed);
        let tel = run_and_dump(&cfg);
        summarise(policy, &tel);
        charts(&tel);
        tels.push(tel);
    }
    let [p1, p2, p3] = &tels[..] else {
        unreachable!()
    };
    let w = tail_window(p1);

    let claims = vec![
        Claim {
            id: "C1",
            statement: "Policy 1: RMTTFs do not converge (stabilise at different values)".into(),
            holds: p1.rmttf_spread(w) > 1.4,
            evidence: format!("P1 spread {:.2}", p1.rmttf_spread(w)),
        },
        Claim {
            id: "C2a",
            statement: "Policy 2 converges (RMTTFs equalise)".into(),
            holds: p2.rmttf_spread(w) < 1.25,
            evidence: format!("P2 spread {:.2}", p2.rmttf_spread(w)),
        },
        Claim {
            id: "C2b",
            statement: "Policy 2 converges faster than Policy 3".into(),
            holds: match (p2.convergence_era(1.25), p3.convergence_era(1.25)) {
                (Some(a), Some(b)) => a <= b,
                (Some(_), None) => true,
                _ => false,
            },
            evidence: format!(
                "P2 {:?}, P3 {:?}",
                p2.convergence_era(1.25),
                p3.convergence_era(1.25)
            ),
        },
        Claim {
            id: "C3",
            // "the quickest convergence and the most stable results are
            // provided by Policy 2 … Policy 3 [is] similarly valid, yet can
            // suffer more from its intrinsic randomness" — stability here
            // is the RMTTF equalisation the policies aim at. (The paper's
            // own f_i-noise comparison flips sign between its Fig. 3 and
            // Fig. 4 text, so we do not claim it.)
            statement: "Policy 3 converges, but less stably than Policy 2".into(),
            holds: p3.rmttf_spread(w) < 1.4 && p3.rmttf_spread(w) >= p2.rmttf_spread(w),
            evidence: format!(
                "RMTTF spread P3 {:.3} vs P2 {:.3} (both ≪ P1's {:.2})",
                p3.rmttf_spread(w),
                p2.rmttf_spread(w),
                p1.rmttf_spread(w)
            ),
        },
        Claim {
            id: "C4",
            statement: "client response time stays below the 1 s threshold for every policy".into(),
            holds: tels.iter().all(|t| t.tail_response(w) < 1.0),
            evidence: format!(
                "tail responses {:?} ms",
                tels.iter()
                    .map(|t| (t.tail_response(w) * 1000.0).round())
                    .collect::<Vec<_>>()
            ),
        },
    ];
    let failures = print_scorecard(&claims);
    std::process::exit(if failures == 0 { 0 } else { 1 });
}
