//! Statistical robustness of the headline figures: re-runs the Figure-3
//! and Figure-4 scenarios over many seeds and reports mean ± std of the
//! convergence metrics per policy — the paper shows single runs; this
//! verifies the conclusions are not seed luck.
//!
//! ```text
//! cargo run --release -p acm-bench --bin seed_sweep [n_seeds]
//! ```

use acm_core::config::{ExperimentConfig, PredictorChoice};
use acm_core::framework::run_experiment_with_obs;
use acm_core::policy::PolicyKind;
use acm_obs::{MetricValue, Obs, ObsConfig, ObsHandle};
use rayon::prelude::*;
use std::fs;

struct Agg {
    spreads: Vec<f64>,
    oscillations: Vec<f64>,
    responses: Vec<f64>,
    converged: usize,
}

fn mean_std(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

fn sweep(
    label: &str,
    make: impl Fn(PolicyKind, u64) -> ExperimentConfig + Sync,
    seeds: u64,
    rollup: &ObsHandle,
) -> String {
    println!("\n--- {label} ({seeds} seeds) ---");
    println!(
        "{:<28} {:>16} {:>16} {:>12} {:>12}",
        "policy", "spread μ±σ", "f-osc μ±σ", "resp ms μ", "converged"
    );
    let mut csv = String::new();
    for policy in PolicyKind::ALL {
        // Each run records into its own child hub; the children come back
        // in seed order (order-stable collect) and are merged in that
        // order, so the rollup is deterministic at any thread count.
        let runs: Vec<(f64, f64, f64, bool, ObsHandle)> = (0..seeds)
            .into_par_iter()
            .map(|seed| {
                let cfg = make(policy, 1000 + seed);
                let obs = Obs::new(ObsConfig::default());
                let tel = run_experiment_with_obs(&cfg, obs.clone());
                let w = tel.eras() / 3;
                (
                    tel.rmttf_spread(w),
                    tel.fraction_oscillation(w),
                    tel.tail_response(w),
                    tel.convergence_era(1.25).is_some(),
                    obs,
                )
            })
            .collect();
        for (_, _, _, _, child) in &runs {
            rollup.merge_from(child);
        }
        let agg = Agg {
            spreads: runs.iter().map(|r| r.0).collect(),
            oscillations: runs.iter().map(|r| r.1).collect(),
            responses: runs.iter().map(|r| r.2).collect(),
            converged: runs.iter().filter(|r| r.3).count(),
        };
        let (sm, ss) = mean_std(&agg.spreads);
        let (om, os) = mean_std(&agg.oscillations);
        let (rm, _) = mean_std(&agg.responses);
        println!(
            "{:<28} {:>9.3}±{:<6.3} {:>9.4}±{:<6.4} {:>12.0} {:>9}/{}",
            policy.name(),
            sm,
            ss,
            om,
            os,
            rm * 1000.0,
            agg.converged,
            seeds
        );
        csv.push_str(&format!(
            "{label},{},{sm:.4},{ss:.4},{om:.5},{os:.5},{:.1},{}/{seeds}\n",
            policy.name(),
            rm * 1000.0,
            agg.converged
        ));
    }
    csv
}

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);

    let rollup = Obs::new(ObsConfig::default());
    let mut csv =
        String::from("scenario,policy,spread_mean,spread_std,osc_mean,osc_std,resp_ms,converged\n");
    csv += &sweep(
        "fig3 (2 regions, oracle)",
        |policy, seed| {
            let mut cfg = ExperimentConfig::two_region_fig3(policy, seed);
            cfg.predictor = PredictorChoice::Oracle;
            cfg
        },
        seeds,
        &rollup,
    );
    csv += &sweep(
        "fig4 (3 regions, oracle)",
        |policy, seed| {
            let mut cfg = ExperimentConfig::three_region_fig4(policy, seed);
            cfg.predictor = PredictorChoice::Oracle;
            cfg
        },
        seeds,
        &rollup,
    );

    // Cross-run observability rollup: counters summed over every run of
    // every policy, on `acm_exec::current_threads()` pool threads.
    println!(
        "\n--- observability rollup ({} threads) ---",
        acm_exec::current_threads()
    );
    let mut counters: Vec<(String, u64)> = rollup
        .metrics()
        .into_iter()
        .filter_map(|m| match m.value {
            MetricValue::Counter(v) if v > 0 => Some((m.name, v)),
            _ => None,
        })
        .collect();
    counters.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    for (name, v) in &counters {
        println!("{name:<44} {v:>14}");
    }

    if fs::create_dir_all("results").is_ok() {
        let _ = fs::write("results/seed_sweep.csv", csv);
        println!("\nwrote results/seed_sweep.csv");
        let _ = fs::write("results/seed_sweep_metrics.jsonl", rollup.metrics_jsonl());
        println!("wrote results/seed_sweep_metrics.jsonl");
    }
    println!("\nExpected: Policy 1's spread stays ≫ 1 on every seed; Policies 2/3");
    println!("converge on every seed, with Policy 2 the most stable.");
}
