//! Ablation A5 (DESIGN.md §4): how RTTF-prediction quality propagates into
//! control quality.
//!
//! Runs the Figure-3 deployment under Policy 2 with the ground-truth
//! oracle and with each trained F2PM family as the deployed predictor,
//! comparing convergence, stability, failures, and response time — the
//! end-to-end version of the model-selection question ("is REP-Tree good
//! *enough for the controller*", not just "which model has the best RMSE").
//!
//! ```text
//! cargo run --release -p acm-bench --bin ablation_predictor
//! ```

use acm_core::config::{ExperimentConfig, PredictorChoice};
use acm_core::framework::run_experiment;
use acm_core::policy::PolicyKind;
use acm_ml::model::ModelKind;
use rayon::prelude::*;
use std::fs;

fn main() {
    let candidates: Vec<(String, PredictorChoice)> =
        std::iter::once(("oracle".to_string(), PredictorChoice::Oracle))
            .chain(
                [
                    ModelKind::RepTree,
                    ModelKind::M5P,
                    ModelKind::LsSvm,
                    ModelKind::Linear,
                    ModelKind::Svr,
                ]
                .into_iter()
                .map(|k| (k.name().to_string(), PredictorChoice::Trained(k))),
            )
            .collect();

    println!("Ablation A5 — predictor family vs control quality (fig3, Policy 2)\n");
    println!(
        "{:<10} {:>10} {:>12} {:>10} {:>10} {:>10}",
        "predictor", "spread", "converged", "proact", "react", "resp(ms)"
    );

    let mut csv = String::from("predictor,spread,convergence_era,proactive,reactive,resp_ms\n");
    let rows: Vec<(String, String)> = candidates
        .par_iter()
        .map(|(name, choice)| {
            let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, 2016);
            cfg.predictor = *choice;
            cfg.name = format!("ablation-predictor-{name}");
            let tel = run_experiment(&cfg);
            let w = tel.eras() / 3;
            let conv = tel
                .convergence_era(1.25)
                .map_or("never".to_string(), |e| e.to_string());
            (
                format!(
                    "{:<10} {:>10.3} {:>12} {:>10} {:>10} {:>10.0}",
                    name,
                    tel.rmttf_spread(w),
                    conv,
                    tel.total_proactive(),
                    tel.total_reactive(),
                    tel.tail_response(w) * 1000.0
                ),
                format!(
                    "{name},{:.4},{conv},{},{},{:.1}\n",
                    tel.rmttf_spread(w),
                    tel.total_proactive(),
                    tel.total_reactive(),
                    tel.tail_response(w) * 1000.0
                ),
            )
        })
        .collect();
    for (line, csv_line) in rows {
        println!("{line}");
        csv.push_str(&csv_line);
    }

    if fs::create_dir_all("results").is_ok() {
        let _ = fs::write("results/ablation_predictor.csv", csv);
        println!("\nwrote results/ablation_predictor.csv");
    }
    println!("\nPrediction quality shows up as CONVERGENCE SPEED of the leader's plan");
    println!("(oracle: a couple of eras; REP-Tree: tens; linear/SVR: ~hundred) rather");
    println!("than as SLA violations — standby takeover hides individual mispredictions,");
    println!("so even crude predictors keep the response time flat. This matches the");
    println!("paper's observation that the policy, not the model family, dominates the");
    println!("steady-state behaviour.");
}
