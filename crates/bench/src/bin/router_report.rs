//! Request-router data-plane report.
//!
//! Measures the weighted-P2C routing hot loop and verifies its contract,
//! writing the numbers to `BENCH_PR8.json` at the repository root:
//!
//! * **Decisions/s** — raw single-thread routing throughput over tens of
//!   millions of `route()` calls, per routing policy (uniform table,
//!   planned fractions with a neutral scorer, planned fractions with
//!   latency-aware scoring under active exclusion).
//! * **Decision latency** — p50/p99 nanoseconds per decision, per
//!   policy, sampled over 1k-decision batches so timer overhead stays
//!   out of the hot loop.
//! * **Flow convergence** — with a neutral scorer the realized flow must
//!   match the planned fractions `f_i` within 1 % over 10M requests,
//!   quarantined (zero-weight) regions receiving exactly zero.
//! * **Thread-width identity** — the routed sharded plane (chaos + plan
//!   swaps + latency feedback) must produce byte-identical per-shard
//!   digests at `ACM_THREADS` ∈ {1, 2, 4}, plus aggregate events/s and
//!   the 4-thread speedup.
//!
//! ```text
//! cargo run --release -p acm-bench --bin router_report [-- --gate]
//! ```
//!
//! `--gate` additionally enforces the CI floors: a decisions/s minimum
//! (set well under the ~10M+/s a release build sustains, so CI jitter
//! cannot flake the gate), the 1 % convergence bound, exact quarantine
//! zero, and digest identity at every width.

use acm_router::{run_routed_plane, LatencyAwareness, PlanStep, RequestRouter, RoutedPlaneConfig};
use acm_sim::rng::SimRng;
use acm_sim::time::Duration;
use std::time::Instant;

/// Single-thread decisions/s floor enforced under `--gate`. A release
/// build routes well above 10M/s; the floor leaves ~4x headroom for
/// noisy CI machines.
const GATE_DECISIONS_PER_S_FLOOR: f64 = 2_500_000.0;
/// Requests of the flow-convergence check.
const CONVERGENCE_REQUESTS: u64 = 10_000_000;
/// Allowed |realized - planned| per region over the convergence run.
const CONVERGENCE_TOLERANCE: f64 = 0.01;
/// Decisions measured per throughput policy.
const THROUGHPUT_DECISIONS: u64 = 20_000_000;
/// Batch size for decision-latency sampling.
const LATENCY_BATCH: u64 = 1_000;
/// Batches sampled per policy for p50/p99.
const LATENCY_BATCHES: usize = 20_000;

struct Report {
    entries: Vec<(String, f64)>,
    failures: Vec<String>,
}

impl Report {
    fn push(&mut self, name: &str, value: f64) {
        println!("{name:<52} {value:>16.3}");
        self.entries.push((name.to_string(), value));
    }

    fn gate(&mut self, ok: bool, what: String) {
        if !ok {
            println!("  GATE VIOLATION: {what}");
            self.failures.push(what);
        }
    }

    fn to_json(&self) -> String {
        let mut o = acm_obs::json::JsonObject::new();
        for (name, value) in &self.entries {
            o.field_f64(name, (value * 1000.0).round() / 1000.0);
        }
        o.field_u64("gate_violations", self.failures.len() as u64);
        let mut s = o.finish();
        s.push('\n');
        s
    }
}

/// The routing policies the hot loop is measured under.
enum Policy {
    /// Uniform weight table, no latency signal — the baseline draw cost.
    Uniform,
    /// Skewed planned fractions, neutral scorer — the table's marginal.
    PlannedNeutral,
    /// Skewed fractions plus an actively excluding latency scorer.
    LatencyAware,
}

impl Policy {
    fn name(&self) -> &'static str {
        match self {
            Policy::Uniform => "uniform",
            Policy::PlannedNeutral => "planned_neutral",
            Policy::LatencyAware => "latency_aware",
        }
    }

    /// A router primed for this policy over 16 regions.
    fn build(&self, seed: u64) -> RequestRouter {
        let regions = 16;
        let mut r = RequestRouter::new(regions, LatencyAwareness::default(), SimRng::new(seed));
        match self {
            Policy::Uniform => {}
            Policy::PlannedNeutral | Policy::LatencyAware => {
                // A lopsided but full-support plan (normalised by install).
                let fractions: Vec<f64> = (0..regions).map(|i| 1.0 + i as f64).collect();
                assert!(r.install(&fractions, None));
            }
        }
        if matches!(self, Policy::LatencyAware) {
            // Half the regions 8x slower than the others: past the 2x
            // exclusion threshold, so scoring is live on every decision.
            for _ in 0..64 {
                for j in 0..regions {
                    let us = if j % 2 == 0 { 500 } else { 4_000 };
                    r.record_latency(j, Duration::from_micros(us));
                }
            }
        }
        r
    }
}

/// Raw decisions/s plus p50/p99 decision latency for one policy.
fn throughput_scenario(report: &mut Report, policy: &Policy, gate: bool) {
    let name = policy.name();

    // Throughput: one long untimed-interior loop.
    let mut r = policy.build(42);
    let mut sink = 0u64;
    let start = Instant::now();
    for _ in 0..THROUGHPUT_DECISIONS {
        sink = sink.wrapping_add(r.route() as u64);
    }
    let wall = start.elapsed().as_secs_f64();
    std::hint::black_box(sink);
    let per_s = THROUGHPUT_DECISIONS as f64 / wall;
    report.push(&format!("router_{name}_decisions_per_s"), per_s);
    if gate && matches!(policy, Policy::PlannedNeutral) {
        report.gate(
            per_s >= GATE_DECISIONS_PER_S_FLOOR,
            format!(
                "router: {per_s:.0} decisions/s below the {GATE_DECISIONS_PER_S_FLOOR:.0} floor"
            ),
        );
    }

    // Decision latency: time 1k-decision batches, histogram the mean
    // nanoseconds per decision of each batch.
    let mut r = policy.build(43);
    let obs = acm_obs::Obs::new(acm_obs::ObsConfig::default());
    let hist = obs.histogram("ns_per_decision");
    for _ in 0..LATENCY_BATCHES {
        let t = Instant::now();
        for _ in 0..LATENCY_BATCH {
            std::hint::black_box(r.route());
        }
        let ns = t.elapsed().as_nanos() as u64 / LATENCY_BATCH as u128 as u64;
        hist.record(ns);
    }
    let snap = hist.snapshot();
    report.push(&format!("router_{name}_decision_p50_ns"), snap.p50() as f64);
    report.push(&format!("router_{name}_decision_p99_ns"), snap.p99() as f64);
}

/// Neutral-scorer convergence: realized flow within 1 % of planned f_i
/// over 10M requests, quarantined regions exactly zero.
fn convergence_scenario(report: &mut Report) {
    let fractions = vec![0.30, 0.22, 0.18, 0.12, 0.10, 0.05, 0.03, 0.00];
    let live = vec![true, true, true, false, true, true, true, true];
    let mut r = RequestRouter::new(
        fractions.len(),
        LatencyAwareness::default(),
        SimRng::new(2026),
    );
    assert!(r.install(&fractions, Some(&live)));

    // Expected shares: planned fractions with the quarantined region's
    // weight renormalised away (region 3 is live-masked out; region 7 is
    // planned at zero).
    let masked: Vec<f64> = fractions
        .iter()
        .zip(&live)
        .map(|(f, l)| if *l { *f } else { 0.0 })
        .collect();
    let total: f64 = masked.iter().sum();
    let want: Vec<f64> = masked.iter().map(|f| f / total).collect();

    let start = Instant::now();
    for _ in 0..CONVERGENCE_REQUESTS {
        r.route();
    }
    let wall = start.elapsed().as_secs_f64();
    report.push(
        "convergence_decisions_per_s",
        CONVERGENCE_REQUESTS as f64 / wall,
    );

    let got = r.stats().realized_fractions();
    let worst = want
        .iter()
        .zip(&got)
        .map(|(w, g)| (w - g).abs())
        .fold(0.0, f64::max);
    report.push("convergence_requests", CONVERGENCE_REQUESTS as f64);
    report.push("convergence_worst_abs_error", worst);
    report.gate(
        worst <= CONVERGENCE_TOLERANCE,
        format!("router: worst |realized-planned| {worst:.5} exceeds {CONVERGENCE_TOLERANCE}"),
    );
    let quarantined_total = r.stats().routed[3] + r.stats().routed[7];
    report.push("convergence_quarantined_routed", quarantined_total as f64);
    report.gate(
        quarantined_total == 0,
        format!("router: quarantined regions got {quarantined_total} requests"),
    );
}

/// The routed sharded plane at 1/2/4 threads: digests must be identical,
/// throughput and speedup are reported.
fn width_scenario(report: &mut Report, gate: bool) {
    let mut cfg = RoutedPlaneConfig::new(8, 8, 1 << 17, 3, 2026);
    cfg.plans = vec![
        PlanStep::all_live(vec![0.25, 0.20, 0.15, 0.12, 0.10, 0.08, 0.06, 0.04]),
        PlanStep {
            fractions: vec![0.25, 0.20, 0.15, 0.12, 0.10, 0.08, 0.06, 0.04],
            live: vec![true, true, false, true, true, true, true, true],
        },
        PlanStep::all_live(vec![0.04, 0.06, 0.08, 0.10, 0.12, 0.15, 0.20, 0.25]),
    ];
    report.push("plane_browsers", cfg.browsers as f64);
    report.push("plane_shards", cfg.shards as f64);

    let before = acm_exec::current_threads();
    let mut wall_1t = f64::NAN;
    let mut wall_4t = f64::NAN;
    let mut digest_1t = Vec::new();
    for threads in [1usize, 2, 4] {
        acm_exec::configure_threads(threads);
        let out = run_routed_plane(&cfg);
        acm_exec::configure_threads(before);
        report.push(
            &format!("plane_events_per_s_{threads}t"),
            out.executed as f64 / out.wall_s,
        );
        match threads {
            1 => {
                wall_1t = out.wall_s;
                report.push("plane_decisions", out.decisions() as f64);
                digest_1t = out.digests;
            }
            _ => {
                let identical = digest_1t == out.digests;
                report.push(
                    &format!("plane_digest_identity_1t_vs_{threads}t_ok"),
                    f64::from(identical),
                );
                report.gate(
                    identical,
                    format!("plane: digests diverge between 1 and {threads} threads"),
                );
                if threads == 4 {
                    wall_4t = out.wall_s;
                }
            }
        }
    }
    report.push("plane_speedup_4t", wall_1t / wall_4t);
    let _ = gate; // identity is always gated; speedup is informational
}

fn main() {
    let gate = std::env::args().any(|a| a == "--gate");
    let mut report = Report {
        entries: Vec::new(),
        failures: Vec::new(),
    };

    println!(
        "request-router data-plane report ({} mode, {} cores)\n",
        if gate { "gated" } else { "report" },
        acm_exec::available_threads()
    );
    println!("hot loop: single-thread routing throughput and latency");
    for policy in [
        Policy::Uniform,
        Policy::PlannedNeutral,
        Policy::LatencyAware,
    ] {
        throughput_scenario(&mut report, &policy, gate);
    }
    println!("\nflow convergence: neutral scorer over {CONVERGENCE_REQUESTS} requests");
    convergence_scenario(&mut report);
    println!("\nthread-width sweep: routed plane with chaos + plan swaps");
    width_scenario(&mut report, gate);

    let json = report.to_json();
    match std::fs::write("BENCH_PR8.json", &json) {
        Ok(()) => println!("\nwrote BENCH_PR8.json"),
        Err(e) => eprintln!("\nwarning: cannot write BENCH_PR8.json: {e}"),
    }

    if report.failures.is_empty() {
        println!("all gates hold");
    } else {
        eprintln!("\n{} gate violation(s):", report.failures.len());
        for f in &report.failures {
            eprintln!("  FAIL: {f}");
        }
        std::process::exit(1);
    }
}
