//! Ablation A1 (DESIGN.md §4): the EWMA smoothing factor β of Eq. 1.
//!
//! Sweeps β over the Figure-4 scenario for every policy and reports the
//! steady-state RMTTF spread, fraction oscillation and convergence era —
//! showing the stability/reactivity trade-off the paper's Eq. 1 encodes.
//!
//! ```text
//! cargo run --release -p acm-bench --bin ablation_beta
//! ```

use acm_core::config::{ExperimentConfig, PredictorChoice};
use acm_core::framework::run_experiment;
use acm_core::policy::PolicyKind;
use rayon::prelude::*;
use std::fs;

fn main() {
    let betas = [0.1, 0.25, 0.5, 0.8, 1.0];
    println!("Ablation A1 — EWMA β sweep on the 3-region deployment (oracle predictor)\n");
    println!(
        "{:<28} {:>6} {:>10} {:>12} {:>12} {:>10}",
        "policy", "beta", "spread", "converged", "f-oscill.", "resp(ms)"
    );

    let mut csv = String::from("policy,beta,spread,convergence_era,f_oscillation,resp_ms\n");
    for policy in PolicyKind::ALL {
        // Parallel sweep: each β is an independent run (rayon).
        let rows: Vec<(f64, String, String)> = betas
            .par_iter()
            .map(|&beta| {
                let mut cfg = ExperimentConfig::three_region_fig4(policy, 2016);
                cfg.predictor = PredictorChoice::Oracle;
                cfg.beta = beta;
                cfg.name = format!("ablation-beta-{policy}-{beta}");
                let tel = run_experiment(&cfg);
                let w = tel.eras() / 3;
                let conv = tel
                    .convergence_era(1.25)
                    .map_or("never".to_string(), |e| e.to_string());
                let line = format!(
                    "{:<28} {:>6.2} {:>10.3} {:>12} {:>12.4} {:>10.0}",
                    policy.name(),
                    beta,
                    tel.rmttf_spread(w),
                    conv,
                    tel.fraction_oscillation(w),
                    tel.tail_response(w) * 1000.0
                );
                let csv_line = format!(
                    "{},{},{:.4},{},{:.5},{:.1}\n",
                    policy.name(),
                    beta,
                    tel.rmttf_spread(w),
                    conv,
                    tel.fraction_oscillation(w),
                    tel.tail_response(w) * 1000.0
                );
                (beta, line, csv_line)
            })
            .collect();
        for (_, line, csv_line) in rows {
            println!("{line}");
            csv.push_str(&csv_line);
        }
        println!();
    }
    if fs::create_dir_all("results").is_ok() {
        let _ = fs::write("results/ablation_beta.csv", csv);
        println!("wrote results/ablation_beta.csv");
    }
}
