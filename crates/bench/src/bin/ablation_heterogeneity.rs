//! Ablation A3 (DESIGN.md §4): how much heterogeneity Policy 1 tolerates.
//!
//! The paper concludes Policy 1 "is more suitable for less-heterogeneous
//! environments". This sweep builds two-region deployments whose capacity
//! ratio grows from 1× (homogeneous) to 8× and measures the steady-state
//! RMTTF spread under Policies 1 and 2: Policy 1's spread should track the
//! heterogeneity (≈ √ratio at the fixed point) while Policy 2 stays at 1.
//!
//! ```text
//! cargo run --release -p acm-bench --bin ablation_heterogeneity
//! ```

use acm_core::config::{ExperimentConfig, PredictorChoice, RegionSpec};
use acm_core::framework::run_experiment;
use acm_core::policy::PolicyKind;
use acm_pcam::RegionConfig;
use acm_vm::VmFlavor;
use acm_workload::ClientSchedule;
use rayon::prelude::*;
use std::fs;

/// A two-region deployment whose region-B RAM is `1/ratio` of region-A's
/// (the memory budget drives the MTTF, so RAM ratio ≈ capacity ratio).
fn deployment(ratio: f64, policy: PolicyKind) -> ExperimentConfig {
    let flavor_a = VmFlavor::m3_medium();
    let mut flavor_b = VmFlavor::m3_medium();
    flavor_b.name = format!("m3.medium-shrunk-{ratio}x");
    // Shrink the anomaly budget, keeping baseline constant.
    let budget = flavor_a.ram_mb - flavor_a.baseline_resident_mb;
    flavor_b.ram_mb = flavor_a.baseline_resident_mb + budget / ratio;
    flavor_b.swap_mb = flavor_a.swap_mb / ratio;

    let mut cfg = ExperimentConfig::two_region_fig3(policy, 2016);
    cfg.name = format!("ablation-het-{ratio}-{policy}");
    cfg.predictor = PredictorChoice::Oracle;
    cfg.regions = vec![
        RegionSpec {
            region: RegionConfig::new("region-a", flavor_a, 5, 4),
            clients: ClientSchedule::Constant(256),
        },
        RegionSpec {
            region: RegionConfig::new("region-b", flavor_b, 5, 4),
            clients: ClientSchedule::Constant(128),
        },
    ];
    cfg
}

fn main() {
    let ratios = [1.0, 2.0, 4.0, 8.0];
    println!("Ablation A3 — capacity-ratio sweep, Policy 1 vs Policy 2\n");
    println!(
        "{:>8} {:>14} {:>14} {:>14}",
        "ratio", "P1 spread", "P2 spread", "√ratio (theory)"
    );

    let mut csv = String::from("ratio,p1_spread,p2_spread,sqrt_ratio\n");
    let rows: Vec<(String, String)> = ratios
        .par_iter()
        .map(|&ratio| {
            let run = |policy| {
                let tel = run_experiment(&deployment(ratio, policy));
                let w = tel.eras() / 3;
                tel.rmttf_spread(w)
            };
            let p1 = run(PolicyKind::SensibleRouting);
            let p2 = run(PolicyKind::AvailableResources);
            (
                format!(
                    "{:>8.1} {:>14.3} {:>14.3} {:>14.3}",
                    ratio,
                    p1,
                    p2,
                    ratio.sqrt()
                ),
                format!("{ratio},{p1:.4},{p2:.4},{:.4}\n", ratio.sqrt()),
            )
        })
        .collect();
    for (line, csv_line) in rows {
        println!("{line}");
        csv.push_str(&csv_line);
    }

    if fs::create_dir_all("results").is_ok() {
        let _ = fs::write("results/ablation_heterogeneity.csv", csv);
        println!("\nwrote results/ablation_heterogeneity.csv");
    }
    println!("\nPolicy 1's equilibrium RMTTF ratio grows like √(capacity ratio);");
    println!("Policy 2 holds the spread at ~1 regardless — the crossover that makes");
    println!("Policy 1 acceptable only for near-homogeneous deployments.");
}
