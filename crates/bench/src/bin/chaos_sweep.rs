//! Chaos-campaign sweep: fault-plan fuzzing as a model checker.
//!
//! Runs a campaign of seed-randomized fault plans (flap storms,
//! partitions, crash windows, leader kills, message drop/delay) against
//! full Figure-3/Figure-4 deployments on the exec pool, evaluates the
//! machine-checked invariant catalogue over every era of every run, and
//! writes the numbers to `BENCH_PR10.json` at the repository root.
//!
//! ```text
//! cargo run --release -p acm-bench --bin chaos_sweep [-- --plans N] [--seed S] [--eras E] [--gate]
//! ```
//!
//! Four sections, each gated when `--gate` is set (any violation exits
//! nonzero):
//!
//! * **campaign** — every plan runs clean on main: zero invariant
//!   violations, zero crashed runs;
//! * **determinism** — the campaign fingerprint (canonical verdict
//!   lines) is byte-identical at 1 and 4 worker threads;
//! * **injection + shrink** — a test-only trace perturbation
//!   ([`Injection::LeakFlow`]) is caught by `quarantine_zero_flow`, the
//!   delta-debugging shrinker reduces the offending plan to a minimal
//!   still-violating reproducer, and the clean (uninjected) replay of
//!   that reproducer passes;
//! * **corpus** — every committed entry under `crates/chaos/corpus/`
//!   round-trips and verifies ([`CorpusEntry::verify`]).
//!
//! Unknown arguments are an error (usage + exit 2), so CI typos cannot
//! silently drop the gate.

use acm_chaos::{
    case_from_parts, run_campaign, run_case, shrink_plan, CampaignConfig, CorpusEntry, Injection,
};
use acm_obs::{Obs, ObsConfig};
use std::time::Instant;

struct Report {
    entries: Vec<(String, f64)>,
    failures: Vec<String>,
}

impl Report {
    fn push(&mut self, name: &str, value: f64) {
        println!("{name:<52} {value:>14.3}");
        self.entries.push((name.to_string(), value));
    }

    fn gate(&mut self, ok: bool, what: String) {
        if !ok {
            println!("  GATE VIOLATION: {what}");
            self.failures.push(what);
        }
    }

    fn to_json(&self) -> String {
        let mut o = acm_obs::json::JsonObject::new();
        for (name, value) in &self.entries {
            o.field_f64(name, (value * 1000.0).round() / 1000.0);
        }
        o.field_u64("gate_violations", self.failures.len() as u64);
        let mut s = o.finish();
        s.push('\n');
        s
    }
}

struct Args {
    plans: usize,
    seed: u64,
    eras: usize,
    gate: bool,
    emit_corpus: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: chaos_sweep [--plans N] [--seed S] [--eras E] [--gate] [--emit-corpus PATH]\n\
         \n\
         --plans N          randomized fault plans per campaign (default 200)\n\
         --seed S           campaign master seed (default {:#x})\n\
         --eras E           eras per run (default 40)\n\
         --gate             exit nonzero on any gate violation\n\
         --emit-corpus PATH write the shrunk minimal reproducer entry to PATH",
        CampaignConfig::default().seed
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let defaults = CampaignConfig::default();
    let mut args = Args {
        plans: defaults.plans,
        seed: defaults.seed,
        eras: defaults.eras,
        gate: false,
        emit_corpus: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |what: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("chaos_sweep: {what} expects a value");
                usage()
            })
        };
        match arg.as_str() {
            "--plans" => match value("--plans").parse() {
                Ok(n) => args.plans = n,
                Err(_) => usage(),
            },
            "--seed" => {
                let raw = value("--seed");
                let parsed = raw
                    .strip_prefix("0x")
                    .map_or_else(|| raw.parse(), |hex| u64::from_str_radix(hex, 16));
                match parsed {
                    Ok(s) => args.seed = s,
                    Err(_) => usage(),
                }
            }
            "--eras" => match value("--eras").parse() {
                Ok(n) => args.eras = n,
                Err(_) => usage(),
            },
            "--gate" => args.gate = true,
            "--emit-corpus" => args.emit_corpus = Some(value("--emit-corpus")),
            other => {
                eprintln!("chaos_sweep: unknown argument {other:?}");
                usage();
            }
        }
    }
    if args.plans == 0 || args.eras == 0 {
        eprintln!("chaos_sweep: --plans and --eras must be positive");
        usage();
    }
    args
}

/// Campaign + thread-width determinism: the full sweep runs at 1 and 4
/// workers and the two canonical fingerprints must match byte for byte.
fn campaign_sections(report: &mut Report, cc: &CampaignConfig) {
    let before = acm_exec::current_threads();

    acm_exec::configure_threads(1);
    let seq = run_campaign(cc, &Obs::new(ObsConfig::default()));

    acm_exec::configure_threads(4);
    let obs = Obs::new(ObsConfig::default());
    let started = Instant::now();
    let par = run_campaign(cc, &obs);
    let elapsed = started.elapsed().as_secs_f64();
    acm_exec::configure_threads(before);

    let violating = par.violating().len();
    let crashed = par.crashed();
    report.push("campaign_plans", par.verdicts.len() as f64);
    report.push("campaign_eras_per_plan", cc.eras as f64);
    report.push("campaign_plans_per_s", par.verdicts.len() as f64 / elapsed);
    report.push("campaign_violating_plans", violating as f64);
    report.push("campaign_crashed_plans", crashed as f64);
    report.gate(
        par.verdicts.len() == cc.plans,
        format!("campaign: ran {} of {} plans", par.verdicts.len(), cc.plans),
    );
    for v in par.violating().iter().chain(
        par.verdicts
            .iter()
            .filter(|v| v.crashed.is_some())
            .collect::<Vec<_>>()
            .iter(),
    ) {
        println!("  {}", v.line());
    }
    report.gate(
        violating == 0,
        format!("campaign: {violating} plan(s) violated an invariant"),
    );
    report.gate(crashed == 0, format!("campaign: {crashed} plan(s) crashed"));

    // Campaign counters from the obs layer (cross-check the wiring).
    let counted = obs
        .metrics()
        .iter()
        .find(|m| m.name == "acm.chaos.campaign.plans")
        .and_then(|m| match m.value {
            acm_obs::MetricValue::Counter(v) => Some(v),
            _ => None,
        })
        .unwrap_or(0);
    report.push("campaign_counter_plans", counted as f64);
    report.gate(
        counted == cc.plans as u64,
        format!(
            "campaign: acm.chaos.campaign.plans counted {counted}, expected {}",
            cc.plans
        ),
    );

    let identical = seq.fingerprint == par.fingerprint;
    report.push("determinism_1t_vs_4t_ok", f64::from(u8::from(identical)));
    report.gate(
        identical,
        "determinism: campaign fingerprints diverge between 1 and 4 threads".to_string(),
    );
}

/// Injection + shrink: arm a test-only flow leak over the first cases
/// until one trips `quarantine_zero_flow`, then shrink the offending
/// plan to a minimal reproducer and check both replay halves.
fn injection_shrink_section(report: &mut Report, cc: &CampaignConfig, emit: Option<&str>) {
    const INVARIANT: &str = "quarantine_zero_flow";
    let injection = Injection::LeakFlow {
        region: 1,
        frac: 0.05,
    };
    let mut injected = cc.clone();
    injected.injection = injection;

    let probe = cc.plans.min(32);
    let mut found = None;
    for index in 0..probe {
        let case = acm_chaos::build_case(&injected, index);
        let verdict = run_case(&case);
        if verdict.violations.iter().any(|v| v.invariant == INVARIANT) {
            found = Some((index, case));
            break;
        }
    }
    report.push("inject_caught", f64::from(u8::from(found.is_some())));
    let Some((index, case)) = found else {
        report.gate(
            false,
            format!("inject: leak-flow injection not caught in the first {probe} plans"),
        );
        return;
    };
    println!("  injected case {index:04} tripped {INVARIANT}");

    let regions = case.cfg.regions.len();
    let plan = case.cfg.fault_plan.clone().expect("chaos case has a plan");
    let still_violates = |candidate: &acm_overlay::FaultPlan| {
        run_case(&case_from_parts(
            case.case_seed,
            regions,
            cc.eras,
            candidate.clone(),
            injection,
        ))
        .violations
        .iter()
        .any(|v| v.invariant == INVARIANT)
    };
    let started = Instant::now();
    let outcome = shrink_plan(&plan, still_violates);
    let shrink_s = started.elapsed().as_secs_f64();
    report.push("shrink_events_before", plan.events.len() as f64);
    report.push("shrink_events_after", outcome.plan.events.len() as f64);
    report.push("shrink_steps", outcome.steps as f64);
    report.push("shrink_attempts", outcome.attempts as f64);
    report.push("shrink_seconds", shrink_s);
    report.gate(
        outcome.plan.events.len() <= plan.events.len(),
        "shrink: reproducer grew".to_string(),
    );
    report.gate(
        still_violates(&outcome.plan),
        "shrink: minimal reproducer no longer violates".to_string(),
    );

    let entry = CorpusEntry {
        name: format!("leak-flow-shrunk-{:016x}", case.case_seed),
        invariant: INVARIANT.to_string(),
        regions,
        eras: cc.eras,
        case_seed: case.case_seed,
        injection,
        plan: outcome.plan,
    };
    let round_trip = CorpusEntry::from_json(&entry.to_json());
    report.push(
        "shrink_entry_round_trip_ok",
        f64::from(u8::from(round_trip.as_ref() == Ok(&entry))),
    );
    report.gate(
        round_trip.as_ref() == Ok(&entry),
        "shrink: minimal reproducer does not round-trip through JSON".to_string(),
    );
    let verified = entry.verify();
    report.push(
        "shrink_entry_verify_ok",
        f64::from(u8::from(verified.is_ok())),
    );
    report.gate(
        verified.is_ok(),
        format!("shrink: reproducer entry fails verify: {verified:?}"),
    );
    if let Some(path) = emit {
        // The entry name doubles as the file stem by convention.
        let mut named = entry;
        if let Some(stem) = std::path::Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
        {
            named.name = stem.to_string();
        }
        match std::fs::write(path, named.to_json() + "\n") {
            Ok(()) => println!("  wrote corpus entry to {path}"),
            Err(e) => report.gate(false, format!("shrink: cannot write {path}: {e}")),
        }
    }
}

/// Replays every committed corpus entry.
fn corpus_section(report: &mut Report) {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../chaos/corpus");
    let mut names: Vec<std::path::PathBuf> = match std::fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect(),
        Err(e) => {
            report.push("corpus_entries", 0.0);
            report.gate(false, format!("corpus: cannot read {dir}: {e}"));
            return;
        }
    };
    names.sort();
    let mut ok = 0usize;
    for path in &names {
        let outcome = std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|s| CorpusEntry::from_json(&s))
            .and_then(|entry| entry.verify().map(|()| entry.name));
        match outcome {
            Ok(name) => {
                println!("  corpus entry {name} replays as committed");
                ok += 1;
            }
            Err(e) => report.gate(false, format!("corpus: {}: {e}", path.display())),
        }
    }
    report.push("corpus_entries", names.len() as f64);
    report.push("corpus_verified", ok as f64);
    report.gate(
        !names.is_empty(),
        "corpus: no committed entries found".to_string(),
    );
}

fn main() {
    let args = parse_args();
    let cc = CampaignConfig {
        seed: args.seed,
        plans: args.plans,
        eras: args.eras,
        ..CampaignConfig::default()
    };
    let mut report = Report {
        entries: Vec::new(),
        failures: Vec::new(),
    };

    println!(
        "chaos campaign sweep ({} plans, {} eras, seed {:#018x})\n",
        cc.plans, cc.eras, cc.seed
    );
    println!("campaign + thread-width determinism");
    campaign_sections(&mut report, &cc);
    println!("\ninjection + delta-debugging shrink");
    injection_shrink_section(&mut report, &cc, args.emit_corpus.as_deref());
    println!("\ncommitted reproducer corpus");
    corpus_section(&mut report);

    let json = report.to_json();
    match std::fs::write("BENCH_PR10.json", &json) {
        Ok(()) => println!("\nwrote BENCH_PR10.json"),
        Err(e) => eprintln!("\nwarning: cannot write BENCH_PR10.json: {e}"),
    }

    if report.failures.is_empty() {
        println!("all chaos gates hold");
    } else {
        eprintln!("\n{} gate violation(s):", report.failures.len());
        for f in &report.failures {
            eprintln!("  FAIL: {f}");
        }
        if args.gate {
            std::process::exit(1);
        }
    }
}
