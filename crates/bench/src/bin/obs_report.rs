//! Observability report over one experiment run.
//!
//! Runs a Figure-3 deployment with the in-process observability layer
//! enabled, then prints the MAPE phase-timing table, the busiest metrics
//! and the tail of the decision log, and writes the full structured event
//! stream to `obs_report.jsonl` at the repository root.
//!
//! ```text
//! cargo run --release -p acm-bench --bin obs_report -- [--eras N] [--oracle]
//! ```
//!
//! `--oracle` skips the F2PM training phase (CI's small scenario); the
//! default reproduces the paper deployment with trained REP-Trees.

use acm_core::config::{ExperimentConfig, PredictorChoice};
use acm_core::framework::run_experiment_with_obs;
use acm_core::policy::PolicyKind;
use acm_obs::{HistogramSnapshot, MetricValue, Obs, ObsConfig};

/// One metric line with a unit inferred from the name suffix: `_ns`
/// histograms print in milliseconds, `_us` in microseconds, anything
/// else (hop counts, queue depths, item counts) as raw values.
fn print_metric_row(name: &str, value: &MetricValue) {
    match value {
        MetricValue::Counter(v) => println!("{name:<44} {v:>12}"),
        MetricValue::Gauge(v) => println!("{name:<44} {v:>12.0}"),
        MetricValue::Histogram(h) if name.ends_with("_ns") => println!(
            "{:<44} {:>12} samples, mean {:.3} ms, max {:.3} ms",
            name,
            h.count,
            h.mean() / 1e6,
            h.max as f64 / 1e6
        ),
        MetricValue::Histogram(h) if name.ends_with("_us") => println!(
            "{:<44} {:>12} samples, mean {:.1} us, max {} us",
            name,
            h.count,
            h.mean(),
            h.max
        ),
        MetricValue::Histogram(h) => println!(
            "{:<44} {:>12} samples, mean {:.1}, max {}",
            name,
            h.count,
            h.mean(),
            h.max
        ),
    }
}

fn print_phase_row(label: &str, h: &HistogramSnapshot) {
    println!(
        "{:<12} {:>8} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
        label,
        h.count,
        h.mean() / 1e3,
        h.quantile(0.5) as f64 / 1e3,
        h.quantile(0.99) as f64 / 1e3,
        h.max as f64 / 1e3,
    );
}

fn main() {
    let mut eras = 120usize;
    let mut oracle = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--eras" => {
                eras = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--eras needs a positive integer");
            }
            "--oracle" => oracle = true,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: obs_report [--eras N] [--oracle]");
                std::process::exit(2);
            }
        }
    }

    let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, 42);
    cfg.eras = eras;
    if oracle {
        cfg.predictor = PredictorChoice::Oracle;
    }
    let obs = Obs::new(ObsConfig::default());
    let tel = run_experiment_with_obs(&cfg, obs.clone());

    println!(
        "observability report — {} ({} eras)\n",
        cfg.name,
        tel.eras()
    );

    // ----- MAPE phase timing ----------------------------------------------
    println!(
        "{:<12} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "phase", "count", "mean_us", "p50_us", "p99_us", "max_us"
    );
    let metrics = obs.metrics();
    for phase in ["monitor", "analyze", "plan", "execute", "era"] {
        let name = format!("acm.core.control_loop.{phase}_ns");
        if let Some(MetricValue::Histogram(h)) = metrics
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.value.clone())
        {
            print_phase_row(phase, &h);
        }
    }

    // ----- busiest histograms ---------------------------------------------
    let mut hists: Vec<(&str, HistogramSnapshot)> = metrics
        .iter()
        .filter(|m| !m.name.starts_with("acm.core.control_loop."))
        .filter_map(|m| match &m.value {
            MetricValue::Histogram(h) if h.count > 0 => Some((m.name.as_str(), *h.clone())),
            _ => None,
        })
        .collect();
    hists.sort_by(|a, b| b.1.count.cmp(&a.1.count).then(a.0.cmp(b.0)));
    println!("\ntop histograms (raw units)");
    println!(
        "{:<44} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "name", "count", "mean", "p50", "p99", "max"
    );
    for (name, h) in hists.iter().take(8) {
        println!(
            "{:<44} {:>8} {:>10.1} {:>10} {:>10} {:>10}",
            name,
            h.count,
            h.mean(),
            h.quantile(0.5),
            h.quantile(0.99),
            h.max,
        );
    }

    // ----- counters --------------------------------------------------------
    let mut counters: Vec<(&str, u64)> = metrics
        .iter()
        .filter_map(|m| match m.value {
            MetricValue::Counter(v) if v > 0 => Some((m.name.as_str(), v)),
            _ => None,
        })
        .collect();
    counters.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    println!("\ncounters");
    for (name, v) in &counters {
        println!("{name:<44} {v:>12}");
    }

    // ----- pool state (gauges) ---------------------------------------------
    let gauges: Vec<(&str, f64)> = metrics
        .iter()
        .filter_map(|m| match m.value {
            MetricValue::Gauge(v) => Some((m.name.as_str(), v)),
            _ => None,
        })
        .collect();
    if !gauges.is_empty() {
        println!("\npool state at end of run (gauges)");
        for (name, v) in &gauges {
            println!("{name:<44} {v:>12.1}");
        }
    }

    // ----- overlay transport ------------------------------------------------
    println!("\noverlay transport (acm.overlay.*, whole run)");
    for m in metrics
        .iter()
        .filter(|m| m.name.starts_with("acm.overlay."))
    {
        print_metric_row(&m.name, &m.value);
    }

    // ----- execution pool ---------------------------------------------------
    println!("\nexecution pool (acm.exec.*, whole run)");
    for m in metrics.iter().filter(|m| m.name.starts_with("acm.exec.")) {
        print_metric_row(&m.name, &m.value);
    }

    // ----- retention pressure ----------------------------------------------
    // Which kinds are hitting their per-kind ring budget. A nonzero drop
    // column means post-mortems on that kind only see the pinned head
    // plus the most recent tail — size `event_capacity` accordingly.
    let kind_stats = obs.events_kind_stats();
    let total_dropped: u64 = kind_stats.iter().map(|(_, _, d)| d).sum();
    println!(
        "\nretention pressure (acm.obs.events.dropped = {total_dropped}, \
         capacity {} per kind)",
        ObsConfig::default().event_capacity
    );
    println!("{:<28} {:>10} {:>10}", "kind", "retained", "dropped");
    for (kind, retained, dropped) in &kind_stats {
        println!("{kind:<28} {retained:>10} {dropped:>10}");
    }

    // ----- decision-log tail -----------------------------------------------
    println!(
        "\ndecision log: {} events retained, {} dropped — last 15:",
        obs.events_len(),
        obs.events_dropped()
    );
    for ev in obs.events_tail(15) {
        println!("{}", ev.to_json());
    }

    match std::fs::write("obs_report.jsonl", obs.events_jsonl()) {
        Ok(()) => println!("\nwrote obs_report.jsonl"),
        Err(e) => eprintln!("\nwarning: cannot write obs_report.jsonl: {e}"),
    }
    match std::fs::write("obs_metrics.jsonl", obs.metrics_jsonl()) {
        Ok(()) => println!("wrote obs_metrics.jsonl"),
        Err(e) => eprintln!("warning: cannot write obs_metrics.jsonl: {e}"),
    }
}
