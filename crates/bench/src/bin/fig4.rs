//! Regenerates **Figure 4** of the paper: the three-region hybrid
//! deployment (adds EC2 Frankfurt 12 × m3.small), rows = (RMTTF per region,
//! workload fraction per region); the response-time row is recorded too
//! even though the paper omits it "for the sake of brevity".
//!
//! ```text
//! cargo run --release -p acm-bench --bin fig4
//! ```

use acm_bench::plot::ascii_chart;
use acm_bench::{print_scorecard, run_and_dump, tail_window, Claim};
use acm_core::config::ExperimentConfig;
use acm_core::policy::PolicyKind;
use acm_core::telemetry::ExperimentTelemetry;

fn charts(tel: &ExperimentTelemetry) {
    let names = tel.region_names();
    let rmttf: Vec<(&str, Vec<f64>)> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), tel.rmttf(i).values().collect()))
        .collect();
    let rmttf_refs: Vec<(&str, &[f64])> = rmttf.iter().map(|(n, v)| (*n, v.as_slice())).collect();
    print!("{}", ascii_chart("RMTTF (s)", &rmttf_refs, 100, 10));
    let fracs: Vec<(&str, Vec<f64>)> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), tel.fraction(i).values().collect()))
        .collect();
    let frac_refs: Vec<(&str, &[f64])> = fracs.iter().map(|(n, v)| (*n, v.as_slice())).collect();
    print!("{}", ascii_chart("fraction f_i", &frac_refs, 100, 8));
}

fn summarise(policy: PolicyKind, tel: &ExperimentTelemetry) {
    let w = tail_window(tel);
    println!("\n=== {policy} ===");
    println!("{:>16} {:>12} {:>10}", "region", "rmttf(s)", "f");
    for (i, name) in tel.region_names().iter().enumerate() {
        println!(
            "{:>16} {:>12.0} {:>10.3}",
            name,
            tel.rmttf(i).tail_stats(w).mean(),
            tel.fraction(i).tail_stats(w).mean(),
        );
    }
    println!(
        "spread={:.3}  converged={}  f-oscillation={:.4}  plan-churn={:.3}  resp={:.0} ms",
        tel.rmttf_spread(w),
        tel.convergence_era(1.25)
            .map_or("never".into(), |e| format!("era {e}")),
        tel.fraction_oscillation(w),
        tel.plan_churn().tail_stats(w).mean(),
        tel.tail_response(w) * 1000.0,
    );
}

fn main() {
    println!("Figure 4 — three heterogeneous regions, three policies, 120 eras x 30 s");

    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2016);

    let mut tels = Vec::new();
    for policy in PolicyKind::ALL {
        let cfg = ExperimentConfig::three_region_fig4(policy, seed);
        let tel = run_and_dump(&cfg);
        summarise(policy, &tel);
        charts(&tel);
        tels.push(tel);
    }
    let [p1, p2, p3] = &tels[..] else {
        unreachable!()
    };
    let w = tail_window(p1);

    let claims = vec![
        Claim {
            id: "C1",
            statement: "Policy 1: RMTTF keeps oscillating / does not converge".into(),
            holds: p1.rmttf_spread(w) > 1.4 && p1.convergence_era(1.25).is_none(),
            evidence: format!(
                "P1 spread {:.2}, converged {:?}",
                p1.rmttf_spread(w),
                p1.convergence_era(1.25)
            ),
        },
        Claim {
            id: "C2",
            statement: "Policies 2 and 3 cope with the heterogeneity (RMTTF converges)".into(),
            holds: p2.rmttf_spread(w) < 1.25 && p3.rmttf_spread(w) < 1.4,
            evidence: format!(
                "P2 spread {:.2}, P3 spread {:.2}",
                p2.rmttf_spread(w),
                p3.rmttf_spread(w)
            ),
        },
        Claim {
            id: "C3a",
            statement: "Policy 2 converges more quickly than Policy 3".into(),
            // The paper reads convergence speed off the trend lines; the
            // first-reach metric captures that (the strict stay-below
            // detector conflates speed with steady-state noise).
            holds: match (p2.first_reach_era(1.25), p3.first_reach_era(1.25)) {
                (Some(a), Some(b)) => a <= b,
                (Some(_), None) => true,
                _ => false,
            },
            evidence: format!(
                "first reach: P2 {:?}, P3 {:?}",
                p2.first_reach_era(1.25),
                p3.first_reach_era(1.25)
            ),
        },
        Claim {
            id: "C3b",
            statement:
                "…although Policy 2's f_i values are slightly more oscillating than Policy 3's"
                    .into(),
            holds: p2.fraction_oscillation(w) > p3.fraction_oscillation(w) * 0.8,
            evidence: format!(
                "f-oscillation P2 {:.4} vs P3 {:.4}",
                p2.fraction_oscillation(w),
                p3.fraction_oscillation(w)
            ),
        },
        Claim {
            id: "C5",
            statement:
                "Policy 1 generates more request-flow redirections (plan churn) than Policy 2"
                    .into(),
            holds: p1.plan_churn().tail_stats(w).mean() > p2.plan_churn().tail_stats(w).mean(),
            evidence: format!(
                "mean churn P1 {:.3} vs P2 {:.3}",
                p1.plan_churn().tail_stats(w).mean(),
                p2.plan_churn().tail_stats(w).mean()
            ),
        },
        Claim {
            id: "C4",
            statement: "response time similar to the 2-region case (below SLA)".into(),
            holds: tels.iter().all(|t| t.tail_response(w) < 1.0),
            evidence: format!(
                "tail responses {:?} ms",
                tels.iter()
                    .map(|t| (t.tail_response(w) * 1000.0).round())
                    .collect::<Vec<_>>()
            ),
        },
    ];
    let failures = print_scorecard(&claims);
    std::process::exit(if failures == 0 { 0 } else { 1 });
}
