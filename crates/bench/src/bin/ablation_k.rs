//! Ablation A2 (DESIGN.md §4): the Exploration policy's scaling factor `k`
//! (Eq. 6–9) and its jitter — how aggressive hill climbing trades
//! convergence speed against stability, the "intrinsic randomness" the
//! paper blames for Policy 3's noise.
//!
//! ```text
//! cargo run --release -p acm-bench --bin ablation_k
//! ```

use acm_core::config::{ExperimentConfig, PredictorChoice};
use acm_core::framework::run_experiment;
use acm_core::policy::PolicyKind;
use rayon::prelude::*;
use std::fs;

fn main() {
    let ks = [0.1, 0.25, 0.5, 0.75, 1.0];
    let noises = [0.0, 0.02, 0.1];
    println!("Ablation A2 — Policy 3 step factor k and exploration jitter (3 regions)\n");
    println!(
        "{:>6} {:>8} {:>10} {:>12} {:>12}",
        "k", "noise", "spread", "converged", "f-oscill."
    );

    let mut jobs = Vec::new();
    for &k in &ks {
        for &noise in &noises {
            jobs.push((k, noise));
        }
    }
    let mut csv = String::from("k,noise,spread,convergence_era,f_oscillation\n");
    let rows: Vec<(String, String)> = jobs
        .par_iter()
        .map(|&(k, noise)| {
            let mut cfg = ExperimentConfig::three_region_fig4(PolicyKind::Exploration, 2016);
            cfg.predictor = PredictorChoice::Oracle;
            cfg.k = k;
            cfg.exploration_noise = noise;
            cfg.name = format!("ablation-k-{k}-{noise}");
            let tel = run_experiment(&cfg);
            let w = tel.eras() / 3;
            let conv = tel
                .convergence_era(1.25)
                .map_or("never".to_string(), |e| e.to_string());
            (
                format!(
                    "{:>6.2} {:>8.2} {:>10.3} {:>12} {:>12.4}",
                    k,
                    noise,
                    tel.rmttf_spread(w),
                    conv,
                    tel.fraction_oscillation(w)
                ),
                format!(
                    "{},{},{:.4},{},{:.5}\n",
                    k,
                    noise,
                    tel.rmttf_spread(w),
                    conv,
                    tel.fraction_oscillation(w)
                ),
            )
        })
        .collect();
    for (line, csv_line) in rows {
        println!("{line}");
        csv.push_str(&csv_line);
    }

    if fs::create_dir_all("results").is_ok() {
        let _ = fs::write("results/ablation_k.csv", csv);
        println!("\nwrote results/ablation_k.csv");
    }
    println!("\nLarger k converges faster but amplifies jitter; heavy jitter alone can");
    println!("keep the system from settling — the paper's Sec. VI-B caveat on Policy 3.");
}
