//! Ablation A6 (DESIGN.md §4): the intra-region load-balancing strategy.
//!
//! PCAM's local balancer can spread a region's flow equally, by VM health
//! (predicted RTTF) or by effective capacity. This sweep runs the Figure-3
//! deployment under Policy 2 with each strategy in every region and
//! compares failures, throughput and response time.
//!
//! ```text
//! cargo run --release -p acm-bench --bin ablation_balancer
//! ```

use acm_core::config::{ExperimentConfig, PredictorChoice};
use acm_core::framework::run_experiment;
use acm_core::policy::PolicyKind;
use acm_pcam::BalancerStrategy;
use rayon::prelude::*;
use std::fs;

fn main() {
    let strategies = [
        ("equal-share", BalancerStrategy::EqualShare),
        ("health-weighted", BalancerStrategy::HealthWeighted),
        ("capacity-weighted", BalancerStrategy::CapacityWeighted),
    ];

    println!("Ablation A6 — intra-region balancer (fig3, Policy 2, oracle)\n");
    println!(
        "{:<18} {:>10} {:>10} {:>12} {:>10} {:>10}",
        "balancer", "proact", "react", "completed", "resp(ms)", "spread"
    );

    let mut csv = String::from("balancer,proactive,reactive,completed,resp_ms,spread\n");
    let rows: Vec<(String, String)> = strategies
        .par_iter()
        .map(|(name, strategy)| {
            let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, 2016);
            cfg.predictor = PredictorChoice::Oracle;
            cfg.name = format!("ablation-balancer-{name}");
            for spec in &mut cfg.regions {
                spec.region.balancer = *strategy;
            }
            let tel = run_experiment(&cfg);
            let w = tel.eras() / 3;
            (
                format!(
                    "{:<18} {:>10} {:>10} {:>12} {:>10.0} {:>10.3}",
                    name,
                    tel.total_proactive(),
                    tel.total_reactive(),
                    tel.total_completed(),
                    tel.tail_response(w) * 1000.0,
                    tel.rmttf_spread(w)
                ),
                format!(
                    "{name},{},{},{},{:.1},{:.4}\n",
                    tel.total_proactive(),
                    tel.total_reactive(),
                    tel.total_completed(),
                    tel.tail_response(w) * 1000.0,
                    tel.rmttf_spread(w)
                ),
            )
        })
        .collect();
    for (line, csv_line) in rows {
        println!("{line}");
        csv.push_str(&csv_line);
    }

    if fs::create_dir_all("results").is_ok() {
        let _ = fs::write("results/ablation_balancer.csv", csv);
        println!("\nwrote results/ablation_balancer.csv");
    }
    println!("\nCapacity-weighted balancing wins: relieving degraded VMs cuts reactive");
    println!("failures and lifts throughput. Health-weighted (RTTF-proportional)");
    println!("backfires at these utilisations — it concentrates flow on the freshest");
    println!("VMs until they saturate, blowing the response time past the SLA: a");
    println!("useful negative result for naive sensible routing inside a region.");
}
