//! Mega-scale sharded-world report.
//!
//! Exercises the era-synchronized shard runtime at two layers and writes
//! the numbers to `BENCH_PR6.json` at the repository root:
//!
//! * **Control plane** — a deployment of hundreds of regions (the three
//!   paper flavors cycled, star overlay, chaos plan + graceful
//!   degradation) carrying over a million closed-loop emulated browsers,
//!   driven era by era through the sharded MONITOR phase. Reports total
//!   browsers, completed requests, era wall-time p50/p99, and verifies
//!   the run replays byte-identically (telemetry CSV + decision log,
//!   chaos included) at 1 and 4 worker threads.
//! * **Data plane** — per-shard discrete-event worlds fed by open-loop
//!   arrival generators (deterministic pre-split streams) in which every
//!   request is individually routed to a region by a per-shard
//!   weighted-P2C router lens (latency-aware scoring, era-barrier plan
//!   swaps including a quarantine), then passed through a chaos lens.
//!   Reports aggregate events/s at 1/2/4 threads, the 4-thread speedup,
//!   the event-queue arena-reuse counter, routing decisions/s, and
//!   checks the per-shard outcome digests — per-region routed counts
//!   included — are identical at every width.
//!
//! ```text
//! cargo run --release -p acm-bench --bin mega_report [-- --smoke]
//! ```
//!
//! `--smoke` shrinks both scenarios to CI size (bounded runtime) and
//! enforces the gates: byte identity at both layers, an aggregate
//! events/s floor, and (on machines with >= 4 cores) a >= 2x data-plane
//! speedup at 4 threads over 1. The full run enforces only the byte
//! identity gates — throughput numbers vary with the machine.

use acm_core::config::{ExperimentConfig, PredictorChoice, RegionSpec};
use acm_core::policy::PolicyKind;
use acm_core::{ControlLoop, DegradationConfig};
use acm_overlay::FaultPlan;
use acm_pcam::{RttfSource, Vmc};
use acm_router::{run_routed_plane, PlanStep, PlaneOutcome, RoutedPlaneConfig};
use acm_sim::rng::SimRng;
use acm_sim::time::{Duration, SimTime};
use acm_workload::ClientSchedule;
use std::time::Instant;

/// Era length of the control-plane deployment (seconds).
const ERA_S: u64 = 30;
/// Smoke-mode floor on aggregate data-plane throughput (events/s).
const SMOKE_EVENTS_PER_S_FLOOR: f64 = 50_000.0;
/// Smoke-mode floor on the 4-thread data-plane speedup (>= 4 cores only).
const SMOKE_SPEEDUP_FLOOR: f64 = 2.0;

struct Report {
    entries: Vec<(String, f64)>,
    failures: Vec<String>,
}

impl Report {
    fn push(&mut self, name: &str, value: f64) {
        println!("{name:<52} {value:>14.3}");
        self.entries.push((name.to_string(), value));
    }

    fn gate(&mut self, ok: bool, what: String) {
        if !ok {
            println!("  GATE VIOLATION: {what}");
            self.failures.push(what);
        }
    }

    fn to_json(&self) -> String {
        let mut o = acm_obs::json::JsonObject::new();
        for (name, value) in &self.entries {
            o.field_f64(name, (value * 1000.0).round() / 1000.0);
        }
        o.field_u64("gate_violations", self.failures.len() as u64);
        let mut s = o.finish();
        s.push('\n');
        s
    }
}

/// Scale knobs for the two scenarios.
struct Scale {
    regions: usize,
    clients_per_region: u32,
    control_eras: usize,
    data_shards: usize,
    data_regions: usize,
    data_browsers: u64,
    data_eras: u64,
    data_era_s: u64,
}

impl Scale {
    fn full() -> Self {
        Scale {
            regions: 200,
            clients_per_region: 5_120, // 200 x 5120 = 1,024,000 browsers
            control_eras: 15,
            data_shards: 16,
            data_regions: 64,
            data_browsers: 1 << 20, // 1,048,576 emulated browsers
            data_eras: 3,
            data_era_s: 10,
        }
    }

    fn smoke() -> Self {
        Scale {
            regions: 24,
            clients_per_region: 512,
            control_eras: 8,
            data_shards: 8,
            data_regions: 16,
            data_browsers: 1 << 18,
            data_eras: 2,
            data_era_s: 10,
        }
    }
}

/// A many-region deployment: the three paper region flavors cycled with
/// unique names, a star overlay rooted at region 0, a chaos plan that
/// partitions the last region for the middle third of the run plus 2 %
/// message drop / up-to-10 ms extra delay, and graceful degradation on.
fn mega_config(scale: &Scale) -> ExperimentConfig {
    let n = scale.regions;
    let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, 2026);
    cfg.name = format!("mega-{n}r");
    cfg.predictor = PredictorChoice::Oracle;
    cfg.eras = scale.control_eras;
    cfg.regions = (0..n)
        .map(|i| {
            let mut region = match i % 3 {
                0 => ExperimentConfig::region1_ireland(),
                1 => ExperimentConfig::region2_frankfurt(),
                _ => ExperimentConfig::region3_munich(),
            };
            region.name = format!("r{i:03}-{}", region.name);
            // The paper pools serve ~512 browsers per region; provision
            // linearly with the population so the deployment stays in the
            // serveable regime at any scale.
            let factor = (scale.clients_per_region as usize).div_ceil(512);
            region.total_vms *= factor;
            region.target_active *= factor;
            RegionSpec {
                region,
                clients: ClientSchedule::Constant(scale.clients_per_region),
            }
        })
        .collect();
    cfg.latencies = (1..n)
        .map(|j| (0usize, j, Duration::from_millis(8 + (j as u64 * 7) % 40)))
        .collect();
    let fail_at = SimTime::from_secs(scale.control_eras as u64 / 3 * ERA_S);
    let heal_at = SimTime::from_secs(scale.control_eras as u64 * 2 / 3 * ERA_S);
    cfg.fault_plan = Some(
        FaultPlan::scripted(11, Vec::new())
            .partition_window(vec![ExperimentConfig::node_of(n - 1)], fail_at, heal_at)
            .with_message_chaos(0.02, Duration::from_millis(10)),
    );
    cfg.degradation = DegradationConfig::enabled();
    cfg
}

/// Builds the loop with oracle predictors (no training phase) and runs
/// every era, timing each. Returns the telemetry CSV, the decision log,
/// total completed requests, and the per-era wall times.
fn run_control(cfg: &ExperimentConfig) -> (String, String, u64, Vec<f64>) {
    let mut rng = SimRng::new(cfg.seed);
    let vmcs: Vec<Vmc> = cfg
        .regions
        .iter()
        .map(|spec| Vmc::new(spec.region.clone(), RttfSource::Oracle, rng.split()))
        .collect();
    let mut cl = ControlLoop::new(cfg, vmcs, rng);
    let mut era_wall_s = Vec::with_capacity(cfg.eras);
    for _ in 0..cfg.eras {
        let t = Instant::now();
        cl.step_era();
        era_wall_s.push(t.elapsed().as_secs_f64());
    }
    let log = cl.obs().events_jsonl();
    let completed = cl.telemetry().total_completed();
    (cl.into_telemetry().to_csv(), log, completed, era_wall_s)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn control_plane_scenario(report: &mut Report, scale: &Scale) {
    let cfg = mega_config(scale);
    let browsers = scale.regions as u64 * u64::from(scale.clients_per_region);
    report.push("control_regions", scale.regions as f64);
    report.push("control_browsers", browsers as f64);
    report.push("control_eras", scale.control_eras as f64);

    let before = acm_exec::current_threads();
    acm_exec::configure_threads(1);
    let (csv_1t, log_1t, completed, _) = run_control(&cfg);
    acm_exec::configure_threads(4);
    let (csv_4t, log_4t, _, mut era_wall_s) = run_control(&cfg);
    acm_exec::configure_threads(before);

    report.push("control_completed_requests", completed as f64);
    era_wall_s.sort_by(|a, b| a.partial_cmp(b).expect("finite timing"));
    report.push(
        "control_era_wall_p50_ms",
        percentile(&era_wall_s, 0.50) * 1e3,
    );
    report.push(
        "control_era_wall_p99_ms",
        percentile(&era_wall_s, 0.99) * 1e3,
    );
    report.gate(
        completed > 0,
        "control: the deployment completed zero requests".to_string(),
    );

    let identical = (csv_1t, log_1t) == (csv_4t, log_4t);
    report.push("control_byte_identity_1t_vs_4t_ok", f64::from(identical));
    report.gate(
        identical,
        "control: telemetry/decision log diverge between 1 and 4 threads".to_string(),
    );
}

/// The routed data plane at mega scale: every arriving request is
/// individually mapped to a region by a per-shard weighted-P2C router
/// lens (latency feedback on), with a three-step plan schedule cycling
/// at era barriers — a skewed plan, the same plan with one region
/// quarantined, and the reversed skew — plus message chaos. The harness
/// itself lives in `acm_router::plane` so benches and tests drive the
/// exact same plane.
fn run_data(scale: &Scale) -> PlaneOutcome {
    let n = scale.data_regions;
    let mut cfg = RoutedPlaneConfig::new(
        n,
        scale.data_shards,
        scale.data_browsers,
        scale.data_eras,
        77,
    );
    cfg.era_s = scale.data_era_s;
    // Skew region weights 3:2:1 cyclically (install normalises), then
    // quarantine the last region, then reverse the skew.
    let skew: Vec<f64> = (0..n).map(|i| (3 - (i % 3)) as f64).collect();
    let mut masked_live = vec![true; n];
    masked_live[n - 1] = false;
    cfg.plans = vec![
        PlanStep::all_live(skew.clone()),
        PlanStep {
            fractions: skew.clone(),
            live: masked_live,
        },
        PlanStep::all_live(skew.into_iter().rev().collect()),
    ];
    run_routed_plane(&cfg)
}

fn data_plane_scenario(report: &mut Report, scale: &Scale, smoke: bool) {
    report.push("data_shards", scale.data_shards as f64);
    report.push("data_regions", scale.data_regions as f64);
    report.push("data_browsers", scale.data_browsers as f64);
    report.push(
        "data_sim_horizon_s",
        (scale.data_eras * scale.data_era_s) as f64,
    );

    let before = acm_exec::current_threads();
    let mut wall_1t = f64::NAN;
    let mut eps_4t = f64::NAN;
    let mut wall_4t = f64::NAN;
    let mut digest_1t = Vec::new();
    let mut digest_4t = Vec::new();
    for threads in [1usize, 2, 4] {
        acm_exec::configure_threads(threads);
        let out = run_data(scale);
        acm_exec::configure_threads(before);
        let eps = out.executed as f64 / out.wall_s;
        report.push(&format!("data_events_{threads}t"), out.executed as f64);
        report.push(&format!("data_events_per_s_{threads}t"), eps);
        match threads {
            1 => {
                wall_1t = out.wall_s;
                report.push("data_routing_decisions", out.decisions() as f64);
                report.push(
                    "data_routing_decisions_per_s",
                    out.decisions() as f64 / out.wall_s,
                );
                report.gate(
                    out.decisions() > 0,
                    "data: the routed plane made zero routing decisions".to_string(),
                );
                report.push("data_arena_reuse_slots", out.arena_reuse as f64);
                report.gate(
                    out.arena_reuse > 0,
                    "data: event-queue arenas were never reused across eras".to_string(),
                );
                digest_1t = out.digests;
            }
            4 => {
                wall_4t = out.wall_s;
                eps_4t = eps;
                digest_4t = out.digests;
            }
            _ => {}
        }
    }

    let identical = digest_1t == digest_4t;
    report.push("data_digest_identity_1t_vs_4t_ok", f64::from(identical));
    report.gate(
        identical,
        "data: per-shard outcomes diverge between 1 and 4 threads".to_string(),
    );

    let speedup = wall_1t / wall_4t;
    report.push("data_speedup_4t", speedup);
    if smoke {
        report.gate(
            eps_4t >= SMOKE_EVENTS_PER_S_FLOOR,
            format!("data: aggregate {eps_4t:.0} events/s below the {SMOKE_EVENTS_PER_S_FLOOR:.0} floor"),
        );
        let avail = acm_exec::available_threads();
        if avail >= 4 {
            report.gate(
                speedup >= SMOKE_SPEEDUP_FLOOR,
                format!("data: 4-thread speedup {speedup:.2} below {SMOKE_SPEEDUP_FLOOR}"),
            );
        } else {
            println!("  (speedup gate skipped: {avail} cores available, need 4)");
        }
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { Scale::smoke() } else { Scale::full() };
    let mut report = Report {
        entries: Vec::new(),
        failures: Vec::new(),
    };

    println!(
        "mega-scale sharded-world report ({} mode, {} cores)\n",
        if smoke { "smoke" } else { "full" },
        acm_exec::available_threads()
    );
    println!("control plane: sharded MONITOR at deployment scale");
    control_plane_scenario(&mut report, &scale);
    println!("\ndata plane: per-request weighted-P2C routing on sharded event queues");
    data_plane_scenario(&mut report, &scale, smoke);

    let json = report.to_json();
    match std::fs::write("BENCH_PR6.json", &json) {
        Ok(()) => println!("\nwrote BENCH_PR6.json"),
        Err(e) => eprintln!("\nwarning: cannot write BENCH_PR6.json: {e}"),
    }

    if report.failures.is_empty() {
        println!("all gates hold");
    } else {
        eprintln!("\n{} gate violation(s):", report.failures.len());
        for f in &report.failures {
            eprintln!("  FAIL: {f}");
        }
        std::process::exit(1);
    }
}
