//! Hot-path throughput report.
//!
//! Runs fixed-seed workloads over every layer the hot-path overhaul
//! touched — the event kernel (new arena queue vs the retained seed
//! implementation), the discrete-event driver, request dispatch through
//! `RegionSim`, leader policy steps, REP-Tree training plus
//! scalar-vs-batched prediction, the observability layer's overhead, the
//! execution pool's thread-scaling curve and the model-selection (tuning
//! grid + k-fold CV) scaling curve — and writes the numbers to
//! `BENCH_PR4.json` at the repository root.
//!
//! ```text
//! cargo run --release -p acm-bench --bin perf_report [-- --obs-gate] [--batch-gate] [--scaling-gate] [--cv-scaling-gate]
//! ```
//!
//! Gate modes (the CI regression checks; each runs only its workload and
//! exits nonzero on violation):
//!
//! * `--obs-gate` — no-op instruments must cost < 2 % and fully enabled
//!   observability < 25 % on the 10k-event simulator chain;
//! * `--batch-gate` — batched REP-Tree prediction must be at least as
//!   fast as the scalar walk (speedup ≥ 1.0);
//! * `--scaling-gate` — the parallel training-set harvest must reach
//!   ≥ 3× at 4 threads, checked only when the machine has ≥ 4 cores
//!   (skipped, exit 0, otherwise — a 1-core container cannot scale);
//! * `--cv-scaling-gate` — the parallel REP-Tree tuning grid must reach
//!   ≥ 2× at 4 threads, same ≥ 4-core requirement to run.
//!
//! Every workload is deterministic per its hard-coded seed; timings vary
//! with the machine, the ratios (`*_speedup`, `*_pct`) are the stable
//! signal.

use acm_core::config::ExperimentConfig;
use acm_core::framework::run_experiment;
use acm_core::policy::{uniform_fractions, LoadBalancingPolicy, PolicyKind};
use acm_ml::model::{AnyModel, ModelKind};
use acm_obs::{Obs, ObsConfig, ObsHandle};
use acm_pcam::events::RegionSim;
use acm_pcam::training::{collect_database, CollectionConfig};
use acm_pcam::vmc::{RegionConfig, RttfSource};
use acm_sim::rng::SimRng;
use acm_sim::sim::Simulator;
use acm_sim::time::{Duration, SimTime};
use acm_vm::{AnomalyConfig, FailureSpec, VmFlavor};
use std::hint::black_box;
use std::time::Instant;

/// Median seconds per call of `f` over `samples` timed batches of `reps`
/// calls each (after one warmup batch).
fn time_it<F: FnMut()>(reps: u32, samples: usize, mut f: F) -> f64 {
    for _ in 0..reps {
        f();
    }
    let mut per_call: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            for _ in 0..reps {
                f();
            }
            start.elapsed().as_secs_f64() / reps as f64
        })
        .collect();
    per_call.sort_by(|a, b| a.partial_cmp(b).expect("finite timing"));
    per_call[per_call.len() / 2]
}

struct Report {
    entries: Vec<(String, f64)>,
}

impl Report {
    fn push(&mut self, name: &str, value: f64) {
        println!("{name:<44} {value:>16.1}");
        self.entries.push((name.to_string(), value));
    }

    fn to_json(&self) -> String {
        let mut o = acm_obs::json::JsonObject::new();
        for (name, value) in &self.entries {
            o.field_f64(name, (value * 1000.0).round() / 1000.0);
        }
        let mut s = o.finish();
        s.push('\n');
        s
    }
}

/// The seed of `event_queue_push_pop_1k`: schedule 1k, drain.
fn queue_workloads(report: &mut Report) {
    const N: u64 = 1000;
    let new_pp = time_it(200, 9, || {
        let mut rng = SimRng::new(1);
        let mut q = acm_sim::event::EventQueue::new();
        for i in 0..N {
            q.schedule(SimTime::from_micros(rng.next_u64() % 1_000_000), i);
        }
        let mut sum = 0u64;
        while let Some((_, v)) = q.pop() {
            sum += v;
        }
        black_box(sum);
    });
    let legacy_pp = time_it(200, 9, || {
        let mut rng = SimRng::new(1);
        let mut q = acm_sim::legacy::EventQueue::new();
        for i in 0..N {
            q.schedule(SimTime::from_micros(rng.next_u64() % 1_000_000), i);
        }
        let mut sum = 0u64;
        while let Some((_, v)) = q.pop() {
            sum += v;
        }
        black_box(sum);
    });
    report.push("event_queue_push_pop_1k_ops_per_s", N as f64 / new_pp);
    report.push(
        "event_queue_push_pop_1k_legacy_ops_per_s",
        N as f64 / legacy_pp,
    );
    report.push("event_queue_push_pop_1k_speedup", legacy_pp / new_pp);

    // Cancellation-heavy churn: schedule 4, cancel 2, pop 1, repeat — the
    // timer-wheel-like pattern the per-request completion events produce.
    const ROUNDS: u64 = 1000;
    let new_cc = time_it(120, 9, || {
        let mut rng = SimRng::new(2);
        let mut q = acm_sim::event::EventQueue::new();
        let mut handles = Vec::with_capacity(4 * ROUNDS as usize);
        for i in 0..ROUNDS {
            for k in 0..4u64 {
                handles
                    .push(q.schedule(SimTime::from_micros(rng.next_u64() % 1_000_000), i * 4 + k));
            }
            let h = handles.len();
            q.cancel(handles[h - 2]);
            q.cancel(handles[h - 4]);
            black_box(q.pop());
        }
        while q.pop().is_some() {}
    });
    let legacy_cc = time_it(120, 9, || {
        let mut rng = SimRng::new(2);
        let mut q = acm_sim::legacy::EventQueue::new();
        let mut handles = Vec::with_capacity(4 * ROUNDS as usize);
        for i in 0..ROUNDS {
            for k in 0..4u64 {
                handles
                    .push(q.schedule(SimTime::from_micros(rng.next_u64() % 1_000_000), i * 4 + k));
            }
            let h = handles.len();
            q.cancel(handles[h - 2]);
            q.cancel(handles[h - 4]);
            black_box(q.pop());
        }
        while q.pop().is_some() {}
    });
    report.push(
        "event_queue_cancel_churn_ops_per_s",
        (7 * ROUNDS) as f64 / new_cc,
    );
    report.push(
        "event_queue_cancel_churn_legacy_ops_per_s",
        (7 * ROUNDS) as f64 / legacy_cc,
    );
    report.push("event_queue_cancel_churn_speedup", legacy_cc / new_cc);
}

/// A verbatim replica of the seed driver loop over the retained seed queue:
/// boxed `FnOnce` handlers popped in `(time, seq)` order. Only the queue
/// differs from [`Simulator`], so the ratio isolates the kernel swap.
type LegacyHandler = Box<dyn FnOnce(&mut LegacySim)>;

struct LegacySim {
    now: SimTime,
    queue: acm_sim::legacy::EventQueue<LegacyHandler>,
    world: u64,
}

impl LegacySim {
    fn schedule_in(&mut self, delay: Duration, handler: impl FnOnce(&mut LegacySim) + 'static) {
        let at = self.now + delay;
        self.queue.schedule(at, Box::new(handler));
    }

    fn run_to_completion(&mut self) {
        while let Some((at, handler)) = self.queue.pop() {
            self.now = at;
            handler(self);
        }
    }
}

/// The seed of `simulator_10k_events`: a 10k-deep self-scheduling chain.
fn simulator_workload(report: &mut Report) {
    const N: u64 = 10_000;
    let per_run = time_it(30, 9, || {
        let mut sim = Simulator::new(0u64);
        fn chain(s: &mut Simulator<u64>) {
            s.world += 1;
            if s.world < 10_000 {
                s.schedule_in(Duration::from_micros(10), chain);
            }
        }
        sim.schedule_at(SimTime::ZERO, chain);
        sim.run_to_completion(u64::MAX);
        black_box(sim.world);
    });
    let legacy_per_run = time_it(30, 9, || {
        let mut sim = LegacySim {
            now: SimTime::ZERO,
            queue: acm_sim::legacy::EventQueue::new(),
            world: 0,
        };
        fn chain(s: &mut LegacySim) {
            s.world += 1;
            if s.world < 10_000 {
                s.schedule_in(Duration::from_micros(10), chain);
            }
        }
        sim.schedule_in(Duration::ZERO, chain);
        sim.run_to_completion();
        black_box(sim.world);
    });
    report.push("simulator_10k_events_per_s", N as f64 / per_run);
    report.push(
        "simulator_10k_events_legacy_per_s",
        N as f64 / legacy_per_run,
    );
    report.push("simulator_10k_events_speedup", legacy_per_run / per_run);
}

/// Request dispatch through the event-grain region: serve with periodic
/// controller ticks, concurrency-tracked begin/finish.
fn region_sim_workload(report: &mut Report) {
    const REQS: u64 = 50_000;
    let per_run = time_it(8, 7, || {
        let mut region = RegionSim::new(
            RegionConfig::new("perf", VmFlavor::m3_medium(), 6, 4),
            RttfSource::Oracle,
            9.0,
            SimRng::new(5),
        );
        let mut now = SimTime::ZERO;
        for step in 0..REQS {
            if let Some((vm, _)) = region.begin(now) {
                region.finish(vm);
            }
            if step % 300 == 0 {
                now += Duration::from_secs(25);
                region.control_tick(now);
            }
        }
        black_box(region.stats());
    });
    report.push("region_sim_requests_per_s", REQS as f64 / per_run);
}

/// One leader `POLICY()` evaluation at 16 regions.
fn policy_workload(report: &mut Report) {
    const N: usize = 16;
    let mut rng = SimRng::new(7);
    let prev = uniform_fractions(N);
    let rmttf: Vec<f64> = (0..N).map(|_| rng.uniform(100.0, 1000.0)).collect();
    let policy = LoadBalancingPolicy::new(PolicyKind::AvailableResources);
    let mut r = SimRng::new(9);
    let per_step = time_it(20_000, 9, || {
        black_box(policy.next_fractions(black_box(&prev), black_box(&rmttf), 100.0, &mut r));
    });
    report.push("policy_steps_per_s", 1.0 / per_step);
}

/// REP-Tree: training on a harvested database, then scalar vs batched
/// prediction over an era-sized block. Returns the batch-over-scalar
/// speedup (the `--batch-gate` number).
fn rep_tree_workload(report: &mut Report) -> f64 {
    let mut rng = SimRng::new(2016);
    let db = collect_database(
        &VmFlavor::m3_medium(),
        &AnomalyConfig::default(),
        &FailureSpec::default(),
        &CollectionConfig::default(),
        &mut rng,
    );
    let per_fit = time_it(4, 5, || {
        let mut r = SimRng::new(5);
        black_box(ModelKind::RepTree.fit(black_box(&db), &mut r));
    });
    report.push("rep_tree_train_per_s", 1.0 / per_fit);

    let mut r = SimRng::new(5);
    let AnyModel::RepTree(tree) = ModelKind::RepTree.fit(&db, &mut r) else {
        unreachable!("RepTree.fit returns a tree");
    };
    const ROWS: usize = 256;
    let rows: Vec<Vec<f64>> = (0..ROWS).map(|i| db.row(i % db.len()).to_vec()).collect();
    // Scalar baseline is the pre-overhaul API shape: one walk per row with a
    // collected result vector, the cost every per-era scoring pass used to pay.
    let scalar = time_it(2000, 9, || {
        let preds: Vec<f64> = rows
            .iter()
            .map(|row| tree.predict_one(black_box(row)))
            .collect();
        black_box(preds.iter().sum::<f64>());
    });
    let mut out = Vec::with_capacity(ROWS);
    let batch = time_it(2000, 9, || {
        tree.predict_batch_into(rows.iter().map(|v| v.as_slice()), &mut out);
        black_box(out.iter().sum::<f64>());
    });
    report.push("rep_tree_predict_scalar_rows_per_s", ROWS as f64 / scalar);
    report.push("rep_tree_predict_batch_rows_per_s", ROWS as f64 / batch);
    report.push("rep_tree_predict_batch_speedup", scalar / batch);
    scalar / batch
}

/// Thread-scaling curve of the execution pool over the two parallel
/// workloads this PR introduced: the per-seed training-set harvest
/// (`collect_database`, one task per `(lambda, run)`) and the per-family
/// toolchain fit. Sweeps `ACM_THREADS` ∈ {1, 2, 4, available} via
/// [`acm_exec::configure_threads`] and reports the speedup of each point
/// over the single-thread run. Returns the 4-thread harvest speedup (the
/// `--scaling-gate` number; `NaN` when the sweep never reaches 4 threads).
fn scaling_workload(report: &mut Report) -> f64 {
    let avail = acm_exec::available_threads();
    report.push("scaling_threads_available", avail as f64);
    let mut points = vec![1usize, 2, 4, avail];
    points.sort_unstable();
    points.dedup();

    let flavor = VmFlavor::m3_medium();
    let anomaly = AnomalyConfig::default();
    let failure = FailureSpec::default();
    let collection = CollectionConfig::default();
    let harvest = |threads: usize| {
        acm_exec::configure_threads(threads);
        let t = time_it(2, 5, || {
            let mut rng = SimRng::new(2016);
            black_box(collect_database(
                &flavor,
                &anomaly,
                &failure,
                &collection,
                &mut rng,
            ));
        });
        acm_exec::configure_threads(0); // back to the env/core default
        t
    };
    let mut rng = SimRng::new(2016);
    let db = collect_database(&flavor, &anomaly, &failure, &collection, &mut rng);
    let toolchain = acm_ml::toolchain::F2pmToolchain::default();
    let fit = |threads: usize| {
        acm_exec::configure_threads(threads);
        let t = time_it(1, 3, || {
            let mut r = SimRng::new(5);
            black_box(toolchain.run(black_box(&db), &mut r));
        });
        acm_exec::configure_threads(0);
        t
    };

    let mut harvest_base = f64::NAN;
    let mut fit_base = f64::NAN;
    let mut gate = f64::NAN;
    for &threads in &points {
        let h = harvest(threads);
        let f = fit(threads);
        if threads == 1 {
            harvest_base = h;
            fit_base = f;
        }
        report.push(&format!("scaling_harvest_{threads}t_per_s"), 1.0 / h);
        report.push(&format!("scaling_toolchain_fit_{threads}t_per_s"), 1.0 / f);
        report.push(
            &format!("scaling_harvest_speedup_{threads}t"),
            harvest_base / h,
        );
        report.push(
            &format!("scaling_toolchain_fit_speedup_{threads}t"),
            fit_base / f,
        );
        if threads == 4 {
            gate = harvest_base / h;
        }
    }
    gate
}

/// Thread-scaling curve of the model-selection inner loops this PR
/// parallelised: the REP-Tree tuning grid (9 candidates × 5 folds through
/// `tune_rep_tree`) and a standalone 8-fold cross-validation. Sweeps
/// `ACM_THREADS` ∈ {1, 2, 4, available} like [`scaling_workload`] and
/// reports per-point throughput plus the speedup over one thread. Returns
/// the 4-thread tuning-grid speedup (the `--cv-scaling-gate` number;
/// `NaN` when the sweep never reaches 4 threads).
fn cv_scaling_workload(report: &mut Report) -> f64 {
    let avail = acm_exec::available_threads();
    report.push("cv_scaling_threads_available", avail as f64);
    let mut points = vec![1usize, 2, 4, avail];
    points.sort_unstable();
    points.dedup();

    let mut rng = SimRng::new(2016);
    let db = collect_database(
        &VmFlavor::m3_medium(),
        &AnomalyConfig::default(),
        &FailureSpec::default(),
        &CollectionConfig::default(),
        &mut rng,
    );
    let grid = |threads: usize| {
        acm_exec::configure_threads(threads);
        let t = time_it(2, 5, || {
            let mut r = SimRng::new(7);
            black_box(acm_ml::tuning::tune_rep_tree(black_box(&db), 5, &mut r));
        });
        acm_exec::configure_threads(0); // back to the env/core default
        t
    };
    let folds = |threads: usize| {
        acm_exec::configure_threads(threads);
        let t = time_it(4, 5, || {
            let mut r = SimRng::new(7);
            black_box(acm_ml::validate::cross_validate(
                acm_ml::model::ModelKind::RepTree,
                black_box(&db),
                8,
                &mut r,
            ));
        });
        acm_exec::configure_threads(0);
        t
    };

    let mut grid_base = f64::NAN;
    let mut fold_base = f64::NAN;
    let mut gate = f64::NAN;
    for &threads in &points {
        let g = grid(threads);
        let f = folds(threads);
        if threads == 1 {
            grid_base = g;
            fold_base = f;
        }
        report.push(&format!("cv_grid_{threads}t_per_s"), 1.0 / g);
        report.push(&format!("cv_fold_{threads}t_per_s"), 1.0 / f);
        report.push(&format!("cv_grid_speedup_{threads}t"), grid_base / g);
        report.push(&format!("cv_fold_speedup_{threads}t"), fold_base / f);
        if threads == 4 {
            gate = grid_base / g;
        }
    }
    gate
}

/// Observability overhead on the 10k-event simulator chain, three ways:
/// default inert handles (never wired), handles wired against a disabled
/// `Obs` (the no-op mode), and a fully enabled `Obs` counting every queue
/// push/pop. Returns the (no-op, enabled) overheads in percent — the
/// numbers the `--obs-gate` CI check bounds at 2 % and 25 %.
fn obs_overhead_workload(report: &mut Report) -> (f64, f64) {
    const N: u64 = 10_000;
    const REPS: u32 = 32;
    const ROUNDS: usize = 31;
    fn chain(s: &mut Simulator<u64>) {
        s.world += 1;
        if s.world < 10_000 {
            s.schedule_in(Duration::from_micros(10), chain);
        }
    }
    fn run(obs: Option<&ObsHandle>) {
        let mut sim = Simulator::new(0u64);
        if let Some(o) = obs {
            sim.set_obs(o);
        }
        sim.schedule_at(SimTime::ZERO, chain);
        sim.run_to_completion(u64::MAX);
        black_box(sim.world);
    }
    fn timed(obs: Option<&ObsHandle>) -> f64 {
        let start = Instant::now();
        for _ in 0..REPS {
            run(obs);
        }
        start.elapsed().as_secs_f64() / REPS as f64
    }
    fn median(mut v: Vec<f64>) -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite timing"));
        v[v.len() / 2]
    }
    fn min(v: &[f64]) -> f64 {
        v.iter().copied().fold(f64::INFINITY, f64::min)
    }

    // DVFS and scheduling drift dwarf a 2 % effect over a sequential
    // A-then-B measurement, so the rounds interleave the three variants.
    // Throughputs report the medians; the overhead ratios compare the
    // per-variant minima — interference only ever adds time, so the round
    // minimum is the robust estimate of the true cost.
    let noop = Obs::noop();
    let enabled = Obs::new(ObsConfig::default());
    for _ in 0..2 {
        run(None);
        run(Some(&noop));
        run(Some(&enabled));
    }
    let mut base_ts = Vec::with_capacity(ROUNDS);
    let mut noop_ts = Vec::with_capacity(ROUNDS);
    let mut enabled_ts = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        base_ts.push(timed(None));
        noop_ts.push(timed(Some(&noop)));
        enabled_ts.push(timed(Some(&enabled)));
    }

    let noop_pct = (min(&noop_ts) / min(&base_ts) - 1.0) * 100.0;
    let enabled_pct = (min(&enabled_ts) / min(&base_ts) - 1.0) * 100.0;
    report.push(
        "obs_baseline_chain_events_per_s",
        N as f64 / median(base_ts),
    );
    report.push("obs_noop_chain_events_per_s", N as f64 / median(noop_ts));
    report.push(
        "obs_enabled_chain_events_per_s",
        N as f64 / median(enabled_ts),
    );
    report.push("obs_noop_overhead_pct", noop_pct);
    report.push("obs_enabled_overhead_pct", enabled_pct);
    (noop_pct, enabled_pct)
}

/// Wall-clock of the Figure-3 experiment (the workload the acceptance
/// criterion tracks end to end).
fn fig3_workload(report: &mut Report) {
    let cfg = ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, 42);
    let per_run = time_it(3, 5, || {
        black_box(run_experiment(&cfg));
    });
    report.push("fig3_wall_clock_s", per_run);
}

fn main() {
    let mut report = Report {
        entries: Vec::new(),
    };
    if std::env::args().any(|a| a == "--obs-gate") {
        println!("observability overhead gate (10k-event chain)\n");
        let (noop_pct, enabled_pct) = obs_overhead_workload(&mut report);
        if noop_pct > 2.0 {
            eprintln!("\nFAIL: obs no-op overhead {noop_pct:.2}% exceeds the 2% budget");
            std::process::exit(1);
        }
        if enabled_pct > 25.0 {
            eprintln!("\nFAIL: obs enabled overhead {enabled_pct:.2}% exceeds the 25% budget");
            std::process::exit(1);
        }
        println!(
            "\nOK: obs no-op overhead {noop_pct:.2}% (budget 2%), enabled {enabled_pct:.2}% (budget 25%)"
        );
        return;
    }
    if std::env::args().any(|a| a == "--batch-gate") {
        println!("REP-Tree batched-prediction gate\n");
        let speedup = rep_tree_workload(&mut report);
        if speedup < 1.0 {
            eprintln!("\nFAIL: batch prediction speedup {speedup:.3} is below 1.0");
            std::process::exit(1);
        }
        println!("\nOK: batch prediction speedup {speedup:.3} >= 1.0");
        return;
    }
    if std::env::args().any(|a| a == "--scaling-gate") {
        println!("execution-pool scaling gate (training-set harvest)\n");
        let avail = acm_exec::available_threads();
        let speedup = scaling_workload(&mut report);
        if avail < 4 {
            println!("\nSKIP: scaling gate needs >= 4 cores, machine has {avail}");
            return;
        }
        if speedup < 3.0 {
            eprintln!("\nFAIL: 4-thread harvest speedup {speedup:.2} is below 3.0");
            std::process::exit(1);
        }
        println!("\nOK: 4-thread harvest speedup {speedup:.2} >= 3.0");
        return;
    }
    if std::env::args().any(|a| a == "--cv-scaling-gate") {
        println!("model-selection scaling gate (tuning grid + k-fold CV)\n");
        let avail = acm_exec::available_threads();
        let speedup = cv_scaling_workload(&mut report);
        if avail < 4 {
            println!("\nSKIP: CV scaling gate needs >= 4 cores, machine has {avail}");
            return;
        }
        if speedup < 2.0 {
            eprintln!("\nFAIL: 4-thread tuning-grid speedup {speedup:.2} is below 2.0");
            std::process::exit(1);
        }
        println!("\nOK: 4-thread tuning-grid speedup {speedup:.2} >= 2.0");
        return;
    }

    println!("hot-path throughput report (fixed seeds, release build)\n");
    queue_workloads(&mut report);
    simulator_workload(&mut report);
    region_sim_workload(&mut report);
    policy_workload(&mut report);
    rep_tree_workload(&mut report);
    obs_overhead_workload(&mut report);
    scaling_workload(&mut report);
    cv_scaling_workload(&mut report);
    fig3_workload(&mut report);

    let json = report.to_json();
    match std::fs::write("BENCH_PR4.json", &json) {
        Ok(()) => println!("\nwrote BENCH_PR4.json"),
        Err(e) => eprintln!("\nwarning: cannot write BENCH_PR4.json: {e}"),
    }
}
