//! Ablation A4 (DESIGN.md §4): the PCAM rejuvenation threshold.
//!
//! PCAM rejuvenates a VM when its predicted RTTF drops below a
//! user-established threshold. Too low and the predictor's misses become
//! reactive failures; too high and the region churns through rejuvenations
//! (wasted VM lifetime). This sweep quantifies that availability/churn
//! trade-off on the Figure-3 deployment with the REP-Tree predictor, where
//! prediction error is real.
//!
//! ```text
//! cargo run --release -p acm-bench --bin ablation_rejuvenation
//! ```

use acm_core::config::ExperimentConfig;
use acm_core::framework::run_experiment;
use acm_core::policy::PolicyKind;
use acm_sim::time::Duration;
use rayon::prelude::*;
use std::fs;

fn main() {
    let thresholds_s = [30u64, 60, 120, 240, 480];
    println!("Ablation A4 — RTTF rejuvenation threshold (fig3 deployment, REP-Tree)\n");
    println!(
        "{:>12} {:>10} {:>10} {:>12} {:>10}",
        "threshold(s)", "proactive", "reactive", "completed", "resp(ms)"
    );

    let mut csv = String::from("threshold_s,proactive,reactive,completed,resp_ms\n");
    let rows: Vec<(String, String)> = thresholds_s
        .par_iter()
        .map(|&th| {
            let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, 2016);
            cfg.name = format!("ablation-rejuvenation-{th}");
            for spec in &mut cfg.regions {
                spec.region.rttf_threshold = Duration::from_secs(th);
            }
            let tel = run_experiment(&cfg);
            let w = tel.eras() / 3;
            (
                format!(
                    "{:>12} {:>10} {:>10} {:>12} {:>10.0}",
                    th,
                    tel.total_proactive(),
                    tel.total_reactive(),
                    tel.total_completed(),
                    tel.tail_response(w) * 1000.0
                ),
                format!(
                    "{th},{},{},{},{:.1}\n",
                    tel.total_proactive(),
                    tel.total_reactive(),
                    tel.total_completed(),
                    tel.tail_response(w) * 1000.0
                ),
            )
        })
        .collect();
    for (line, csv_line) in rows {
        println!("{line}");
        csv.push_str(&csv_line);
    }

    if fs::create_dir_all("results").is_ok() {
        let _ = fs::write("results/ablation_rejuvenation.csv", csv);
        println!("\nwrote results/ablation_rejuvenation.csv");
    }
    println!("\nLow thresholds leave failures to reactive recovery (prediction misses");
    println!("arrive too late); high thresholds churn through healthy VM lifetime.");
}
