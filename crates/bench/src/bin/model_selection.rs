//! Regenerates the model-selection step behind Sec. VI-A: "Based on our
//! previous results in \[26\], we selected REP Tree as a ML model for
//! predicting the MTTF."
//!
//! Runs the full F2PM toolchain on feature databases harvested from every
//! flavor in the paper's testbed and prints the per-family validation
//! ranking (holdout) plus a 5-fold cross-validation for the top families.
//!
//! ```text
//! cargo run --release -p acm-bench --bin model_selection
//! ```

use acm_ml::model::ModelKind;
use acm_ml::toolchain::F2pmToolchain;
use acm_ml::validate::cross_validate;
use acm_obs::{MetricValue, Obs, ObsConfig};
use acm_pcam::training::{collect_database, CollectionConfig};
use acm_sim::rng::SimRng;
use acm_vm::{AnomalyConfig, FailureSpec, VmFlavor};
use std::fs;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2016);
    let mut rng = SimRng::new(seed);
    let mut all_output = String::new();
    let obs = Obs::new(ObsConfig::default());

    for flavor in [
        VmFlavor::m3_medium(),
        VmFlavor::m3_small(),
        VmFlavor::private_munich(),
    ] {
        println!("=== flavor {} ===", flavor.name);
        let db = collect_database(
            &flavor,
            &AnomalyConfig::default(),
            &FailureSpec::default(),
            &CollectionConfig::default(),
            &mut rng,
        );
        println!(
            "feature database: {} rows x {} features",
            db.len(),
            db.width()
        );

        let (_, report) = F2pmToolchain::default().run_with_obs(&db, &mut rng, &obs);
        println!("lasso selected: {}", report.selected_names.join(", "));
        println!("holdout ranking:");
        print!("{}", report.to_table());

        // Cross-validate the deployed family (REP-Tree) and the holdout
        // winner to show the choice is stable across folds.
        println!("5-fold CV (rmse mean ± std):");
        for kind in [report.best_kind(), ModelKind::RepTree] {
            let cv = cross_validate(kind, &db, 5, &mut rng);
            println!(
                "  {:<10} {:>9.2} ± {:<8.2} (R² {:.3})",
                kind.name(),
                cv.mean_rmse(),
                cv.rmse_std(),
                cv.mean_r2()
            );
        }
        println!();
        all_output.push_str(&format!("flavor,{}\n{}\n", flavor.name, report.to_table()));
    }

    // Where the training time went, across all three flavors: the
    // toolchain's per-phase timers (`acm.ml.toolchain.*`).
    println!("=== training-time breakdown (all flavors) ===");
    println!(
        "{:<14} {:>6} {:>12} {:>12}",
        "phase/family", "fits", "total_ms", "mean_ms"
    );
    let mut timer_rows = String::from("phase,count,total_ms,mean_ms\n");
    for m in obs.metrics() {
        let Some(short) = m.name.strip_prefix("acm.ml.toolchain.") else {
            continue;
        };
        let MetricValue::Histogram(h) = &m.value else {
            continue;
        };
        // `fit_ns.lasso` is the Lasso *family* fit; the bare `lasso_ns`
        // phase timer is feature selection — keep the labels distinct.
        let label = match short {
            "lasso_ns" => "selection".to_string(),
            "score_ns" => "scoring".to_string(),
            other => other
                .strip_prefix("fit_ns.")
                .unwrap_or(other.trim_end_matches("_ns"))
                .to_string(),
        };
        println!(
            "{:<14} {:>6} {:>12.1} {:>12.1}",
            label,
            h.count,
            h.sum as f64 / 1e6,
            h.mean() / 1e6
        );
        timer_rows.push_str(&format!(
            "{label},{},{:.3},{:.3}\n",
            h.count,
            h.sum as f64 / 1e6,
            h.mean() / 1e6
        ));
    }
    println!();

    if fs::create_dir_all("results").is_ok() {
        let _ = fs::write("results/model_selection.txt", &all_output);
        println!("wrote results/model_selection.txt");
        let _ = fs::write("results/model_selection_timers.csv", &timer_rows);
        println!("wrote results/model_selection_timers.csv");
    }
    println!(
        "\nThe paper deploys REP-Tree (chosen in its earlier F2PM study [26]); the\n\
         framework honours that via PredictorChoice::Trained(ModelKind::RepTree).\n\
         On this simulated substrate the piecewise/kernel families (M5P, LS-SVM)\n\
         often edge it out on raw RMSE, while REP-Tree is the most fold-stable of\n\
         the top tier — see EXPERIMENTS.md for the discussion."
    );
}
