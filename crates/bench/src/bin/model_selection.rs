//! Regenerates the model-selection step behind Sec. VI-A: "Based on our
//! previous results in \[26\], we selected REP Tree as a ML model for
//! predicting the MTTF."
//!
//! Runs the full F2PM toolchain on feature databases harvested from every
//! flavor in the paper's testbed and prints the per-family validation
//! ranking (holdout) plus a 5-fold cross-validation for the top families.
//!
//! ```text
//! cargo run --release -p acm-bench --bin model_selection
//! ```

use acm_ml::model::ModelKind;
use acm_ml::toolchain::F2pmToolchain;
use acm_ml::validate::cross_validate;
use acm_pcam::training::{collect_database, CollectionConfig};
use acm_sim::rng::SimRng;
use acm_vm::{AnomalyConfig, FailureSpec, VmFlavor};
use std::fs;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2016);
    let mut rng = SimRng::new(seed);
    let mut all_output = String::new();

    for flavor in [
        VmFlavor::m3_medium(),
        VmFlavor::m3_small(),
        VmFlavor::private_munich(),
    ] {
        println!("=== flavor {} ===", flavor.name);
        let db = collect_database(
            &flavor,
            &AnomalyConfig::default(),
            &FailureSpec::default(),
            &CollectionConfig::default(),
            &mut rng,
        );
        println!(
            "feature database: {} rows x {} features",
            db.len(),
            db.width()
        );

        let (_, report) = F2pmToolchain::default().run(&db, &mut rng);
        println!("lasso selected: {}", report.selected_names.join(", "));
        println!("holdout ranking:");
        print!("{}", report.to_table());

        // Cross-validate the deployed family (REP-Tree) and the holdout
        // winner to show the choice is stable across folds.
        println!("5-fold CV (rmse mean ± std):");
        for kind in [report.best_kind(), ModelKind::RepTree] {
            let cv = cross_validate(kind, &db, 5, &mut rng);
            println!(
                "  {:<10} {:>9.2} ± {:<8.2} (R² {:.3})",
                kind.name(),
                cv.mean_rmse(),
                cv.rmse_std(),
                cv.mean_r2()
            );
        }
        println!();
        all_output.push_str(&format!("flavor,{}\n{}\n", flavor.name, report.to_table()));
    }

    if fs::create_dir_all("results").is_ok() {
        let _ = fs::write("results/model_selection.txt", &all_output);
        println!("wrote results/model_selection.txt");
    }
    println!(
        "\nThe paper deploys REP-Tree (chosen in its earlier F2PM study [26]); the\n\
         framework honours that via PredictorChoice::Trained(ModelKind::RepTree).\n\
         On this simulated substrate the piecewise/kernel families (M5P, LS-SVM)\n\
         often edge it out on raw RMSE, while REP-Tree is the most fold-stable of\n\
         the top tier — see EXPERIMENTS.md for the discussion."
    );
}
