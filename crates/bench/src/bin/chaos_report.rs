//! Chaos / graceful-degradation report.
//!
//! Replays the deterministic fault scenarios the robustness PR introduced
//! — partition + heal under both detector regimes, a leader kill, and a
//! flap storm with message-level chaos — through full Figure-3/Figure-4
//! deployments with degradation enabled, measures how the leader's Plan
//! phase rides through each outage, and writes the numbers to
//! `BENCH_PR5.json` at the repository root.
//!
//! ```text
//! cargo run --release -p acm-bench --bin chaos_report [-- --convergence-gate]
//! ```
//!
//! `--convergence-gate` additionally enforces the robustness acceptance
//! criteria and exits nonzero on any violation:
//!
//! * a quarantined region receives exactly zero flow while unreachable;
//! * the healed region is re-admitted (one transition, no oscillation)
//!   within [`READMIT_BUDGET_ERAS`] eras of the heal;
//! * the live regions return to the equal-RMTTF band ([`SPREAD_BAND`])
//!   within [`CONVERGE_BUDGET_ERAS`] eras of the heal;
//! * a fixed plan and seed replay byte-identically at 1 and 4 worker
//!   threads (telemetry and decision log).
//!
//! Every scenario is deterministic per its hard-coded seed, so the gate
//! numbers are stable across machines.

use acm_core::config::{ExperimentConfig, PredictorChoice};
use acm_core::framework::run_experiment_with_obs;
use acm_core::policy::PolicyKind;
use acm_core::telemetry::ExperimentTelemetry;
use acm_core::DegradationConfig;
use acm_obs::{Obs, ObsConfig, ObsHandle, Value};
use acm_overlay::{FaultPlan, HeartbeatConfig, NodeId};
use acm_sim::time::{Duration, SimTime};

/// Era length of the paper deployments (seconds).
const ERA_S: u64 = 30;
/// Eras the healed region may take to re-enter the plan.
const READMIT_BUDGET_ERAS: usize = 25;
/// Eras the live set may take to return to the equal-RMTTF band.
const CONVERGE_BUDGET_ERAS: usize = 25;
/// The equal-RMTTF band: max/min ratio of 5-era-smoothed region RMTTFs.
const SPREAD_BAND: f64 = 1.35;

struct Report {
    entries: Vec<(String, f64)>,
    failures: Vec<String>,
}

impl Report {
    fn push(&mut self, name: &str, value: f64) {
        println!("{name:<52} {value:>14.3}");
        self.entries.push((name.to_string(), value));
    }

    fn gate(&mut self, ok: bool, what: String) {
        if !ok {
            println!("  GATE VIOLATION: {what}");
            self.failures.push(what);
        }
    }

    fn to_json(&self) -> String {
        let mut o = acm_obs::json::JsonObject::new();
        for (name, value) in &self.entries {
            o.field_f64(name, (value * 1000.0).round() / 1000.0);
        }
        o.field_u64("gate_violations", self.failures.len() as u64);
        let mut s = o.finish();
        s.push('\n');
        s
    }
}

fn run(cfg: &ExperimentConfig) -> (ExperimentTelemetry, ObsHandle) {
    let obs = Obs::new(ObsConfig::default());
    let tel = run_experiment_with_obs(cfg, obs.clone());
    (tel, obs)
}

fn count_events(obs: &ObsHandle, kind: &str) -> usize {
    obs.events_tail(usize::MAX)
        .iter()
        .filter(|e| e.kind == kind)
        .count()
}

/// Whether the first `region.quarantine` event carries `field == true`
/// (distinguishes the staleness-TTL regime from the suspicion regime).
fn quarantine_reason(obs: &ObsHandle, field: &str) -> bool {
    obs.events_tail(usize::MAX)
        .iter()
        .find(|e| e.kind == "region.quarantine")
        .and_then(|e| {
            e.fields
                .iter()
                .find(|(k, _)| *k == field)
                .map(|(_, v)| matches!(v, Value::Bool(true)))
        })
        .unwrap_or(false)
}

/// Max/min ratio of the trailing-5-era mean RMTTF across `live` regions
/// at era `e`.
fn spread_at(tel: &ExperimentTelemetry, live: &[usize], e: usize) -> f64 {
    let lo = e.saturating_sub(4);
    let means: Vec<f64> = live
        .iter()
        .map(|&j| {
            let pts = &tel.rmttf(j).points()[lo..=e];
            pts.iter().map(|p| p.value).sum::<f64>() / pts.len() as f64
        })
        .collect();
    let max = means.iter().fold(0.0_f64, |a, b| a.max(*b));
    let min = means.iter().fold(f64::INFINITY, |a, b| a.min(*b));
    if min <= 0.0 {
        f64::INFINITY
    } else {
        max / min
    }
}

/// First era at or after `from` where the live-set spread enters the
/// band, or `None` if it never does.
fn converge_era(tel: &ExperimentTelemetry, live: &[usize], from: usize) -> Option<usize> {
    (from..tel.eras()).find(|&e| spread_at(tel, live, e) <= SPREAD_BAND)
}

/// First era at or after `from` where region `j`'s fraction is positive.
fn first_flow_era(tel: &ExperimentTelemetry, j: usize, from: usize) -> Option<usize> {
    tel.fraction(j).points()[from..]
        .iter()
        .position(|p| p.value > 0.0)
        .map(|i| i + from)
}

/// Partition region 1 of the Figure-3 deployment for ten eras, under
/// either the suspicion detector (default heartbeat, timeout < era: the
/// first fully-missed era triggers quarantine) or the staleness TTL
/// (timeout stretched past the TTL so report age is what trips).
fn partition_heal_scenario(
    report: &mut Report,
    label: &str,
    heartbeat: HeartbeatConfig,
    expect_reason: &str,
) {
    let fail_era = 10usize;
    let heal_era = 20usize;
    let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, 2025);
    cfg.predictor = PredictorChoice::Oracle;
    cfg.eras = 60;
    cfg.fault_plan = Some(FaultPlan::scripted(1, Vec::new()).partition_window(
        vec![NodeId(1)],
        SimTime::from_secs(fail_era as u64 * ERA_S),
        SimTime::from_secs(heal_era as u64 * ERA_S),
    ));
    cfg.degradation = DegradationConfig {
        heartbeat,
        ..DegradationConfig::enabled()
    };
    let (tel, obs) = run(&cfg);

    let quarantines = count_events(&obs, "region.quarantine");
    let readmits = count_events(&obs, "region.readmit");
    report.push(&format!("{label}_quarantine_events"), quarantines as f64);
    report.push(&format!("{label}_readmit_events"), readmits as f64);
    report.gate(
        quarantines == 1 && readmits == 1,
        format!("{label}: expected one quarantine and one readmit, got {quarantines}/{readmits}"),
    );
    report.gate(
        quarantine_reason(&obs, expect_reason),
        format!("{label}: quarantine was not driven by `{expect_reason}`"),
    );

    // Zero flow while unreachable. The staleness TTL (2 eras) admits up
    // to three stale eras before quarantine, so the window starts at
    // fail + 4 to cover both regimes.
    let cut: Vec<f64> = tel.fraction(1).points()[fail_era + 4..heal_era]
        .iter()
        .map(|p| p.value)
        .collect();
    let zero_flow = cut.iter().all(|v| *v == 0.0);
    report.push(
        &format!("{label}_zero_flow_ok"),
        f64::from(u8::from(zero_flow)),
    );
    report.gate(
        zero_flow,
        format!("{label}: quarantined region still receives flow: {cut:?}"),
    );

    let readmit_era = first_flow_era(&tel, 1, heal_era);
    let readmit_delay = readmit_era.map(|e| e - heal_era);
    report.push(
        &format!("{label}_readmit_eras_after_heal"),
        readmit_delay.map_or(f64::NAN, |d| d as f64),
    );
    report.gate(
        readmit_delay.is_some_and(|d| d <= READMIT_BUDGET_ERAS),
        format!("{label}: re-admission after heal took {readmit_delay:?} eras (budget {READMIT_BUDGET_ERAS})"),
    );

    let conv = converge_era(&tel, &[0, 1], heal_era).map(|e| e - heal_era);
    report.push(
        &format!("{label}_converge_eras_after_heal"),
        conv.map_or(f64::NAN, |d| d as f64),
    );
    report.gate(
        conv.is_some_and(|d| d <= CONVERGE_BUDGET_ERAS),
        format!("{label}: equal-RMTTF band after heal took {conv:?} eras (budget {CONVERGE_BUDGET_ERAS})"),
    );
    report.push(&format!("{label}_tail_spread"), tel.rmttf_spread(10));
}

/// Kill the initial leader of the Figure-4 deployment at era 10, never
/// recover it: a new leader must take over and the dead region's flow
/// must be redistributed over the two survivors.
fn leader_kill_scenario(report: &mut Report) {
    let kill_era = 10usize;
    let mut cfg = ExperimentConfig::three_region_fig4(PolicyKind::AvailableResources, 2025);
    cfg.predictor = PredictorChoice::Oracle;
    cfg.eras = 40;
    cfg.fault_plan = Some(
        FaultPlan::scripted(2, Vec::new())
            .kill_leader_at(SimTime::from_secs(kill_era as u64 * ERA_S)),
    );
    cfg.degradation = DegradationConfig::enabled();
    let (tel, obs) = run(&cfg);

    let re_elections = count_events(&obs, "leader.change");
    report.push("leader_kill_re_elections", re_elections as f64);
    report.gate(
        re_elections >= 1,
        format!("leader_kill: no re-election after the kill ({re_elections})"),
    );
    report.push(
        "leader_kill_kill_events",
        count_events(&obs, "chaos.leader.kill") as f64,
    );

    let tail: Vec<f64> = tel.fraction(0).points()[kill_era + 4..]
        .iter()
        .map(|p| p.value)
        .collect();
    let zero_flow = tail.iter().all(|v| *v == 0.0);
    report.push("leader_kill_zero_flow_ok", f64::from(u8::from(zero_flow)));
    report.gate(
        zero_flow,
        "leader_kill: dead region still receives flow".to_string(),
    );
    let live_sum: f64 = (1..3)
        .map(|j| tel.fraction(j).points()[tel.eras() - 1].value)
        .sum();
    report.push("leader_kill_live_flow_sum", live_sum);
    report.gate(
        (live_sum - 1.0).abs() < 1e-9,
        format!("leader_kill: survivors hold {live_sum} of the flow, not 1.0"),
    );

    let conv = converge_era(&tel, &[1, 2], kill_era).map(|e| e - kill_era);
    report.push(
        "leader_kill_converge_eras_after_kill",
        conv.map_or(f64::NAN, |d| d as f64),
    );
    report.gate(
        conv.is_some_and(|d| d <= CONVERGE_BUDGET_ERAS),
        format!(
            "leader_kill: survivors' RMTTF band took {conv:?} eras (budget {CONVERGE_BUDGET_ERAS})"
        ),
    );
}

/// Two single-era link flaps plus 10 % message drop and random extra
/// delay, under the tolerant (TTL) detector: the retry path and the
/// staleness TTL must absorb all of it without one spurious quarantine.
fn flap_storm_scenario(report: &mut Report) {
    let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, 2025);
    cfg.predictor = PredictorChoice::Oracle;
    cfg.eras = 60;
    cfg.fault_plan = Some(
        FaultPlan::scripted(7, Vec::new())
            .link_flap(
                NodeId(0),
                NodeId(1),
                SimTime::from_secs(15 * ERA_S),
                SimTime::from_secs(16 * ERA_S),
            )
            .link_flap(
                NodeId(0),
                NodeId(1),
                SimTime::from_secs(35 * ERA_S),
                SimTime::from_secs(36 * ERA_S),
            )
            .with_message_chaos(0.10, Duration::from_millis(25)),
    );
    cfg.degradation = DegradationConfig {
        heartbeat: HeartbeatConfig {
            period: Duration::from_secs(ERA_S),
            timeout: Duration::from_secs(5 * ERA_S),
        },
        ..DegradationConfig::enabled()
    };
    let (tel, obs) = run(&cfg);

    let retries = obs
        .metrics()
        .iter()
        .find(|m| m.name == "acm.core.report.retries")
        .and_then(|m| match m.value {
            acm_obs::MetricValue::Counter(v) => Some(v),
            _ => None,
        })
        .unwrap_or(0);
    report.push("flap_storm_report_retries", retries as f64);
    report.gate(
        retries > 0,
        "flap_storm: the retry path was never exercised".to_string(),
    );
    report.push(
        "flap_storm_msg_drops",
        count_events(&obs, "chaos.msg.drop") as f64,
    );
    let quarantines = count_events(&obs, "region.quarantine");
    report.push("flap_storm_quarantine_events", quarantines as f64);
    report.gate(
        quarantines == 0,
        format!("flap_storm: {quarantines} spurious quarantines under message chaos"),
    );
    report.push("flap_storm_completed", tel.total_completed() as f64);
    report.push("flap_storm_tail_spread", tel.rmttf_spread(10));
    report.gate(
        tel.rmttf_spread(10) <= SPREAD_BAND,
        format!(
            "flap_storm: tail spread {} above the band",
            tel.rmttf_spread(10)
        ),
    );
}

/// Replays the suspicion-regime partition with causal tracing enabled
/// and correlates the `slo.burn` / `slo.recovered` stream against the
/// scripted fault window: the availability SLO must start burning inside
/// the partition and be recovered after the heal, never before the
/// fault. (The SLO monitors only run on traced hubs, so the untraced
/// scenarios above stay byte-identical to their PR 5 baselines.)
fn slo_fault_correlation_scenario(report: &mut Report) {
    let fail_s = 10.0 * ERA_S as f64;
    let heal_s = 20.0 * ERA_S as f64;
    let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, 2025);
    cfg.predictor = PredictorChoice::Oracle;
    cfg.eras = 60;
    cfg.fault_plan = Some(FaultPlan::scripted(1, Vec::new()).partition_window(
        vec![NodeId(1)],
        SimTime::from_secs(fail_s as u64),
        SimTime::from_secs(heal_s as u64),
    ));
    cfg.degradation = DegradationConfig::enabled();
    let obs = Obs::new(ObsConfig::traced(2025));
    let _ = run_experiment_with_obs(&cfg, obs.clone());

    let events = obs.events_tail(usize::MAX);
    let burn_times: Vec<f64> = events
        .iter()
        .filter(|e| e.kind == "slo.burn")
        .map(|e| e.t_us as f64 / 1e6)
        .collect();
    let recovery_times: Vec<f64> = events
        .iter()
        .filter(|e| e.kind == "slo.recovered")
        .map(|e| e.t_us as f64 / 1e6)
        .collect();
    report.push("slo_burn_events", burn_times.len() as f64);
    report.push("slo_recovery_events", recovery_times.len() as f64);
    report.push(
        "slo_first_burn_s",
        burn_times.first().copied().unwrap_or(f64::NAN),
    );
    report.push(
        "slo_last_recovery_s",
        recovery_times.last().copied().unwrap_or(f64::NAN),
    );
    report.gate(
        burn_times
            .first()
            .is_some_and(|t| *t >= fail_s && *t <= heal_s + 5.0 * ERA_S as f64),
        format!("slo: first burn not inside the fault window: {burn_times:?}"),
    );
    report.gate(
        burn_times.iter().all(|t| *t >= fail_s),
        format!("slo: burn fired before the fault: {burn_times:?}"),
    );
    report.gate(
        recovery_times.last().is_some_and(|t| *t > heal_s),
        format!("slo: no recovery after the heal: {recovery_times:?}"),
    );
}

/// A fixed plan + seed must replay byte-identically — telemetry CSV and
/// the decision log — at 1 and 4 worker threads.
fn byte_identity_check(report: &mut Report) {
    let run_once = || {
        let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, 2025);
        cfg.predictor = PredictorChoice::Oracle;
        cfg.eras = 30;
        cfg.fault_plan = Some(
            FaultPlan::scripted(1, Vec::new())
                .partition_window(
                    vec![NodeId(1)],
                    SimTime::from_secs(10 * ERA_S),
                    SimTime::from_secs(20 * ERA_S),
                )
                .with_message_chaos(0.05, Duration::from_millis(40)),
        );
        cfg.degradation = DegradationConfig::enabled();
        let (tel, obs) = run(&cfg);
        (tel.to_csv(), obs.events_jsonl())
    };
    let before = acm_exec::current_threads();
    acm_exec::configure_threads(1);
    let sequential = run_once();
    acm_exec::configure_threads(4);
    let parallel = run_once();
    acm_exec::configure_threads(before);
    let identical = sequential == parallel;
    report.push("byte_identity_1t_vs_4t_ok", f64::from(u8::from(identical)));
    report.gate(
        identical,
        "byte_identity: chaos replay diverges between 1 and 4 threads".to_string(),
    );
}

fn main() {
    let mut gate = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--convergence-gate" => gate = true,
            other => {
                eprintln!("chaos_report: unknown argument {other:?}");
                eprintln!("usage: chaos_report [--convergence-gate]");
                std::process::exit(2);
            }
        }
    }
    let mut report = Report {
        entries: Vec::new(),
        failures: Vec::new(),
    };

    println!("chaos / graceful-degradation report (fixed seeds)\n");
    println!("partition + heal, suspicion detector (default heartbeat)");
    partition_heal_scenario(
        &mut report,
        "partition_suspicion",
        HeartbeatConfig::default(),
        "suspected",
    );
    println!("\npartition + heal, staleness-TTL regime (timeout > ttl x era)");
    partition_heal_scenario(
        &mut report,
        "partition_ttl",
        HeartbeatConfig {
            period: Duration::from_secs(ERA_S),
            timeout: Duration::from_secs(5 * ERA_S),
        },
        "stale",
    );
    println!("\nleader kill (Figure-4 deployment)");
    leader_kill_scenario(&mut report);
    println!("\nflap storm + message chaos");
    flap_storm_scenario(&mut report);
    println!("\nSLO burn vs fault window (traced partition replay)");
    slo_fault_correlation_scenario(&mut report);
    println!("\nthread-width byte identity");
    byte_identity_check(&mut report);

    let json = report.to_json();
    match std::fs::write("BENCH_PR5.json", &json) {
        Ok(()) => println!("\nwrote BENCH_PR5.json"),
        Err(e) => eprintln!("\nwarning: cannot write BENCH_PR5.json: {e}"),
    }

    if report.failures.is_empty() {
        println!("all convergence gates hold");
    } else {
        eprintln!("\n{} gate violation(s):", report.failures.len());
        for f in &report.failures {
            eprintln!("  FAIL: {f}");
        }
        if gate {
            std::process::exit(1);
        }
    }
}
