//! Causal-tracing report: why-chains, era timeline, SLO burn summary.
//!
//! Replays the deterministic chaos scenarios of the robustness PR with
//! causal tracing enabled, reconstructs the why-chain behind every
//! quarantine / readmit / re-plan decision (fault → suspicion →
//! quarantine → re-plan → readmit), writes the leader's era timeline as
//! Chrome trace-event JSON (`trace_timeline.json`, loadable in Perfetto
//! or `chrome://tracing`) and the scenario numbers to `BENCH_PR7.json`
//! at the repository root.
//!
//! ```text
//! cargo run --release -p acm-bench --bin trace_report [-- --gate]
//! ```
//!
//! `--gate` additionally enforces the tracing acceptance criteria and
//! exits nonzero on any violation:
//!
//! * **complete chains** — every `region.quarantine` decision walks
//!   parent links back to a chaos or heartbeat-timeout root, and every
//!   decision event (`plan.*`, `region.*`, `leader.change`) carries a
//!   resolvable trace annotation: zero orphans;
//! * **determinism** — a traced chaos replay is byte-identical
//!   (telemetry CSV, event log, span tree) at 1 and 4 worker threads;
//! * **cost** — tracing disabled stays within [`NOOP_BUDGET`] of a
//!   fully disabled hub (the dormant branches are free), and tracing
//!   enabled stays within [`TRACED_BUDGET`] of the untraced run.
//!
//! Every scenario is seed-fixed, so apart from the wall-clock overhead
//! section the report is stable across machines.

use acm_core::config::{ExperimentConfig, PredictorChoice};
use acm_core::framework::run_experiment_with_obs;
use acm_core::policy::PolicyKind;
use acm_core::telemetry::ExperimentTelemetry;
use acm_core::DegradationConfig;
use acm_obs::{Obs, ObsConfig, ObsHandle, SpanRecord, Value};
use acm_overlay::{FaultPlan, HeartbeatConfig, NodeId};
use acm_sim::time::{Duration, SimTime};
use std::collections::BTreeMap;
use std::time::Instant;

/// Era length of the paper deployments (seconds).
const ERA_S: u64 = 30;
/// Tracing-off overhead budget vs a fully disabled hub (ratio - 1).
const NOOP_BUDGET: f64 = 0.02;
/// Tracing-on overhead budget vs the untraced run (ratio - 1).
const TRACED_BUDGET: f64 = 0.25;
/// Decision kinds that must never be causally orphaned.
const DECISION_KINDS: [&str; 6] = [
    "plan.install",
    "plan.freeze",
    "region.quarantine",
    "region.probation",
    "region.readmit",
    "leader.change",
];

struct Report {
    entries: Vec<(String, f64)>,
    failures: Vec<String>,
}

impl Report {
    fn push(&mut self, name: &str, value: f64) {
        println!("{name:<52} {value:>14.3}");
        self.entries.push((name.to_string(), value));
    }

    fn gate(&mut self, ok: bool, what: String) {
        if !ok {
            println!("  GATE VIOLATION: {what}");
            self.failures.push(what);
        }
    }

    fn to_json(&self) -> String {
        let mut o = acm_obs::json::JsonObject::new();
        for (name, value) in &self.entries {
            o.field_f64(name, (value * 1000.0).round() / 1000.0);
        }
        o.field_u64("gate_violations", self.failures.len() as u64);
        let mut s = o.finish();
        s.push('\n');
        s
    }
}

fn run_traced(cfg: &ExperimentConfig, trace_seed: u64) -> (ExperimentTelemetry, ObsHandle) {
    let obs = Obs::new(ObsConfig::traced(trace_seed));
    let tel = run_experiment_with_obs(cfg, obs.clone());
    (tel, obs)
}

/// Walks `id` to its root span, returning the chain (self first).
fn chain<'a>(by_id: &BTreeMap<u64, &'a SpanRecord>, mut id: u64) -> Vec<&'a SpanRecord> {
    let mut out = Vec::new();
    loop {
        let Some(s) = by_id.get(&id) else { return out };
        out.push(*s);
        if s.parent == 0 || out.len() > 64 {
            return out;
        }
        id = s.parent;
    }
}

fn span_field(fields: &[(&'static str, Value)], key: &str) -> Option<u64> {
    fields.iter().find_map(|(k, v)| match (k, v) {
        (k, Value::U64(id)) if *k == key => Some(*id),
        _ => None,
    })
}

fn print_chain(label: &str, t_us: u64, links: &[&SpanRecord]) {
    println!("  why {label} @ t={:.1}s:", t_us as f64 / 1e6);
    for (i, s) in links.iter().enumerate() {
        let arrow = if i == 0 { "   " } else { "<- " };
        println!(
            "    {arrow}{:<22} t={:>7.1}s  span={:016x}",
            s.name,
            s.t_us as f64 / 1e6,
            s.id
        );
    }
}

/// Chain-completeness over one traced run: every decision event carries
/// a resolvable span whose chain reaches a root, and every quarantine's
/// root is the fault evidence. Returns (decisions, orphans, quarantines,
/// quarantines_with_chaos_root).
fn audit_chains(label: &str, obs: &ObsHandle, print_chains: bool) -> (usize, usize, usize, usize) {
    let spans = obs.spans();
    let by_id: BTreeMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    let mut decisions = 0usize;
    let mut orphans = 0usize;
    let mut quarantines = 0usize;
    let mut rooted = 0usize;
    for e in obs.events_tail(usize::MAX) {
        if !DECISION_KINDS.contains(&e.kind) {
            continue;
        }
        decisions += 1;
        // A decision is orphaned when it lacks a span/trace annotation or
        // its chain dead-ends on a span the tracer never allocated.
        let Some(id) = span_field(&e.fields, "span").or_else(|| span_field(&e.fields, "cause"))
        else {
            orphans += 1;
            continue;
        };
        let links = chain(&by_id, id);
        if links.is_empty() || links.last().unwrap().parent != 0 {
            orphans += 1;
            continue;
        }
        if e.kind == "region.quarantine" {
            quarantines += 1;
            let root = links.last().unwrap().name;
            if root.starts_with("chaos.") || root == "fault.scripted" || root == "heartbeat.timeout"
            {
                rooted += 1;
            }
            if print_chains {
                print_chain(e.kind, e.t_us, &links);
            }
        } else if print_chains && (e.kind == "region.readmit" || e.kind == "leader.change") {
            print_chain(e.kind, e.t_us, &links);
        }
    }
    println!(
        "  [{label}] {decisions} decision events, {orphans} orphaned, \
         {quarantines} quarantines ({rooted} with chaos root)"
    );
    (decisions, orphans, quarantines, rooted)
}

/// SLO burn summary for one run: burn/recovery counts and the era-time
/// of the first burn and last recovery (seconds, NaN when absent).
fn slo_summary(obs: &ObsHandle) -> (usize, usize, f64, f64) {
    let events = obs.events_tail(usize::MAX);
    let burns: Vec<u64> = events
        .iter()
        .filter(|e| e.kind == "slo.burn")
        .map(|e| e.t_us)
        .collect();
    let recoveries: Vec<u64> = events
        .iter()
        .filter(|e| e.kind == "slo.recovered")
        .map(|e| e.t_us)
        .collect();
    let first_burn = burns.first().map_or(f64::NAN, |t| *t as f64 / 1e6);
    let last_rec = recoveries.last().map_or(f64::NAN, |t| *t as f64 / 1e6);
    (burns.len(), recoveries.len(), first_burn, last_rec)
}

fn partition_cfg() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, 2025);
    cfg.predictor = PredictorChoice::Oracle;
    cfg.eras = 60;
    cfg.fault_plan = Some(FaultPlan::scripted(1, Vec::new()).partition_window(
        vec![NodeId(1)],
        SimTime::from_secs(10 * ERA_S),
        SimTime::from_secs(20 * ERA_S),
    ));
    cfg.degradation = DegradationConfig::enabled();
    cfg
}

/// The partition scenario: ten eras of unreachability must produce a
/// fully rooted quarantine chain, an SLO burn inside the fault window
/// with recovery after the heal, and a non-trivial era timeline.
fn partition_scenario(report: &mut Report) {
    let cfg = partition_cfg();
    let (_tel, obs) = run_traced(&cfg, 2025);

    let (decisions, orphans, quarantines, rooted) = audit_chains("partition", &obs, true);
    report.push("partition_decision_events", decisions as f64);
    report.push("partition_orphan_decisions", orphans as f64);
    report.push("partition_quarantines_rooted", rooted as f64);
    report.gate(
        orphans == 0,
        format!("partition: {orphans} orphaned decision events"),
    );
    report.gate(
        quarantines > 0 && rooted == quarantines,
        format!("partition: {rooted}/{quarantines} quarantines reach a chaos root"),
    );

    let (burns, recoveries, first_burn, last_rec) = slo_summary(&obs);
    report.push("partition_slo_burns", burns as f64);
    report.push("partition_slo_recoveries", recoveries as f64);
    report.push("partition_slo_first_burn_s", first_burn);
    report.push("partition_slo_last_recovery_s", last_rec);
    let fail_s = (10 * ERA_S) as f64;
    let heal_s = (20 * ERA_S) as f64;
    report.gate(
        burns > 0 && first_burn >= fail_s && first_burn <= heal_s + 5.0 * ERA_S as f64,
        format!(
            "partition: first SLO burn at {first_burn}s, outside fault window [{fail_s}, {heal_s}]"
        ),
    );
    report.gate(
        recoveries > 0 && last_rec > heal_s,
        format!("partition: SLO never recovered after the heal at {heal_s}s"),
    );

    report.push("partition_spans", obs.spans().len() as f64);
    report.push("partition_spans_dropped", obs.spans_dropped() as f64);
    report.gate(
        obs.spans_dropped() == 0,
        "partition: span retention overflowed".to_string(),
    );

    // The era timeline: leader phases + shard + worker tracks.
    let timeline = obs
        .timeline_recorder()
        .expect("traced run records a timeline");
    report.push("partition_timeline_slices", timeline.len() as f64);
    report.gate(
        timeline.len() >= cfg.eras * 5, // monitor/analyze/plan/execute/era
        format!("partition: timeline too sparse ({} slices)", timeline.len()),
    );
    let json = timeline.to_chrome_json();
    match std::fs::write("trace_timeline.json", &json) {
        Ok(()) => println!("  wrote trace_timeline.json ({} bytes)", json.len()),
        Err(e) => eprintln!("  warning: cannot write trace_timeline.json: {e}"),
    }
}

/// Leader kill: the election outcome must chain back to the kill.
fn leader_kill_scenario(report: &mut Report) {
    let mut cfg = ExperimentConfig::three_region_fig4(PolicyKind::AvailableResources, 2025);
    cfg.predictor = PredictorChoice::Oracle;
    cfg.eras = 40;
    cfg.fault_plan =
        Some(FaultPlan::scripted(2, Vec::new()).kill_leader_at(SimTime::from_secs(10 * ERA_S)));
    cfg.degradation = DegradationConfig::enabled();
    let (_tel, obs) = run_traced(&cfg, 2025);

    let (decisions, orphans, _q, _r) = audit_chains("leader_kill", &obs, true);
    report.push("leader_kill_decision_events", decisions as f64);
    report.push("leader_kill_orphan_decisions", orphans as f64);
    report.gate(
        orphans == 0,
        format!("leader_kill: {orphans} orphaned decision events"),
    );

    // The post-kill leader.change must be caused by the kill itself.
    let spans = obs.spans();
    let by_id: BTreeMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    let caused_election = obs
        .events_tail(usize::MAX)
        .iter()
        .filter(|e| e.kind == "leader.change" && e.t_us >= 10 * ERA_S * 1_000_000)
        .any(|e| {
            span_field(&e.fields, "span").is_some_and(|id| {
                chain(&by_id, id)
                    .last()
                    .is_some_and(|root| root.name == "chaos.leader.kill")
            })
        });
    report.push(
        "leader_kill_election_rooted_at_kill",
        f64::from(u8::from(caused_election)),
    );
    report.gate(
        caused_election,
        "leader_kill: no re-election chains back to chaos.leader.kill".to_string(),
    );
}

/// Flap storm under the tolerant detector: chains must stay complete
/// even when nothing escalates to a quarantine (no spurious roots).
fn flap_storm_scenario(report: &mut Report) {
    let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, 2025);
    cfg.predictor = PredictorChoice::Oracle;
    cfg.eras = 60;
    cfg.fault_plan = Some(
        FaultPlan::scripted(7, Vec::new())
            .link_flap(
                NodeId(0),
                NodeId(1),
                SimTime::from_secs(15 * ERA_S),
                SimTime::from_secs(16 * ERA_S),
            )
            .link_flap(
                NodeId(0),
                NodeId(1),
                SimTime::from_secs(35 * ERA_S),
                SimTime::from_secs(36 * ERA_S),
            )
            .with_message_chaos(0.10, Duration::from_millis(25)),
    );
    cfg.degradation = DegradationConfig {
        heartbeat: HeartbeatConfig {
            period: Duration::from_secs(ERA_S),
            timeout: Duration::from_secs(5 * ERA_S),
        },
        ..DegradationConfig::enabled()
    };
    let (_tel, obs) = run_traced(&cfg, 2025);

    let (decisions, orphans, quarantines, _r) = audit_chains("flap_storm", &obs, false);
    report.push("flap_storm_decision_events", decisions as f64);
    report.push("flap_storm_orphan_decisions", orphans as f64);
    report.push("flap_storm_quarantines", quarantines as f64);
    report.gate(
        orphans == 0,
        format!("flap_storm: {orphans} orphaned decision events"),
    );
    report.gate(
        quarantines == 0,
        format!("flap_storm: {quarantines} spurious quarantines"),
    );
    let (burns, _recs, _fb, _lr) = slo_summary(&obs);
    report.push("flap_storm_slo_burns", burns as f64);
}

/// The traced partition replay must be byte-identical — telemetry CSV,
/// event log and span tree — at 1 and 4 worker threads.
fn byte_identity_check(report: &mut Report) {
    let cfg = partition_cfg();
    let run_once = || {
        let (tel, obs) = run_traced(&cfg, 2025);
        (tel.to_csv(), obs.events_jsonl(), obs.spans_jsonl())
    };
    let before = acm_exec::current_threads();
    acm_exec::configure_threads(1);
    let sequential = run_once();
    acm_exec::configure_threads(4);
    let parallel = run_once();
    acm_exec::configure_threads(before);
    let identical = sequential == parallel;
    report.push(
        "byte_identity_traced_1t_vs_4t_ok",
        f64::from(u8::from(identical)),
    );
    report.gate(
        identical,
        "byte_identity: traced chaos replay diverges between 1 and 4 threads".to_string(),
    );
}

/// Wall-clock cost of the tracing layer, measured the way
/// `perf_report --obs-gate` measures the hub: interleaved rounds (DVFS
/// and scheduling drift dwarf a 2 % effect over A-then-B timing) and
/// minimum-of-rounds ratios — interference only ever adds time, so the
/// minimum is the robust estimate of the true cost.
///
/// * **dormant** (budget [`NOOP_BUDGET`]) — per-emit delta of `emit` on
///   an untraced hub vs raw `EventLog` pushes (the pre-tracing emit
///   body), scaled by the events an untraced run actually pushes: the
///   end-to-end share every non-traced run pays for this PR.
/// * **enabled** (budget [`TRACED_BUDGET`]) — the full partition
///   experiment with `ObsConfig::traced` vs `ObsConfig::default()`:
///   span allocation, ambient annotation and the era timeline, end to
///   end.
fn overhead_check(report: &mut Report) {
    const KINDS: [&str; 4] = ["bench.a", "bench.b", "bench.c", "bench.d"];
    const N: u64 = 8192;
    const ROUNDS: usize = 21;
    fn min(v: &[f64]) -> f64 {
        v.iter().copied().fold(f64::INFINITY, f64::min)
    }

    // Dormant branch: micro emit loop.
    let log = acm_obs::EventLog::new(4096);
    let untraced = Obs::new(ObsConfig::default());
    let pass_raw = |log: &acm_obs::EventLog| {
        let t0 = Instant::now();
        for i in 0..N {
            log.push(
                i,
                KINDS[(i % 4) as usize],
                vec![("a", Value::U64(i)), ("b", Value::U64(i ^ 1))],
            );
        }
        t0.elapsed().as_secs_f64()
    };
    let pass_emit = |obs: &ObsHandle| {
        let t0 = Instant::now();
        for i in 0..N {
            obs.emit(
                i,
                KINDS[(i % 4) as usize],
                vec![("a", Value::U64(i)), ("b", Value::U64(i ^ 1))],
            );
        }
        t0.elapsed().as_secs_f64()
    };
    let (mut raw_ts, mut emit_ts) = (Vec::new(), Vec::new());
    for _ in 0..2 {
        pass_raw(&log);
        pass_emit(&untraced);
    }
    for _ in 0..ROUNDS {
        raw_ts.push(pass_raw(&log));
        emit_ts.push(pass_emit(&untraced));
    }
    // Per-emit cost of the dormant branch (seconds; clamped — the branch
    // cannot make emits faster, a negative delta is measurement noise).
    let per_emit_delta = ((min(&emit_ts) - min(&raw_ts)) / N as f64).max(0.0);
    report.push("overhead_raw_push_events_per_s", N as f64 / min(&raw_ts));
    report.push(
        "overhead_untraced_emit_events_per_s",
        N as f64 / min(&emit_ts),
    );

    // Enabled: full experiment, interleaved.
    let mut cfg = partition_cfg();
    cfg.eras = 30;
    let time_once = |obs_cfg: ObsConfig| {
        let obs = Obs::new(obs_cfg);
        let t0 = Instant::now();
        let _ = run_experiment_with_obs(&cfg, obs);
        t0.elapsed().as_secs_f64()
    };
    let _ = time_once(ObsConfig::default());
    let _ = time_once(ObsConfig::traced(2025));
    let (mut off_ts, mut on_ts) = (Vec::new(), Vec::new());
    for _ in 0..7 {
        off_ts.push(time_once(ObsConfig::default()));
        on_ts.push(time_once(ObsConfig::traced(2025)));
    }
    let on_overhead = min(&on_ts) / min(&off_ts) - 1.0;
    report.push("overhead_untraced_experiment_s", min(&off_ts));
    report.push("overhead_traced_experiment_s", min(&on_ts));
    report.push("overhead_trace_on_pct", on_overhead * 100.0);
    report.gate(
        on_overhead < TRACED_BUDGET,
        format!(
            "overhead: enabled tracing costs {:.2}% end to end (budget {:.0}%)",
            on_overhead * 100.0,
            TRACED_BUDGET * 100.0
        ),
    );

    // Dormant cost at run level: the branch is only ever reached once per
    // emitted event, so its end-to-end share is (per-emit delta) × (events
    // the run actually pushed) / (run wall time). The micro delta
    // over-counts (it also swallows inlining and cache-layout differences
    // between the two call sites), so this is an upper bound.
    let emits = {
        let obs = Obs::new(ObsConfig::default());
        let _ = run_experiment_with_obs(&cfg, obs.clone());
        obs.events_len() as f64 + obs.events_dropped() as f64
    };
    let off_overhead = per_emit_delta * emits / min(&off_ts);
    report.push("overhead_run_emits", emits);
    report.push("overhead_trace_off_pct", off_overhead * 100.0);
    report.gate(
        off_overhead < NOOP_BUDGET,
        format!(
            "overhead: dormant tracing costs {:.3}% of an untraced run (budget {:.0}%)",
            off_overhead * 100.0,
            NOOP_BUDGET * 100.0
        ),
    );
}

fn main() {
    let gate = std::env::args().any(|a| a == "--gate");
    let mut report = Report {
        entries: Vec::new(),
        failures: Vec::new(),
    };

    println!("causal tracing report (fixed seeds)\n");
    println!("partition + heal (Figure-3 deployment, eras 10..20)");
    partition_scenario(&mut report);
    println!("\nleader kill (Figure-4 deployment, era 10)");
    leader_kill_scenario(&mut report);
    println!("\nflap storm + message chaos (tolerant detector)");
    flap_storm_scenario(&mut report);
    println!("\nthread-width byte identity, tracing on");
    byte_identity_check(&mut report);
    println!("\nwall-clock overhead (interleaved rounds, minimum-of-rounds)");
    overhead_check(&mut report);

    let json = report.to_json();
    match std::fs::write("BENCH_PR7.json", &json) {
        Ok(()) => println!("\nwrote BENCH_PR7.json"),
        Err(e) => eprintln!("\nwarning: cannot write BENCH_PR7.json: {e}"),
    }

    if report.failures.is_empty() {
        println!("all tracing gates hold");
    } else {
        eprintln!("\n{} gate violation(s):", report.failures.len());
        for f in &report.failures {
            eprintln!("  FAIL: {f}");
        }
        if gate {
            std::process::exit(1);
        }
    }
}
