//! # acm-exec — deterministic data-parallel execution
//!
//! A std-only (threads + atomics + mutex/condvar, zero dependencies)
//! work-stealing thread pool powering every `par_iter` call site in the
//! workspace through the vendored `rayon` facade.
//!
//! ## Design
//!
//! * **Work stealing over index ranges.** A parallel map over `n` items
//!   splits `0..n` into one contiguous range per participant, packed into
//!   an `AtomicU64` (`start` in the high 32 bits, `end` in the low 32).
//!   Owners pop chunks off the *front* of their range with a CAS; an idle
//!   participant steals the *back half* of a victim's range with a CAS.
//!   Because `start` only ever grows and `end` only ever shrinks within a
//!   job, the full-word CAS is ABA-free.
//! * **Chunked splitting.** Pops take `max(1, n / (participants × 4))`
//!   indices at a time so fine-grained items amortise the CAS while coarse
//!   items still balance.
//! * **Index-ordered deterministic collect.** Every result is written to
//!   the slot of its input index; the output `Vec` is assembled in input
//!   order regardless of which thread computed what. Combined with
//!   pre-split RNG streams at the call sites, parallel runs are
//!   **byte-identical** to sequential runs.
//! * **Panic propagation.** Participant bodies run under `catch_unwind`;
//!   the first payload is re-raised on the calling thread after every
//!   participant has quiesced (unprocessed items and orphaned results are
//!   leaked, never double-dropped).
//! * **Deadlock-free nesting.** Helper jobs are *claimable*: the caller
//!   claims and inlines any job no worker has started yet, and only waits
//!   for jobs actively running elsewhere. A nested `map_collect` on a
//!   saturated pool therefore degrades to inline execution instead of
//!   waiting for a free worker that may never come.
//!
//! ## Thread-count knob
//!
//! The global pool honours `ACM_THREADS` (unset or `0` → all available
//! cores). `ACM_THREADS=1` — or [`configure_threads`]`(1)` from code,
//! which tests and benchmarks should prefer over mutating the
//! environment — takes the *exact* sequential `Iterator` path: no worker
//! threads, no atomics, no reordering of side effects.
//!
//! ## Instrumentation
//!
//! Every pool keeps relaxed-atomic activity counters — parallel/sequential
//! maps, items, chunk pops, steals, submitted and caller-inlined helper
//! jobs, peak queue depth, and per-participant busy time around
//! `map_collect` participation. [`ThreadPool::stats`] returns a
//! [`PoolStatsSnapshot`]; [`PoolStatsSnapshot::delta_since`] subtracts a
//! baseline so callers can attribute activity to one phase of a run. The
//! counters live off the CAS hot path (one flush per participant per map)
//! and never influence scheduling, so determinism is unaffected.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::any::Any;
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::mem::{self, ManuallyDrop, MaybeUninit};
use std::panic::{self, AssertUnwindSafe};
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, RwLock};
use std::thread;
use std::time::Instant;

type Job = Box<dyn FnOnce() + Send + 'static>;
type PanicPayload = Box<dyn Any + Send + 'static>;

// ---------------------------------------------------------------------------
// latch
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
        }
    }

    fn is_done(&self) -> bool {
        *self.remaining.lock().unwrap_or_else(|e| e.into_inner()) == 0
    }

    fn count_down(&self) {
        let mut n = self.remaining.lock().unwrap_or_else(|e| e.into_inner());
        *n -= 1;
        if *n == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut n = self.remaining.lock().unwrap_or_else(|e| e.into_inner());
        while *n > 0 {
            n = self.done.wait(n).unwrap_or_else(|e| e.into_inner());
        }
    }
}

// ---------------------------------------------------------------------------
// packed index ranges
// ---------------------------------------------------------------------------

#[inline]
fn pack(start: usize, end: usize) -> u64 {
    ((start as u64) << 32) | end as u64
}

#[inline]
fn unpack(v: u64) -> (usize, usize) {
    ((v >> 32) as usize, (v & 0xffff_ffff) as usize)
}

/// Owner side: pop up to `chunk` indices off the front of the range.
fn pop_front(range: &AtomicU64, chunk: usize) -> Option<(usize, usize)> {
    let mut cur = range.load(Ordering::Acquire);
    loop {
        let (s, e) = unpack(cur);
        if s >= e {
            return None;
        }
        let ns = (s + chunk).min(e);
        match range.compare_exchange_weak(cur, pack(ns, e), Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return Some((s, ns)),
            Err(observed) => cur = observed,
        }
    }
}

/// Thief side: detach the back half of a victim's range (victim keeps the
/// front ⌈half⌉, so a 1-element range is never stolen down to nothing
/// mid-pop).
fn steal_half(range: &AtomicU64) -> Option<(usize, usize)> {
    let mut cur = range.load(Ordering::Acquire);
    loop {
        let (s, e) = unpack(cur);
        if s >= e {
            return None;
        }
        let mid = s + (e - s).div_ceil(2);
        if mid >= e {
            return None; // single element: leave it to the owner
        }
        match range.compare_exchange_weak(cur, pack(s, mid), Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return Some((mid, e)),
            Err(observed) => cur = observed,
        }
    }
}

// ---------------------------------------------------------------------------
// claimable helper jobs
// ---------------------------------------------------------------------------

/// Claim flags + completion latch shared between a caller and the helper
/// jobs it queued. Heap-allocated (`Arc`) so a stale queue entry that
/// *loses* its claim race touches only this block, never the caller's
/// stack frame.
#[derive(Debug)]
struct JobControl {
    claimed: Box<[AtomicBool]>,
    latch: Latch,
}

impl JobControl {
    fn new(helpers: usize) -> Arc<Self> {
        Arc::new(JobControl {
            claimed: (0..helpers).map(|_| AtomicBool::new(false)).collect(),
            latch: Latch::new(helpers),
        })
    }

    /// True if the caller wins the right to run helper `i` itself.
    fn try_claim(&self, i: usize) -> bool {
        !self.claimed[i].swap(true, Ordering::AcqRel)
    }
}

// ---------------------------------------------------------------------------
// pool statistics
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct WorkerStat {
    busy_ns: AtomicU64,
    spans: AtomicU64,
}

/// Relaxed-atomic activity counters owned by one pool. Updated off the
/// CAS hot path (one flush per participant per map, one bump per queue
/// submit) so they never perturb scheduling or determinism.
#[derive(Debug)]
struct PoolStats {
    par_maps: AtomicU64,
    seq_maps: AtomicU64,
    items: AtomicU64,
    chunks_popped: AtomicU64,
    steals: AtomicU64,
    jobs_submitted: AtomicU64,
    helpers_inlined: AtomicU64,
    queue_depth_peak: AtomicU64,
    workers: Box<[WorkerStat]>,
}

impl PoolStats {
    fn new(threads: usize) -> Arc<Self> {
        Arc::new(PoolStats {
            par_maps: AtomicU64::new(0),
            seq_maps: AtomicU64::new(0),
            items: AtomicU64::new(0),
            chunks_popped: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            jobs_submitted: AtomicU64::new(0),
            helpers_inlined: AtomicU64::new(0),
            queue_depth_peak: AtomicU64::new(0),
            workers: (0..threads).map(|_| WorkerStat::default()).collect(),
        })
    }

    fn snapshot(&self, threads: usize) -> PoolStatsSnapshot {
        PoolStatsSnapshot {
            threads,
            par_maps: self.par_maps.load(Ordering::Relaxed),
            seq_maps: self.seq_maps.load(Ordering::Relaxed),
            items: self.items.load(Ordering::Relaxed),
            chunks_popped: self.chunks_popped.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            jobs_submitted: self.jobs_submitted.load(Ordering::Relaxed),
            helpers_inlined: self.helpers_inlined.load(Ordering::Relaxed),
            queue_depth_peak: self.queue_depth_peak.load(Ordering::Relaxed),
            worker_busy_ns: self
                .workers
                .iter()
                .map(|w| w.busy_ns.load(Ordering::Relaxed))
                .collect(),
            worker_spans: self
                .workers
                .iter()
                .map(|w| w.spans.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Point-in-time view of one pool's activity counters, cumulative since
/// the pool was created. Obtain via [`ThreadPool::stats`] (or
/// [`global_stats`]); subtract a baseline with [`delta_since`] to
/// attribute activity to one phase of a run.
///
/// [`delta_since`]: PoolStatsSnapshot::delta_since
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolStatsSnapshot {
    /// Participant count of the pool (workers + the caller).
    pub threads: usize,
    /// `map_collect` calls that actually fanned out (≥ 2 participants).
    pub par_maps: u64,
    /// `map_collect` calls that took the exact sequential path.
    pub seq_maps: u64,
    /// Total items moved through `map_collect` (both paths).
    pub items: u64,
    /// Chunks participants popped off the front of their own range.
    pub chunks_popped: u64,
    /// Successful back-half steals from a victim's range.
    pub steals: u64,
    /// Helper jobs pushed onto the pool queue (maps, joins, scope tasks).
    pub jobs_submitted: u64,
    /// Queued helpers the *caller* claimed and inlined because no worker
    /// had started them (saturation / nesting indicator).
    pub helpers_inlined: u64,
    /// Deepest the shared job queue has ever been at submit time.
    pub queue_depth_peak: u64,
    /// Per-participant wall-clock nanoseconds spent inside `map_collect`
    /// participation (index 0 is the calling thread).
    pub worker_busy_ns: Vec<u64>,
    /// Per-participant count of `map_collect` participations.
    pub worker_spans: Vec<u64>,
}

impl PoolStatsSnapshot {
    /// Counter-wise `self - earlier` (saturating), for attributing pool
    /// activity to the phase between two snapshots. `threads` and
    /// `queue_depth_peak` are level values, not counters, and are taken
    /// from `self` unchanged.
    pub fn delta_since(&self, earlier: &PoolStatsSnapshot) -> PoolStatsSnapshot {
        let vec_delta = |now: &[u64], then: &[u64]| -> Vec<u64> {
            now.iter()
                .enumerate()
                .map(|(i, v)| v.saturating_sub(then.get(i).copied().unwrap_or(0)))
                .collect()
        };
        PoolStatsSnapshot {
            threads: self.threads,
            par_maps: self.par_maps.saturating_sub(earlier.par_maps),
            seq_maps: self.seq_maps.saturating_sub(earlier.seq_maps),
            items: self.items.saturating_sub(earlier.items),
            chunks_popped: self.chunks_popped.saturating_sub(earlier.chunks_popped),
            steals: self.steals.saturating_sub(earlier.steals),
            jobs_submitted: self.jobs_submitted.saturating_sub(earlier.jobs_submitted),
            helpers_inlined: self.helpers_inlined.saturating_sub(earlier.helpers_inlined),
            queue_depth_peak: self.queue_depth_peak,
            worker_busy_ns: vec_delta(&self.worker_busy_ns, &earlier.worker_busy_ns),
            worker_spans: vec_delta(&self.worker_spans, &earlier.worker_spans),
        }
    }

    /// Sum of all participants' busy time.
    pub fn total_busy_ns(&self) -> u64 {
        self.worker_busy_ns.iter().sum()
    }
}

// ---------------------------------------------------------------------------
// parallel map state
// ---------------------------------------------------------------------------

struct MapShared<T, R, F> {
    items: *mut T,
    results: *mut MaybeUninit<R>,
    chunk: usize,
    f: F,
    ranges: Box<[AtomicU64]>,
    abort: AtomicBool,
    panic: Mutex<Option<PanicPayload>>,
    stats: Arc<PoolStats>,
}

// SAFETY: raw pointers target slots handed out exactly once by the range
// protocol; `f` is invoked concurrently through `&F`.
unsafe impl<T: Send, R: Send, F: Sync> Sync for MapShared<T, R, F> {}

impl<T, R, F> MapShared<T, R, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Moves items `s..e` through `f` into their result slots.
    ///
    /// SAFETY: `s..e` must have been obtained from `pop_front`/`steal_half`
    /// so each index is visited exactly once across all participants.
    unsafe fn run_chunk(&self, s: usize, e: usize) {
        for i in s..e {
            let item = ptr::read(self.items.add(i));
            let out = (self.f)(item);
            (*self.results.add(i)).write(out);
        }
    }

    fn record_panic(&self, payload: PanicPayload) {
        self.abort.store(true, Ordering::Relaxed);
        let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
        slot.get_or_insert(payload);
    }

    /// One participant's work loop: drain own range, then steal.
    fn participate(&self, me: usize) {
        let started = Instant::now();
        let workers = self.ranges.len();
        let body = || {
            // Local tallies, flushed once per participation so the stats
            // atomics stay off the CAS hot path.
            let mut popped = 0u64;
            let mut stolen = 0u64;
            'work: loop {
                if self.abort.load(Ordering::Relaxed) {
                    break;
                }
                if let Some((s, e)) = pop_front(&self.ranges[me], self.chunk) {
                    popped += 1;
                    // SAFETY: indices come from the claiming protocol.
                    unsafe { self.run_chunk(s, e) };
                    continue;
                }
                for off in 1..workers {
                    let victim = (me + off) % workers;
                    if let Some((mut s, e)) = steal_half(&self.ranges[victim]) {
                        stolen += 1;
                        // Stolen span is processed privately, chunk by
                        // chunk, so an abort still cuts in promptly.
                        while s < e {
                            if self.abort.load(Ordering::Relaxed) {
                                break 'work;
                            }
                            let c = (s + self.chunk).min(e);
                            // SAFETY: detached span, ours alone.
                            unsafe { self.run_chunk(s, c) };
                            s = c;
                        }
                        continue 'work;
                    }
                }
                break; // every range is empty
            }
            (popped, stolen)
        };
        match panic::catch_unwind(AssertUnwindSafe(body)) {
            Ok((popped, stolen)) => {
                self.stats
                    .chunks_popped
                    .fetch_add(popped, Ordering::Relaxed);
                self.stats.steals.fetch_add(stolen, Ordering::Relaxed);
            }
            Err(payload) => self.record_panic(payload),
        }
        if let Some(w) = self.stats.workers.get(me) {
            w.busy_ns
                .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
            w.spans.fetch_add(1, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------------
// thread pool
// ---------------------------------------------------------------------------

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
}

fn worker_loop(shared: Arc<PoolShared>) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                q = shared.available.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        // Jobs are internally panic-safe; a stray unwind must not kill the
        // worker.
        let _ = panic::catch_unwind(AssertUnwindSafe(job));
    }
}

/// A fixed-size work-stealing thread pool.
///
/// A pool of `threads` participants spawns `threads - 1` OS workers — the
/// calling thread is always the first participant — so
/// `ThreadPool::new(1)` is a true zero-thread sequential executor.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    threads: usize,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
    stats: Arc<PoolStats>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

impl ThreadPool {
    /// Creates a pool with `threads` participants (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (1..threads)
            .map(|i| {
                let s = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("acm-exec-{i}"))
                    .spawn(move || worker_loop(s))
                    .expect("spawn acm-exec worker")
            })
            .collect();
        ThreadPool {
            shared,
            threads,
            workers: Mutex::new(workers),
            stats: PoolStats::new(threads),
        }
    }

    /// Number of participants (worker threads + the caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Activity counters accumulated since the pool was created.
    pub fn stats(&self) -> PoolStatsSnapshot {
        self.stats.snapshot(self.threads)
    }

    fn submit(&self, job: Job) {
        let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.push_back(job);
        let depth = q.len() as u64;
        drop(q);
        self.stats.jobs_submitted.fetch_add(1, Ordering::Relaxed);
        self.stats
            .queue_depth_peak
            .fetch_max(depth, Ordering::Relaxed);
        self.shared.available.notify_one();
    }

    /// Applies `f` to every item and collects the results **in input
    /// order**, regardless of scheduling. With one participant this is
    /// exactly `items.into_iter().map(f).collect()`.
    ///
    /// Panics in `f` abort outstanding work and are re-raised here once
    /// every participant has stopped touching the shared state.
    pub fn map_collect<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = items.len();
        let parts = self.threads.min(n);
        if parts <= 1 {
            self.stats.seq_maps.fetch_add(1, Ordering::Relaxed);
            self.stats.items.fetch_add(n as u64, Ordering::Relaxed);
            return items.into_iter().map(f).collect();
        }
        self.stats.par_maps.fetch_add(1, Ordering::Relaxed);
        self.stats.items.fetch_add(n as u64, Ordering::Relaxed);
        assert!(
            n < u32::MAX as usize,
            "map_collect supports at most 2^32 - 1 items"
        );

        let mut items = ManuallyDrop::new(items);
        let items_ptr = items.as_mut_ptr();
        let items_cap = items.capacity();
        let mut results: Vec<MaybeUninit<R>> = Vec::with_capacity(n);
        // SAFETY: `MaybeUninit` slots need no initialisation and are never
        // dropped by the Vec.
        unsafe { results.set_len(n) };

        let shared = MapShared {
            items: items_ptr,
            results: results.as_mut_ptr(),
            chunk: (n / (parts * 4)).max(1),
            f,
            ranges: (0..parts)
                .map(|w| AtomicU64::new(pack(n * w / parts, n * (w + 1) / parts)))
                .collect(),
            abort: AtomicBool::new(false),
            panic: Mutex::new(None),
            stats: Arc::clone(&self.stats),
        };

        let control = JobControl::new(parts - 1);
        {
            let shared_ref: &MapShared<T, R, F> = &shared;
            for w in 1..parts {
                let ctl = Arc::clone(&control);
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    // Dereference the caller's stack frame only after
                    // winning the claim: a win means the caller is still
                    // blocked on the latch below.
                    if ctl.try_claim(w - 1) {
                        shared_ref.participate(w);
                        ctl.latch.count_down();
                    }
                });
                // SAFETY: lifetime erasure. A queue entry that outlives
                // this frame necessarily loses its claim (the caller
                // claims every unstarted helper before returning) and
                // then touches only the Arc'd `JobControl`.
                let job: Job = unsafe { mem::transmute(job) };
                self.submit(job);
            }

            shared_ref.participate(0);
            for w in 1..parts {
                if control.try_claim(w - 1) {
                    self.stats.helpers_inlined.fetch_add(1, Ordering::Relaxed);
                    shared_ref.participate(w);
                    control.latch.count_down();
                }
            }
            control.latch.wait();
        }

        let panicked = shared
            .panic
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        drop(shared); // drops `f` and the ranges; raw pointers stay valid
        if let Some(payload) = panicked {
            // Free the two backing allocations without dropping elements:
            // unread items and orphaned results leak rather than risking a
            // double drop.
            mem::forget(results);
            // SAFETY: reconstituting with len 0 frees the buffer only.
            unsafe { drop(Vec::from_raw_parts(items_ptr, 0, items_cap)) };
            panic::resume_unwind(payload);
        }

        // SAFETY: all participants finished without panicking, so every
        // item was consumed and every result slot initialised.
        unsafe {
            drop(Vec::from_raw_parts(items_ptr, 0, items_cap));
            let out_ptr = results.as_mut_ptr() as *mut R;
            let out_cap = results.capacity();
            mem::forget(results);
            Vec::from_raw_parts(out_ptr, n, out_cap)
        }
    }

    /// [`ThreadPool::map_collect`] with per-item panic isolation: an item
    /// whose closure panics yields `Err(panic message)` in its slot
    /// instead of poisoning the whole batch. Result order is still item
    /// order, so the output is as deterministic as `f` itself.
    ///
    /// Built for campaign-style sweeps (many independent runs where one
    /// crashing run is itself a *finding*, not a reason to lose the other
    /// N-1 results). The pool stays fully usable afterwards — the panic
    /// never reaches the abort path of the plain collect.
    pub fn try_map_collect<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<Result<R, String>>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        self.map_collect(items, move |item| {
            // AssertUnwindSafe: the closure's captures are only observed
            // again if the caller's `f` is itself panic-tolerant; the
            // per-item payload is moved in and dropped on unwind.
            match panic::catch_unwind(panic::AssertUnwindSafe(|| f(item))) {
                Ok(r) => Ok(r),
                Err(payload) => Err(panic_message(&*payload)),
            }
        })
    }

    /// Runs both closures, potentially in parallel, and returns both
    /// results. `a` always runs on the calling thread; `b` runs on a
    /// worker if one picks it up before `a` finishes, else inline.
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        if self.threads <= 1 {
            let ra = a();
            return (ra, b());
        }

        struct JoinShared<B, RB> {
            b: UnsafeCell<Option<B>>,
            out: UnsafeCell<Option<Result<RB, PanicPayload>>>,
        }
        // SAFETY: the claim flag serialises all cell access.
        unsafe impl<B: Send, RB: Send> Sync for JoinShared<B, RB> {}

        let shared = JoinShared::<B, RB> {
            b: UnsafeCell::new(Some(b)),
            out: UnsafeCell::new(None),
        };
        let control = JobControl::new(1);
        let shared_ref = &shared;
        let run_b = move || {
            // SAFETY: claim won ⇒ exclusive access to both cells.
            let bfn = unsafe { (*shared_ref.b.get()).take() }.expect("join body taken once");
            let out = panic::catch_unwind(AssertUnwindSafe(bfn));
            unsafe { *shared_ref.out.get() = Some(out) };
        };
        {
            let ctl = Arc::clone(&control);
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                if ctl.try_claim(0) {
                    run_b();
                    ctl.latch.count_down();
                }
            });
            // SAFETY: same claim discipline as `map_collect`.
            let job: Job = unsafe { mem::transmute(job) };
            self.submit(job);
        }

        let ra = panic::catch_unwind(AssertUnwindSafe(a));
        if control.try_claim(0) {
            self.stats.helpers_inlined.fetch_add(1, Ordering::Relaxed);
            run_b();
            control.latch.count_down();
        }
        control.latch.wait();

        // SAFETY: every participant is done with the cells.
        let rb = unsafe { (*shared.out.get()).take() }.expect("join result present");
        match (ra, rb) {
            (Ok(ra), Ok(rb)) => (ra, rb),
            (Err(p), _) | (_, Err(p)) => panic::resume_unwind(p),
        }
    }

    /// Applies `f(i, &mut items[i])` to every slot, potentially in
    /// parallel, and returns once all slots are done. Each index is handed
    /// to exactly one task, so the in-place mutation never aliases. With a
    /// single participant (or ≤ 1 items) the slots are visited strictly in
    /// index order — the exact sequential path, no threads, no atomics.
    ///
    /// This is the era-scoped shard driver: one long-lived shard per slot,
    /// advanced in place behind an era barrier. Panics in `f` propagate
    /// after every spawned task has quiesced (the [`scope`] discipline).
    ///
    /// [`scope`]: ThreadPool::scope
    pub fn for_each_mut<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        if self.threads <= 1 || items.len() <= 1 {
            for (i, item) in items.iter_mut().enumerate() {
                f(i, item);
            }
            return;
        }
        struct SendPtr<T>(*mut T);
        // SAFETY: the pointer is only dereferenced at distinct indices,
        // one task each, all inside the scope barrier.
        unsafe impl<T: Send> Send for SendPtr<T> {}
        impl<T> Clone for SendPtr<T> {
            fn clone(&self) -> Self {
                *self
            }
        }
        impl<T> Copy for SendPtr<T> {}
        impl<T> SendPtr<T> {
            // Method (not field) access, so closures capture the Send
            // wrapper rather than the bare `*mut T` inside it.
            fn get(self) -> *mut T {
                self.0
            }
        }

        let base = SendPtr(items.as_mut_ptr());
        let n = items.len();
        let f = &f;
        self.scope(|s| {
            for i in 0..n {
                s.spawn(move || {
                    // SAFETY: index `i` belongs to this task alone; the
                    // scope keeps the borrow of `items` alive until every
                    // task has completed.
                    let slot = unsafe { &mut *base.get().add(i) };
                    f(i, slot);
                });
            }
        });
    }

    /// Runs `f` with a [`Scope`] onto which `'scope`-borrowing tasks can
    /// be spawned; returns once every spawned task has completed. The
    /// first panic (from `f` or any task) is re-raised after the barrier.
    pub fn scope<'scope, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'scope, '_>) -> R,
    {
        let scope = Scope {
            pool: self,
            tasks: Mutex::new(Vec::new()),
            _marker: std::marker::PhantomData,
        };
        let result = panic::catch_unwind(AssertUnwindSafe(|| f(&scope)));
        let tasks = mem::take(&mut *scope.tasks.lock().unwrap_or_else(|e| e.into_inner()));
        for t in &tasks {
            t.try_run(); // claim whatever no worker has started
        }
        for t in &tasks {
            t.latch.wait();
        }
        let mut first_panic = None;
        for t in &tasks {
            // SAFETY: all tasks quiesced behind their latches.
            if let Some(p) = unsafe { (*t.panic.get()).take() } {
                first_panic.get_or_insert(p);
            }
        }
        match (result, first_panic) {
            (Err(p), _) => panic::resume_unwind(p),
            (Ok(_), Some(p)) => panic::resume_unwind(p),
            (Ok(r), None) => r,
        }
    }

    /// Submits a detached background job and returns a [`JobHandle`] to
    /// collect its result later.
    ///
    /// The job follows the same claim discipline as scope tasks: a worker
    /// that picks it up runs it; if no worker has started it by the time
    /// the caller [`JobHandle::join`]s, the caller claims and inlines it —
    /// a saturated (or nested) pool degrades to inline execution instead
    /// of deadlocking. On a single-participant pool the job runs inline
    /// **at submit time**, preserving the exact sequential order of side
    /// effects; callers that need width-independent results must therefore
    /// pre-split any RNG state *before* spawning and join at a point fixed
    /// by their own logic (an era boundary), never "when it happens to
    /// finish".
    ///
    /// Panics inside the job are captured and re-raised by
    /// [`JobHandle::join`].
    pub fn spawn_job<T, F>(&self, f: F) -> JobHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let result: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
        let slot = Arc::clone(&result);
        let body: Job = Box::new(move || {
            let out = f();
            *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
        });
        let task = ClaimableTask::new(body);
        if self.threads <= 1 {
            task.try_run();
        } else {
            let queued = Arc::clone(&task);
            self.submit(Box::new(move || queued.try_run()));
        }
        JobHandle { task, result }
    }
}

/// Handle to a background job started with [`ThreadPool::spawn_job`] (or
/// [`spawn_job`] on the global pool).
pub struct JobHandle<T> {
    task: Arc<ClaimableTask>,
    result: Arc<Mutex<Option<T>>>,
}

impl<T> std::fmt::Debug for JobHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("finished", &self.task.latch.is_done())
            .finish_non_exhaustive()
    }
}

impl<T: Send + 'static> JobHandle<T> {
    /// Whether the job has run to completion. Purely informational — the
    /// answer depends on worker scheduling, so deterministic callers must
    /// never branch their *logic* on it (join at a fixed point instead).
    pub fn is_finished(&self) -> bool {
        self.task.latch.is_done()
    }

    /// Collects the job's result, claiming and inlining the body if no
    /// worker has started it yet (never blocks on a worker that may never
    /// come). Re-raises the job's panic, if any.
    pub fn join(self) -> T {
        self.task.try_run();
        self.task.latch.wait();
        // SAFETY: the latch published the task's cells; nobody else holds
        // the claim now.
        if let Some(p) = unsafe { (*self.task.panic.get()).take() } {
            panic::resume_unwind(p);
        }
        self.result
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("job result present after latch")
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        let mut workers = self
            .workers
            .get_mut()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .collect::<Vec<_>>();
        for h in workers.drain(..) {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------------
// scope
// ---------------------------------------------------------------------------

/// One spawned scope task: body + claim flag + completion latch, shared
/// between the queued job and the scope-end drain.
struct ClaimableTask {
    claimed: AtomicBool,
    latch: Latch,
    body: UnsafeCell<Option<Job>>,
    panic: UnsafeCell<Option<PanicPayload>>,
}

// SAFETY: the claim flag serialises access to both cells; the latch
// publishes the panic slot to the scope-end reader.
unsafe impl Sync for ClaimableTask {}
unsafe impl Send for ClaimableTask {}

impl ClaimableTask {
    fn new(body: Job) -> Arc<Self> {
        Arc::new(ClaimableTask {
            claimed: AtomicBool::new(false),
            latch: Latch::new(1),
            body: UnsafeCell::new(Some(body)),
            panic: UnsafeCell::new(None),
        })
    }

    fn try_run(&self) {
        if self.claimed.swap(true, Ordering::AcqRel) {
            return;
        }
        // SAFETY: claim won ⇒ exclusive access.
        let body = unsafe { (*self.body.get()).take() }.expect("scope body taken once");
        if let Err(p) = panic::catch_unwind(AssertUnwindSafe(body)) {
            // SAFETY: still claim-guarded; published by the latch below.
            unsafe { *self.panic.get() = Some(p) };
        }
        self.latch.count_down();
    }
}

/// A fork-join scope: tasks spawned here may borrow from the enclosing
/// stack frame (`'scope`) and are guaranteed complete before
/// [`ThreadPool::scope`] returns.
///
/// Unlike real rayon, task closures take no `&Scope` argument, so a task
/// cannot spawn siblings — none of this workspace's workloads need that.
pub struct Scope<'scope, 'pool> {
    pool: &'pool ThreadPool,
    tasks: Mutex<Vec<Arc<ClaimableTask>>>,
    _marker: std::marker::PhantomData<&'scope mut &'scope ()>,
}

impl<'scope, 'pool> Scope<'scope, 'pool> {
    /// Spawns a task onto the scope. With a single-participant pool the
    /// task runs inline immediately (exact sequential order).
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        if self.pool.threads <= 1 {
            f();
            return;
        }
        let body: Box<dyn FnOnce() + Send + 'scope> = Box::new(f);
        // SAFETY: the scope barrier keeps `'scope` borrows alive until
        // every task has run; a post-scope queue entry loses its claim and
        // never touches the body.
        let body: Job = unsafe { mem::transmute(body) };
        let task = ClaimableTask::new(body);
        let queued = Arc::clone(&task);
        self.pool.submit(Box::new(move || queued.try_run()));
        self.tasks
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(task);
    }
}

// ---------------------------------------------------------------------------
// global pool + ACM_THREADS
// ---------------------------------------------------------------------------

/// Parallelism the machine offers (≥ 1).
pub fn available_threads() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// Parses an `ACM_THREADS` value: positive integer = that many
/// participants; `0`, empty or malformed = all available cores.
pub fn parse_thread_env(value: Option<&str>) -> usize {
    match value.map(str::trim).and_then(|v| v.parse::<usize>().ok()) {
        Some(n) if n > 0 => n,
        _ => available_threads(),
    }
}

fn global_cell() -> &'static RwLock<Arc<ThreadPool>> {
    static GLOBAL: OnceLock<RwLock<Arc<ThreadPool>>> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let threads = parse_thread_env(std::env::var("ACM_THREADS").ok().as_deref());
        RwLock::new(Arc::new(ThreadPool::new(threads)))
    })
}

/// The process-wide pool (sized by `ACM_THREADS` at first use).
pub fn global() -> Arc<ThreadPool> {
    global_cell()
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
}

/// Replaces the global pool with one of `threads` participants (clamped
/// to ≥ 1) and returns the effective count. Prefer this over mutating
/// `ACM_THREADS` in-process: the environment is read once, and
/// `std::env::set_var` is racy. In-flight operations on the old pool
/// finish undisturbed; its workers exit once the last handle drops.
pub fn configure_threads(threads: usize) -> usize {
    let threads = threads.max(1);
    let mut guard = global_cell().write().unwrap_or_else(|e| e.into_inner());
    let old = if guard.threads() != threads {
        Some(mem::replace(
            &mut *guard,
            Arc::new(ThreadPool::new(threads)),
        ))
    } else {
        None
    };
    drop(guard);
    // Tear the old pool down only after releasing the cell: dropping the
    // last handle joins its workers, and a still-running background job
    // may call `global()` (a read lock) while draining — joining under
    // the write lock would deadlock against it.
    drop(old);
    threads
}

/// Participant count of the current global pool.
pub fn current_threads() -> usize {
    global().threads()
}

/// [`ThreadPool::stats`] of the current global pool. Note that
/// [`configure_threads`] swaps the pool and therefore resets the
/// counters; [`PoolStatsSnapshot::delta_since`] saturates at zero, so a
/// baseline taken on the previous pool yields the new pool's absolute
/// counts rather than garbage.
pub fn global_stats() -> PoolStatsSnapshot {
    global().stats()
}

/// [`ThreadPool::map_collect`] on the global pool.
pub fn map_collect<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    global().map_collect(items, f)
}

/// [`ThreadPool::try_map_collect`] on the global pool.
pub fn try_map_collect<T, R, F>(items: Vec<T>, f: F) -> Vec<Result<R, String>>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    global().try_map_collect(items, f)
}

/// Best-effort human-readable panic payload (the common `&str` and
/// `String` payloads verbatim, a placeholder otherwise).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// [`ThreadPool::join`] on the global pool.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    global().join(a, b)
}

/// [`ThreadPool::scope`] on the global pool.
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope, '_>) -> R,
{
    let pool = global();
    pool.scope(f)
}

/// [`ThreadPool::for_each_mut`] on the global pool.
pub fn for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    global().for_each_mut(items, f)
}

/// [`ThreadPool::spawn_job`] on the global pool.
pub fn spawn_job<T, F>(f: F) -> JobHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    global().spawn_job(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn map_collect_matches_sequential_across_shapes() {
        for threads in [1, 2, 3, 4, 8] {
            let pool = ThreadPool::new(threads);
            for n in [0usize, 1, 2, 7, 64, 1000] {
                let items: Vec<usize> = (0..n).collect();
                let expect: Vec<usize> = items.iter().map(|i| i * 31 + 7).collect();
                let got = pool.map_collect(items, |i| i * 31 + 7);
                assert_eq!(got, expect, "threads={threads} n={n}");
            }
        }
    }

    #[test]
    fn map_collect_is_deterministic_and_order_stable() {
        let seq = ThreadPool::new(1).map_collect((0..500u64).collect(), |i| i.wrapping_mul(i));
        for _ in 0..10 {
            let par = ThreadPool::new(4).map_collect((0..500u64).collect(), |i| i.wrapping_mul(i));
            assert_eq!(par, seq);
        }
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let n = 300;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let pool = ThreadPool::new(6);
        let out = pool.map_collect((0..n).collect(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out, (0..n).collect::<Vec<_>>());
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn map_collect_moves_owned_items_without_leaking_results() {
        // Heap-owning items and results: miri-free proxy for the unsafe
        // slot protocol (a double free or uninit read would crash or
        // corrupt the strings).
        let pool = ThreadPool::new(4);
        let items: Vec<String> = (0..200).map(|i| format!("item-{i}")).collect();
        let out = pool.map_collect(items, |s| s + "!");
        assert_eq!(out.len(), 200);
        assert_eq!(out[199], "item-199!");
    }

    #[test]
    fn panic_in_map_propagates_with_payload() {
        let pool = ThreadPool::new(4);
        let err = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map_collect((0..100usize).collect(), |i| {
                if i == 37 {
                    panic!("boom at {i}");
                }
                i
            })
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("boom at 37"), "{msg}");
        // The pool survives a panicked job.
        let ok = pool.map_collect(vec![1, 2, 3], |i| i * 2);
        assert_eq!(ok, vec![2, 4, 6]);
    }

    #[test]
    fn join_runs_both_and_propagates_panics() {
        let pool = ThreadPool::new(2);
        let (a, b) = pool.join(|| 40 + 1, || "right".len());
        assert_eq!((a, b), (41, 5));
        let err = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.join(|| 1, || -> usize { panic!("join-b") })
        }))
        .unwrap_err();
        assert_eq!(*err.downcast_ref::<&str>().unwrap(), "join-b");
    }

    #[test]
    fn scope_completes_all_spawned_tasks() {
        for threads in [1, 4] {
            let pool = ThreadPool::new(threads);
            let hits = AtomicUsize::new(0);
            pool.scope(|s| {
                for _ in 0..16 {
                    s.spawn(|| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(hits.load(Ordering::Relaxed), 16, "threads={threads}");
        }
    }

    #[test]
    fn for_each_mut_matches_sequential_across_widths() {
        let expect: Vec<u64> = (0..97u64).map(|i| i * 3 + 1).collect();
        for threads in [1, 2, 4, 8] {
            let pool = ThreadPool::new(threads);
            let mut items: Vec<u64> = (0..97u64).collect();
            pool.for_each_mut(&mut items, |i, v| {
                assert_eq!(*v, i as u64);
                *v = *v * 3 + 1;
            });
            assert_eq!(items, expect, "threads={threads}");
        }
    }

    #[test]
    fn for_each_mut_visits_each_slot_exactly_once() {
        let pool = ThreadPool::new(6);
        let mut hits = vec![0usize; 200];
        pool.for_each_mut(&mut hits, |i, h| {
            *h += i + 1;
        });
        assert!(hits.iter().enumerate().all(|(i, h)| *h == i + 1));
    }

    #[test]
    fn for_each_mut_propagates_panics() {
        let pool = ThreadPool::new(4);
        let mut items = vec![0u32; 50];
        let err = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.for_each_mut(&mut items, |i, _| {
                if i == 17 {
                    panic!("slot 17");
                }
            })
        }))
        .unwrap_err();
        assert_eq!(*err.downcast_ref::<&str>().unwrap(), "slot 17");
        // The pool survives.
        pool.for_each_mut(&mut items, |_, v| *v += 1);
        assert!(items.iter().all(|v| *v == 1));
    }

    #[test]
    fn nested_map_collect_does_not_deadlock() {
        let pool = ThreadPool::new(2);
        let out = pool.map_collect((0..8u64).collect(), |i| {
            // Nested parallelism from inside a participant.
            global()
                .map_collect((0..50u64).collect(), move |j| i * 100 + j)
                .iter()
                .sum::<u64>()
        });
        let expect: Vec<u64> = (0..8u64)
            .map(|i| (0..50u64).map(|j| i * 100 + j).sum())
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn stats_count_parallel_maps_and_busy_time() {
        let pool = ThreadPool::new(4);
        let before = pool.stats();
        assert_eq!(before.threads, 4);
        let out = pool.map_collect((0..1000usize).collect(), |i| i * 2);
        assert_eq!(out.len(), 1000);
        let d = pool.stats().delta_since(&before);
        assert_eq!(d.par_maps, 1);
        assert_eq!(d.seq_maps, 0);
        assert_eq!(d.items, 1000);
        assert_eq!(d.jobs_submitted, 3, "one helper job per non-caller part");
        assert!(d.chunks_popped > 0, "owners must pop chunks");
        assert!(d.queue_depth_peak >= 1, "submits must register queue depth");
        assert_eq!(d.worker_busy_ns.len(), 4);
        assert!(
            d.worker_busy_ns[0] > 0 && d.worker_spans[0] >= 1,
            "the caller always participates"
        );
        assert!(d.total_busy_ns() >= d.worker_busy_ns[0]);
    }

    #[test]
    fn stats_sequential_path_counts_maps_without_jobs() {
        let pool = ThreadPool::new(1);
        let before = pool.stats();
        let _ = pool.map_collect((0..10usize).collect(), |i| i);
        let _ = pool.map_collect(Vec::<usize>::new(), |i| i);
        let d = pool.stats().delta_since(&before);
        assert_eq!((d.seq_maps, d.par_maps, d.items), (2, 0, 10));
        assert_eq!(d.jobs_submitted, 0);
        assert_eq!(d.steals, 0);
    }

    #[test]
    fn stats_delta_saturates_against_newer_baseline() {
        let pool = ThreadPool::new(2);
        let _ = pool.map_collect((0..100usize).collect(), |i| i);
        let late = pool.stats();
        let fresh = ThreadPool::new(2).stats();
        let d = fresh.delta_since(&late);
        assert_eq!(d.par_maps, 0, "saturating_sub must clamp at zero");
        assert_eq!(d.items, 0);
    }

    #[test]
    fn spawn_job_returns_result_across_widths() {
        for threads in [1, 2, 4] {
            let pool = ThreadPool::new(threads);
            let h = pool.spawn_job(|| (0..100u64).sum::<u64>());
            assert_eq!(h.join(), 4950, "threads={threads}");
        }
    }

    #[test]
    fn spawn_job_runs_inline_at_submit_on_sequential_pool() {
        // Width 1: the job's side effects happen before spawn_job returns,
        // exactly as a sequential caller would observe.
        let pool = ThreadPool::new(1);
        let flag = Arc::new(AtomicBool::new(false));
        let seen = Arc::clone(&flag);
        let h = pool.spawn_job(move || seen.store(true, Ordering::SeqCst));
        assert!(flag.load(Ordering::SeqCst), "inline at submit");
        assert!(h.is_finished());
        h.join();
    }

    #[test]
    fn join_inlines_unstarted_jobs_instead_of_waiting() {
        // A pool whose only worker is blocked: the caller must claim and
        // inline the job rather than wait for a worker that never comes.
        let pool = ThreadPool::new(2);
        let gate = Arc::new(Latch::new(1));
        let g = Arc::clone(&gate);
        let _blocker = pool.spawn_job(move || g.wait());
        let h = pool.spawn_job(|| 7 * 6);
        assert_eq!(h.join(), 42);
        gate.count_down();
    }

    #[test]
    fn spawn_job_propagates_panics_on_join() {
        let pool = ThreadPool::new(2);
        let h = pool.spawn_job(|| -> u32 { panic!("job boom") });
        let err = panic::catch_unwind(AssertUnwindSafe(|| h.join())).unwrap_err();
        assert_eq!(*err.downcast_ref::<&str>().unwrap(), "job boom");
        // The pool survives.
        assert_eq!(pool.spawn_job(|| 5).join(), 5);
    }

    #[test]
    fn spawned_jobs_can_use_the_pool_internally() {
        // A background job fanning out a nested map_collect must not
        // deadlock, even on a small pool.
        let pool = Arc::new(ThreadPool::new(2));
        let inner = Arc::clone(&pool);
        let h = pool.spawn_job(move || {
            inner
                .map_collect((0..64u64).collect(), |i| i * 2)
                .iter()
                .sum::<u64>()
        });
        assert_eq!(h.join(), 64 * 63);
    }

    #[test]
    fn thread_env_parsing() {
        let cores = available_threads();
        assert_eq!(parse_thread_env(None), cores);
        assert_eq!(parse_thread_env(Some("")), cores);
        assert_eq!(parse_thread_env(Some("0")), cores);
        assert_eq!(parse_thread_env(Some("junk")), cores);
        assert_eq!(parse_thread_env(Some("3")), 3);
        assert_eq!(parse_thread_env(Some(" 8 ")), 8);
    }

    #[test]
    fn configure_threads_does_not_deadlock_against_inflight_jobs() {
        // Regression: the swap used to drop the old pool (joining its
        // workers) while still holding the global cell's write lock. A
        // background job draining on one of those workers that touched
        // `global()` — as every nested map/scope through the facade does —
        // blocked on the read lock, and the join never returned.
        configure_threads(2);
        let started = Arc::new(Latch::new(1));
        let seen = Arc::clone(&started);
        let h = spawn_job(move || {
            seen.count_down();
            let mut acc = 0u64;
            for i in 0..2_000u64 {
                // Keep re-entering the global cell while the swap races us.
                acc += global().map_collect(vec![i], |v| v * 2)[0];
                thread::yield_now();
            }
            acc
        });
        started.wait();
        configure_threads(1);
        assert_eq!(h.join(), 2_000 * 1_999);
        configure_threads(available_threads());
    }

    #[test]
    fn configure_threads_swaps_the_global_pool() {
        let n = configure_threads(3);
        assert_eq!(n, 3);
        assert_eq!(current_threads(), 3);
        assert_eq!(configure_threads(0), 1);
        assert_eq!(current_threads(), 1);
        configure_threads(available_threads());
    }

    #[test]
    fn try_map_collect_isolates_panicking_items() {
        for threads in [1, 4] {
            let pool = ThreadPool::new(threads);
            let out = pool.try_map_collect((0..64u64).collect(), |i| {
                if i % 13 == 5 {
                    panic!("item {i} exploded");
                }
                i * 3
            });
            assert_eq!(out.len(), 64);
            for (i, r) in out.iter().enumerate() {
                if i % 13 == 5 {
                    assert_eq!(r.as_ref().unwrap_err(), &format!("item {i} exploded"));
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i as u64 * 3);
                }
            }
            // The pool survives: a follow-up plain collect works.
            let again = pool.map_collect(vec![1u64, 2, 3], |v| v + 1);
            assert_eq!(again, vec![2, 3, 4]);
        }
    }
}
