//! Property tests for the work-stealing pool: for arbitrary item counts,
//! participant counts and item values, every item is processed exactly
//! once and the collect is order-stable (identical to the sequential map).

use acm_exec::ThreadPool;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

proptest! {
    #[test]
    fn all_items_processed_exactly_once_in_input_order(
        n in 0usize..400,
        threads in 1usize..9,
        values in proptest::collection::vec(any::<u64>(), 0..400),
    ) {
        // Exercise both a dense index workload and arbitrary payloads.
        let pool = ThreadPool::new(threads);

        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let out = pool.map_collect((0..n).collect(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
            i as u64 * 2654435761
        });
        let expect: Vec<u64> = (0..n).map(|i| i as u64 * 2654435761).collect();
        prop_assert_eq!(out, expect);
        for (i, h) in hits.iter().enumerate() {
            prop_assert_eq!(h.load(Ordering::Relaxed), 1, "item {} hit count", i);
        }

        let expect: Vec<u64> = values.iter().map(|v| v.wrapping_mul(31).wrapping_add(7)).collect();
        let got = pool.map_collect(values, |v| v.wrapping_mul(31).wrapping_add(7));
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn parallel_collect_is_byte_identical_to_sequential(
        values in proptest::collection::vec(any::<i64>(), 0..300),
        threads in 2usize..8,
    ) {
        let seq: Vec<String> = values.iter().map(|v| format!("{v:+}")).collect();
        let par = ThreadPool::new(threads).map_collect(values, |v| format!("{v:+}"));
        prop_assert_eq!(par, seq);
    }
}
