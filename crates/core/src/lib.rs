//! Autonomic Cloud Manager (ACM) — the paper's core contribution.
//!
//! ACM "brings all the capabilities of PCAM to a geographically-distributed
//! network of VMs": per-region VMCs report their region mean time to
//! failure (RMTTF) to an elected leader over the overlay network; the
//! leader smooths the reports (Eq. 1), runs one of three proactive
//! load-balancing policies (Sec. IV) to compute the fraction `f_i` of the
//! global request flow each region should absorb, and installs a global
//! forward plan on every region's load balancer. A closed
//! Monitor → Analyze → Plan → Execute loop (Fig. 2, Algs. 1–3) drives the
//! whole system; autoscaling reacts to response-time and RMTTF thresholds.
//!
//! * [`ewma`] — the RMTTF exponentially-weighted average of Eq. 1.
//! * [`policy`] — Policy 1 (Sensible Routing, Eq. 2), Policy 2 (Available
//!   Resources Estimation, Eq. 3–4), Policy 3 (Exploration, Eq. 5–9).
//! * [`plan`] — the global forward plan: the row-stochastic matrix mapping
//!   client ingress shares onto the policy's target fractions.
//! * [`autoscale`] — ADDVMS / deactivation per Alg. 3 and Sec. V.
//! * [`cost`] — multi-cloud cost accounting plus the cost-aware policy
//!   extension (the economics the paper's intro motivates).
//! * [`scenario`] — scripted runtime reconfigurations (policy switches,
//!   faults, capacity actions) applied mid-run.
//! * [`control_loop`] — the four-state closed loop over real region state.
//! * [`telemetry`] — per-era records regenerating the paper's figures.
//! * [`config`] / [`framework`] — experiment wiring, including the paper's
//!   exact two- and three-region hybrid deployments.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod autoscale;
pub mod config;
pub mod control_loop;
pub mod cost;
pub mod degrade;
pub mod ewma;
pub mod framework;
pub mod plan;
pub mod policy;
pub mod scenario;
pub mod telemetry;

pub use config::{ExperimentConfig, PredictorChoice, RegionSpec};
pub use control_loop::ControlLoop;
pub use degrade::{DegradationConfig, HealthTracker, RegionHealth};
pub use ewma::RmttfEwma;
pub use framework::{run_experiment, run_experiment_with_obs};
pub use plan::ForwardPlan;
pub use policy::{LoadBalancingPolicy, PolicyKind};
pub use telemetry::ExperimentTelemetry;
