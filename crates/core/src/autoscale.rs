//! Autoscaling (paper Alg. 3 line 6–8 and Sec. V).
//!
//! Two triggers, both local to a region's VMC:
//!
//! * **ADDVMS** — "if Predicted Response Time > threshold" the controller
//!   adds capacity: it provisions a standby VM and raises the active
//!   target.
//! * **RMTTF thresholds** — "If the RMTTF of a cloud region becomes less
//!   (more) than a given threshold, then the local controller can activate
//!   new VMs (deactivate some active VMs)".
//!
//! A cooldown keeps the controller from thrashing: capacity changes take
//! one rejuvenation-time to materialise, so back-to-back decisions on the
//! same signal would double-provision.

use acm_pcam::Vmc;
use acm_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// Autoscaling thresholds and pacing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoscaleConfig {
    /// Enable the controller (the fig3/fig4 reproduction keeps region
    /// sizes fixed as in the paper, so it defaults off).
    pub enabled: bool,
    /// ADDVMS when the region's predicted response time exceeds this.
    pub response_threshold_s: f64,
    /// Activate capacity when the region RMTTF falls below this (seconds).
    pub rmttf_low_s: f64,
    /// Release capacity when the region RMTTF exceeds this (seconds).
    pub rmttf_high_s: f64,
    /// Minimum eras between scaling decisions per region.
    pub cooldown_eras: u32,
    /// Hard cap on VMs a region may grow to.
    pub max_vms: usize,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        AutoscaleConfig {
            enabled: false,
            response_threshold_s: 0.8,
            rmttf_low_s: 180.0,
            rmttf_high_s: 3600.0,
            cooldown_eras: 4,
            max_vms: 32,
        }
    }
}

/// What the autoscaler did for one region in one era.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScaleAction {
    /// Nothing to do (or disabled / cooling down).
    None,
    /// Added one VM and raised the active target.
    ScaledUp,
    /// Lowered the active target and retired a standby.
    ScaledDown,
}

/// Per-region autoscaling state.
#[derive(Debug, Clone, Default)]
pub struct Autoscaler {
    eras_since_action: u32,
    ups: u64,
    downs: u64,
}

impl Autoscaler {
    /// Creates an idle autoscaler.
    pub fn new() -> Self {
        Autoscaler::default()
    }

    /// Lifetime scale-up count.
    pub fn ups(&self) -> u64 {
        self.ups
    }

    /// Lifetime scale-down count.
    pub fn downs(&self) -> u64 {
        self.downs
    }

    /// Runs one autoscaling decision for `vmc` given the era's predicted
    /// response time and the region RMTTF estimate.
    pub fn step(
        &mut self,
        cfg: &AutoscaleConfig,
        vmc: &mut Vmc,
        now: SimTime,
        predicted_response_s: f64,
        rmttf_s: f64,
    ) -> ScaleAction {
        self.eras_since_action = self.eras_since_action.saturating_add(1);
        if !cfg.enabled || self.eras_since_action <= cfg.cooldown_eras {
            return ScaleAction::None;
        }

        let pool_total = vmc.pool().counts().total();
        let target = vmc.pool().target_active();

        // Scale up on slow responses (Alg. 3 ADDVMS) or dangerously low
        // RMTTF (Sec. V).
        if (predicted_response_s > cfg.response_threshold_s || rmttf_s < cfg.rmttf_low_s)
            && pool_total < cfg.max_vms
        {
            vmc.pool_mut().add_vm();
            vmc.pool_mut().set_target_active(target + 1);
            vmc.pool_mut().replenish_active(now);
            self.eras_since_action = 0;
            self.ups += 1;
            return ScaleAction::ScaledUp;
        }

        // Scale down when the region is far healthier than needed and fast.
        if rmttf_s > cfg.rmttf_high_s
            && predicted_response_s < 0.5 * cfg.response_threshold_s
            && target > 1
        {
            vmc.pool_mut().set_target_active(target - 1);
            // Retire a spare if one exists so the pool does not hoard VMs.
            let _ = vmc.pool_mut().remove_standby();
            self.eras_since_action = 0;
            self.downs += 1;
            return ScaleAction::ScaledDown;
        }
        ScaleAction::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acm_pcam::{RegionConfig, RttfSource};
    use acm_sim::rng::SimRng;
    use acm_vm::VmFlavor;

    fn mk_vmc() -> Vmc {
        Vmc::new(
            RegionConfig::new("r", VmFlavor::m3_medium(), 4, 2),
            RttfSource::Oracle,
            SimRng::new(1),
        )
    }

    fn enabled() -> AutoscaleConfig {
        AutoscaleConfig {
            enabled: true,
            cooldown_eras: 0,
            ..Default::default()
        }
    }

    fn t0() -> SimTime {
        SimTime::ZERO
    }

    #[test]
    fn disabled_never_acts() {
        let mut vmc = mk_vmc();
        let mut scaler = Autoscaler::new();
        let cfg = AutoscaleConfig::default();
        let a = scaler.step(&cfg, &mut vmc, t0(), 10.0, 1.0);
        assert_eq!(a, ScaleAction::None);
        assert_eq!(vmc.pool().counts().total(), 4);
    }

    #[test]
    fn slow_responses_trigger_addvms() {
        let mut vmc = mk_vmc();
        let mut scaler = Autoscaler::new();
        let a = scaler.step(&enabled(), &mut vmc, t0(), 1.5, 1000.0);
        assert_eq!(a, ScaleAction::ScaledUp);
        assert_eq!(vmc.pool().counts().total(), 5);
        assert_eq!(vmc.pool().target_active(), 3);
        assert_eq!(vmc.pool().counts().active, 3);
        assert_eq!(scaler.ups(), 1);
    }

    #[test]
    fn low_rmttf_triggers_scale_up() {
        let mut vmc = mk_vmc();
        let mut scaler = Autoscaler::new();
        let a = scaler.step(&enabled(), &mut vmc, t0(), 0.1, 60.0);
        assert_eq!(a, ScaleAction::ScaledUp);
    }

    #[test]
    fn healthy_fast_region_scales_down() {
        let mut vmc = mk_vmc();
        let mut scaler = Autoscaler::new();
        let a = scaler.step(&enabled(), &mut vmc, t0(), 0.05, 10_000.0);
        assert_eq!(a, ScaleAction::ScaledDown);
        assert_eq!(vmc.pool().target_active(), 1);
        assert_eq!(scaler.downs(), 1);
    }

    #[test]
    fn cooldown_throttles_consecutive_actions() {
        let mut vmc = mk_vmc();
        let mut scaler = Autoscaler::new();
        let cfg = AutoscaleConfig {
            enabled: true,
            cooldown_eras: 3,
            ..Default::default()
        };
        // Needs cooldown_eras+1 calls before the first action fires.
        assert_eq!(
            scaler.step(&cfg, &mut vmc, t0(), 1.5, 1000.0),
            ScaleAction::None
        );
        assert_eq!(
            scaler.step(&cfg, &mut vmc, t0(), 1.5, 1000.0),
            ScaleAction::None
        );
        assert_eq!(
            scaler.step(&cfg, &mut vmc, t0(), 1.5, 1000.0),
            ScaleAction::None
        );
        assert_eq!(
            scaler.step(&cfg, &mut vmc, t0(), 1.5, 1000.0),
            ScaleAction::ScaledUp
        );
        // Cooldown restarts after the action.
        assert_eq!(
            scaler.step(&cfg, &mut vmc, t0(), 1.5, 1000.0),
            ScaleAction::None
        );
    }

    #[test]
    fn max_vms_caps_growth() {
        let mut vmc = mk_vmc();
        let mut scaler = Autoscaler::new();
        let cfg = AutoscaleConfig {
            enabled: true,
            cooldown_eras: 0,
            max_vms: 5,
            ..Default::default()
        };
        assert_eq!(
            scaler.step(&cfg, &mut vmc, t0(), 2.0, 1000.0),
            ScaleAction::ScaledUp
        );
        assert_eq!(
            scaler.step(&cfg, &mut vmc, t0(), 2.0, 1000.0),
            ScaleAction::None
        );
        assert_eq!(vmc.pool().counts().total(), 5);
    }

    #[test]
    fn never_scales_below_one_active() {
        let mut vmc = Vmc::new(
            RegionConfig::new("r", VmFlavor::m3_medium(), 2, 1),
            RttfSource::Oracle,
            SimRng::new(2),
        );
        let mut scaler = Autoscaler::new();
        assert_eq!(
            scaler.step(&enabled(), &mut vmc, t0(), 0.01, 1e6),
            ScaleAction::None
        );
        assert_eq!(vmc.pool().target_active(), 1);
    }
}
