//! Multi-cloud cost accounting (extension).
//!
//! The paper motivates heterogeneous multi-cloud deployments economically:
//! "different cloud providers offer various types of VMs at different
//! costs. Also, the cost of VMs of the same cloud provider may change
//! depending on the geographical region" (Sec. I) — but its evaluation
//! never prices the deployments. This module closes that loop: it
//! integrates each region's ACTIVE-VM series against its VM-hour price and
//! reports run cost, per-region breakdown and cost efficiency, enabling
//! the cost-aware policy extension
//! ([`crate::policy::PolicyKind::CostAwareResources`]) to be evaluated.

use crate::telemetry::ExperimentTelemetry;
use acm_sim::time::Duration;
use serde::{Deserialize, Serialize};

/// Cost summary of one experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostReport {
    /// Per-region spend, USD, index-aligned with the telemetry regions.
    pub per_region_usd: Vec<f64>,
    /// Total spend, USD.
    pub total_usd: f64,
    /// Requests completed over the run.
    pub requests: u64,
    /// USD per million requests served.
    pub usd_per_mreq: f64,
}

/// Prices a finished run: Σ over eras of (active VMs × era × hourly price).
///
/// `vm_hour_usd` must be index-aligned with the telemetry's regions.
/// Standby and rejuvenating VMs are deliberately *not* billed — matching
/// the stop/start billing model the paper's spare-VM strategy assumes.
pub fn price_run(tel: &ExperimentTelemetry, vm_hour_usd: &[f64], era: Duration) -> CostReport {
    assert_eq!(
        vm_hour_usd.len(),
        tel.region_names().len(),
        "one price per region"
    );
    let era_hours = era.as_secs_f64() / 3600.0;
    let per_region_usd: Vec<f64> = vm_hour_usd
        .iter()
        .enumerate()
        .map(|(i, price)| {
            let vm_eras: f64 = tel.active_vms(i).values().sum();
            vm_eras * era_hours * price
        })
        .collect();
    let total_usd: f64 = per_region_usd.iter().sum();
    let requests = tel.total_completed();
    CostReport {
        per_region_usd,
        total_usd,
        requests,
        usd_per_mreq: if requests > 0 {
            total_usd / (requests as f64 / 1e6)
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::RegionEraRecord;
    use acm_sim::time::SimTime;

    fn record(active: usize, completed: u64) -> RegionEraRecord {
        RegionEraRecord {
            rmttf: 100.0,
            fraction: 0.5,
            response_s: 0.05,
            active_vms: active,
            proactive: 0,
            reactive: 0,
            completed,
        }
    }

    #[test]
    fn prices_active_vm_hours() {
        let mut tel = ExperimentTelemetry::new(vec!["a".into(), "b".into()]);
        // Two eras of 1800 s (0.5 h) each: region a runs 4 VMs, b runs 2.
        for e in 1..=2u64 {
            tel.record_era(
                SimTime::from_secs(e * 1800),
                &[record(4, 1000), record(2, 500)],
                0.05,
                10.0,
                0.0,
                0.0,
            );
        }
        let report = price_run(&tel, &[0.10, 0.02], Duration::from_secs(1800));
        // a: 4 VMs × 2 eras × 0.5 h × $0.10 = $0.40
        // b: 2 VMs × 2 eras × 0.5 h × $0.02 = $0.04
        assert!((report.per_region_usd[0] - 0.40).abs() < 1e-12);
        assert!((report.per_region_usd[1] - 0.04).abs() < 1e-12);
        assert!((report.total_usd - 0.44).abs() < 1e-12);
        assert_eq!(report.requests, 3000);
        assert!((report.usd_per_mreq - 0.44 / 0.003).abs() < 1e-9);
    }

    #[test]
    fn empty_run_costs_nothing() {
        let tel = ExperimentTelemetry::new(vec!["a".into()]);
        let report = price_run(&tel, &[1.0], Duration::from_secs(30));
        assert_eq!(report.total_usd, 0.0);
        assert_eq!(report.usd_per_mreq, 0.0);
    }

    #[test]
    #[should_panic(expected = "one price per region")]
    fn mismatched_prices_panic() {
        let tel = ExperimentTelemetry::new(vec!["a".into(), "b".into()]);
        let _ = price_run(&tel, &[1.0], Duration::from_secs(30));
    }
}
