//! The three proactive load-balancing policies (paper Sec. IV).
//!
//! Each policy maps the regions' current (EWMA-smoothed) RMTTF values to a
//! new vector of workload fractions `f` with `Σ f_i = 1`. Their shared goal:
//! "ensure that all active VMs in all regions show the same Mean Time To
//! Failure in front of the heterogeneity of regions".
//!
//! * **Policy 1 — Sensible Routing** (Eq. 2, after Wang & Gelenbe \[34\]):
//!   `f_i = RMTTF_i / Σ_j RMTTF_j`.
//! * **Policy 2 — Available Resources Estimation** (Eq. 3–4):
//!   `Q_i = RMTTF_i · f_i · λ`, then `f_i = Q_i / Σ_j Q_j`. `Q_i` estimates
//!   the region's resource stock, which for linearly-consumed resources is
//!   load-invariant — hence the fast, stable convergence the paper reports.
//! * **Policy 3 — Exploration** (Eq. 5–9): hill climbing around the average
//!   RMTTF. Regions below the average (overloaded) shed flow
//!   multiplicatively with step factor `k`; the freed flow is redistributed
//!   over the regions above the average, proportionally to `f_j · RMTTF_j`
//!   as in Eq. 8. A small exploration jitter models the "intrinsic
//!   randomness" of the search (configurable; the paper's Sec. VI points to
//!   it as Policy 3's weakness).
//!
//! All policies floor fractions at [`MIN_FRACTION`] and renormalise: a
//! region starved to exactly zero flow would stop producing RMTTF reports
//! (nothing fails when nothing runs), deadlocking the estimator — the same
//! reason the real system never routes strictly zero traffic anywhere.

use acm_obs::{Counter, ObsHandle, Timer};
use acm_sim::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Fraction floor applied after every policy step.
pub const MIN_FRACTION: f64 = 0.01;

/// Which policy the leader runs (selected "at configuration time", Alg. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Policy 1 — Sensible Routing (Eq. 2).
    SensibleRouting,
    /// Policy 2 — Available Resources Estimation (Eq. 3–4).
    AvailableResources,
    /// Policy 3 — Exploration (Eq. 5–9).
    Exploration,
    /// Extension (not in the paper): Policy 2 with each region's resource
    /// estimate discounted by its VM-hour price, trading some RMTTF
    /// balance for cheaper capacity — the economic motivation the paper's
    /// introduction raises but never evaluates.
    CostAwareResources,
}

impl PolicyKind {
    /// The paper's three policies, in paper order (the cost-aware extension
    /// is deliberately excluded — figure harnesses iterate over this).
    pub const ALL: [PolicyKind; 3] = [
        PolicyKind::SensibleRouting,
        PolicyKind::AvailableResources,
        PolicyKind::Exploration,
    ];

    /// Paper policies plus the cost-aware extension.
    pub const EXTENDED: [PolicyKind; 4] = [
        PolicyKind::SensibleRouting,
        PolicyKind::AvailableResources,
        PolicyKind::Exploration,
        PolicyKind::CostAwareResources,
    ];

    /// Paper-facing display name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::SensibleRouting => "policy1-sensible-routing",
            PolicyKind::AvailableResources => "policy2-available-resources",
            PolicyKind::Exploration => "policy3-exploration",
            PolicyKind::CostAwareResources => "ext-cost-aware-resources",
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A configured policy instance (the leader's `POLICY()` function).
///
/// ```
/// use acm_core::policy::{LoadBalancingPolicy, PolicyKind};
/// use acm_sim::SimRng;
/// let policy = LoadBalancingPolicy::new(PolicyKind::SensibleRouting);
/// let f = policy.next_fractions(&[0.5, 0.5], &[300.0, 100.0], 50.0, &mut SimRng::new(1));
/// assert!((f[0] - 0.75).abs() < 1e-9); // Eq. 2: f ∝ RMTTF
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadBalancingPolicy {
    kind: PolicyKind,
    /// Exploration step factor `k` (Policy 3 only).
    k: f64,
    /// Relative jitter applied by Policy 3 (0 disables).
    exploration_noise: f64,
    /// Per-region VM-hour prices (cost-aware extension only).
    region_costs: Option<Vec<f64>>,
    /// Instrumentation; inert until [`LoadBalancingPolicy::set_obs`].
    steps: Counter,
    step_timer: Timer,
}

impl LoadBalancingPolicy {
    /// Creates a policy with the paper-defaults (`k = 0.5`, 2 % jitter).
    pub fn new(kind: PolicyKind) -> Self {
        LoadBalancingPolicy {
            kind,
            k: 0.5,
            exploration_noise: 0.02,
            region_costs: None,
            steps: Counter::default(),
            step_timer: Timer::default(),
        }
    }

    /// Attaches observability: counts policy invocations
    /// (`acm.core.policy.steps`) and times each step
    /// (`acm.core.policy.step_ns`).
    pub fn set_obs(&mut self, obs: &ObsHandle) {
        self.steps = obs.counter("acm.core.policy.steps");
        self.step_timer = obs.timer("acm.core.policy.step_ns");
    }

    /// Replaces the policy kind, keeping every tuning knob (runtime policy
    /// switching).
    pub fn with_kind(mut self, kind: PolicyKind) -> Self {
        self.kind = kind;
        self
    }

    /// Supplies per-region VM-hour prices for
    /// [`PolicyKind::CostAwareResources`] (ignored by the paper policies).
    pub fn with_region_costs(mut self, costs: Vec<f64>) -> Self {
        assert!(
            costs.iter().all(|c| c.is_finite() && *c > 0.0),
            "region costs must be positive"
        );
        self.region_costs = Some(costs);
        self
    }

    /// Overrides the exploration step factor `k`.
    pub fn with_k(mut self, k: f64) -> Self {
        assert!(k > 0.0 && k <= 1.0, "k must be in (0,1], got {k}");
        self.k = k;
        self
    }

    /// Overrides the exploration jitter (relative std-dev).
    pub fn with_noise(mut self, noise: f64) -> Self {
        assert!(noise >= 0.0, "noise must be non-negative");
        self.exploration_noise = noise;
        self
    }

    /// The configured kind.
    pub fn kind(&self) -> PolicyKind {
        self.kind
    }

    /// The configured exploration step factor.
    pub fn k(&self) -> f64 {
        self.k
    }

    /// Computes the next fraction vector.
    ///
    /// * `prev` — the fractions currently installed (`f^{t−1}`),
    /// * `rmttf` — the leader's current per-region RMTTF estimates,
    /// * `lambda` — the global incoming request rate (Policy 2's `λ`),
    /// * `rng` — drives Policy 3's exploration jitter.
    ///
    /// The result is a probability vector (non-negative, sums to 1) with
    /// every entry ≥ [`MIN_FRACTION`] (for ≤ 1/MIN_FRACTION regions).
    pub fn next_fractions(
        &self,
        prev: &[f64],
        rmttf: &[f64],
        lambda: f64,
        rng: &mut SimRng,
    ) -> Vec<f64> {
        assert_eq!(prev.len(), rmttf.len(), "one RMTTF per region");
        assert!(!prev.is_empty(), "need at least one region");
        let _span = self.step_timer.start();
        self.steps.inc();
        let raw = match self.kind {
            PolicyKind::SensibleRouting => sensible_routing(rmttf),
            PolicyKind::AvailableResources => available_resources(prev, rmttf, lambda),
            PolicyKind::Exploration => self.exploration(prev, rmttf, rng),
            PolicyKind::CostAwareResources => {
                let q = available_resources(prev, rmttf, lambda);
                match &self.region_costs {
                    None => q,
                    Some(costs) => {
                        assert_eq!(costs.len(), q.len(), "one cost per region");
                        // Discount each region's resource estimate by its
                        // price, then renormalise: cheap capacity wins ties.
                        let weighted: Vec<f64> =
                            q.iter().zip(costs).map(|(qi, c)| qi / c).collect();
                        let total: f64 = weighted.iter().sum();
                        weighted.iter().map(|w| w / total).collect()
                    }
                }
            }
        };
        floor_and_normalise(&raw)
    }

    /// Policy 3 (Eq. 5–9).
    fn exploration(&self, prev: &[f64], rmttf: &[f64], rng: &mut SimRng) -> Vec<f64> {
        let n = rmttf.len();
        let armttf: f64 = rmttf.iter().sum::<f64>() / n as f64; // Eq. 5
        if armttf <= 0.0 {
            return prev.to_vec();
        }
        let mut next = prev.to_vec();
        // Overloaded set OL = { i : RMTTF_i < ARMTTF } sheds flow (Eq. 6),
        // interpolated by the step factor k so k=1 reproduces the equation
        // exactly and smaller k takes a partial hill-climbing step.
        let mut freed = 0.0; // −Δf_< of Eq. 7
        for i in 0..n {
            if rmttf[i] < armttf {
                let full = prev[i] * (rmttf[i] / armttf); // Eq. 6 at k = 1
                let stepped = prev[i] + self.k * (full - prev[i]);
                freed += prev[i] - stepped;
                next[i] = stepped;
            }
        }
        // Underloaded set UL = { i : RMTTF_i ≥ ARMTTF } absorbs the freed
        // flow proportionally to f_i · RMTTF_i (the Eq. 8 weighting), which
        // preserves Σ f = 1 by construction.
        let ul_weight: f64 = (0..n)
            .filter(|&i| rmttf[i] >= armttf)
            .map(|i| prev[i] * rmttf[i])
            .sum();
        if ul_weight > 0.0 && freed > 0.0 {
            for i in 0..n {
                if rmttf[i] >= armttf {
                    next[i] += freed * (prev[i] * rmttf[i]) / ul_weight;
                }
            }
        }
        // Intrinsic exploration randomness.
        if self.exploration_noise > 0.0 {
            for f in &mut next {
                *f *= (1.0 + rng.normal(0.0, self.exploration_noise)).max(0.1);
            }
        }
        next
    }
}

/// Policy 1 (Eq. 2).
fn sensible_routing(rmttf: &[f64]) -> Vec<f64> {
    let total: f64 = rmttf.iter().sum();
    if total <= 0.0 {
        return vec![1.0 / rmttf.len() as f64; rmttf.len()];
    }
    rmttf.iter().map(|r| r / total).collect()
}

/// Policy 2 (Eq. 3–4).
fn available_resources(prev: &[f64], rmttf: &[f64], lambda: f64) -> Vec<f64> {
    let q: Vec<f64> = prev
        .iter()
        .zip(rmttf)
        .map(|(f, r)| r * f * lambda.max(0.0)) // Eq. 3
        .collect();
    let total: f64 = q.iter().sum();
    if total <= 0.0 {
        return vec![1.0 / prev.len() as f64; prev.len()];
    }
    q.iter().map(|qi| qi / total).collect() // Eq. 4
}

/// Floors every fraction at [`MIN_FRACTION`] and renormalises to sum 1.
fn floor_and_normalise(raw: &[f64]) -> Vec<f64> {
    let mut out: Vec<f64> = raw
        .iter()
        .map(|f| {
            if f.is_finite() {
                f.max(MIN_FRACTION)
            } else {
                MIN_FRACTION
            }
        })
        .collect();
    let total: f64 = out.iter().sum();
    for f in &mut out {
        *f /= total;
    }
    out
}

/// Uniform initial fractions (the system boots knowing nothing).
pub fn uniform_fractions(n: usize) -> Vec<f64> {
    assert!(n > 0);
    vec![1.0 / n as f64; n]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_simplex(f: &[f64]) {
        let total: f64 = f.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "sum {total}");
        // Floored at MIN_FRACTION before the final normalisation, so the
        // post-normalisation guarantee is half the floor.
        assert!(f.iter().all(|x| *x >= MIN_FRACTION / 2.0), "{f:?}");
    }

    #[test]
    fn policy1_is_proportional_to_rmttf() {
        let p = LoadBalancingPolicy::new(PolicyKind::SensibleRouting);
        let mut rng = SimRng::new(1);
        let f = p.next_fractions(&[0.5, 0.5], &[300.0, 100.0], 50.0, &mut rng);
        assert_simplex(&f);
        assert!((f[0] - 0.75).abs() < 1e-9);
        assert!((f[1] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn policy2_estimates_resources() {
        let p = LoadBalancingPolicy::new(PolicyKind::AvailableResources);
        let mut rng = SimRng::new(2);
        // Region 0: RMTTF 300 at f=0.2 → Q=300·0.2·λ; region 1: 100 at 0.8.
        let f = p.next_fractions(&[0.2, 0.8], &[300.0, 100.0], 50.0, &mut rng);
        assert_simplex(&f);
        // Q0 = 60λ/... : Q0=3000, Q1=4000 → f = (3/7, 4/7).
        assert!((f[0] - 3.0 / 7.0).abs() < 1e-9, "{f:?}");
    }

    #[test]
    fn policy2_fixed_point_under_inverse_rmttf_model() {
        // RMTTF_i = C_i / (f_i λ): Q_i = C_i exactly, so the policy jumps to
        // f ∝ C in ONE step and stays there — the paper's fast convergence.
        let p = LoadBalancingPolicy::new(PolicyKind::AvailableResources);
        let mut rng = SimRng::new(3);
        let c = [3000.0, 1000.0];
        let lambda = 60.0;
        let mut f = uniform_fractions(2);
        for _ in 0..3 {
            let rmttf: Vec<f64> = f.iter().zip(c).map(|(fi, ci)| ci / (fi * lambda)).collect();
            f = p.next_fractions(&f, &rmttf, lambda, &mut rng);
        }
        assert!((f[0] - 0.75).abs() < 1e-6, "{f:?}");
    }

    #[test]
    fn policy1_does_not_equalise_rmttf_under_inverse_model() {
        // Fixed point of Policy 1 is f ∝ √C, where RMTTFs remain unequal —
        // the paper's central negative result for heterogeneous regions.
        let p = LoadBalancingPolicy::new(PolicyKind::SensibleRouting);
        let mut rng = SimRng::new(4);
        let c = [4000.0, 1000.0];
        let lambda = 60.0;
        let mut f = uniform_fractions(2);
        for _ in 0..200 {
            let rmttf: Vec<f64> = f.iter().zip(c).map(|(fi, ci)| ci / (fi * lambda)).collect();
            let target = p.next_fractions(&f, &rmttf, lambda, &mut rng);
            // Damped install (as the EWMA does in the real loop) so the
            // gain −1 oscillation settles onto the fixed point.
            for i in 0..2 {
                f[i] = 0.5 * f[i] + 0.5 * target[i];
            }
        }
        let rmttf: Vec<f64> = f.iter().zip(c).map(|(fi, ci)| ci / (fi * lambda)).collect();
        // f* ∝ √C → f0/f1 = 2, RMTTF0/RMTTF1 = √(C0/C1) = 2 ≠ 1.
        assert!((f[0] / f[1] - 2.0).abs() < 0.05, "{f:?}");
        assert!(
            rmttf[0] / rmttf[1] > 1.8,
            "RMTTFs unexpectedly equalised: {rmttf:?}"
        );
    }

    #[test]
    fn policy3_moves_load_away_from_overloaded_regions() {
        let p = LoadBalancingPolicy::new(PolicyKind::Exploration).with_noise(0.0);
        let mut rng = SimRng::new(5);
        // Region 0 is overloaded (RMTTF below average).
        let f = p.next_fractions(&[0.5, 0.5], &[100.0, 300.0], 50.0, &mut rng);
        assert_simplex(&f);
        assert!(f[0] < 0.5, "{f:?}");
        assert!(f[1] > 0.5, "{f:?}");
    }

    #[test]
    fn policy3_converges_to_equal_rmttf_under_inverse_model() {
        let p = LoadBalancingPolicy::new(PolicyKind::Exploration).with_noise(0.0);
        let mut rng = SimRng::new(6);
        let c = [3000.0, 1000.0, 2000.0];
        let lambda = 80.0;
        let mut f = uniform_fractions(3);
        for _ in 0..300 {
            let rmttf: Vec<f64> = f.iter().zip(c).map(|(fi, ci)| ci / (fi * lambda)).collect();
            f = p.next_fractions(&f, &rmttf, lambda, &mut rng);
        }
        let rmttf: Vec<f64> = f.iter().zip(c).map(|(fi, ci)| ci / (fi * lambda)).collect();
        let max = rmttf.iter().fold(0.0_f64, |a, b| a.max(*b));
        let min = rmttf.iter().fold(f64::INFINITY, |a, b| a.min(*b));
        assert!(max / min < 1.1, "RMTTFs did not converge: {rmttf:?}");
    }

    #[test]
    fn all_policies_emit_probability_vectors_on_adversarial_inputs() {
        let mut rng = SimRng::new(7);
        for kind in PolicyKind::ALL {
            let p = LoadBalancingPolicy::new(kind);
            for rmttf in [
                vec![0.0, 0.0, 0.0],
                vec![1e9, 1e-9, 1.0],
                vec![f64::INFINITY, 100.0, 100.0],
                vec![100.0],
            ] {
                let prev = uniform_fractions(rmttf.len());
                let sane: Vec<f64> = rmttf
                    .iter()
                    .map(|r| if r.is_finite() { *r } else { 1e7 })
                    .collect();
                let f = p.next_fractions(&prev, &sane, 50.0, &mut rng);
                assert_simplex(&f);
            }
        }
    }

    #[test]
    fn min_fraction_floor_prevents_starvation() {
        let p = LoadBalancingPolicy::new(PolicyKind::SensibleRouting);
        let mut rng = SimRng::new(8);
        let f = p.next_fractions(&[0.5, 0.5], &[1e9, 1.0], 50.0, &mut rng);
        assert!(f[1] >= MIN_FRACTION * 0.99, "{f:?}");
    }

    #[test]
    fn exploration_k_scales_step_size() {
        let mut rng = SimRng::new(9);
        let gentle = LoadBalancingPolicy::new(PolicyKind::Exploration)
            .with_k(0.1)
            .with_noise(0.0);
        let eager = LoadBalancingPolicy::new(PolicyKind::Exploration)
            .with_k(1.0)
            .with_noise(0.0);
        let prev = [0.5, 0.5];
        let rmttf = [100.0, 300.0];
        let fg = gentle.next_fractions(&prev, &rmttf, 50.0, &mut rng);
        let fe = eager.next_fractions(&prev, &rmttf, 50.0, &mut rng);
        assert!(
            (fe[0] - 0.5).abs() > (fg[0] - 0.5).abs(),
            "k=1 must take the larger step: {fe:?} vs {fg:?}"
        );
    }

    #[test]
    fn exploration_noise_perturbs_output() {
        let noisy = LoadBalancingPolicy::new(PolicyKind::Exploration).with_noise(0.1);
        let quiet = LoadBalancingPolicy::new(PolicyKind::Exploration).with_noise(0.0);
        let prev = [0.5, 0.5];
        let rmttf = [200.0, 200.0]; // perfectly balanced: only noise moves f
        let fq = quiet.next_fractions(&prev, &rmttf, 50.0, &mut SimRng::new(10));
        let fnz = noisy.next_fractions(&prev, &rmttf, 50.0, &mut SimRng::new(10));
        assert_eq!(fq, vec![0.5, 0.5]);
        assert_ne!(fnz, vec![0.5, 0.5]);
        assert_simplex(&fnz);
    }

    #[test]
    fn cost_aware_without_costs_matches_policy2() {
        let mut rng = SimRng::new(20);
        let p2 = LoadBalancingPolicy::new(PolicyKind::AvailableResources);
        let ca = LoadBalancingPolicy::new(PolicyKind::CostAwareResources);
        let prev = [0.4, 0.6];
        let rmttf = [300.0, 150.0];
        assert_eq!(
            p2.next_fractions(&prev, &rmttf, 50.0, &mut rng),
            ca.next_fractions(&prev, &rmttf, 50.0, &mut rng)
        );
    }

    #[test]
    fn cost_aware_shifts_flow_to_the_cheap_region() {
        let mut rng = SimRng::new(21);
        let prev = [0.5, 0.5];
        let rmttf = [200.0, 200.0]; // identical resource estimates
        let p2 = LoadBalancingPolicy::new(PolicyKind::AvailableResources);
        let ca = LoadBalancingPolicy::new(PolicyKind::CostAwareResources)
            .with_region_costs(vec![0.10, 0.02]); // region 1 is 5x cheaper
        let f2 = p2.next_fractions(&prev, &rmttf, 50.0, &mut rng);
        let fc = ca.next_fractions(&prev, &rmttf, 50.0, &mut rng);
        assert_eq!(f2, vec![0.5, 0.5]);
        assert!(fc[1] > 0.7, "cheap region should dominate: {fc:?}");
        assert_simplex(&fc);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn non_positive_costs_panic() {
        let _ = LoadBalancingPolicy::new(PolicyKind::CostAwareResources)
            .with_region_costs(vec![0.1, 0.0]);
    }

    #[test]
    fn extended_contains_paper_policies() {
        for kind in PolicyKind::ALL {
            assert!(PolicyKind::EXTENDED.contains(&kind));
        }
        assert_eq!(PolicyKind::EXTENDED.len(), 4);
    }

    #[test]
    fn uniform_fractions_are_uniform() {
        assert_eq!(uniform_fractions(4), vec![0.25; 4]);
    }

    #[test]
    #[should_panic(expected = "one RMTTF per region")]
    fn mismatched_lengths_panic() {
        let p = LoadBalancingPolicy::new(PolicyKind::SensibleRouting);
        let _ = p.next_fractions(&[0.5, 0.5], &[1.0], 10.0, &mut SimRng::new(11));
    }
}
