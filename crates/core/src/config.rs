//! Experiment configuration, including the paper's exact deployments.
//!
//! Section VI-A of the paper defines the test-bed this module encodes:
//!
//! * **Region 1** — Amazon EC2 Ireland, 6 × `m3.medium`;
//! * **Region 2** — Amazon EC2 Frankfurt, 12 × `m3.small`;
//! * **Region 3** — private 32-core HP ProLiant in Munich, 4 × (2 vCPU,
//!   1 GB RAM, 4 GB disk) VMware guests;
//! * TPC-W emulated browsers, 10 % / 5 % anomaly injection, clients per
//!   region in `[16, 512]` and "significantly different in number";
//! * REP-Tree as the deployed MTTF predictor.
//!
//! `two_region_fig3` reproduces the Figure-3 deployment (Regions 1 + 3);
//! `three_region_fig4` the Figure-4 deployment (all three regions).

use crate::autoscale::AutoscaleConfig;
use crate::degrade::DegradationConfig;
use crate::policy::PolicyKind;
use crate::scenario::Scenario;
use acm_ml::model::ModelKind;
use acm_obs::ObsConfig;
use acm_overlay::{FaultPlan, NodeId};
use acm_pcam::{DriftConfig, LifecycleConfig, RegionConfig};
use acm_router::LatencyAwareness;
use acm_sim::time::{Duration, SimTime};
use acm_vm::VmFlavor;
use acm_workload::{ClientSchedule, RegionWorkload, TpcwMix};
use serde::{Deserialize, Serialize};

/// How the VMCs obtain RTTF predictions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredictorChoice {
    /// Ground truth (perfect-prediction baseline and fast tests).
    Oracle,
    /// Train the given F2PM family per flavor on a freshly collected
    /// feature database before the run (the paper deploys REP-Tree).
    Trained(ModelKind),
}

/// One region of the deployment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegionSpec {
    /// PCAM configuration of the region.
    pub region: RegionConfig,
    /// Client population attached to this region's load balancer.
    pub clients: ClientSchedule,
}

impl RegionSpec {
    /// The workload model for this region's clients.
    pub fn workload(&self) -> RegionWorkload {
        RegionWorkload::new(self.clients.clone())
    }
}

/// A scheduled overlay fault (link level).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkFault {
    /// First endpoint (region index).
    pub a: usize,
    /// Second endpoint (region index).
    pub b: usize,
    /// Fault injection instant.
    pub fail_at: SimTime,
    /// Recovery instant.
    pub recover_at: SimTime,
}

/// Complete description of one experiment run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Run label (used in CSV output).
    pub name: String,
    /// The regions, index-aligned everywhere.
    pub regions: Vec<RegionSpec>,
    /// Inter-region overlay latencies `(i, j, one_way)`.
    pub latencies: Vec<(usize, usize, Duration)>,
    /// The policy under test.
    pub policy: PolicyKind,
    /// EWMA smoothing factor β of Eq. 1.
    pub beta: f64,
    /// Exploration step factor k (Policy 3).
    pub k: f64,
    /// Exploration jitter (Policy 3).
    pub exploration_noise: f64,
    /// Control-era length.
    pub era: Duration,
    /// Number of eras to run.
    pub eras: usize,
    /// Master seed.
    pub seed: u64,
    /// RTTF predictor choice.
    pub predictor: PredictorChoice,
    /// Autoscaling configuration.
    pub autoscale: AutoscaleConfig,
    /// Scheduled overlay faults.
    pub link_faults: Vec<LinkFault>,
    /// Deterministic chaos schedule replayed against the overlay
    /// transport (link flaps, crashes, partitions, leader kills,
    /// per-message drop/delay). `None` keeps the chaos layer entirely
    /// out of the loop — telemetry is byte-identical to a build without
    /// it.
    pub fault_plan: Option<FaultPlan>,
    /// Leader-side graceful degradation (staleness quarantine, report
    /// retries, re-admission hysteresis). Disabled by default.
    pub degradation: DegradationConfig,
    /// Scripted runtime reconfigurations.
    pub scenario: Scenario,
    /// TPC-W interaction mix driven by the emulated browsers; scales the
    /// per-request service demand (ordering mixes hit the database harder).
    pub mix: TpcwMix,
    /// Observability configuration (spans, metrics, decision log). Defaults
    /// on-but-cheap; instruments never feed back into the simulation, so a
    /// run's telemetry is byte-identical with observability on or off.
    pub obs: ObsConfig,
    /// Latency-aware scoring knobs of the request-routing data plane
    /// (minimum-measurement eligibility, exclusion threshold, EWMA decay).
    pub router: LatencyAwareness,
    /// Per-region predictor-drift detector parameters. The defaults are
    /// the historical hard-coded values, so existing seeds replay
    /// byte-identically.
    pub drift: DriftConfig,
    /// Versioned model lifecycle (background refits, shadow evaluation,
    /// promote/rollback). Disabled by default — when off, the loop's RNG
    /// stream layout is unchanged from before the lifecycle existed.
    pub lifecycle: LifecycleConfig,
}

impl ExperimentConfig {
    /// Measured-ish one-way WAN latencies between the paper's sites.
    fn latency_ireland_frankfurt() -> Duration {
        Duration::from_millis(25)
    }
    fn latency_ireland_munich() -> Duration {
        Duration::from_millis(30)
    }
    fn latency_frankfurt_munich() -> Duration {
        Duration::from_millis(12)
    }

    /// Region 1 of the paper: EC2 Ireland, 6 × m3.medium (5 active + 1
    /// standby for PCAM's proactive takeover).
    pub fn region1_ireland() -> RegionConfig {
        let mut r = RegionConfig::new("ec2-ireland", VmFlavor::m3_medium(), 6, 5);
        r.vm_hour_usd = 0.073; // 2016 eu-west-1 m3.medium on-demand
        r
    }

    /// Region 2 of the paper: EC2 Frankfurt, 12 × m3.small (10 active).
    pub fn region2_frankfurt() -> RegionConfig {
        let mut r = RegionConfig::new("ec2-frankfurt", VmFlavor::m3_small(), 12, 10);
        r.vm_hour_usd = 0.047; // small instances, eu-central premium
        r
    }

    /// Region 3 of the paper: private Munich host, 4 VMware guests
    /// (3 active).
    pub fn region3_munich() -> RegionConfig {
        let mut r = RegionConfig::new("private-munich", VmFlavor::private_munich(), 4, 3);
        r.vm_hour_usd = 0.015; // amortised private hardware
        r
    }

    /// The Figure-3 deployment: Regions 1 and 3, heterogeneous client
    /// populations (448 vs 160 emulated browsers — both inside the paper's
    /// `[16, 512]` interval and "significantly different").
    pub fn two_region_fig3(policy: PolicyKind, seed: u64) -> Self {
        ExperimentConfig {
            name: format!("fig3-{policy}"),
            regions: vec![
                RegionSpec {
                    region: Self::region1_ireland(),
                    clients: ClientSchedule::Constant(448),
                },
                RegionSpec {
                    region: Self::region3_munich(),
                    clients: ClientSchedule::Constant(160),
                },
            ],
            latencies: vec![(0, 1, Self::latency_ireland_munich())],
            policy,
            beta: 0.8,
            k: 0.5,
            exploration_noise: 0.02,
            era: Duration::from_secs(30),
            eras: 120,
            seed,
            predictor: PredictorChoice::Trained(ModelKind::RepTree),
            autoscale: AutoscaleConfig::default(),
            link_faults: Vec::new(),
            fault_plan: None,
            degradation: DegradationConfig::default(),
            scenario: Scenario::none(),
            mix: TpcwMix::Shopping,
            obs: ObsConfig::default(),
            router: LatencyAwareness::default(),
            drift: DriftConfig::default(),
            lifecycle: LifecycleConfig::default(),
        }
    }

    /// The Figure-4 deployment: all three regions.
    pub fn three_region_fig4(policy: PolicyKind, seed: u64) -> Self {
        ExperimentConfig {
            name: format!("fig4-{policy}"),
            regions: vec![
                RegionSpec {
                    region: Self::region1_ireland(),
                    clients: ClientSchedule::Constant(384),
                },
                RegionSpec {
                    region: Self::region2_frankfurt(),
                    clients: ClientSchedule::Constant(96),
                },
                RegionSpec {
                    region: Self::region3_munich(),
                    clients: ClientSchedule::Constant(192),
                },
            ],
            latencies: vec![
                (0, 1, Self::latency_ireland_frankfurt()),
                (0, 2, Self::latency_ireland_munich()),
                (1, 2, Self::latency_frankfurt_munich()),
            ],
            policy,
            beta: 0.8,
            k: 0.5,
            exploration_noise: 0.02,
            era: Duration::from_secs(30),
            eras: 120,
            seed,
            predictor: PredictorChoice::Trained(ModelKind::RepTree),
            autoscale: AutoscaleConfig::default(),
            link_faults: Vec::new(),
            fault_plan: None,
            degradation: DegradationConfig::default(),
            scenario: Scenario::none(),
            mix: TpcwMix::Shopping,
            obs: ObsConfig::default(),
            router: LatencyAwareness::default(),
            drift: DriftConfig::default(),
            lifecycle: LifecycleConfig::default(),
        }
    }

    /// Overlay node id of region `i` (regions map 1:1 onto overlay nodes).
    pub fn node_of(i: usize) -> NodeId {
        NodeId(i as u32)
    }

    /// Sanity-checks the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.regions.is_empty() {
            return Err("need at least one region".into());
        }
        if !(0.0..=1.0).contains(&self.beta) {
            return Err(format!("beta out of range: {}", self.beta));
        }
        if !(self.k > 0.0 && self.k <= 1.0) {
            return Err(format!("k out of range: {}", self.k));
        }
        if self.eras == 0 {
            return Err("need at least one era".into());
        }
        if self.era.is_zero() {
            return Err("era must be positive".into());
        }
        for (a, b, _) in &self.latencies {
            if *a >= self.regions.len() || *b >= self.regions.len() {
                return Err(format!("latency endpoint out of range: ({a},{b})"));
            }
        }
        for f in &self.link_faults {
            if f.a >= self.regions.len() || f.b >= self.regions.len() {
                return Err("fault endpoint out of range".into());
            }
            if f.recover_at <= f.fail_at {
                return Err("fault must recover after it fails".into());
            }
        }
        if let Some(plan) = &self.fault_plan {
            plan.validate_in_era(self.regions.len() as u32, self.era)?;
        }
        self.degradation.validate()?;
        for spec in &self.regions {
            spec.region.flavor.validate()?;
            spec.region.anomaly.validate()?;
        }
        self.scenario.validate(self.regions.len())?;
        self.obs.validate()?;
        self.router.validate()?;
        self.drift.validate()?;
        self.lifecycle.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_deployments_validate() {
        for policy in PolicyKind::ALL {
            ExperimentConfig::two_region_fig3(policy, 1)
                .validate()
                .unwrap();
            ExperimentConfig::three_region_fig4(policy, 1)
                .validate()
                .unwrap();
        }
    }

    #[test]
    fn fig3_matches_the_paper_testbed() {
        let cfg = ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, 1);
        assert_eq!(cfg.regions.len(), 2);
        assert_eq!(cfg.regions[0].region.flavor.name, "m3.medium");
        assert_eq!(cfg.regions[0].region.total_vms, 6);
        assert_eq!(cfg.regions[1].region.flavor.name, "private-munich");
        assert_eq!(cfg.regions[1].region.total_vms, 4);
        // Client populations inside [16, 512] and markedly different.
        for spec in &cfg.regions {
            let n = spec.clients.population(SimTime::ZERO);
            assert!((16..=512).contains(&n));
        }
    }

    #[test]
    fn fig4_adds_frankfurt() {
        let cfg = ExperimentConfig::three_region_fig4(PolicyKind::Exploration, 1);
        assert_eq!(cfg.regions.len(), 3);
        assert_eq!(cfg.regions[1].region.flavor.name, "m3.small");
        assert_eq!(cfg.regions[1].region.total_vms, 12);
        assert_eq!(cfg.latencies.len(), 3);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::SensibleRouting, 1);
        cfg.beta = 2.0;
        assert!(cfg.validate().is_err());

        let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::SensibleRouting, 1);
        cfg.eras = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::SensibleRouting, 1);
        cfg.latencies = vec![(0, 7, Duration::from_millis(1))];
        assert!(cfg.validate().is_err());

        let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::SensibleRouting, 1);
        cfg.link_faults = vec![LinkFault {
            a: 0,
            b: 1,
            fail_at: SimTime::from_secs(100),
            recover_at: SimTime::from_secs(50),
        }];
        assert!(cfg.validate().is_err());
    }
}
