//! The global forward plan (paper Sec. V).
//!
//! "ACM Framework assumes that a user can arbitrarily connect to whichever
//! cloud region. [...] After the fraction `f_i` of requests that each
//! region should process has been calculated, this plan establishes the
//! fractions of requests that are sent from users to the LB of a region
//! that have to be forwarded to the local region and to LBs of other
//! regions."
//!
//! Formally: clients deliver ingress shares `a` (Σa = 1); the policy wants
//! processing shares `f` (Σf = 1). The plan is a row-stochastic matrix `P`
//! with `Σ_i a_i · P[i][j] = f_j`, built greedily to maximise locally-kept
//! traffic (forwarding costs WAN latency): every region keeps
//! `min(a_i, f_i)` of its own ingress, surplus regions export the rest to
//! deficit regions proportionally to their unmet demand.

use serde::{Deserialize, Serialize};

/// A row-stochastic forwarding matrix between region load balancers.
///
/// ```
/// use acm_core::plan::ForwardPlan;
/// // Clients arrive 50/50 but region 0 should process 80 % of the flow:
/// let plan = ForwardPlan::build(&[0.5, 0.5], &[0.8, 0.2]);
/// assert!((plan.fraction(1, 0) - 0.6).abs() < 1e-9); // region 1 forwards 60 %
/// assert!((plan.realised_share(0) - 0.8).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForwardPlan {
    /// `rows[i][j]` = fraction of region *i*'s ingress forwarded to *j*.
    rows: Vec<Vec<f64>>,
    /// The ingress shares the plan was built for.
    ingress: Vec<f64>,
    /// The processing shares the plan realises.
    target: Vec<f64>,
}

impl ForwardPlan {
    /// Builds the plan mapping ingress shares `a` onto target fractions
    /// `f`. Both must be probability vectors of equal length.
    pub fn build(ingress: &[f64], target: &[f64]) -> Self {
        assert_eq!(ingress.len(), target.len(), "shape mismatch");
        assert!(!ingress.is_empty(), "need at least one region");
        for v in [ingress, target] {
            let s: f64 = v.iter().sum();
            assert!((s - 1.0).abs() < 1e-6, "shares must sum to 1, got {s}");
            assert!(v.iter().all(|x| *x >= 0.0), "shares must be non-negative");
        }
        let n = ingress.len();
        let mut rows = vec![vec![0.0; n]; n];

        // Unmet processing demand per region.
        let deficit: Vec<f64> = ingress
            .iter()
            .zip(target)
            .map(|(a, f)| (f - a).max(0.0))
            .collect();
        let total_deficit: f64 = deficit.iter().sum();

        for i in 0..n {
            if ingress[i] == 0.0 {
                // No ingress here: row is irrelevant, keep it local by
                // convention so the matrix stays row-stochastic.
                rows[i][i] = 1.0;
                continue;
            }
            let keep = ingress[i].min(target[i]);
            rows[i][i] = keep / ingress[i];
            let surplus = ingress[i] - keep;
            if surplus > 0.0 && total_deficit > 0.0 {
                // Export the surplus proportionally to global deficits.
                for j in 0..n {
                    if deficit[j] > 0.0 {
                        rows[i][j] = (surplus * deficit[j] / total_deficit) / ingress[i];
                    }
                }
            }
        }
        ForwardPlan {
            rows,
            ingress: ingress.to_vec(),
            target: target.to_vec(),
        }
    }

    /// Number of regions.
    pub fn regions(&self) -> usize {
        self.rows.len()
    }

    /// Fraction of region `i`'s ingress forwarded to region `j`.
    pub fn fraction(&self, i: usize, j: usize) -> f64 {
        self.rows[i][j]
    }

    /// The full matrix.
    pub fn matrix(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// Effective processing share of region `j` under this plan:
    /// `Σ_i a_i · P[i][j]`.
    pub fn realised_share(&self, j: usize) -> f64 {
        self.ingress
            .iter()
            .zip(&self.rows)
            .map(|(a, row)| a * row[j])
            .sum()
    }

    /// Fraction of global traffic forwarded away from its ingress region —
    /// the redirection overhead Policy 1's oscillations inflate ("many
    /// redirections of the request flow between regions, which generates
    /// additional overhead", Sec. VI-B).
    pub fn remote_fraction(&self) -> f64 {
        self.ingress
            .iter()
            .enumerate()
            .map(|(i, a)| a * (1.0 - self.rows[i][i]))
            .sum()
    }

    /// Given the previous plan, the total |Δ| of the forwarding matrix —
    /// how much of the plan was rewritten this era (flow-redirection churn).
    pub fn churn_from(&self, prev: &ForwardPlan) -> f64 {
        assert_eq!(self.regions(), prev.regions(), "region count changed");
        self.rows
            .iter()
            .zip(&prev.rows)
            .flat_map(|(a, b)| a.iter().zip(b).map(|(x, y)| (x - y).abs()))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_plan_valid(p: &ForwardPlan, ingress: &[f64], target: &[f64]) {
        // Rows stochastic.
        for (i, row) in p.matrix().iter().enumerate() {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "row {i} sums to {s}");
            assert!(row.iter().all(|x| (0.0..=1.0 + 1e-12).contains(x)));
        }
        // Realises the target.
        for (j, want) in target.iter().enumerate() {
            let got = p.realised_share(j);
            assert!(
                (got - want).abs() < 1e-9,
                "region {j}: realised {got}, want {want}"
            );
        }
        let _ = ingress;
    }

    #[test]
    fn identity_when_ingress_matches_target() {
        let a = [0.6, 0.4];
        let p = ForwardPlan::build(&a, &a);
        assert_plan_valid(&p, &a, &a);
        assert_eq!(p.fraction(0, 0), 1.0);
        assert_eq!(p.fraction(1, 1), 1.0);
        assert_eq!(p.remote_fraction(), 0.0);
    }

    #[test]
    fn surplus_flows_to_deficit() {
        // Clients arrive evenly but region 0 should process 80%.
        let a = [0.5, 0.5];
        let f = [0.8, 0.2];
        let p = ForwardPlan::build(&a, &f);
        assert_plan_valid(&p, &a, &f);
        // Region 1 keeps 0.2/0.5 = 40% of its ingress, forwards 60% to 0.
        assert!((p.fraction(1, 1) - 0.4).abs() < 1e-9);
        assert!((p.fraction(1, 0) - 0.6).abs() < 1e-9);
        assert_eq!(p.fraction(0, 0), 1.0);
        assert!((p.remote_fraction() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn three_region_rebalance() {
        let a = [0.2, 0.5, 0.3];
        let f = [0.4, 0.35, 0.25];
        let p = ForwardPlan::build(&a, &f);
        assert_plan_valid(&p, &a, &f);
    }

    #[test]
    fn zero_ingress_region_still_receives() {
        let a = [1.0, 0.0];
        let f = [0.7, 0.3];
        let p = ForwardPlan::build(&a, &f);
        assert_plan_valid(&p, &a, &f);
        assert!((p.fraction(0, 1) - 0.3).abs() < 1e-9);
    }

    #[test]
    fn churn_measures_plan_rewrites() {
        let a = [0.5, 0.5];
        let p1 = ForwardPlan::build(&a, &[0.5, 0.5]);
        let p2 = ForwardPlan::build(&a, &[0.8, 0.2]);
        assert_eq!(p1.churn_from(&p1), 0.0);
        assert!(p2.churn_from(&p1) > 0.5);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn non_probability_target_panics() {
        let _ = ForwardPlan::build(&[0.5, 0.5], &[0.9, 0.9]);
    }

    #[test]
    fn extreme_skew_is_exact() {
        let a = [0.01, 0.99];
        let f = [0.99, 0.01];
        let p = ForwardPlan::build(&a, &f);
        assert_plan_valid(&p, &a, &f);
        assert!(p.remote_fraction() > 0.9);
    }
}
