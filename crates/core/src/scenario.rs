//! Scripted runtime scenarios.
//!
//! The ACM framework "offers the possibility to modify the deploy at
//! runtime in case the workload conditions change during the lifetime of
//! the system" (paper Sec. II). [`Scenario`] makes such modifications
//! first-class experiment inputs: a timeline of actions — policy switches,
//! overlay faults, capacity changes — that the control loop applies as
//! their instants pass. Link faults via [`crate::config::LinkFault`] remain
//! supported; scenarios are the general mechanism.

use crate::policy::PolicyKind;
use acm_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// One runtime reconfiguration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScenarioAction {
    /// Switch the leader's load-balancing policy.
    SwitchPolicy(PolicyKind),
    /// Fail the overlay link between two regions.
    FailLink {
        /// First endpoint (region index).
        a: usize,
        /// Second endpoint (region index).
        b: usize,
    },
    /// Recover the overlay link between two regions.
    RecoverLink {
        /// First endpoint (region index).
        a: usize,
        /// Second endpoint (region index).
        b: usize,
    },
    /// Change a region's desired ACTIVE VM count (manual capacity action).
    SetTargetActive {
        /// Region index.
        region: usize,
        /// New ACTIVE target (clamped to the pool size).
        target: usize,
    },
    /// Provision one extra standby VM in a region.
    AddVm {
        /// Region index.
        region: usize,
    },
}

/// An action with its firing instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduledAction {
    /// When the action fires (applied at the first era boundary ≥ `at`).
    pub at: SimTime,
    /// What happens.
    pub action: ScenarioAction,
}

/// An ordered timeline of runtime actions.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    actions: Vec<ScheduledAction>,
}

impl Scenario {
    /// An empty scenario (no runtime changes).
    pub fn none() -> Self {
        Scenario::default()
    }

    /// Builds a scenario from actions (sorted internally by instant).
    pub fn new(mut actions: Vec<ScheduledAction>) -> Self {
        actions.sort_by_key(|a| a.at);
        Scenario { actions }
    }

    /// Adds an action (keeps the timeline sorted).
    pub fn push(&mut self, at: SimTime, action: ScenarioAction) {
        self.actions.push(ScheduledAction { at, action });
        self.actions.sort_by_key(|a| a.at);
    }

    /// Remaining actions (sorted by instant).
    pub fn pending(&self) -> &[ScheduledAction] {
        &self.actions
    }

    /// True when no actions remain.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Removes and returns every action due at or before `now`.
    pub fn drain_due(&mut self, now: SimTime) -> Vec<ScheduledAction> {
        let split = self.actions.partition_point(|a| a.at <= now);
        self.actions.drain(..split).collect()
    }

    /// Validates region indices against a deployment size.
    pub fn validate(&self, regions: usize) -> Result<(), String> {
        for sa in &self.actions {
            let check = |i: usize| {
                if i >= regions {
                    Err(format!("scenario references region {i} of {regions}"))
                } else {
                    Ok(())
                }
            };
            match sa.action {
                ScenarioAction::SwitchPolicy(_) => {}
                ScenarioAction::FailLink { a, b } | ScenarioAction::RecoverLink { a, b } => {
                    check(a)?;
                    check(b)?;
                }
                ScenarioAction::SetTargetActive { region, .. }
                | ScenarioAction::AddVm { region } => check(region)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn actions_are_kept_sorted() {
        let mut sc = Scenario::none();
        sc.push(
            t(100),
            ScenarioAction::SwitchPolicy(PolicyKind::Exploration),
        );
        sc.push(t(50), ScenarioAction::AddVm { region: 0 });
        let instants: Vec<u64> = sc.pending().iter().map(|a| a.at.as_micros()).collect();
        assert!(instants.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn drain_due_takes_only_past_actions() {
        let mut sc = Scenario::new(vec![
            ScheduledAction {
                at: t(10),
                action: ScenarioAction::AddVm { region: 0 },
            },
            ScheduledAction {
                at: t(20),
                action: ScenarioAction::AddVm { region: 1 },
            },
            ScheduledAction {
                at: t(30),
                action: ScenarioAction::AddVm { region: 0 },
            },
        ]);
        let due = sc.drain_due(t(20));
        assert_eq!(due.len(), 2);
        assert_eq!(sc.pending().len(), 1);
        assert!(sc.drain_due(t(25)).is_empty());
        assert_eq!(sc.drain_due(t(30)).len(), 1);
        assert!(sc.is_empty());
    }

    #[test]
    fn validation_checks_region_indices() {
        let sc = Scenario::new(vec![ScheduledAction {
            at: t(1),
            action: ScenarioAction::SetTargetActive {
                region: 5,
                target: 2,
            },
        }]);
        assert!(sc.validate(2).is_err());
        assert!(sc.validate(6).is_ok());
        assert!(Scenario::none().validate(0).is_ok());
    }
}
