//! Graceful degradation for the leader's Plan phase.
//!
//! The baseline loop trusts `lastRMTTF` reports forever: a partitioned
//! region keeps its stale value and therefore its old flow fraction for
//! as long as the partition lasts. With degradation enabled the leader
//! tracks how old every region's report is, quarantines regions whose
//! reports age past a TTL (or whose VMC the heartbeat detector suspects),
//! redistributes their flow across the live regions, and re-admits a
//! healed region only after a hysteresis of consecutive fresh reports —
//! so a flapping region cannot oscillate the plan.

use acm_overlay::HeartbeatConfig;
use acm_sim::time::Duration;
use serde::{Deserialize, Serialize};

/// Knobs for the leader's degradation behaviour. Disabled by default:
/// the paper's figure deployments freeze the plan under partitions, and
/// the pre-PR telemetry must stay byte-identical.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradationConfig {
    /// Master switch; everything below is ignored when false.
    pub enabled: bool,
    /// Eras a region's report may stay stale before quarantine (age is
    /// counted in missed eras; `2` tolerates two consecutive losses).
    pub staleness_ttl_eras: u32,
    /// Consecutive fresh-report eras a quarantined region must deliver
    /// before it is re-admitted into the plan.
    pub readmit_hysteresis_eras: u32,
    /// Extra send attempts for a slave report within one era.
    pub report_retries: u32,
    /// Base backoff between retries; doubles per attempt, capped so the
    /// whole retry budget stays inside one era.
    pub retry_backoff: Duration,
    /// Heartbeat cadence/timeout for the leader's suspicion detector
    /// (slave reports double as heartbeats).
    pub heartbeat: HeartbeatConfig,
}

impl Default for DegradationConfig {
    fn default() -> Self {
        DegradationConfig {
            enabled: false,
            staleness_ttl_eras: 2,
            readmit_hysteresis_eras: 3,
            report_retries: 2,
            retry_backoff: Duration::from_secs(2),
            heartbeat: HeartbeatConfig::default(),
        }
    }
}

impl DegradationConfig {
    /// A ready-to-use enabled configuration.
    pub fn enabled() -> Self {
        DegradationConfig {
            enabled: true,
            ..Default::default()
        }
    }

    /// Sanity-checks the knobs (the heartbeat config is checked even when
    /// degradation is off, so a bad timeout is a config error, not a
    /// construction-time panic).
    pub fn validate(&self) -> Result<(), String> {
        self.heartbeat.validate()?;
        if self.enabled {
            if self.staleness_ttl_eras == 0 {
                return Err("staleness TTL must be at least one era".into());
            }
            if self.readmit_hysteresis_eras == 0 {
                return Err("re-admission hysteresis must be at least one era".into());
            }
        }
        Ok(())
    }
}

/// Where a region stands in the quarantine state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionHealth {
    /// Fresh reports, trusted, receives flow.
    Live,
    /// Reports aged out or the VMC is suspected; receives zero flow.
    Quarantined,
    /// Healing: fresh reports again, but still excluded from the plan
    /// until the hysteresis is satisfied. Carries the streak length.
    Probation(u32),
}

/// A health transition worth logging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthEvent {
    /// Live → Quarantined.
    Quarantined {
        /// The report aged past the TTL.
        stale: bool,
        /// The heartbeat detector suspects the VMC.
        suspected: bool,
    },
    /// Quarantined → Probation (first fresh report after the outage).
    ProbationStarted,
    /// Probation → Live (hysteresis satisfied).
    Readmitted,
}

/// Per-region report-age tracking and the quarantine/re-admission state
/// machine. Pure bookkeeping — no RNG, no clock — so it is trivially
/// deterministic.
#[derive(Debug, Clone)]
pub struct HealthTracker {
    ttl: u32,
    hysteresis: u32,
    /// Eras since the last fresh report, per region.
    age: Vec<u32>,
    health: Vec<RegionHealth>,
    /// Lifetime Live → Quarantined transitions, per region. Outage
    /// ordinal: the k-th quarantine of a region is outage k.
    quarantines: Vec<u32>,
    /// Lifetime Probation/Quarantined → Live transitions, per region.
    /// The single-readmit-per-outage invariant is exactly
    /// `readmits <= quarantines` with equality once every outage healed.
    readmits: Vec<u32>,
}

impl HealthTracker {
    /// A tracker for `n` regions, all initially live with age 0.
    pub fn new(cfg: &DegradationConfig, n: usize) -> Self {
        HealthTracker {
            ttl: cfg.staleness_ttl_eras,
            hysteresis: cfg.readmit_hysteresis_eras,
            age: vec![0; n],
            health: vec![RegionHealth::Live; n],
            quarantines: vec![0; n],
            readmits: vec![0; n],
        }
    }

    /// Feeds one era's outcome for region `j`: whether its report was
    /// delivered and whether the detector currently suspects its VMC.
    /// Returns the transition, if any.
    pub fn observe(&mut self, j: usize, delivered: bool, suspected: bool) -> Option<HealthEvent> {
        if delivered {
            self.age[j] = 0;
        } else {
            self.age[j] = self.age[j].saturating_add(1);
        }
        let stale = self.age[j] > self.ttl;
        let fresh = delivered && !suspected;
        match self.health[j] {
            RegionHealth::Live => {
                if stale || suspected {
                    self.health[j] = RegionHealth::Quarantined;
                    self.quarantines[j] = self.quarantines[j].saturating_add(1);
                    Some(HealthEvent::Quarantined { stale, suspected })
                } else {
                    None
                }
            }
            RegionHealth::Quarantined => {
                if fresh {
                    if self.hysteresis <= 1 {
                        self.health[j] = RegionHealth::Live;
                        self.readmits[j] = self.readmits[j].saturating_add(1);
                        Some(HealthEvent::Readmitted)
                    } else {
                        self.health[j] = RegionHealth::Probation(1);
                        Some(HealthEvent::ProbationStarted)
                    }
                } else {
                    None
                }
            }
            RegionHealth::Probation(streak) => {
                if fresh {
                    if streak + 1 >= self.hysteresis {
                        self.health[j] = RegionHealth::Live;
                        self.readmits[j] = self.readmits[j].saturating_add(1);
                        Some(HealthEvent::Readmitted)
                    } else {
                        self.health[j] = RegionHealth::Probation(streak + 1);
                        None
                    }
                } else {
                    // Flapped during probation: back to quarantine, streak
                    // resets. No event — the region never re-entered the
                    // plan, so nothing observable changed.
                    self.health[j] = RegionHealth::Quarantined;
                    None
                }
            }
        }
    }

    /// Region `j`'s current state.
    pub fn health(&self, j: usize) -> RegionHealth {
        self.health[j]
    }

    /// Eras since region `j`'s last fresh report.
    pub fn age(&self, j: usize) -> u32 {
        self.age[j]
    }

    /// Whether region `j` participates in the plan.
    pub fn is_live(&self, j: usize) -> bool {
        self.health[j] == RegionHealth::Live
    }

    /// Indices of plan-participating regions, ascending.
    pub fn live_indices(&self) -> Vec<usize> {
        (0..self.health.len())
            .filter(|&j| self.is_live(j))
            .collect()
    }

    /// Number of quarantined or probationary regions.
    pub fn excluded_count(&self) -> usize {
        self.health.len() - self.live_indices().len()
    }

    /// Lifetime Live → Quarantined transitions for region `j` — the
    /// current outage's ordinal (1-based) while the region is out.
    pub fn quarantine_count(&self, j: usize) -> u32 {
        self.quarantines[j]
    }

    /// Lifetime re-admissions for region `j`. Invariant checkers compare
    /// this against [`HealthTracker::quarantine_count`]: more readmits
    /// than quarantines means the hysteresis oscillated.
    pub fn readmit_count(&self, j: usize) -> u32 {
        self.readmits[j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(ttl: u32, hysteresis: u32) -> HealthTracker {
        let cfg = DegradationConfig {
            enabled: true,
            staleness_ttl_eras: ttl,
            readmit_hysteresis_eras: hysteresis,
            ..Default::default()
        };
        HealthTracker::new(&cfg, 2)
    }

    #[test]
    fn stale_reports_quarantine_after_the_ttl() {
        let mut t = tracker(2, 3);
        assert_eq!(t.observe(1, false, false), None, "age 1 <= ttl");
        assert_eq!(t.observe(1, false, false), None, "age 2 <= ttl");
        assert_eq!(
            t.observe(1, false, false),
            Some(HealthEvent::Quarantined {
                stale: true,
                suspected: false
            })
        );
        assert!(!t.is_live(1));
        assert_eq!(t.live_indices(), vec![0]);
        assert_eq!(t.excluded_count(), 1);
    }

    #[test]
    fn suspicion_quarantines_immediately() {
        let mut t = tracker(5, 3);
        assert_eq!(
            t.observe(0, true, true),
            Some(HealthEvent::Quarantined {
                stale: false,
                suspected: true
            })
        );
    }

    #[test]
    fn readmission_requires_the_full_hysteresis() {
        let mut t = tracker(1, 3);
        t.observe(0, false, false);
        t.observe(0, false, false); // quarantined (age 2 > ttl 1)
        assert_eq!(t.health(0), RegionHealth::Quarantined);
        assert_eq!(
            t.observe(0, true, false),
            Some(HealthEvent::ProbationStarted)
        );
        assert_eq!(t.health(0), RegionHealth::Probation(1));
        assert!(!t.is_live(0), "probation gets no flow");
        assert_eq!(t.observe(0, true, false), None);
        assert_eq!(t.observe(0, true, false), Some(HealthEvent::Readmitted));
        assert!(t.is_live(0));
    }

    #[test]
    fn flap_during_probation_resets_the_streak() {
        let mut t = tracker(1, 3);
        t.observe(0, false, false);
        t.observe(0, false, false);
        t.observe(0, true, false); // probation 1
        assert_eq!(
            t.observe(0, false, false),
            None,
            "flap: silent requarantine"
        );
        assert_eq!(t.health(0), RegionHealth::Quarantined);
        // Must now re-earn the whole streak.
        assert_eq!(
            t.observe(0, true, false),
            Some(HealthEvent::ProbationStarted)
        );
        t.observe(0, true, false);
        assert_eq!(t.observe(0, true, false), Some(HealthEvent::Readmitted));
    }

    #[test]
    fn hysteresis_of_one_readmits_directly() {
        let mut t = tracker(1, 1);
        t.observe(0, false, false);
        t.observe(0, false, false);
        assert_eq!(t.health(0), RegionHealth::Quarantined);
        assert_eq!(t.observe(0, true, false), Some(HealthEvent::Readmitted));
    }

    #[test]
    fn fresh_report_resets_age_before_the_ttl_check() {
        let mut t = tracker(2, 2);
        t.observe(0, false, false);
        t.observe(0, false, false);
        t.observe(0, true, false); // age back to 0
        t.observe(0, false, false);
        t.observe(0, false, false);
        assert_eq!(t.health(0), RegionHealth::Live, "never crossed the ttl");
        assert_eq!(t.age(0), 2);
    }

    #[test]
    fn config_validation() {
        assert!(DegradationConfig::default().validate().is_ok());
        assert!(DegradationConfig::enabled().validate().is_ok());
        let mut bad = DegradationConfig::enabled();
        bad.staleness_ttl_eras = 0;
        assert!(bad.validate().is_err());
        let mut bad = DegradationConfig::enabled();
        bad.readmit_hysteresis_eras = 0;
        assert!(bad.validate().is_err());
        let mut bad = DegradationConfig::default();
        bad.heartbeat.timeout = Duration::from_secs(1);
        assert!(
            bad.validate().is_err(),
            "timeout <= period is a config error"
        );
    }
}
