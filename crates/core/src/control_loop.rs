//! The ACM closed control loop (paper Sec. V, Fig. 2, Algorithms 1–3).
//!
//! Each era the system walks the four states:
//!
//! * **Monitor** — every region's VMC collects features; the client
//!   populations offer load per the interactive response-time law.
//! * **Analyze** (Alg. 1) — every VMC predicts its region's RMTTF and
//!   actuates PCAM locally; slaves ship `lastRMTTF_i` to the leader over
//!   the overlay (reports are lost when the overlay cannot route — the
//!   leader then keeps the stale value).
//! * **Plan** (Alg. 2, leader only) — Eq. 1 EWMA per region, then the
//!   configured `POLICY()` computes the next fractions `f_i^t`.
//! * **Execute** (Alg. 3) — the new fractions are installed on every
//!   reachable region's load balancer as a fresh global forward plan, and
//!   autoscaling fires where the response-time / RMTTF thresholds demand.
//!
//! The loop also owns fault injection (scheduled overlay link faults) and
//! leader re-election on membership changes.

use crate::autoscale::{AutoscaleConfig, Autoscaler};
use crate::config::{ExperimentConfig, LinkFault};
use crate::degrade::{DegradationConfig, HealthEvent, HealthTracker};
use crate::ewma::RmttfEwma;
use crate::plan::ForwardPlan;
use crate::policy::{uniform_fractions, LoadBalancingPolicy};
use crate::scenario::{Scenario, ScenarioAction};
use crate::telemetry::{ExperimentTelemetry, RegionEraRecord};
use acm_exec::PoolStatsSnapshot;
use acm_obs::{
    BurnRateMonitor, Counter, Gauge, Hist, Obs, ObsConfig, ObsHandle, SloSpec, SloTransition,
    TimelineRecorder, Timer, TraceContext, Value,
};
use acm_overlay::{
    ChaosLayer, ElectionOutcome, Elector, FailureDetector, MessageFate, NodeId, OverlayGraph,
    Transport,
};
use acm_pcam::{DriftMonitor, LifecycleEvent, RegionEraReport, Vmc};
use acm_router::RequestRouter;
use acm_sim::rng::SimRng;
use acm_sim::shard::ShardLayout;
use acm_sim::time::{Duration, SimTime};
use acm_workload::RegionWorkload;

/// Upper bound on MONITOR shards. The shard count is
/// `min(regions, MONITOR_SHARDS_MAX)` — a pure function of the
/// configuration, never of the thread width, so the shard partition (and
/// with it every RNG stream and merge order) is identical at any
/// `ACM_THREADS`.
const MONITOR_SHARDS_MAX: usize = 32;

/// What happened to one control-plane message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SendOutcome {
    /// Routed and delivered (possibly with chaos-injected extra delay).
    Delivered,
    /// Routed, but the chaos layer dropped it — a retry can succeed.
    ChaosDropped,
    /// No usable route; retrying within the era cannot help.
    Unroutable,
}

/// The running multi-region control loop.
pub struct ControlLoop {
    era: Duration,
    now: SimTime,
    era_index: usize,
    vmcs: Vec<Vmc>,
    workloads: Vec<RegionWorkload>,
    estimators: Vec<RmttfEwma>,
    policy: LoadBalancingPolicy,
    /// Fractions currently installed on the load balancers.
    fractions: Vec<f64>,
    /// Last forward plan (for churn accounting).
    plan: Option<ForwardPlan>,
    transport: Transport,
    elector: Elector,
    autoscale_cfg: AutoscaleConfig,
    autoscalers: Vec<Autoscaler>,
    /// Response time the clients of each ingress region observed last era.
    observed_response: Vec<f64>,
    /// The leader's latest received `lastRMTTF` per region (stale on loss).
    received_rmttf: Vec<f64>,
    pending_faults: Vec<LinkFault>,
    recoveries_due: Vec<LinkFault>,
    /// Chaos replay over the transport (present iff a plan is configured).
    chaos: Option<ChaosLayer>,
    /// Leader-side degradation knobs (quarantine, retries, hysteresis).
    degradation: DegradationConfig,
    /// EWMA β, kept for resetting a re-admitted region's estimator.
    beta: f64,
    /// Per-region VM-hour prices (for re-costing subset policies).
    region_costs: Vec<f64>,
    /// Heartbeat suspicion, fed by report deliveries (degradation only).
    detector: Option<FailureDetector>,
    /// Report-age / quarantine state machine (degradation only).
    tracker: Option<HealthTracker>,
    scenario: Scenario,
    /// Request-routing data plane kept in lock-step with the installed
    /// plan: every install (fresh or frozen-with-quarantine) rebuilds the
    /// router's weight table with quarantined regions masked to zero.
    router: RequestRouter,
    rng: SimRng,
    telemetry: ExperimentTelemetry,
    obs: ObsHandle,
    /// Blueprint for the per-shard child hubs of the sharded MONITOR.
    obs_cfg: ObsConfig,
    era_timer: Timer,
    monitor_timer: Timer,
    analyze_timer: Timer,
    plan_timer: Timer,
    execute_timer: Timer,
    ctr_report_retries: Counter,
    gauge_quarantined: Gauge,
    /// Per-era exec-pool sampling (continuous `acm.exec.era.*` series).
    exec_prev: PoolStatsSnapshot,
    hist_exec_items: Hist,
    hist_exec_queue: Hist,
    hist_exec_busy: Hist,
    // --- causal tracing state (all inert when tracing is off) ----------
    /// Root span of the current era (ambient context for plain emits).
    trace_era_ctx: Option<TraceContext>,
    /// Root span of the most recent scripted link fault/recovery.
    trace_fault_ctx: Option<TraceContext>,
    /// Most recent health transition this era (parents the plan events).
    trace_health_ctx: Option<TraceContext>,
    /// Per-region: span of the latest `report.lost` (cleared on delivery).
    trace_loss_ctx: Vec<Option<TraceContext>>,
    /// Per-region: span of the latest `heartbeat.timeout`.
    trace_suspect_ctx: Vec<Option<TraceContext>>,
    /// Per-region: span of the open `region.quarantine`.
    trace_quarantine_ctx: Vec<Option<TraceContext>>,
    /// Burn-rate monitors (availability, latency); observed on tracing
    /// runs only so untraced event streams stay byte-identical.
    slo: Vec<BurnRateMonitor>,
    /// Span of each monitor's open `slo.burn` (cleared on recovery).
    slo_ctx: Vec<Option<TraceContext>>,
    /// Per-region predictor-miss watchers feeding `drift.signal` roots.
    drift: Vec<DriftMonitor>,
    /// True when `cfg.lifecycle.enabled` armed a model lifecycle on every
    /// model-backed VMC.
    lifecycle_on: bool,
    /// Per-region: span of the latest `drift.signal` root (parents
    /// `model.refit.start`).
    trace_drift_ctx: Vec<Option<TraceContext>>,
    /// Per-region: span of the latest `model.refit.start`.
    trace_refit_ctx: Vec<Option<TraceContext>>,
    /// Per-region: span of the latest `model.promote` (parents rollback).
    trace_promote_ctx: Vec<Option<TraceContext>>,
    /// Per-region `acm.pcam.model.<region>.version` gauges. Empty when the
    /// lifecycle is disabled, so such runs register no new metrics.
    gauge_model_version: Vec<Gauge>,
    /// Per-region `acm.pcam.model.<region>.shadow_err` gauges.
    gauge_model_shadow_err: Vec<Gauge>,
    /// Per-region `acm.pcam.model.<region>.incumbent_err` gauges.
    gauge_model_incumbent_err: Vec<Gauge>,
    /// Labeler admission failures, aggregated across regions (inert
    /// handles when the lifecycle is disabled).
    ctr_labeler_dropped_ooo: Counter,
    ctr_labeler_dropped_non_finite: Counter,
    /// Cumulative per-region labeler drop totals already exported to the
    /// counters (the labeler reports running totals, the counters deltas).
    labeler_dropped_exported: Vec<(u64, u64)>,
}

impl ControlLoop {
    /// Wires the loop from pre-built VMCs (the framework module handles
    /// predictor training and hands the VMCs in). Observability follows
    /// `cfg.obs`; use [`ControlLoop::new_with_obs`] to share an existing
    /// [`Obs`] instance instead.
    pub fn new(cfg: &ExperimentConfig, vmcs: Vec<Vmc>, rng: SimRng) -> Self {
        let obs = Obs::new(cfg.obs);
        Self::new_with_obs(cfg, vmcs, rng, obs)
    }

    /// Like [`ControlLoop::new`] but instruments the loop (and every VMC,
    /// the elector and the policy) against the caller's [`Obs`] instance,
    /// so one registry aggregates the whole run.
    pub fn new_with_obs(
        cfg: &ExperimentConfig,
        mut vmcs: Vec<Vmc>,
        mut rng: SimRng,
        obs: ObsHandle,
    ) -> Self {
        cfg.validate().expect("invalid experiment config");
        assert_eq!(vmcs.len(), cfg.regions.len(), "one VMC per region");
        let n = cfg.regions.len();

        let mut graph = OverlayGraph::new();
        for i in 0..n {
            graph.add_node(ExperimentConfig::node_of(i));
        }
        for (a, b, lat) in &cfg.latencies {
            graph.add_link(
                ExperimentConfig::node_of(*a),
                ExperimentConfig::node_of(*b),
                *lat,
            );
        }
        let mut transport = Transport::new(graph);
        transport.set_obs(&obs);
        let mut elector = Elector::new();
        elector.set_obs(&obs);
        elector.re_elect(transport.graph());

        let chaos = cfg.fault_plan.as_ref().map(|plan| {
            let mut layer = ChaosLayer::new(plan);
            layer.set_obs(&obs);
            layer
        });
        let (detector, tracker) = if cfg.degradation.enabled {
            let mut det = FailureDetector::new(
                cfg.degradation.heartbeat,
                (0..n).map(ExperimentConfig::node_of),
                SimTime::ZERO,
            );
            det.set_obs(&obs);
            (Some(det), Some(HealthTracker::new(&cfg.degradation, n)))
        } else {
            (None, None)
        };

        let workloads = cfg.regions.iter().map(|r| r.workload()).collect();
        let names = cfg.regions.iter().map(|r| r.region.name.clone()).collect();
        let region_costs: Vec<f64> = cfg.regions.iter().map(|r| r.region.vm_hour_usd).collect();
        let mut policy = LoadBalancingPolicy::new(cfg.policy)
            .with_k(cfg.k)
            .with_noise(cfg.exploration_noise)
            .with_region_costs(region_costs.clone());
        policy.set_obs(&obs);
        for vmc in &mut vmcs {
            vmc.set_obs(obs.clone());
        }

        // RNG split order is load-bearing: the loop's own stream takes
        // the first split, exactly as before the router existed, so
        // pre-router runs replay byte-identically; the router's dedicated
        // stream is the second split.
        let loop_rng = rng.split();
        let mut router = RequestRouter::new(n, cfg.router, rng.split());
        router.set_obs(&obs);

        // The model lifecycle's stream is the THIRD split, taken only when
        // the feature is on: every pre-lifecycle seed (and every run with
        // the feature off) replays byte-identically.
        let lifecycle_on = cfg.lifecycle.enabled;
        if lifecycle_on {
            let mut lc_rng = rng.split();
            for vmc in &mut vmcs {
                vmc.enable_lifecycle(cfg.lifecycle, lc_rng.split());
            }
        }
        let model_gauge = |which: &str| -> Vec<Gauge> {
            if !lifecycle_on {
                return Vec::new();
            }
            cfg.regions
                .iter()
                .map(|r| obs.gauge(&format!("acm.pcam.model.{}.{which}", r.region.name)))
                .collect()
        };

        ControlLoop {
            era: cfg.era,
            now: SimTime::ZERO,
            era_index: 0,
            workloads,
            estimators: vec![RmttfEwma::new(cfg.beta); n],
            policy,
            fractions: uniform_fractions(n),
            plan: None,
            transport,
            elector,
            autoscale_cfg: cfg.autoscale.clone(),
            autoscalers: (0..n).map(|_| Autoscaler::new()).collect(),
            observed_response: vec![0.0; n],
            received_rmttf: vec![0.0; n],
            pending_faults: cfg.link_faults.clone(),
            recoveries_due: Vec::new(),
            chaos,
            degradation: cfg.degradation.clone(),
            beta: cfg.beta,
            region_costs,
            detector,
            tracker,
            scenario: cfg.scenario.clone(),
            router,
            rng: loop_rng,
            telemetry: ExperimentTelemetry::new(names),
            obs_cfg: cfg.obs,
            vmcs,
            era_timer: obs.timer("acm.core.control_loop.era_ns"),
            monitor_timer: obs.timer("acm.core.control_loop.monitor_ns"),
            analyze_timer: obs.timer("acm.core.control_loop.analyze_ns"),
            plan_timer: obs.timer("acm.core.control_loop.plan_ns"),
            execute_timer: obs.timer("acm.core.control_loop.execute_ns"),
            ctr_report_retries: obs.counter("acm.core.report.retries"),
            gauge_quarantined: obs.gauge("acm.core.quarantined_regions"),
            exec_prev: acm_exec::global_stats(),
            hist_exec_items: obs.histogram("acm.exec.era.items"),
            hist_exec_queue: obs.histogram("acm.exec.era.queue_depth_peak"),
            hist_exec_busy: obs.histogram("acm.exec.era.busy_ns"),
            trace_era_ctx: None,
            trace_fault_ctx: None,
            trace_health_ctx: None,
            trace_loss_ctx: vec![None; n],
            trace_suspect_ctx: vec![None; n],
            trace_quarantine_ctx: vec![None; n],
            slo: vec![
                BurnRateMonitor::new(SloSpec::availability()),
                BurnRateMonitor::new(SloSpec::latency()),
            ],
            slo_ctx: vec![None; 2],
            // One predictor-miss window per region, tuned by `cfg.drift`
            // (defaults match the historical hard-coded 32/0.5/8).
            drift: (0..n).map(|_| cfg.drift.monitor()).collect(),
            lifecycle_on,
            trace_drift_ctx: vec![None; n],
            trace_refit_ctx: vec![None; n],
            trace_promote_ctx: vec![None; n],
            gauge_model_version: model_gauge("version"),
            gauge_model_shadow_err: model_gauge("shadow_err"),
            gauge_model_incumbent_err: model_gauge("incumbent_err"),
            ctr_labeler_dropped_ooo: if lifecycle_on {
                obs.counter("acm.pcam.labeler.dropped.out_of_order")
            } else {
                Counter::default()
            },
            ctr_labeler_dropped_non_finite: if lifecycle_on {
                obs.counter("acm.pcam.labeler.dropped.non_finite")
            } else {
                Counter::default()
            },
            labeler_dropped_exported: vec![(0, 0); n],
            obs,
        }
    }

    /// The observability instance the loop records into.
    pub fn obs(&self) -> &ObsHandle {
        &self.obs
    }

    /// The request-routing data plane under the installed plan.
    pub fn router(&self) -> &RequestRouter {
        &self.router
    }

    /// Mutable router access (route requests, split per-shard lenses).
    pub fn router_mut(&mut self) -> &mut RequestRouter {
        &mut self.router
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Telemetry so far.
    pub fn telemetry(&self) -> &ExperimentTelemetry {
        &self.telemetry
    }

    /// Consumes the loop, returning the telemetry.
    pub fn into_telemetry(self) -> ExperimentTelemetry {
        self.telemetry
    }

    /// The VMCs (for assertions in tests).
    pub fn vmcs(&self) -> &[Vmc] {
        &self.vmcs
    }

    /// Flips the model lifecycle's poison-refits chaos hook on every
    /// region (see `acm_pcam::LifecycleConfig::poison_refits`). No-op
    /// when the lifecycle is disabled.
    pub fn set_lifecycle_poison(&mut self, on: bool) {
        for vmc in &mut self.vmcs {
            if let Some(lc) = vmc.lifecycle_mut() {
                lc.set_poison_refits(on);
            }
        }
    }

    /// Fractions currently installed.
    pub fn fractions(&self) -> &[f64] {
        &self.fractions
    }

    /// Switches the leader's policy at runtime, keeping the tuning knobs
    /// (k, jitter, region costs). The paper's framework "offers the
    /// possibility to modify the deploy at runtime in case the workload
    /// conditions change during the lifetime of the system" (Sec. II) —
    /// this is the policy-level version of that capability.
    pub fn set_policy(&mut self, kind: crate::policy::PolicyKind) {
        self.policy = self.policy.clone().with_kind(kind);
        if self.obs.enabled() {
            self.obs.emit(
                self.now.as_micros(),
                "policy.switch",
                vec![("policy", Value::from(kind.to_string()))],
            );
        }
    }

    /// The current election outcome.
    pub fn election(&self) -> &ElectionOutcome {
        self.elector
            .current()
            .expect("election ran at construction")
    }

    /// The overlay node of the region the leader VMC lives in, as seen from
    /// region-0's partition (the figure deployments are never partitioned).
    fn leader_node(&self) -> NodeId {
        let g = self.transport.graph();
        // Leader of the partition containing the lowest alive node; if all
        // nodes are dead fall back to node 0 (nothing routes anyway).
        let alive = g.alive_nodes();
        let probe = alive.first().copied().unwrap_or(NodeId(0));
        self.election().leader(probe).unwrap_or(probe)
    }

    /// Applies due fault injections/recoveries. Returns whether topology
    /// changed (forcing re-election).
    fn apply_faults(&mut self) -> bool {
        let now = self.now;
        let mut changed = false;
        let mut still_pending = Vec::new();
        for f in self.pending_faults.drain(..) {
            if f.fail_at <= now {
                self.transport.fail_link(
                    ExperimentConfig::node_of(f.a),
                    ExperimentConfig::node_of(f.b),
                );
                // Scripted faults are first causes: on tracing runs each
                // opens a root span downstream suspicion chains hang off.
                if self.obs.trace_enabled() {
                    self.trace_fault_ctx = self
                        .obs
                        .emit_caused(
                            now.as_micros(),
                            "fault.scripted",
                            vec![("a", Value::from(f.a)), ("b", Value::from(f.b))],
                            None,
                        )
                        .or(self.trace_fault_ctx);
                }
                self.recoveries_due.push(f);
                changed = true;
            } else {
                still_pending.push(f);
            }
        }
        self.pending_faults = still_pending;

        let mut still_due = Vec::new();
        for f in self.recoveries_due.drain(..) {
            if f.recover_at <= now {
                self.transport.recover_link(
                    ExperimentConfig::node_of(f.a),
                    ExperimentConfig::node_of(f.b),
                );
                changed = true;
            } else {
                still_due.push(f);
            }
        }
        self.recoveries_due = still_due;

        // Chaos plan replay: KillLeader resolves against the pre-fault
        // leader, so take the layer out before mutating the transport.
        if let Some(mut chaos) = self.chaos.take() {
            let leader = self.leader_node();
            if chaos.apply_due(now, &mut self.transport, leader) {
                changed = true;
            }
            // The newest chaos root (if any) becomes the era's fault
            // context. It persists across eras on purpose: an unhealed
            // partition keeps causing losses long after it opened.
            self.trace_fault_ctx = chaos.last_trace_ctx().or(self.trace_fault_ctx);
            self.chaos = Some(chaos);
        }

        if changed {
            let (_, leader_changed) = self.elector.re_elect(self.transport.graph());
            if leader_changed {
                self.emit_leader_change();
            }
        }
        changed
    }

    /// One control-plane send attempt from `from` to `to`: routes over the
    /// transport, then (when a chaos plan is active) lets the chaos layer
    /// decide the message's fate.
    fn control_send(&mut self, now: SimTime, from: NodeId, to: NodeId) -> SendOutcome {
        if self.transport.prepare_send(from, to).is_none() {
            return SendOutcome::Unroutable;
        }
        match &mut self.chaos {
            Some(chaos) => match chaos.message_fate(now, from, to) {
                MessageFate::Deliver { .. } => SendOutcome::Delivered,
                MessageFate::Drop => SendOutcome::ChaosDropped,
            },
            None => SendOutcome::Delivered,
        }
    }

    /// A control-plane send with the degradation policy's retry budget:
    /// chaos-dropped messages are retried with exponentially growing
    /// backoff as long as the cumulative backoff fits inside one era.
    /// Unroutable sends fail fast — the topology is frozen for the era.
    fn send_with_retries(&mut self, now: SimTime, from: NodeId, to: NodeId) -> SendOutcome {
        let mut outcome = self.control_send(now, from, to);
        if !self.degradation.enabled {
            return outcome;
        }
        let mut backoff = self.degradation.retry_backoff;
        let mut budget = self.era;
        let mut attempt = 0u32;
        while outcome == SendOutcome::ChaosDropped
            && attempt < self.degradation.report_retries
            && backoff <= budget
        {
            budget = budget.saturating_sub(backoff);
            backoff = backoff + backoff;
            attempt += 1;
            self.ctr_report_retries.inc();
            outcome = self.control_send(now, from, to);
        }
        if attempt > 0 && outcome == SendOutcome::Delivered && self.obs.enabled() {
            self.obs.emit(
                now.as_micros(),
                "report.retry",
                vec![
                    ("from", Value::from(from.0)),
                    ("to", Value::from(to.0)),
                    ("attempts", Value::from(attempt)),
                ],
            );
        }
        outcome
    }

    /// Logs the post-election leader (as seen from the first alive
    /// partition) to the decision log.
    fn emit_leader_change(&self) {
        if self.obs.enabled() {
            self.obs.emit_caused(
                self.now.as_micros(),
                "leader.change",
                vec![("leader", Value::from(self.leader_node().0))],
                self.trace_fault_ctx.or(self.trace_era_ctx),
            );
        }
    }

    /// Applies every scenario action due at `now` (Sec. II's runtime
    /// reconfiguration). Re-elects if the topology changed.
    fn apply_scenario(&mut self) {
        let now = self.now;
        let due = self.scenario.drain_due(now);
        if due.is_empty() {
            return;
        }
        let mut topology_changed = false;
        for sa in due {
            match sa.action {
                ScenarioAction::SwitchPolicy(kind) => {
                    self.policy = self.policy.clone().with_kind(kind);
                    if self.obs.enabled() {
                        self.obs.emit(
                            now.as_micros(),
                            "policy.switch",
                            vec![("policy", Value::from(kind.to_string()))],
                        );
                    }
                }
                ScenarioAction::FailLink { a, b } => {
                    self.transport
                        .fail_link(ExperimentConfig::node_of(a), ExperimentConfig::node_of(b));
                    topology_changed = true;
                }
                ScenarioAction::RecoverLink { a, b } => {
                    self.transport
                        .recover_link(ExperimentConfig::node_of(a), ExperimentConfig::node_of(b));
                    topology_changed = true;
                }
                ScenarioAction::SetTargetActive { region, target } => {
                    let pool = self.vmcs[region].pool_mut();
                    pool.set_target_active(target);
                    pool.replenish_active(now);
                    pool.demote_excess_active(now);
                }
                ScenarioAction::AddVm { region } => {
                    self.vmcs[region].pool_mut().add_vm();
                }
            }
        }
        if topology_changed {
            let (_, leader_changed) = self.elector.re_elect(self.transport.graph());
            if leader_changed {
                self.emit_leader_change();
            }
        }
    }

    /// Feeds this era's report outcomes into the quarantine state machine
    /// and returns the plan-participation mask (all-true when degradation
    /// is disabled). Re-admitted regions get a fresh EWMA so the stale
    /// pre-outage estimate cannot linger.
    fn update_region_health(&mut self, delivered: &[bool], t_end: SimTime) -> Vec<bool> {
        let n = delivered.len();
        if !self.degradation.enabled {
            return vec![true; n];
        }
        let mut tracker = self.tracker.take().expect("tracker exists when enabled");
        for (j, &was_delivered) in delivered.iter().enumerate() {
            let suspected = self
                .detector
                .as_ref()
                .is_some_and(|d| d.is_suspected(ExperimentConfig::node_of(j)));
            let event = tracker.observe(j, was_delivered, suspected);
            if let Some(ev) = event {
                if let HealthEvent::Readmitted = ev {
                    self.estimators[j] = RmttfEwma::new(self.beta);
                    // Same hygiene for the data plane: the region rejoins
                    // with no latency history, not its pre-outage one.
                    self.router.reset_latency(j);
                }
                if self.obs.enabled() {
                    let is_quarantine = matches!(ev, HealthEvent::Quarantined { .. });
                    let is_readmit = matches!(ev, HealthEvent::Readmitted);
                    let (kind, mut fields): (&'static str, Vec<(&'static str, Value)>) = match ev {
                        HealthEvent::Quarantined { stale, suspected } => (
                            "region.quarantine",
                            vec![
                                ("stale", Value::from(stale)),
                                ("suspected", Value::from(suspected)),
                                ("age_eras", Value::from(tracker.age(j))),
                            ],
                        ),
                        HealthEvent::ProbationStarted => ("region.probation", Vec::new()),
                        HealthEvent::Readmitted => ("region.readmit", Vec::new()),
                    };
                    fields.insert(0, ("region", Value::from(self.vmcs[j].name().to_string())));
                    // Invariant-checker hooks: which era the transition
                    // landed in and which outage it belongs to (the
                    // lifetime quarantine ordinal), so "exactly one
                    // readmit per outage" is checkable from the event log
                    // alone without replaying the state machine.
                    fields.push(("era", Value::from(self.era_index)));
                    fields.push(("outage", Value::from(tracker.quarantine_count(j))));
                    // Quarantines chain off the evidence that caused them
                    // (suspicion > loss > fault > era); probation/readmit
                    // continue the quarantine's own chain.
                    let parent = if is_quarantine {
                        self.trace_suspect_ctx[j]
                            .or(self.trace_loss_ctx[j])
                            .or(self.trace_fault_ctx)
                            .or(self.trace_era_ctx)
                    } else {
                        self.trace_quarantine_ctx[j].or(self.trace_era_ctx)
                    };
                    let ctx = self
                        .obs
                        .emit_caused(t_end.as_micros(), kind, fields, parent);
                    if is_quarantine {
                        self.trace_quarantine_ctx[j] = ctx;
                    } else if is_readmit {
                        self.trace_quarantine_ctx[j] = None;
                        self.trace_loss_ctx[j] = None;
                        self.trace_suspect_ctx[j] = None;
                    }
                    self.trace_health_ctx = ctx.or(self.trace_health_ctx);
                }
            }
        }
        let mask: Vec<bool> = (0..n).map(|j| tracker.is_live(j)).collect();
        self.gauge_quarantined.set(tracker.excluded_count() as f64);
        self.tracker = Some(tracker);
        mask
    }

    /// Runs the policy over the plan-participating regions. With every
    /// region live this is exactly the baseline call; with a strict subset
    /// the previous fractions are renormalised over the live regions, the
    /// policy plans in that subspace (re-costed for the cost-aware kind),
    /// and quarantined regions are pinned to zero flow. With nobody live
    /// the previous fractions are kept (the plan freezes anyway).
    fn plan_fractions(
        &mut self,
        live_mask: &[bool],
        rmttf_now: &[f64],
        lambda_total: f64,
    ) -> Vec<f64> {
        let n = live_mask.len();
        let live: Vec<usize> = (0..n).filter(|&j| live_mask[j]).collect();
        if live.len() == n {
            return self.policy.next_fractions(
                &self.fractions,
                rmttf_now,
                lambda_total,
                &mut self.rng,
            );
        }
        if live.is_empty() {
            return self.fractions.clone();
        }
        let prev_sum: f64 = live.iter().map(|&j| self.fractions[j]).sum();
        let prev_live: Vec<f64> = if prev_sum > 0.0 {
            live.iter().map(|&j| self.fractions[j] / prev_sum).collect()
        } else {
            uniform_fractions(live.len())
        };
        let rmttf_live: Vec<f64> = live.iter().map(|&j| rmttf_now[j]).collect();
        let costs_live: Vec<f64> = live.iter().map(|&j| self.region_costs[j]).collect();
        let sub_policy = self.policy.clone().with_region_costs(costs_live);
        let target_live =
            sub_policy.next_fractions(&prev_live, &rmttf_live, lambda_total, &mut self.rng);
        let mut target = vec![0.0; n];
        for (k, &j) in live.iter().enumerate() {
            target[j] = target_live[k];
        }
        target
    }

    /// Advances every region through one era, sharded over the exec pool.
    ///
    /// Regions are partitioned into contiguous shards (a pure function of
    /// the region count — see [`MONITOR_SHARDS_MAX`]). Within the era each
    /// shard runs its regions' [`Vmc::process_era`] independently: every
    /// VMC owns its RNG, and when observability is on each shard records
    /// into a fresh child hub so no instrument is shared across threads.
    /// At the barrier the child hubs are folded into the parent in
    /// shard-index order (= region order for contiguous shards), which
    /// makes event sequence numbers, region-qualified gauges and histogram
    /// counts identical to the sequential sweep at any thread width. A
    /// disabled parent skips the child hubs entirely, so un-observed runs
    /// stay allocation-free (observability never perturbs the run).
    fn process_regions_sharded(
        &mut self,
        lambdas: &[f64],
        t_start: SimTime,
    ) -> Vec<RegionEraReport> {
        let n = self.vmcs.len();
        let layout = ShardLayout::balanced(n, n.min(MONITOR_SHARDS_MAX));
        let era = self.era;
        let obs_on = self.obs.enabled();
        let child_cfg = ObsConfig {
            enabled: true,
            // Ample per-era headroom: a child must never evict within one
            // era, or the parent would see a different event stream than
            // the sequential sweep produces.
            event_capacity: self.obs_cfg.event_capacity.max(4096),
            // Children inherit the trace flag so their plain emits pick up
            // the era's ambient annotation — but they never ALLOCATE spans
            // (all span ids come from the leader's tracer, in era order),
            // which is what keeps traced runs byte-identical at any
            // thread width. The derived seed only matters if that
            // invariant is ever relaxed.
            trace: self.obs.trace_enabled(),
            trace_seed: acm_obs::trace::mix(self.obs.trace_seed(), self.era_index as u64),
        };
        let era_ambient = self.obs.trace_ambient();
        let timeline = self.obs.timeline_recorder().cloned();
        let era_no = self.era_index as u64;

        struct MonitorShard {
            vmcs: Vec<Vmc>,
            lambdas: Vec<f64>,
            child: Option<ObsHandle>,
            reports: Vec<RegionEraReport>,
            timeline: Option<std::sync::Arc<TimelineRecorder>>,
            track: u32,
        }

        let mut shards: Vec<MonitorShard> = Vec::with_capacity(layout.shards());
        let mut vmc_iter = std::mem::take(&mut self.vmcs).into_iter();
        for s in 0..layout.shards() {
            let range = layout.range(s);
            let mut bucket: Vec<Vmc> = vmc_iter.by_ref().take(range.len()).collect();
            let child = if obs_on {
                let child = Obs::new(child_cfg);
                child.set_trace_ambient(era_ambient);
                for vmc in &mut bucket {
                    vmc.set_obs(child.clone());
                }
                Some(child)
            } else {
                None
            };
            let track = 1 + s as u32;
            if let Some(tl) = &timeline {
                tl.set_track_name(track, &format!("shard {s}"));
            }
            shards.push(MonitorShard {
                vmcs: bucket,
                lambdas: lambdas[range].to_vec(),
                child,
                reports: Vec::new(),
                timeline: timeline.clone(),
                track,
            });
        }

        acm_exec::for_each_mut(&mut shards, |_, shard| {
            let t0 = shard.timeline.as_ref().map(|tl| tl.now_us());
            shard.reports.reserve(shard.vmcs.len());
            for (vmc, &lambda) in shard.vmcs.iter_mut().zip(&shard.lambdas) {
                shard.reports.push(vmc.process_era(t_start, era, lambda));
            }
            if let (Some(tl), Some(t0)) = (&shard.timeline, t0) {
                tl.record(
                    shard.track,
                    "monitor.shard",
                    t0,
                    tl.now_us().saturating_sub(t0),
                    era_no,
                );
            }
        });

        // Era barrier: stitch VMCs and reports back together and fold the
        // child hubs into the parent, all in shard-index order.
        let mut reports = Vec::with_capacity(n);
        for mut shard in shards {
            if let Some(child) = shard.child {
                self.obs.merge_from(&child);
            }
            for mut vmc in shard.vmcs {
                if obs_on {
                    // Re-home the VMC so post-barrier phases (autoscaling,
                    // scenario actions) record straight into the parent.
                    vmc.set_obs(self.obs.clone());
                }
                self.vmcs.push(vmc);
            }
            reports.append(&mut shard.reports);
        }
        reports
    }

    /// Emits the obs events for one region's lifecycle transitions,
    /// chaining each on its cause: `drift.signal` -> `model.refit.start`
    /// -> `model.refit.done` -> `model.promote` -> `model.rollback`, with
    /// the era root as the fallback parent at every hop.
    fn emit_lifecycle_events(&mut self, j: usize, t: SimTime, events: &[LifecycleEvent]) {
        if !self.obs.enabled() {
            return;
        }
        for ev in events {
            let region = || Value::from(self.vmcs[j].name().to_string());
            match ev {
                LifecycleEvent::RefitStarted { version, rows } => {
                    self.trace_refit_ctx[j] = self.obs.emit_caused(
                        t.as_micros(),
                        "model.refit.start",
                        vec![
                            ("region", region()),
                            ("version", Value::from(*version)),
                            ("rows", Value::from(*rows)),
                        ],
                        self.trace_drift_ctx[j].or(self.trace_era_ctx),
                    );
                }
                LifecycleEvent::RefitDone { version } => {
                    self.obs.emit_caused(
                        t.as_micros(),
                        "model.refit.done",
                        vec![("region", region()), ("version", Value::from(*version))],
                        self.trace_refit_ctx[j].or(self.trace_era_ctx),
                    );
                }
                LifecycleEvent::Promoted {
                    version,
                    old_version,
                    cand_err,
                    incumbent_err,
                    samples,
                } => {
                    self.trace_promote_ctx[j] = self.obs.emit_caused(
                        t.as_micros(),
                        "model.promote",
                        vec![
                            ("region", region()),
                            ("version", Value::from(*version)),
                            ("old_version", Value::from(*old_version)),
                            ("cand_err_s", Value::from(*cand_err)),
                            ("incumbent_err_s", Value::from(*incumbent_err)),
                            ("samples", Value::from(*samples)),
                        ],
                        self.trace_refit_ctx[j].or(self.trace_era_ctx),
                    );
                }
                LifecycleEvent::Rejected {
                    version,
                    cand_err,
                    incumbent_err,
                } => {
                    self.obs.emit_caused(
                        t.as_micros(),
                        "model.reject",
                        vec![
                            ("region", region()),
                            ("version", Value::from(*version)),
                            ("cand_err_s", Value::from(*cand_err)),
                            ("incumbent_err_s", Value::from(*incumbent_err)),
                        ],
                        self.trace_refit_ctx[j].or(self.trace_era_ctx),
                    );
                }
                LifecycleEvent::RolledBack {
                    from_version,
                    to_version,
                    err,
                    baseline_err,
                } => {
                    self.obs.emit_caused(
                        t.as_micros(),
                        "model.rollback",
                        vec![
                            ("region", region()),
                            ("from_version", Value::from(*from_version)),
                            ("to_version", Value::from(*to_version)),
                            ("live_err_s", Value::from(*err)),
                            ("baseline_err_s", Value::from(*baseline_err)),
                        ],
                        self.trace_promote_ctx[j].or(self.trace_era_ctx),
                    );
                }
            }
        }
    }

    /// Publishes the per-region model gauges and the labeler admission
    /// drop counters after the lifecycle's end-of-era pass.
    fn publish_model_metrics(&mut self) {
        if !self.obs.enabled() {
            return;
        }
        for j in 0..self.vmcs.len() {
            let Some(lc) = self.vmcs[j].lifecycle() else {
                continue;
            };
            self.gauge_model_version[j].set(lc.version() as f64);
            if let Some((cand, incumbent)) = lc.shadow_errs() {
                self.gauge_model_shadow_err[j].set(cand);
                self.gauge_model_incumbent_err[j].set(incumbent);
            }
            let ooo = lc.labeler().dropped_out_of_order();
            let nf = lc.labeler().dropped_non_finite();
            let (prev_ooo, prev_nf) = self.labeler_dropped_exported[j];
            self.ctr_labeler_dropped_ooo
                .add(ooo.saturating_sub(prev_ooo));
            self.ctr_labeler_dropped_non_finite
                .add(nf.saturating_sub(prev_nf));
            self.labeler_dropped_exported[j] = (ooo, nf);
        }
    }

    /// Runs one full era of the closed loop.
    // Index loops here deliberately walk several region-aligned vectors in
    // lock-step; iterator zips would obscure the alignment.
    #[allow(clippy::needless_range_loop)]
    pub fn step_era(&mut self) {
        let _era_span = self.era_timer.start();
        let n = self.vmcs.len();
        let t_start = self.now;
        let t_end = t_start + self.era;

        // Era root span: every causal chain this era bottoms out here (or
        // at a fault root). The ambient context makes plain emits carry it.
        if self.obs.trace_enabled() {
            self.trace_era_ctx = self.obs.emit_caused(
                t_start.as_micros(),
                "era",
                vec![("era", Value::from(self.era_index))],
                None,
            );
            self.obs.set_trace_ambient(self.trace_era_ctx);
            self.trace_health_ctx = None;
        }
        // Wall-clock timeline (Perfetto export): leader phase slices on
        // track 0, shard/worker slices on their own tracks. Metrics-class
        // data — never part of the byte-identity contract.
        let timeline = self.obs.timeline_recorder().cloned();
        let era_no = self.era_index as u64;
        if let Some(tl) = &timeline {
            tl.set_track_name(0, "leader");
        }
        let mark = |tl: &Option<std::sync::Arc<TimelineRecorder>>| tl.as_ref().map(|t| t.now_us());
        let slice = |tl: &Option<std::sync::Arc<TimelineRecorder>>,
                     name: &'static str,
                     start: Option<u64>| {
            if let (Some(t), Some(s)) = (tl.as_ref(), start) {
                t.record(0, name, s, t.now_us().saturating_sub(s), era_no);
            }
        };
        let era_t0 = mark(&timeline);

        self.apply_faults();
        self.apply_scenario();

        // ----- model lifecycle: collect refits due this era -----------------
        // Before MONITOR and outside every phase timer: a refit is joined
        // at its fixed era boundary (claim-and-inline if the pool never
        // started it), so background training is leader bookkeeping here,
        // never Plan-phase latency.
        if self.lifecycle_on {
            for j in 0..n {
                let events = self.vmcs[j].lifecycle_begin_era(era_no);
                self.emit_lifecycle_events(j, t_start, &events);
            }
        }

        // ----- MONITOR: client ingress under the interactive law ----------
        let monitor_span = self.monitor_timer.start();
        let monitor_t0 = mark(&timeline);
        let lambda_in: Vec<f64> = (0..n)
            .map(|i| self.workloads[i].offered_rate(t_start, self.observed_response[i]))
            .collect();
        let lambda_total: f64 = lambda_in.iter().sum();
        let ingress: Vec<f64> = if lambda_total > 0.0 {
            lambda_in.iter().map(|l| l / lambda_total).collect()
        } else {
            uniform_fractions(n)
        };

        // Install the forward plan realising the current fractions.
        let plan = ForwardPlan::build(&ingress, &self.fractions);
        let churn = self.plan.as_ref().map_or(0.0, |prev| plan.churn_from(prev));
        let remote = plan.remote_fraction();

        // ----- region era processing (the "application data" plane) -------
        // Sharded: contiguous region buckets advance concurrently on the
        // exec pool, each into a private child obs hub; the era barrier
        // merges everything back in shard-index order, so the event log
        // and metrics are byte-identical at any thread width.
        let lambdas: Vec<f64> = (0..n)
            .map(|j| plan.realised_share(j) * lambda_total)
            .collect();
        let reports = self.process_regions_sharded(&lambdas, t_start);
        drop(monitor_span);
        slice(&timeline, "monitor", monitor_t0);

        // ----- ANALYZE: slaves report lastRMTTF to the leader --------------
        let analyze_span = self.analyze_timer.start();
        let analyze_t0 = mark(&timeline);
        let leader = self.leader_node();
        let mut delivered = vec![false; n];
        for j in 0..n {
            let node = ExperimentConfig::node_of(j);
            if self.send_with_retries(t_end, node, leader) == SendOutcome::Delivered {
                self.received_rmttf[j] = reports[j].last_rmttf;
                delivered[j] = true;
                self.trace_loss_ctx[j] = None;
                self.trace_suspect_ctx[j] = None;
                // A delivered report doubles as a heartbeat.
                if let Some(det) = &mut self.detector {
                    det.record_heartbeat(node, t_end);
                }
            } else {
                // Report lost; the leader keeps the stale value. Chains
                // off the fault that (probably) ate it.
                if self.obs.enabled() {
                    self.trace_loss_ctx[j] = self
                        .obs
                        .emit_caused(
                            t_end.as_micros(),
                            "report.lost",
                            vec![("region", Value::from(self.vmcs[j].name().to_string()))],
                            self.trace_fault_ctx.or(self.trace_era_ctx),
                        )
                        .or(self.trace_loss_ctx[j]);
                }
            }
        }
        if let Some(det) = &mut self.detector {
            let newly = det.check(t_end);
            // Suspicion events are trace-only (they would change untraced
            // event streams otherwise); each chains loss -> fault -> era.
            if self.obs.trace_enabled() {
                for node in newly {
                    let j = node.0 as usize;
                    let silent = det.silent_for(node, t_end).unwrap_or(Duration::ZERO);
                    self.trace_suspect_ctx[j] = self.obs.emit_caused(
                        t_end.as_micros(),
                        "heartbeat.timeout",
                        vec![
                            ("node", Value::from(node.0)),
                            ("silent_us", Value::from(silent.as_micros())),
                        ],
                        self.trace_loss_ctx[j]
                            .or(self.trace_fault_ctx)
                            .or(self.trace_era_ctx),
                    );
                }
            }
        }
        drop(analyze_span);
        slice(&timeline, "analyze", analyze_t0);

        // ----- PLAN (leader): Eq. 1 then POLICY() --------------------------
        let plan_span = self.plan_timer.start();
        let plan_t0 = mark(&timeline);
        let live_mask = self.update_region_health(&delivered, t_end);
        let rmttf_now: Vec<f64> = (0..n)
            .map(|j| {
                if !self.degradation.enabled || delivered[j] {
                    // Baseline behaviour: smooth whatever the leader holds
                    // (stale on loss). Degradation smooths fresh data only.
                    self.estimators[j].update(self.received_rmttf[j])
                } else {
                    self.estimators[j].value_or_zero()
                }
            })
            .collect();
        if self.obs.enabled() {
            for j in 0..n {
                if self.degradation.enabled && !delivered[j] {
                    continue; // no update happened, nothing to log
                }
                self.obs.emit(
                    t_end.as_micros(),
                    "ewma.update",
                    vec![
                        ("region", Value::from(self.vmcs[j].name().to_string())),
                        ("raw_s", Value::from(self.received_rmttf[j])),
                        ("smoothed_s", Value::from(rmttf_now[j])),
                    ],
                );
            }
        }
        let target = self.plan_fractions(&live_mask, &rmttf_now, lambda_total);
        drop(plan_span);
        slice(&timeline, "plan", plan_t0);

        // ----- EXECUTE: install the new plan, but only if EVERY region is
        // reachable — a global forward plan installed on a strict subset of
        // the load balancers would be inconsistent (fractions would no
        // longer sum to one across the regions actually applying them), so
        // the leader freezes the previous plan until connectivity returns.
        let execute_span = self.execute_timer.start();
        let execute_t0 = mark(&timeline);
        let install_targets: Vec<usize> = if self.degradation.enabled {
            (0..n).filter(|&j| live_mask[j]).collect()
        } else {
            (0..n).collect()
        };
        let mut installable = !install_targets.is_empty();
        for &j in &install_targets {
            // Short-circuits on the first unreachable balancer, exactly
            // like the pre-degradation all-regions gate.
            if self.send_with_retries(t_end, leader, ExperimentConfig::node_of(j))
                != SendOutcome::Delivered
            {
                installable = false;
                break;
            }
        }
        // The plan decision chains off this era's health transition when
        // one happened (quarantine/readmit re-planning), else off the era.
        let plan_parent = self.trace_health_ctx.or(self.trace_era_ctx);
        let mut install_ctx = None;
        if installable {
            if self.obs.enabled() {
                let fmt = |fs: &[f64]| {
                    acm_obs::json::array(fs.iter().map(|f| acm_obs::json::fmt_f64(*f)))
                };
                install_ctx = self.obs.emit_caused(
                    t_end.as_micros(),
                    "plan.install",
                    vec![
                        ("era", Value::from(self.era_index)),
                        ("old", Value::from(fmt(&self.fractions))),
                        ("new", Value::from(fmt(&target))),
                    ],
                    plan_parent,
                );
            }
            self.fractions = target;
        } else if self.degradation.enabled && self.obs.enabled() {
            install_ctx = self.obs.emit_caused(
                t_end.as_micros(),
                "plan.freeze",
                vec![
                    ("era", Value::from(self.era_index)),
                    ("live", Value::from(install_targets.len())),
                    ("regions", Value::from(n)),
                ],
                plan_parent.or(self.trace_fault_ctx),
            );
        }

        // Data-plane sync: rebuild the router's weight table from the
        // fractions now in force — the freshly installed plan, or the
        // frozen one with this era's quarantine mask applied — in one
        // atomic double-buffered swap. Quarantined regions carry zero
        // weight and become structurally unsampleable.
        let routed_live = self.degradation.enabled.then_some(live_mask.as_slice());
        let swapped = self.router.install(&self.fractions, routed_live);
        if swapped && self.obs.enabled() {
            self.obs.emit_caused(
                t_end.as_micros(),
                "router.replan",
                vec![
                    ("epoch", Value::from(self.router.epoch())),
                    (
                        "live",
                        Value::from(live_mask.iter().filter(|l| **l).count()),
                    ),
                    (
                        "support",
                        Value::from(self.router.shares().iter().filter(|s| **s > 0.0).count()),
                    ),
                ],
                install_ctx.or(plan_parent),
            );
        }
        // Routed outcomes feed the latency scorer: each region's
        // completion-weighted mean response this era is one decayed
        // sample (regions that completed nothing contribute no signal).
        for j in 0..n {
            if reports[j].completed > 0 && reports[j].mean_response_s > 0.0 {
                self.router
                    .record_latency(j, Duration::from_secs_f64(reports[j].mean_response_s));
            }
        }
        self.router.publish();

        // Autoscaling (Alg. 3 lines 6–8).
        for j in 0..n {
            let mut scaler = std::mem::take(&mut self.autoscalers[j]);
            scaler.step(
                &self.autoscale_cfg,
                &mut self.vmcs[j],
                t_end,
                reports[j].mean_response_s,
                rmttf_now[j],
            );
            self.autoscalers[j] = scaler;
        }
        drop(execute_span);
        slice(&timeline, "execute", execute_t0);

        // Predictor-drift watch: every end-of-life event this era feeds
        // the per-region miss window; a flip into the drifted state opens
        // a root `drift.signal` span on tracing runs (the emit is inert on
        // any other hub, so untraced event streams are unchanged). The
        // windows are fed unconditionally now that the model lifecycle
        // reads them — monitor state is no longer a tracing side effect.
        for j in 0..n {
            for _ in 0..reports[j].reactive_failures {
                if let Some(ctx) = self.drift[j].record_with_obs(
                    true,
                    &self.obs,
                    t_end.as_micros(),
                    self.vmcs[j].name(),
                ) {
                    self.trace_drift_ctx[j] = Some(ctx);
                }
            }
            for _ in 0..reports[j].proactive_rejuvenations {
                if let Some(ctx) = self.drift[j].record_with_obs(
                    false,
                    &self.obs,
                    t_end.as_micros(),
                    self.vmcs[j].name(),
                ) {
                    self.trace_drift_ctx[j] = Some(ctx);
                }
            }
        }

        // ----- model lifecycle: verdicts, then maybe a new refit ------------
        // After the drift feed so a flip detected this era can trigger its
        // refit in the same era; after EXECUTE so shadow scores include
        // everything the region processed this era.
        if self.lifecycle_on {
            for j in 0..n {
                let drifted = self.drift[j].drifted();
                let events = self.vmcs[j].lifecycle_end_era(era_no, drifted);
                self.emit_lifecycle_events(j, t_end, &events);
            }
            self.publish_model_metrics();
        }

        // ----- client-observed response times for the next era -------------
        // A client attached to region i experiences the processing time of
        // wherever its request was forwarded, plus the WAN round trip.
        let mut observed = vec![0.0; n];
        for i in 0..n {
            let node_i = ExperimentConfig::node_of(i);
            let mut r = 0.0;
            for j in 0..n {
                let frac = plan.fraction(i, j);
                if frac == 0.0 {
                    continue;
                }
                let rtt = if i == j {
                    0.0
                } else {
                    self.transport
                        .latency(node_i, ExperimentConfig::node_of(j))
                        .map_or(0.0, |d| 2.0 * d.as_secs_f64())
                };
                r += frac * (reports[j].mean_response_s + rtt);
            }
            observed[i] = r;
        }
        self.observed_response = observed;
        let global_response: f64 = ingress
            .iter()
            .zip(&self.observed_response)
            .map(|(a, r)| a * r)
            .sum();

        // ----- telemetry ----------------------------------------------------
        let records: Vec<RegionEraRecord> = (0..n)
            .map(|j| RegionEraRecord {
                rmttf: rmttf_now[j],
                fraction: self.fractions[j],
                response_s: reports[j].mean_response_s,
                active_vms: reports[j].active_vms,
                proactive: reports[j].proactive_rejuvenations,
                reactive: reports[j].reactive_failures,
                completed: reports[j].completed,
            })
            .collect();
        self.telemetry.record_era(
            t_end,
            &records,
            global_response,
            lambda_total,
            churn,
            remote,
        );

        // ----- SLO burn rates (tracing runs only) ---------------------------
        // Availability: did the leader hear from every region this era?
        // Latency: completed requests served by regions inside the 1 s SLA
        // (the paper's response-time bound). Both use the SRE fast/slow
        // multi-window rule; transitions chain off the active fault.
        if self.obs.trace_enabled() {
            let delivered_count = delivered.iter().filter(|d| **d).count() as u64;
            let total_completed: u64 = reports.iter().map(|r| r.completed).sum();
            let within_sla: u64 = reports
                .iter()
                .filter(|r| r.mean_response_s <= 1.0)
                .map(|r| r.completed)
                .sum();
            let inputs = [(delivered_count, n as u64), (within_sla, total_completed)];
            for (i, (good, total)) in inputs.into_iter().enumerate() {
                let name = self.slo[i].spec().name;
                match self.slo[i].observe(good, total) {
                    Some(SloTransition::Fired {
                        fast_burn,
                        slow_burn,
                    }) => {
                        self.slo_ctx[i] = self.obs.emit_caused(
                            t_end.as_micros(),
                            "slo.burn",
                            vec![
                                ("slo", Value::from(name)),
                                ("fast_burn", Value::from(fast_burn)),
                                ("slow_burn", Value::from(slow_burn)),
                            ],
                            self.trace_fault_ctx.or(self.trace_era_ctx),
                        );
                    }
                    Some(SloTransition::Recovered { fast_burn }) => {
                        self.obs.emit_caused(
                            t_end.as_micros(),
                            "slo.recovered",
                            vec![
                                ("slo", Value::from(name)),
                                ("fast_burn", Value::from(fast_burn)),
                            ],
                            self.slo_ctx[i].or(self.trace_era_ctx),
                        );
                        self.slo_ctx[i] = None;
                    }
                    None => {}
                }
            }
        }

        // ----- continuous exec-pool sampling --------------------------------
        // One histogram sample per era, so obs_report can localise a pool
        // stall to a phase of the run. Wall-clock data: metrics only, never
        // the (seed-deterministic) event log.
        if self.obs.enabled() {
            let now_stats = acm_exec::global_stats();
            let delta = now_stats.delta_since(&self.exec_prev);
            self.hist_exec_items.record(delta.items);
            self.hist_exec_queue.record(delta.queue_depth_peak);
            self.hist_exec_busy.record(delta.total_busy_ns());
            // Per-worker busy slices for the Perfetto timeline, anchored
            // at the era's wall-clock start (the pool reports aggregate
            // busy-ns, not per-job placement).
            if let (Some(tl), Some(t0)) = (&timeline, era_t0) {
                for (w, &busy_ns) in delta.worker_busy_ns.iter().enumerate() {
                    if busy_ns == 0 {
                        continue;
                    }
                    let track = 100 + w as u32;
                    tl.set_track_name(track, &format!("worker {w}"));
                    tl.record(track, "exec.busy", t0, busy_ns / 1_000, era_no);
                }
            }
            self.exec_prev = now_stats;
        }
        slice(&timeline, "era", era_t0);

        self.plan = Some(plan);
        self.now = t_end;
        self.era_index += 1;
    }

    /// Runs `eras` control eras.
    pub fn run(&mut self, eras: usize) {
        for _ in 0..eras {
            self.step_era();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use acm_pcam::RttfSource;

    /// Builds a loop with oracle predictors (fast: no training phase).
    fn oracle_loop(cfg: &ExperimentConfig) -> ControlLoop {
        let mut rng = SimRng::new(cfg.seed);
        let vmcs: Vec<Vmc> = cfg
            .regions
            .iter()
            .map(|spec| Vmc::new(spec.region.clone(), RttfSource::Oracle, rng.split()))
            .collect();
        ControlLoop::new(cfg, vmcs, rng)
    }

    fn fig3_cfg(policy: PolicyKind) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::two_region_fig3(policy, 42);
        cfg.predictor = crate::config::PredictorChoice::Oracle;
        cfg
    }

    /// The world-drift recipe shared by the lifecycle tests: a config
    /// whose regions leak memory 3x faster than the profile the (stale)
    /// predictors were trained on, with a hair-trigger drift monitor and
    /// a lifecycle tuned to act within a short run.
    fn drifted_cfg(policy: PolicyKind) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::two_region_fig3(policy, 42);
        for spec in &mut cfg.regions {
            spec.region.anomaly.leak_size_mb *= 3.0;
        }
        cfg.drift = acm_pcam::DriftConfig {
            window: 8,
            miss_bound: 0.25,
            min_samples: 2,
        };
        cfg.lifecycle = acm_pcam::LifecycleConfig {
            enabled: true,
            min_labelled_rows: 20,
            shadow_min_samples: 6,
            cooldown_eras: 4,
            ..Default::default()
        };
        cfg
    }

    /// Builds a model-backed loop. With `stale = true` every VMC serves a
    /// model trained on the PRE-drift (default) anomaly profile of its
    /// flavor, so reactive failures — and with them the refit machinery —
    /// are guaranteed to appear; with `stale = false` the models are
    /// trained on the config's own (drifted) profile and are competent.
    fn model_loop(cfg: &ExperimentConfig, stale: bool) -> ControlLoop {
        use acm_ml::model::ModelKind;
        use acm_ml::toolchain::F2pmToolchain;
        use acm_pcam::training::{collect_database, CollectionConfig};
        let mut train_rng = SimRng::new(7);
        let quick = CollectionConfig {
            lambdas: vec![4.0, 8.0, 16.0],
            runs_per_lambda: 3,
            ..Default::default()
        };
        let mut rng = SimRng::new(cfg.seed);
        let vmcs: Vec<Vmc> = cfg
            .regions
            .iter()
            .map(|spec| {
                let anomaly = if stale {
                    acm_vm::AnomalyConfig::default()
                } else {
                    spec.region.anomaly.clone()
                };
                let db = collect_database(
                    &spec.region.flavor,
                    &anomaly,
                    &spec.region.failure_spec,
                    &quick,
                    &mut train_rng,
                );
                let (model, _) = F2pmToolchain {
                    models: vec![ModelKind::RepTree],
                    ..Default::default()
                }
                .run(&db, &mut train_rng);
                Vmc::new(spec.region.clone(), RttfSource::Model(model), rng.split())
            })
            .collect();
        ControlLoop::new(cfg, vmcs, rng)
    }

    #[test]
    fn lifecycle_promotes_refit_models_under_drift() {
        let cfg = drifted_cfg(PolicyKind::AvailableResources);
        let mut cl = model_loop(&cfg, true);
        cl.run(40);
        let events = cl.obs().events_tail(usize::MAX);
        let count = |kind: &str| events.iter().filter(|e| e.kind == kind).count();
        assert!(count("model.refit.start") >= 1, "no refit ever submitted");
        assert!(count("model.refit.done") >= 1, "no refit ever collected");
        assert!(count("model.promote") >= 1, "no candidate ever promoted");
        assert!(
            cl.vmcs()
                .iter()
                .any(|v| v.lifecycle().is_some_and(|l| l.version() > 1)),
            "no region is serving a refit model"
        );
        // The loop kept serving throughout the churn.
        assert_eq!(cl.telemetry().eras(), 40);
        assert!(cl.telemetry().total_completed() > 0);
        let s: f64 = cl.fractions().iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn poisoned_refits_are_never_promoted_by_the_loop() {
        let mut cfg = drifted_cfg(PolicyKind::AvailableResources);
        // Hair-trigger drift so refits keep coming in both phases.
        cfg.drift = acm_pcam::DriftConfig {
            window: 8,
            miss_bound: 0.01,
            min_samples: 1,
        };
        let mut cl = model_loop(&cfg, true);
        // Honest warm-up: the lifecycle replaces the stale offline model
        // with one fitted to the drifted live distribution.
        cl.run(30);
        let count_now = |cl: &ControlLoop, kind: &str| {
            cl.obs()
                .events_tail(usize::MAX)
                .iter()
                .filter(|e| e.kind == kind)
                .count()
        };
        assert!(count_now(&cl, "model.promote") >= 1, "no warm-up promotion");
        // Poisoned phase: every candidate is target-shuffled. Against a
        // live-fitted incumbent it must lose the shadow comparison — the
        // incumbent keeps serving untouched. A few eras drain refits that
        // were still in flight (honestly trained) when the poison landed.
        cl.set_lifecycle_poison(true);
        cl.run(10);
        let honest_promotions = count_now(&cl, "model.promote");
        let honest_refits = count_now(&cl, "model.refit.done");
        let versions_after_warmup: Vec<u64> = cl
            .vmcs()
            .iter()
            .map(|v| v.lifecycle().expect("lifecycle enabled").version())
            .collect();
        cl.run(40);
        assert!(
            count_now(&cl, "model.refit.done") > honest_refits,
            "poisoned phase collected no refits"
        );
        assert_eq!(
            count_now(&cl, "model.promote"),
            honest_promotions,
            "a poisoned model was promoted"
        );
        // No new promotions means versions can only stand still — or step
        // BACK, if the regression watch rolled back a drain-window
        // promotion that went sour (that is the watch doing its job).
        let versions_after_poison: Vec<u64> = cl
            .vmcs()
            .iter()
            .map(|v| v.lifecycle().expect("lifecycle enabled").version())
            .collect();
        for (before, after) in versions_after_warmup.iter().zip(&versions_after_poison) {
            assert!(after <= before, "version advanced without a promotion");
        }
        assert!(cl.telemetry().total_completed() > 0);
    }

    #[test]
    fn lifecycle_run_is_deterministic_and_unperturbed_by_observability() {
        let on = drifted_cfg(PolicyKind::AvailableResources);
        let mut off = on.clone();
        off.obs = acm_obs::ObsConfig::noop();
        let mut a = model_loop(&on, true);
        let mut b = model_loop(&off, true);
        let mut c = model_loop(&on, true);
        a.run(40);
        b.run(40);
        c.run(40);
        // Same seed, same story — with or without instrumentation.
        assert_eq!(a.telemetry().to_csv(), b.telemetry().to_csv());
        assert_eq!(a.telemetry().to_csv(), c.telemetry().to_csv());
        assert_eq!(a.obs().events_len(), c.obs().events_len());
        assert_eq!(b.obs().events_len(), 0, "noop run must log nothing");
        let versions = |cl: &ControlLoop| -> Vec<Option<u64>> {
            cl.vmcs()
                .iter()
                .map(|v| v.lifecycle().map(|l| l.version()))
                .collect()
        };
        assert_eq!(versions(&a), versions(&b));
        assert_eq!(versions(&a), versions(&c));
    }

    #[test]
    fn model_events_chain_drift_to_refit_to_promotion() {
        let mut cfg = drifted_cfg(PolicyKind::AvailableResources);
        cfg.obs = acm_obs::ObsConfig::traced(2026);
        let mut cl = model_loop(&cfg, true);
        cl.run(40);
        let events = cl.obs().events_tail(usize::MAX);
        let field = |e: &acm_obs::EventRecord, k: &str| -> Option<u64> {
            e.fields.iter().find_map(|(n, v)| match (n, v) {
                (name, Value::U64(u)) if *name == k => Some(*u),
                _ => None,
            })
        };
        let spans_of = |kind: &str| -> Vec<u64> {
            events
                .iter()
                .filter(|e| e.kind == kind)
                .filter_map(|e| field(e, "span"))
                .collect()
        };
        let drift_spans = spans_of("drift.signal");
        let refit_spans = spans_of("model.refit.start");
        assert!(!drift_spans.is_empty(), "traced run saw no drift.signal");
        assert!(!refit_spans.is_empty(), "traced run saw no refit");
        // Every refit chains off a drift signal (or the era root before
        // the first signal of its region); at least one must chain off a
        // drift.signal span — the whole point of the why-chain.
        let refit_causes: Vec<u64> = events
            .iter()
            .filter(|e| e.kind == "model.refit.start")
            .filter_map(|e| field(e, "cause"))
            .collect();
        assert!(
            refit_causes.iter().any(|c| drift_spans.contains(c)),
            "no refit chains off a drift.signal"
        );
        // Every promotion chains off the refit that produced it.
        let promote_causes: Vec<u64> = events
            .iter()
            .filter(|e| e.kind == "model.promote")
            .filter_map(|e| field(e, "cause"))
            .collect();
        assert!(!promote_causes.is_empty(), "traced run saw no promotion");
        assert!(
            promote_causes.iter().all(|c| refit_spans.contains(c)),
            "a promotion does not chain off its refit"
        );
    }

    #[test]
    fn lifecycle_metrics_report_versions_and_shadow_errors() {
        let cfg = drifted_cfg(PolicyKind::AvailableResources);
        let mut cl = model_loop(&cfg, true);
        cl.run(40);
        let metrics = cl.obs().metrics();
        let gauge = |name: &str| -> Option<f64> {
            metrics.iter().find_map(|m| match &m.value {
                acm_obs::MetricValue::Gauge(v) if m.name == name => Some(*v),
                _ => None,
            })
        };
        for vmc in cl.vmcs() {
            let name = vmc.name();
            let v = gauge(&format!("acm.pcam.model.{name}.version"))
                .unwrap_or_else(|| panic!("missing version gauge for {name}"));
            assert_eq!(v, vmc.lifecycle().unwrap().version() as f64);
        }
    }

    #[test]
    fn runs_the_requested_number_of_eras() {
        let cfg = fig3_cfg(PolicyKind::AvailableResources);
        let mut cl = oracle_loop(&cfg);
        cl.run(10);
        assert_eq!(cl.telemetry().eras(), 10);
        assert_eq!(cl.now(), SimTime::from_secs(300));
    }

    #[test]
    fn fractions_stay_a_probability_vector() {
        let cfg = fig3_cfg(PolicyKind::Exploration);
        let mut cl = oracle_loop(&cfg);
        for _ in 0..30 {
            cl.step_era();
            let s: f64 = cl.fractions().iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "sum {s}");
            assert!(cl.fractions().iter().all(|f| *f > 0.0));
        }
    }

    #[test]
    fn leader_is_region_zero_when_healthy() {
        let cfg = fig3_cfg(PolicyKind::SensibleRouting);
        let cl = oracle_loop(&cfg);
        assert_eq!(cl.election().leader(NodeId(0)), Some(NodeId(0)));
        assert_eq!(cl.election().leader(NodeId(1)), Some(NodeId(0)));
    }

    #[test]
    fn policy2_converges_rmttf_on_fig3_deployment() {
        let cfg = fig3_cfg(PolicyKind::AvailableResources);
        let mut cl = oracle_loop(&cfg);
        cl.run(80);
        let tel = cl.into_telemetry();
        let spread = tel.rmttf_spread(20);
        assert!(spread < 1.35, "policy 2 should converge, spread {spread}");
    }

    #[test]
    fn policy1_leaves_rmttf_unequal_on_fig3_deployment() {
        let cfg = fig3_cfg(PolicyKind::SensibleRouting);
        let mut cl = oracle_loop(&cfg);
        cl.run(80);
        let tel = cl.into_telemetry();
        let spread = tel.rmttf_spread(20);
        assert!(
            spread > 1.4,
            "policy 1 must not equalise heterogeneous regions, spread {spread}"
        );
    }

    #[test]
    fn response_time_stays_under_the_sla() {
        for policy in PolicyKind::ALL {
            let cfg = fig3_cfg(policy);
            let mut cl = oracle_loop(&cfg);
            cl.run(60);
            let tel = cl.into_telemetry();
            let resp = tel.tail_response(30);
            assert!(resp < 1.0, "{policy}: tail response {resp}");
        }
    }

    #[test]
    fn link_fault_suspends_plan_updates_for_the_cut_region() {
        let mut cfg = fig3_cfg(PolicyKind::AvailableResources);
        cfg.link_faults = vec![LinkFault {
            a: 0,
            b: 1,
            fail_at: SimTime::from_secs(300),
            recover_at: SimTime::from_secs(600),
        }];
        let mut cl = oracle_loop(&cfg);
        cl.run(40);
        // The run must survive the partition and keep serving.
        let tel = cl.telemetry();
        assert_eq!(tel.eras(), 40);
        assert!(tel.total_completed() > 0);
        // During the partition the leader's view of region 1 froze; after
        // recovery reports flow again and fractions keep summing to 1.
        let s: f64 = cl.fractions().iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = fig3_cfg(PolicyKind::Exploration);
        let mut a = oracle_loop(&cfg);
        let mut b = oracle_loop(&cfg);
        a.run(20);
        b.run(20);
        assert_eq!(a.telemetry().to_csv(), b.telemetry().to_csv());
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = fig3_cfg(PolicyKind::Exploration);
        let mut a = oracle_loop(&cfg);
        cfg.seed = 43;
        let mut b = oracle_loop(&cfg);
        a.run(20);
        b.run(20);
        assert_ne!(a.telemetry().to_csv(), b.telemetry().to_csv());
    }

    #[test]
    fn runtime_policy_switch_rescues_policy1() {
        // Start with the non-converging sensible routing, switch to the
        // resource estimator mid-run: the RMTTFs must then equalise.
        let cfg = fig3_cfg(PolicyKind::SensibleRouting);
        let mut cl = oracle_loop(&cfg);
        cl.run(50);
        let spread_before = {
            let t = cl.telemetry();
            t.rmttf_spread(15)
        };
        assert!(
            spread_before > 1.4,
            "P1 should be diverged: {spread_before}"
        );
        cl.set_policy(PolicyKind::AvailableResources);
        cl.run(50);
        let spread_after = cl.telemetry().rmttf_spread(15);
        assert!(
            spread_after < 1.2,
            "switching to P2 should converge the system: {spread_after}"
        );
    }

    #[test]
    fn observability_never_perturbs_the_run() {
        // Instrumented and uninstrumented runs must yield byte-identical
        // telemetry for the same seed: instruments observe, never steer.
        let on = fig3_cfg(PolicyKind::Exploration);
        let mut off = on.clone();
        off.obs = acm_obs::ObsConfig::noop();
        let mut a = oracle_loop(&on);
        let mut b = oracle_loop(&off);
        a.run(25);
        b.run(25);
        assert!(a.obs().events_len() > 0, "instrumented run logged nothing");
        assert_eq!(b.obs().events_len(), 0, "noop run must log nothing");
        assert_eq!(a.telemetry().to_csv(), b.telemetry().to_csv());
    }

    #[test]
    fn decision_log_covers_plans_ewma_and_phase_timers() {
        let cfg = fig3_cfg(PolicyKind::AvailableResources);
        let mut cl = oracle_loop(&cfg);
        cl.run(5);
        let events = cl.obs().events_tail(usize::MAX);
        let count = |kind: &str| events.iter().filter(|e| e.kind == kind).count();
        // Every era installs a plan (no faults) and smooths both regions.
        assert_eq!(count("plan.install"), 5);
        assert_eq!(count("ewma.update"), 10);
        assert_eq!(count("report.lost"), 0);
        // All four MAPE phases (and the era umbrella) timed every era.
        let metrics = cl.obs().metrics();
        for phase in ["era", "monitor", "analyze", "plan", "execute"] {
            let name = format!("acm.core.control_loop.{phase}_ns");
            let snap = metrics
                .iter()
                .find(|m| m.name == name)
                .unwrap_or_else(|| panic!("{name} missing"));
            match &snap.value {
                acm_obs::MetricValue::Histogram(h) => {
                    assert_eq!(h.count, 5, "{name} samples");
                }
                other => panic!("{name} is not a histogram: {other:?}"),
            }
        }
    }

    #[test]
    fn policy_switch_and_partition_reach_the_decision_log() {
        let mut cfg = fig3_cfg(PolicyKind::SensibleRouting);
        cfg.link_faults = vec![LinkFault {
            a: 0,
            b: 1,
            fail_at: SimTime::from_secs(60),
            recover_at: SimTime::from_secs(120),
        }];
        let mut cl = oracle_loop(&cfg);
        cl.run(3);
        cl.set_policy(PolicyKind::AvailableResources);
        cl.run(7);
        let events = cl.obs().events_tail(usize::MAX);
        let count = |kind: &str| events.iter().filter(|e| e.kind == kind).count();
        assert_eq!(count("policy.switch"), 1);
        // The partition cut region 1 off the leader for two eras.
        assert!(count("report.lost") > 0);
        // Events carry simulated time, bounded by the run horizon. (They
        // are logged in region order within an era, so timestamps are only
        // monotone per region, not globally.)
        let horizon = cl.now().as_micros();
        assert!(events.iter().all(|e| e.t_us <= horizon));
        assert_eq!(events.first().map(|e| e.seq), Some(0));
    }

    #[test]
    fn degradation_with_no_faults_is_inert() {
        // Enabling degradation must not change a healthy run: no report is
        // ever lost, so the tracker never acts and the telemetry matches
        // the disabled path byte for byte.
        let base = fig3_cfg(PolicyKind::AvailableResources);
        let mut degraded = base.clone();
        degraded.degradation = crate::degrade::DegradationConfig::enabled();
        let mut a = oracle_loop(&base);
        let mut b = oracle_loop(&degraded);
        a.run(25);
        b.run(25);
        assert_eq!(a.telemetry().to_csv(), b.telemetry().to_csv());
    }

    #[test]
    fn empty_fault_plan_is_byte_identical_to_no_plan() {
        let base = fig3_cfg(PolicyKind::Exploration);
        let mut chaotic = base.clone();
        chaotic.fault_plan = Some(acm_overlay::FaultPlan::default());
        let mut a = oracle_loop(&base);
        let mut b = oracle_loop(&chaotic);
        a.run(25);
        b.run(25);
        assert_eq!(a.telemetry().to_csv(), b.telemetry().to_csv());
        assert_eq!(a.obs().events_jsonl(), b.obs().events_jsonl());
    }

    #[test]
    fn partitioned_region_is_quarantined_and_gets_zero_flow() {
        let mut cfg = fig3_cfg(PolicyKind::AvailableResources);
        cfg.degradation = crate::degrade::DegradationConfig::enabled();
        cfg.fault_plan = Some(
            acm_overlay::FaultPlan::scripted(5, Vec::new()).partition_window(
                vec![NodeId(1)],
                SimTime::from_secs(300),
                SimTime::from_secs(100_000), // never heals inside the run
            ),
        );
        let mut cl = oracle_loop(&cfg);
        cl.run(30);
        assert_eq!(cl.fractions()[1], 0.0, "quarantined region gets no flow");
        assert!((cl.fractions()[0] - 1.0).abs() < 1e-9, "flow redistributed");
        let events = cl.obs().events_tail(usize::MAX);
        assert!(events.iter().any(|e| e.kind == "region.quarantine"));
        assert!(events.iter().any(|e| e.kind == "chaos.partition"));
        // Plans keep installing on the live subset (no global freeze).
        let installs = events.iter().filter(|e| e.kind == "plan.install").count();
        assert!(installs >= 25, "installs continued: {installs}");
    }

    #[test]
    fn router_tracks_plan_installs_and_masks_quarantined_regions() {
        let mut cfg = fig3_cfg(PolicyKind::AvailableResources);
        cfg.degradation = crate::degrade::DegradationConfig::enabled();
        cfg.fault_plan = Some(
            acm_overlay::FaultPlan::scripted(5, Vec::new()).partition_window(
                vec![NodeId(1)],
                SimTime::from_secs(300),
                SimTime::from_secs(100_000), // never heals inside the run
            ),
        );
        let mut cl = oracle_loop(&cfg);
        cl.run(30);
        // The data plane mirrors the control plane's installed fractions:
        // the quarantined region has zero weight and is unsampleable.
        assert_eq!(cl.router().shares()[1], 0.0, "quarantined weight");
        for _ in 0..10_000 {
            assert_eq!(cl.router_mut().route(), 0, "routed to quarantined");
        }
        let events = cl.obs().events_tail(usize::MAX);
        let replans = events.iter().filter(|e| e.kind == "router.replan").count();
        assert_eq!(replans, 30, "one weight-table swap per era");
        // Era-grain mean responses fed the scorer for the live region.
        assert!(cl.router().scorer().count(0) > 0, "scorer got outcomes");
        assert_eq!(
            cl.obs().counter("acm.router.replans").value(),
            30,
            "published counters track the installs"
        );
    }

    #[test]
    fn router_replan_events_carry_trace_context() {
        let mut cfg = fig3_cfg(PolicyKind::AvailableResources);
        cfg.obs = acm_obs::ObsConfig::traced(2026);
        let mut cl = oracle_loop(&cfg);
        cl.run(3);
        let events = cl.obs().events_tail(usize::MAX);
        let replans: Vec<_> = events
            .iter()
            .filter(|e| e.kind == "router.replan")
            .collect();
        assert_eq!(replans.len(), 3);
        for e in replans {
            let field = |k: &str| e.fields.iter().find(|(n, _)| *n == k);
            assert!(field("trace").is_some(), "replan missing trace id");
            // Each replan chains off the plan.install that triggered it.
            match field("cause") {
                Some((_, Value::U64(cause))) => assert_ne!(*cause, 0, "replan has no cause"),
                other => panic!("unexpected cause field: {other:?}"),
            }
        }
    }

    #[test]
    fn healed_region_is_readmitted_with_hysteresis() {
        let mut cfg = fig3_cfg(PolicyKind::AvailableResources);
        cfg.degradation = crate::degrade::DegradationConfig::enabled();
        cfg.fault_plan = Some(
            acm_overlay::FaultPlan::scripted(5, Vec::new()).partition_window(
                vec![NodeId(1)],
                SimTime::from_secs(300), // era 10
                SimTime::from_secs(600), // heals at era 20
            ),
        );
        let mut cl = oracle_loop(&cfg);
        cl.run(40);
        let events = cl.obs().events_tail(usize::MAX);
        let count = |kind: &str| events.iter().filter(|e| e.kind == kind).count();
        assert_eq!(count("region.quarantine"), 1, "one outage, one quarantine");
        assert_eq!(count("region.probation"), 1);
        assert_eq!(count("region.readmit"), 1, "no oscillation after heal");
        // Flow returned to the healed region after the hysteresis.
        assert!(cl.fractions()[1] > 0.0);
        // Zero flow while unreachable: probation (3 eras) ends well before
        // era 30; check the fraction series went to zero and came back.
        let fr1: Vec<f64> = cl
            .telemetry()
            .fraction(1)
            .points()
            .iter()
            .map(|p| p.value)
            .collect();
        assert!(fr1[15].abs() < 1e-12, "mid-partition flow must be zero");
        assert!(fr1[39] > 0.0, "flow restored by the end");
        // Once re-admitted, the region never flaps back out.
        assert!(
            fr1.iter().rev().take(5).all(|f| *f > 0.0),
            "no oscillation in the tail"
        );
    }

    #[test]
    fn workload_is_actually_served() {
        let cfg = fig3_cfg(PolicyKind::AvailableResources);
        let mut cl = oracle_loop(&cfg);
        cl.run(20);
        let tel = cl.telemetry();
        // ~87 req/s for 600 s ≈ 50k requests.
        assert!(
            tel.total_completed() > 30_000,
            "completed {}",
            tel.total_completed()
        );
        // Proactive maintenance happened.
        assert!(tel.total_proactive() > 0);
    }
}
