//! The RMTTF exponentially-weighted moving average (paper Eq. 1).
//!
//! When the leader VMC receives `lastRMTTF_i` at time `t`, the current
//! RMTTF of region `i` is recalculated as
//!
//! ```text
//! RMTTF_i^t = (1 − β) · RMTTF_i^{t−1} + β · lastRMTTF_i,   0 ≤ β ≤ 1.
//! ```
//!
//! Small β smooths aggressively (slow, stable); β = 1 trusts the newest
//! report entirely (fast, noisy). The `ablation_beta` bench sweeps this
//! trade-off.

use serde::{Deserialize, Serialize};

/// One region's smoothed RMTTF estimate held by the leader.
///
/// ```
/// use acm_core::ewma::RmttfEwma;
/// let mut e = RmttfEwma::new(0.25);
/// e.update(100.0);                       // first report initialises
/// assert_eq!(e.update(200.0), 125.0);    // 0.75·100 + 0.25·200
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RmttfEwma {
    beta: f64,
    value: Option<f64>,
}

impl RmttfEwma {
    /// Creates an estimator with smoothing factor `β ∈ [0, 1]`.
    pub fn new(beta: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&beta),
            "beta must be in [0,1], got {beta}"
        );
        RmttfEwma { beta, value: None }
    }

    /// The smoothing factor.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Feeds one `lastRMTTF` report and returns the updated estimate. The
    /// first report initialises the estimate directly (there is no previous
    /// value to blend with).
    pub fn update(&mut self, last_rmttf: f64) -> f64 {
        debug_assert!(last_rmttf.is_finite() && last_rmttf >= 0.0);
        let next = match self.value {
            None => last_rmttf,
            Some(prev) => (1.0 - self.beta) * prev + self.beta * last_rmttf,
        };
        self.value = Some(next);
        next
    }

    /// Current estimate (`None` before the first report).
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Current estimate, defaulting to 0 before the first report.
    pub fn value_or_zero(&self) -> f64 {
        self.value.unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_report_initialises() {
        let mut e = RmttfEwma::new(0.3);
        assert_eq!(e.value(), None);
        assert_eq!(e.update(100.0), 100.0);
        assert_eq!(e.value(), Some(100.0));
    }

    #[test]
    fn blends_per_equation_one() {
        let mut e = RmttfEwma::new(0.25);
        e.update(100.0);
        // (1-0.25)*100 + 0.25*200 = 125.
        assert!((e.update(200.0) - 125.0).abs() < 1e-12);
    }

    #[test]
    fn beta_one_tracks_exactly() {
        let mut e = RmttfEwma::new(1.0);
        e.update(100.0);
        assert_eq!(e.update(42.0), 42.0);
    }

    #[test]
    fn beta_zero_freezes_after_first() {
        let mut e = RmttfEwma::new(0.0);
        e.update(100.0);
        assert_eq!(e.update(9999.0), 100.0);
    }

    #[test]
    fn estimate_stays_within_input_hull() {
        let mut e = RmttfEwma::new(0.4);
        let inputs = [50.0, 300.0, 120.0, 80.0, 210.0];
        for &x in &inputs {
            let v = e.update(x);
            assert!((50.0..=300.0).contains(&v), "escaped hull: {v}");
        }
    }

    #[test]
    fn converges_to_constant_input() {
        let mut e = RmttfEwma::new(0.3);
        e.update(1000.0);
        for _ in 0..100 {
            e.update(500.0);
        }
        assert!((e.value_or_zero() - 500.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "beta must be in")]
    fn invalid_beta_panics() {
        let _ = RmttfEwma::new(1.5);
    }

    #[test]
    fn smaller_beta_reacts_slower() {
        let mut fast = RmttfEwma::new(0.8);
        let mut slow = RmttfEwma::new(0.1);
        fast.update(100.0);
        slow.update(100.0);
        fast.update(200.0);
        slow.update(200.0);
        assert!(fast.value_or_zero() > slow.value_or_zero());
    }
}
