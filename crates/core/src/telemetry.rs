//! Per-era experiment telemetry.
//!
//! The paper's figures are time series of (a) each region's RMTTF, (b) each
//! region's workload fraction `f_i`, and (c) the mean response time
//! measured by the clients. [`ExperimentTelemetry`] records exactly those
//! signals per control era, plus the operational counters (rejuvenations,
//! reactive failures, plan churn) the text discusses, and computes the
//! convergence/stability statistics the assessment in Sec. VI-B is based
//! on.

use acm_sim::series::{SeriesTable, TimeSeries};
use acm_sim::stats::OnlineStats;
use acm_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// Everything one region reported in one era.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegionEraRecord {
    /// Leader-side (EWMA) RMTTF estimate, seconds.
    pub rmttf: f64,
    /// Installed workload fraction.
    pub fraction: f64,
    /// Region mean response time, seconds.
    pub response_s: f64,
    /// ACTIVE VM count.
    pub active_vms: usize,
    /// Proactive rejuvenations this era.
    pub proactive: u32,
    /// Reactive failures this era.
    pub reactive: u32,
    /// Requests completed this era.
    pub completed: u64,
}

/// Full telemetry of one experiment run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentTelemetry {
    region_names: Vec<String>,
    /// Per-region series, index-aligned with `region_names`.
    rmttf: Vec<TimeSeries>,
    fraction: Vec<TimeSeries>,
    response: Vec<TimeSeries>,
    active_vms: Vec<TimeSeries>,
    /// Global client-side mean response time.
    global_response: TimeSeries,
    /// Global offered rate λ.
    global_lambda: TimeSeries,
    /// Forward-plan churn per era.
    plan_churn: TimeSeries,
    /// Remote-forwarding fraction per era.
    remote_fraction: TimeSeries,
    /// Lifetime counters.
    total_proactive: u64,
    total_reactive: u64,
    total_completed: u64,
    eras: usize,
}

impl ExperimentTelemetry {
    /// Creates empty telemetry for the named regions.
    pub fn new(region_names: Vec<String>) -> Self {
        let mk = |suffix: &str| -> Vec<TimeSeries> {
            region_names
                .iter()
                .map(|n| TimeSeries::new(format!("{n}_{suffix}")))
                .collect()
        };
        ExperimentTelemetry {
            rmttf: mk("rmttf"),
            fraction: mk("f"),
            response: mk("resp"),
            active_vms: mk("active"),
            global_response: TimeSeries::new("global_resp"),
            global_lambda: TimeSeries::new("lambda"),
            plan_churn: TimeSeries::new("plan_churn"),
            remote_fraction: TimeSeries::new("remote_frac"),
            region_names,
            total_proactive: 0,
            total_reactive: 0,
            total_completed: 0,
            eras: 0,
        }
    }

    /// Region names.
    pub fn region_names(&self) -> &[String] {
        &self.region_names
    }

    /// Number of recorded eras.
    pub fn eras(&self) -> usize {
        self.eras
    }

    /// Appends one era of records (one per region, index-aligned).
    pub fn record_era(
        &mut self,
        t: SimTime,
        regions: &[RegionEraRecord],
        global_response_s: f64,
        global_lambda: f64,
        plan_churn: f64,
        remote_fraction: f64,
    ) {
        assert_eq!(
            regions.len(),
            self.region_names.len(),
            "one record per region"
        );
        for (i, r) in regions.iter().enumerate() {
            self.rmttf[i].push(t, r.rmttf);
            self.fraction[i].push(t, r.fraction);
            self.response[i].push(t, r.response_s);
            self.active_vms[i].push(t, r.active_vms as f64);
            self.total_proactive += r.proactive as u64;
            self.total_reactive += r.reactive as u64;
            self.total_completed += r.completed;
        }
        self.global_response.push(t, global_response_s);
        self.global_lambda.push(t, global_lambda);
        self.plan_churn.push(t, plan_churn);
        self.remote_fraction.push(t, remote_fraction);
        self.eras += 1;
    }

    /// RMTTF series of region `i`.
    pub fn rmttf(&self, i: usize) -> &TimeSeries {
        &self.rmttf[i]
    }

    /// Fraction series of region `i`.
    pub fn fraction(&self, i: usize) -> &TimeSeries {
        &self.fraction[i]
    }

    /// Response-time series of region `i`.
    pub fn response(&self, i: usize) -> &TimeSeries {
        &self.response[i]
    }

    /// ACTIVE-VM-count series of region `i`.
    pub fn active_vms(&self, i: usize) -> &TimeSeries {
        &self.active_vms[i]
    }

    /// Global client response time series (figure row 3).
    pub fn global_response(&self) -> &TimeSeries {
        &self.global_response
    }

    /// Global offered rate series.
    pub fn global_lambda(&self) -> &TimeSeries {
        &self.global_lambda
    }

    /// Plan churn series.
    pub fn plan_churn(&self) -> &TimeSeries {
        &self.plan_churn
    }

    /// Lifetime proactive rejuvenations.
    pub fn total_proactive(&self) -> u64 {
        self.total_proactive
    }

    /// Lifetime reactive failures.
    pub fn total_reactive(&self) -> u64 {
        self.total_reactive
    }

    /// Lifetime completed requests.
    pub fn total_completed(&self) -> u64 {
        self.total_completed
    }

    // ----- convergence & stability statistics (Sec. VI-B assessment) ------

    /// RMTTF convergence over the final `window` eras: the ratio of the
    /// largest to the smallest region-mean RMTTF (1.0 = perfectly
    /// converged). Policy 2 should score near 1; Policy 1 should not.
    pub fn rmttf_spread(&self, window: usize) -> f64 {
        let means: Vec<f64> = self
            .rmttf
            .iter()
            .map(|s| s.tail_stats(window).mean())
            .collect();
        let max = means.iter().fold(0.0_f64, |a, b| a.max(*b));
        let min = means.iter().fold(f64::INFINITY, |a, b| a.min(*b));
        if min <= 0.0 {
            f64::INFINITY
        } else {
            max / min
        }
    }

    /// Mean fraction oscillation over the final `window` eras: the average
    /// (across regions) coefficient of variation of `f_i` — the stability
    /// metric behind "the values of f_i are subject to oscillations".
    pub fn fraction_oscillation(&self, window: usize) -> f64 {
        let mut s = OnlineStats::new();
        for series in &self.fraction {
            s.push(series.tail_cv(window));
        }
        s.mean()
    }

    /// Largest single-era jump of any region's fraction in the final
    /// `window` eras (plan-redirection severity).
    pub fn fraction_max_step(&self, window: usize) -> f64 {
        self.fraction
            .iter()
            .map(|s| s.tail_max_step(window))
            .fold(0.0, f64::max)
    }

    /// Mean global response time over the final `window` eras.
    pub fn tail_response(&self, window: usize) -> f64 {
        self.global_response.tail_stats(window).mean()
    }

    /// First era at which the (5-era smoothed) RMTTF spread *reaches* the
    /// `bound` band — the "how fast does it get there" metric (no
    /// persistence requirement; see [`Self::convergence_era`] for the
    /// stay-there variant).
    pub fn first_reach_era(&self, bound: f64) -> Option<usize> {
        let n = self.eras;
        (0..n).find(|&e| self.smoothed_spread_at(e) <= bound)
    }

    /// The 5-era-smoothed max/min RMTTF ratio at era `e`.
    fn smoothed_spread_at(&self, e: usize) -> f64 {
        const SMOOTH: usize = 5;
        let n = self.eras;
        let smoothed = |series: &TimeSeries| -> f64 {
            let lo = e.saturating_sub(SMOOTH / 2);
            let hi = (e + SMOOTH / 2 + 1).min(n);
            let pts = &series.points()[lo..hi];
            pts.iter().map(|p| p.value).sum::<f64>() / pts.len() as f64
        };
        let vals: Vec<f64> = self.rmttf.iter().map(smoothed).collect();
        let max = vals.iter().fold(0.0_f64, |a, b| a.max(*b));
        let min = vals.iter().fold(f64::INFINITY, |a, b| a.min(*b));
        if min <= 0.0 {
            f64::INFINITY
        } else {
            max / min
        }
    }

    /// First era index after which the RMTTF spread stays below `bound` —
    /// tolerating transient blips (at most 5 % of the remaining eras, and
    /// never the final era) — or `None` if the run never settles. The
    /// tolerance matters with trained predictors: a rejuvenation wave can
    /// inflate one region's estimate for a single era without the system
    /// actually diverging.
    pub fn convergence_era(&self, bound: f64) -> Option<usize> {
        let n = self.eras;
        if n == 0 {
            return None;
        }
        // Spread per era, measured on 5-era centred moving averages of each
        // region's RMTTF: convergence is a statement about the trend lines
        // in the figure, not about single-era estimation noise (trained
        // predictors jitter each era's estimate by the tree's leaf
        // granularity).
        let spread_at = |e: usize| -> f64 { self.smoothed_spread_at(e) };
        if spread_at(n - 1) > bound {
            return None; // still diverged at the end
        }
        // Suffix violation counts, scanned backward.
        let mut violations = 0usize;
        let mut best = None;
        for e in (0..n).rev() {
            if spread_at(e) > bound {
                violations += 1;
            }
            let suffix = n - e;
            let allowed = suffix / 20; // 5 % transient tolerance
            if violations <= allowed && spread_at(e) <= bound {
                best = Some(e);
            }
        }
        best
    }

    /// Renders the full telemetry as one CSV table (figure regeneration).
    pub fn to_csv(&self) -> String {
        let mut names: Vec<String> = Vec::new();
        for group in [
            &self.rmttf,
            &self.fraction,
            &self.response,
            &self.active_vms,
        ] {
            for s in group.iter() {
                names.push(s.name().to_string());
            }
        }
        names.push("global_resp".into());
        names.push("lambda".into());
        names.push("plan_churn".into());
        names.push("remote_frac".into());
        let mut table = SeriesTable::new(names);
        for e in 0..self.eras {
            let t = self.global_response.points()[e].t;
            let mut row = Vec::new();
            for group in [
                &self.rmttf,
                &self.fraction,
                &self.response,
                &self.active_vms,
            ] {
                for s in group.iter() {
                    row.push(s.points()[e].value);
                }
            }
            row.push(self.global_response.points()[e].value);
            row.push(self.global_lambda.points()[e].value);
            row.push(self.plan_churn.points()[e].value);
            row.push(self.remote_fraction.points()[e].value);
            table.push_row(t, &row);
        }
        table.to_csv()
    }

    /// Renders the telemetry as JSON Lines, one object per era. Shares the
    /// JSON writer with the observability decision log, so the two streams
    /// can be concatenated and post-processed by the same tooling.
    pub fn to_jsonl(&self) -> String {
        use acm_obs::json::{self, JsonObject};
        let mut out = String::new();
        for e in 0..self.eras {
            let regions = json::array((0..self.region_names.len()).map(|i| {
                let mut o = JsonObject::new();
                o.field_str("name", &self.region_names[i])
                    .field_f64("rmttf_s", self.rmttf[i].points()[e].value)
                    .field_f64("fraction", self.fraction[i].points()[e].value)
                    .field_f64("response_s", self.response[i].points()[e].value)
                    .field_u64("active_vms", self.active_vms[i].points()[e].value as u64);
                o.finish()
            }));
            let mut o = JsonObject::new();
            o.field_u64("era", e as u64)
                .field_u64("t_us", self.global_response.points()[e].t.as_micros())
                .field_raw("regions", &regions)
                .field_f64("global_response_s", self.global_response.points()[e].value)
                .field_f64("lambda", self.global_lambda.points()[e].value)
                .field_f64("plan_churn", self.plan_churn.points()[e].value)
                .field_f64("remote_fraction", self.remote_fraction.points()[e].value);
            out.push_str(&o.finish());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(rmttf: f64, fraction: f64) -> RegionEraRecord {
        RegionEraRecord {
            rmttf,
            fraction,
            response_s: 0.1,
            active_vms: 4,
            proactive: 1,
            reactive: 0,
            completed: 100,
        }
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn two_region() -> ExperimentTelemetry {
        ExperimentTelemetry::new(vec!["r1".into(), "r3".into()])
    }

    #[test]
    fn records_accumulate() {
        let mut tel = two_region();
        tel.record_era(
            t(30),
            &[record(500.0, 0.7), record(480.0, 0.3)],
            0.12,
            60.0,
            0.0,
            0.1,
        );
        tel.record_era(
            t(60),
            &[record(510.0, 0.72), record(490.0, 0.28)],
            0.11,
            61.0,
            0.05,
            0.1,
        );
        assert_eq!(tel.eras(), 2);
        assert_eq!(tel.total_proactive(), 4);
        assert_eq!(tel.total_completed(), 400);
        assert_eq!(tel.rmttf(0).last(), Some(510.0));
        assert_eq!(tel.fraction(1).last(), Some(0.28));
    }

    #[test]
    fn spread_detects_convergence() {
        let mut converged = two_region();
        let mut diverged = two_region();
        for e in 1..=20 {
            converged.record_era(
                t(e * 30),
                &[record(500.0, 0.7), record(505.0, 0.3)],
                0.1,
                60.0,
                0.0,
                0.1,
            );
            diverged.record_era(
                t(e * 30),
                &[record(650.0, 0.7), record(310.0, 0.3)],
                0.1,
                60.0,
                0.0,
                0.1,
            );
        }
        assert!(converged.rmttf_spread(10) < 1.05);
        assert!(diverged.rmttf_spread(10) > 1.9);
    }

    #[test]
    fn oscillation_metric_separates_stable_from_jumpy() {
        let mut stable = two_region();
        let mut jumpy = two_region();
        for e in 1..=20u64 {
            stable.record_era(
                t(e * 30),
                &[record(500.0, 0.7), record(500.0, 0.3)],
                0.1,
                60.0,
                0.0,
                0.1,
            );
            let f = if e % 2 == 0 { 0.8 } else { 0.4 };
            jumpy.record_era(
                t(e * 30),
                &[record(500.0, f), record(500.0, 1.0 - f)],
                0.1,
                60.0,
                0.0,
                0.1,
            );
        }
        assert!(jumpy.fraction_oscillation(16) > 5.0 * stable.fraction_oscillation(16));
        assert!(jumpy.fraction_max_step(16) >= 0.39);
        assert_eq!(stable.fraction_max_step(16), 0.0);
    }

    #[test]
    fn convergence_era_finds_settle_point() {
        let mut tel = two_region();
        // Diverged for 5 eras, then settled.
        for e in 1..=5u64 {
            tel.record_era(
                t(e * 30),
                &[record(800.0, 0.5), record(300.0, 0.5)],
                0.1,
                60.0,
                0.0,
                0.1,
            );
        }
        for e in 6..=15u64 {
            tel.record_era(
                t(e * 30),
                &[record(510.0, 0.7), record(500.0, 0.3)],
                0.1,
                60.0,
                0.0,
                0.1,
            );
        }
        // The 5-era smoothing window blurs the regime boundary by a couple
        // of eras.
        let conv = tel.convergence_era(1.2).expect("settles");
        assert!((5..=8).contains(&conv), "settle point {conv}");
        let reach = tel.first_reach_era(1.2).expect("reaches");
        assert!(reach <= conv, "reach {reach} after settle {conv}");
        // A never-settling run reports None.
        let mut never = two_region();
        for e in 1..=10u64 {
            never.record_era(
                t(e * 30),
                &[record(800.0, 0.5), record(300.0, 0.5)],
                0.1,
                60.0,
                0.0,
                0.1,
            );
        }
        assert_eq!(never.convergence_era(1.2), None);
    }

    #[test]
    fn csv_contains_all_columns_and_rows() {
        let mut tel = two_region();
        tel.record_era(
            t(30),
            &[record(500.0, 0.7), record(480.0, 0.3)],
            0.12,
            60.0,
            0.0,
            0.1,
        );
        let csv = tel.to_csv();
        let header = csv.lines().next().unwrap();
        for col in [
            "r1_rmttf",
            "r3_f",
            "r1_resp",
            "r3_active",
            "global_resp",
            "lambda",
        ] {
            assert!(header.contains(col), "missing {col} in {header}");
        }
        assert_eq!(csv.lines().count(), 2);
    }

    #[test]
    fn jsonl_emits_one_valid_object_per_era() {
        let mut tel = two_region();
        tel.record_era(
            t(30),
            &[record(500.0, 0.7), record(480.0, 0.3)],
            0.12,
            60.0,
            0.0,
            0.1,
        );
        tel.record_era(
            t(60),
            &[record(510.0, 0.72), record(490.0, 0.28)],
            0.11,
            61.0,
            0.05,
            0.1,
        );
        let jsonl = tel.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with(r#"{"era":0,"t_us":30000000,"#));
        assert!(lines[0].contains(r#""name":"r1","rmttf_s":500"#));
        assert!(lines[1].contains(r#""era":1"#));
        assert!(lines[1].contains(r#""plan_churn":0.05"#));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    #[should_panic(expected = "one record per region")]
    fn wrong_region_count_panics() {
        let mut tel = two_region();
        tel.record_era(t(30), &[record(1.0, 1.0)], 0.1, 60.0, 0.0, 0.1);
    }
}
