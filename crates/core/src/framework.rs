//! Top-level experiment driver.
//!
//! [`run_experiment`] performs the full ACM lifecycle the paper describes:
//!
//! 1. **F2PM initial phase** (when the config asks for a trained
//!    predictor): run instrumented VMs of each distinct flavor to failure,
//!    harvest the feature database, Lasso-select features and train the
//!    requested model family per flavor;
//! 2. build one VMC per region with its predictor;
//! 3. wire the overlay, elect the leader, and run the closed control loop
//!    for the configured number of eras;
//! 4. return the telemetry that regenerates the paper's figures.

use crate::config::{ExperimentConfig, PredictorChoice};
use crate::control_loop::ControlLoop;
use crate::telemetry::ExperimentTelemetry;
use acm_exec::PoolStatsSnapshot;
use acm_ml::model::ModelKind;
use acm_ml::toolchain::{F2pmToolchain, RttfPredictor};
use acm_obs::Obs;
use acm_pcam::training::{collect_database, CollectionConfig};
use acm_pcam::{RegionConfig, RttfSource, Vmc};
use acm_sim::rng::SimRng;
use std::collections::BTreeMap;

/// Applies the experiment's TPC-W mix to a region: the mean service-demand
/// multiplier of the mix scales the flavor's per-request demand (an
/// ordering-heavy mix makes every request more expensive).
fn region_with_mix(cfg: &ExperimentConfig, region: &RegionConfig) -> RegionConfig {
    let mut out = region.clone();
    out.flavor.base_request_demand_s *= cfg.mix.mean_demand_multiplier();
    out
}

/// Trains one RTTF predictor per distinct flavor in the deployment.
///
/// The F2PM toolchain normally ranks the whole model menu; here the family
/// is fixed by the experiment config (the paper deploys REP-Tree after its
/// own earlier comparison), so the toolchain is restricted to that family.
pub fn train_predictors(
    cfg: &ExperimentConfig,
    family: ModelKind,
    rng: &mut SimRng,
) -> BTreeMap<String, RttfPredictor> {
    train_predictors_with_obs(cfg, family, rng, &Obs::noop())
}

/// [`train_predictors`] with the run's observability hub threaded through
/// to the toolchain, so per-family fit timers (`acm.ml.toolchain.*`) land
/// in the same registry as the control-loop instruments.
pub fn train_predictors_with_obs(
    cfg: &ExperimentConfig,
    family: ModelKind,
    rng: &mut SimRng,
    obs: &Obs,
) -> BTreeMap<String, RttfPredictor> {
    let mut predictors = BTreeMap::new();
    for spec in &cfg.regions {
        let region = region_with_mix(cfg, &spec.region);
        let flavor = &region.flavor;
        if predictors.contains_key(&flavor.name) {
            continue;
        }
        let db = collect_database(
            flavor,
            &region.anomaly,
            &region.failure_spec,
            &CollectionConfig::default(),
            rng,
        );
        let toolchain = F2pmToolchain {
            models: vec![family],
            ..Default::default()
        };
        let (predictor, _report) = toolchain.run_with_obs(&db, rng, obs);
        predictors.insert(flavor.name.clone(), predictor);
    }
    predictors
}

/// Builds the per-region VMCs with the configured predictor.
pub fn build_vmcs(cfg: &ExperimentConfig, rng: &mut SimRng) -> Vec<Vmc> {
    build_vmcs_with_obs(cfg, rng, &Obs::noop())
}

/// [`build_vmcs`] with the run's observability hub threaded into predictor
/// training.
pub fn build_vmcs_with_obs(cfg: &ExperimentConfig, rng: &mut SimRng, obs: &Obs) -> Vec<Vmc> {
    let trained = match cfg.predictor {
        PredictorChoice::Oracle => None,
        PredictorChoice::Trained(family) => Some(train_predictors_with_obs(cfg, family, rng, obs)),
    };
    cfg.regions
        .iter()
        .map(|spec| {
            let source = match &trained {
                None => RttfSource::Oracle,
                Some(map) => RttfSource::Model(
                    map.get(&spec.region.flavor.name)
                        .expect("predictor trained per flavor")
                        .clone(),
                ),
            };
            Vmc::new(region_with_mix(cfg, &spec.region), source, rng.split())
        })
        .collect()
}

/// Publishes the execution-pool activity since `baseline` into `obs` under
/// the `acm.exec.*` namespace:
///
/// - `acm.exec.steal_count`, `acm.exec.chunks_popped`,
///   `acm.exec.par_maps`, `acm.exec.seq_maps`, `acm.exec.items`,
///   `acm.exec.jobs_submitted`, `acm.exec.helpers_inlined` — counters
///   (deltas against the baseline snapshot);
/// - `acm.exec.queue_depth` — gauge holding the peak injector queue depth
///   observed over the pool's lifetime;
/// - `acm.exec.threads` — gauge with the pool width;
/// - `acm.exec.worker_busy_ns` — histogram with one sample per worker
///   (that worker's busy nanoseconds since the baseline).
///
/// Bench binaries snapshot [`acm_exec::global_stats`] before a workload and
/// call this after it; [`run_experiment_with_obs`] does the same around the
/// whole experiment.
pub fn publish_exec_stats(obs: &Obs, baseline: &PoolStatsSnapshot) {
    if !obs.enabled() {
        return;
    }
    let delta = acm_exec::global_stats().delta_since(baseline);
    obs.counter("acm.exec.steal_count").add(delta.steals);
    obs.counter("acm.exec.chunks_popped")
        .add(delta.chunks_popped);
    obs.counter("acm.exec.par_maps").add(delta.par_maps);
    obs.counter("acm.exec.seq_maps").add(delta.seq_maps);
    obs.counter("acm.exec.items").add(delta.items);
    obs.counter("acm.exec.jobs_submitted")
        .add(delta.jobs_submitted);
    obs.counter("acm.exec.helpers_inlined")
        .add(delta.helpers_inlined);
    obs.gauge("acm.exec.queue_depth")
        .set(delta.queue_depth_peak as f64);
    obs.gauge("acm.exec.threads").set(delta.threads as f64);
    let busy = obs.histogram("acm.exec.worker_busy_ns");
    for ns in &delta.worker_busy_ns {
        busy.record(*ns);
    }
}

/// Runs a complete experiment and returns its telemetry. Observability
/// follows `cfg.obs`; the recorded metrics and events die with the loop —
/// use [`run_experiment_with_obs`] to inspect them afterwards.
pub fn run_experiment(cfg: &ExperimentConfig) -> ExperimentTelemetry {
    let obs = acm_obs::Obs::new(cfg.obs);
    run_experiment_with_obs(cfg, obs)
}

/// Like [`run_experiment`] but records spans, metrics and the decision log
/// into the caller's [`acm_obs::Obs`] instance, which outlives the run.
/// The hub also receives the ML training timers (predictor training runs
/// through [`train_predictors_with_obs`]) and, on exit, the `acm.exec.*`
/// execution-pool counters covering the whole experiment
/// ([`publish_exec_stats`]).
pub fn run_experiment_with_obs(
    cfg: &ExperimentConfig,
    obs: acm_obs::ObsHandle,
) -> ExperimentTelemetry {
    cfg.validate().expect("invalid experiment config");
    let exec_baseline = acm_exec::global_stats();
    let mut rng = SimRng::new(cfg.seed);
    let vmcs = build_vmcs_with_obs(cfg, &mut rng, &obs);
    let mut cl = ControlLoop::new_with_obs(cfg, vmcs, rng, obs.clone());
    cl.run(cfg.eras);
    publish_exec_stats(&obs, &exec_baseline);
    // Retention pressure: how many decision-log events the ring evicted
    // over the run (surfaced so obs_report can flag undersized logs).
    if obs.enabled() {
        obs.counter("acm.obs.events.dropped")
            .add(obs.events_dropped());
    }
    cl.into_telemetry()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;

    #[test]
    fn oracle_experiment_end_to_end() {
        let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, 7);
        cfg.predictor = PredictorChoice::Oracle;
        cfg.eras = 15;
        let tel = run_experiment(&cfg);
        assert_eq!(tel.eras(), 15);
        assert!(tel.total_completed() > 0);
    }

    #[test]
    fn trained_rep_tree_experiment_end_to_end() {
        // The paper's configuration: REP-Tree predictors trained by F2PM.
        let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, 11);
        cfg.eras = 20;
        let tel = run_experiment(&cfg);
        assert_eq!(tel.eras(), 20);
        // Imperfect predictions are fine; the loop must still keep the
        // response time sane and the system serving.
        assert!(
            tel.tail_response(10) < 1.5,
            "resp {}",
            tel.tail_response(10)
        );
        assert!(tel.total_completed() > 10_000);
    }

    #[test]
    fn predictors_are_shared_per_flavor() {
        let cfg = ExperimentConfig::three_region_fig4(PolicyKind::SensibleRouting, 3);
        let mut rng = SimRng::new(3);
        let map = train_predictors(&cfg, ModelKind::RepTree, &mut rng);
        // Three regions, three distinct flavors.
        assert_eq!(map.len(), 3);
        assert!(map.contains_key("m3.medium"));
        assert!(map.contains_key("m3.small"));
        assert!(map.contains_key("private-munich"));
    }

    #[test]
    fn heavier_mix_shortens_lifetimes() {
        use acm_workload::TpcwMix;
        // The ordering mix hits the backend harder per request: same
        // deployment, same clients, but the SLA crossing arrives sooner, so
        // the steady-state RMTTF drops.
        let run_mix = |mix: TpcwMix| {
            let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, 13);
            cfg.predictor = PredictorChoice::Oracle;
            cfg.eras = 60;
            cfg.mix = mix;
            let tel = run_experiment(&cfg);
            tel.rmttf(0).tail_stats(20).mean()
        };
        let browsing = run_mix(TpcwMix::Browsing);
        let ordering = run_mix(TpcwMix::Ordering);
        assert!(
            ordering < browsing,
            "ordering mix should stress VMs more: {ordering} !< {browsing}"
        );
    }

    #[test]
    fn experiment_hub_carries_exec_and_training_instruments() {
        let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, 17);
        cfg.eras = 5; // trained predictor: training dominates, loop is short
        let obs = acm_obs::Obs::new(acm_obs::ObsConfig::default());
        let _ = run_experiment_with_obs(&cfg, obs.clone());
        let metrics = obs.metrics();
        let find = |name: &str| {
            metrics
                .iter()
                .find(|m| m.name == name)
                .unwrap_or_else(|| panic!("metric {name} missing"))
        };
        // Pool stats are published even when the pool ran sequentially:
        // the items counter covers every map_collect element.
        match &find("acm.exec.items").value {
            acm_obs::MetricValue::Counter(n) => assert!(*n > 0, "no pool items counted"),
            other => panic!("acm.exec.items is {other:?}"),
        }
        find("acm.exec.steal_count");
        find("acm.exec.queue_depth");
        find("acm.exec.worker_busy_ns");
        // Training timers from the toolchain land in the same hub.
        match &find("acm.ml.toolchain.fit_ns.rep-tree").value {
            acm_obs::MetricValue::Histogram(h) => {
                assert!(h.count >= 2, "one fit per flavor, got {}", h.count)
            }
            other => panic!("fit timer is {other:?}"),
        }
        find("acm.ml.toolchain.lasso_ns");
        find("acm.ml.toolchain.score_ns");
    }

    #[test]
    fn run_is_deterministic() {
        let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::Exploration, 5);
        cfg.predictor = PredictorChoice::Oracle;
        cfg.eras = 10;
        let a = run_experiment(&cfg);
        let b = run_experiment(&cfg);
        assert_eq!(a.to_csv(), b.to_csv());
    }
}
