//! Top-level experiment driver.
//!
//! [`run_experiment`] performs the full ACM lifecycle the paper describes:
//!
//! 1. **F2PM initial phase** (when the config asks for a trained
//!    predictor): run instrumented VMs of each distinct flavor to failure,
//!    harvest the feature database, Lasso-select features and train the
//!    requested model family per flavor;
//! 2. build one VMC per region with its predictor;
//! 3. wire the overlay, elect the leader, and run the closed control loop
//!    for the configured number of eras;
//! 4. return the telemetry that regenerates the paper's figures.

use crate::config::{ExperimentConfig, PredictorChoice};
use crate::control_loop::ControlLoop;
use crate::telemetry::ExperimentTelemetry;
use acm_ml::model::ModelKind;
use acm_ml::toolchain::{F2pmToolchain, RttfPredictor};
use acm_pcam::training::{collect_database, CollectionConfig};
use acm_pcam::{RegionConfig, RttfSource, Vmc};
use acm_sim::rng::SimRng;
use std::collections::BTreeMap;

/// Applies the experiment's TPC-W mix to a region: the mean service-demand
/// multiplier of the mix scales the flavor's per-request demand (an
/// ordering-heavy mix makes every request more expensive).
fn region_with_mix(cfg: &ExperimentConfig, region: &RegionConfig) -> RegionConfig {
    let mut out = region.clone();
    out.flavor.base_request_demand_s *= cfg.mix.mean_demand_multiplier();
    out
}

/// Trains one RTTF predictor per distinct flavor in the deployment.
///
/// The F2PM toolchain normally ranks the whole model menu; here the family
/// is fixed by the experiment config (the paper deploys REP-Tree after its
/// own earlier comparison), so the toolchain is restricted to that family.
pub fn train_predictors(
    cfg: &ExperimentConfig,
    family: ModelKind,
    rng: &mut SimRng,
) -> BTreeMap<String, RttfPredictor> {
    let mut predictors = BTreeMap::new();
    for spec in &cfg.regions {
        let region = region_with_mix(cfg, &spec.region);
        let flavor = &region.flavor;
        if predictors.contains_key(&flavor.name) {
            continue;
        }
        let db = collect_database(
            flavor,
            &region.anomaly,
            &region.failure_spec,
            &CollectionConfig::default(),
            rng,
        );
        let toolchain = F2pmToolchain {
            models: vec![family],
            ..Default::default()
        };
        let (predictor, _report) = toolchain.run(&db, rng);
        predictors.insert(flavor.name.clone(), predictor);
    }
    predictors
}

/// Builds the per-region VMCs with the configured predictor.
pub fn build_vmcs(cfg: &ExperimentConfig, rng: &mut SimRng) -> Vec<Vmc> {
    let trained = match cfg.predictor {
        PredictorChoice::Oracle => None,
        PredictorChoice::Trained(family) => Some(train_predictors(cfg, family, rng)),
    };
    cfg.regions
        .iter()
        .map(|spec| {
            let source = match &trained {
                None => RttfSource::Oracle,
                Some(map) => RttfSource::Model(
                    map.get(&spec.region.flavor.name)
                        .expect("predictor trained per flavor")
                        .clone(),
                ),
            };
            Vmc::new(region_with_mix(cfg, &spec.region), source, rng.split())
        })
        .collect()
}

/// Runs a complete experiment and returns its telemetry. Observability
/// follows `cfg.obs`; the recorded metrics and events die with the loop —
/// use [`run_experiment_with_obs`] to inspect them afterwards.
pub fn run_experiment(cfg: &ExperimentConfig) -> ExperimentTelemetry {
    let obs = acm_obs::Obs::new(cfg.obs);
    run_experiment_with_obs(cfg, obs)
}

/// Like [`run_experiment`] but records spans, metrics and the decision log
/// into the caller's [`acm_obs::Obs`] instance, which outlives the run.
pub fn run_experiment_with_obs(
    cfg: &ExperimentConfig,
    obs: acm_obs::ObsHandle,
) -> ExperimentTelemetry {
    cfg.validate().expect("invalid experiment config");
    let mut rng = SimRng::new(cfg.seed);
    let vmcs = build_vmcs(cfg, &mut rng);
    let mut cl = ControlLoop::new_with_obs(cfg, vmcs, rng, obs);
    cl.run(cfg.eras);
    cl.into_telemetry()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;

    #[test]
    fn oracle_experiment_end_to_end() {
        let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, 7);
        cfg.predictor = PredictorChoice::Oracle;
        cfg.eras = 15;
        let tel = run_experiment(&cfg);
        assert_eq!(tel.eras(), 15);
        assert!(tel.total_completed() > 0);
    }

    #[test]
    fn trained_rep_tree_experiment_end_to_end() {
        // The paper's configuration: REP-Tree predictors trained by F2PM.
        let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, 11);
        cfg.eras = 20;
        let tel = run_experiment(&cfg);
        assert_eq!(tel.eras(), 20);
        // Imperfect predictions are fine; the loop must still keep the
        // response time sane and the system serving.
        assert!(
            tel.tail_response(10) < 1.5,
            "resp {}",
            tel.tail_response(10)
        );
        assert!(tel.total_completed() > 10_000);
    }

    #[test]
    fn predictors_are_shared_per_flavor() {
        let cfg = ExperimentConfig::three_region_fig4(PolicyKind::SensibleRouting, 3);
        let mut rng = SimRng::new(3);
        let map = train_predictors(&cfg, ModelKind::RepTree, &mut rng);
        // Three regions, three distinct flavors.
        assert_eq!(map.len(), 3);
        assert!(map.contains_key("m3.medium"));
        assert!(map.contains_key("m3.small"));
        assert!(map.contains_key("private-munich"));
    }

    #[test]
    fn heavier_mix_shortens_lifetimes() {
        use acm_workload::TpcwMix;
        // The ordering mix hits the backend harder per request: same
        // deployment, same clients, but the SLA crossing arrives sooner, so
        // the steady-state RMTTF drops.
        let run_mix = |mix: TpcwMix| {
            let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, 13);
            cfg.predictor = PredictorChoice::Oracle;
            cfg.eras = 60;
            cfg.mix = mix;
            let tel = run_experiment(&cfg);
            tel.rmttf(0).tail_stats(20).mean()
        };
        let browsing = run_mix(TpcwMix::Browsing);
        let ordering = run_mix(TpcwMix::Ordering);
        assert!(
            ordering < browsing,
            "ordering mix should stress VMs more: {ordering} !< {browsing}"
        );
    }

    #[test]
    fn run_is_deterministic() {
        let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::Exploration, 5);
        cfg.predictor = PredictorChoice::Oracle;
        cfg.eras = 10;
        let a = run_experiment(&cfg);
        let b = run_experiment(&cfg);
        assert_eq!(a.to_csv(), b.to_csv());
    }
}
