//! Model validation: holdout and k-fold evaluation.
//!
//! k-fold CV runs its folds in parallel on the exec pool (through the
//! vendored-rayon facade) with one RNG stream pre-split per fold **in
//! sequential order**, so results are byte-identical at any
//! `ACM_THREADS` width — the same discipline as `pcam::training`.

use crate::dataset::Dataset;
use crate::metrics::RegressionMetrics;
use crate::model::{AnyModel, ModelKind, Regressor};
use acm_sim::rng::SimRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Why a k-fold request cannot be evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CvError {
    /// Fewer than 2 folds requested — nothing to hold out.
    TooFewFolds {
        /// The requested fold count.
        k: usize,
    },
    /// The dataset has fewer rows than folds, so some fold would be empty.
    TooFewRows {
        /// Rows available.
        rows: usize,
        /// The requested fold count.
        k: usize,
    },
    /// Every tuning candidate scored a non-finite RMSE (degenerate data
    /// or a broken `fit_predict`), so no winner can be declared.
    NoFiniteScore,
}

impl std::fmt::Display for CvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CvError::TooFewFolds { k } => {
                write!(f, "k-fold CV needs k >= 2 folds (got k = {k})")
            }
            CvError::TooFewRows { rows, k } => {
                write!(
                    f,
                    "k-fold CV needs at least k rows (got {rows} rows for k = {k})"
                )
            }
            CvError::NoFiniteScore => {
                write!(f, "every candidate scored a non-finite RMSE; no winner")
            }
        }
    }
}

impl std::error::Error for CvError {}

/// Validates a fold request up front (the checks `Dataset::k_folds`
/// would otherwise enforce by panic): `k >= 2` and `rows >= k`.
pub fn check_folds(k: usize, rows: usize) -> Result<(), CvError> {
    if k < 2 {
        return Err(CvError::TooFewFolds { k });
    }
    if rows < k {
        return Err(CvError::TooFewRows { rows, k });
    }
    Ok(())
}

/// Scores a trained model on an evaluation dataset.
pub fn evaluate(model: &AnyModel, ds: &Dataset) -> RegressionMetrics {
    let preds = model.predict(ds.rows());
    RegressionMetrics::compute(ds.targets(), &preds)
}

/// Trains `kind` on a shuffled `train_frac` split and scores it on the rest.
pub fn holdout_eval(
    kind: ModelKind,
    ds: &Dataset,
    train_frac: f64,
    rng: &mut SimRng,
) -> (AnyModel, RegressionMetrics) {
    let (train, test) = ds.split(train_frac, rng);
    let model = kind.fit(&train, rng);
    let metrics = evaluate(&model, &test);
    (model, metrics)
}

/// Per-fold and aggregate results of a k-fold cross-validation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CvResult {
    /// Model family evaluated.
    pub kind: ModelKind,
    /// Metrics on each validation fold.
    pub folds: Vec<RegressionMetrics>,
}

impl CvResult {
    /// Mean RMSE across folds. A fold-less result (only constructible by
    /// hand — [`try_cross_validate`] never returns one) yields
    /// `f64::INFINITY`, the worst possible score, rather than the NaN a
    /// naive `0.0 / 0` would produce: NaN compares false to everything
    /// and could silently *win* a min-based model ranking.
    pub fn mean_rmse(&self) -> f64 {
        if self.folds.is_empty() {
            return f64::INFINITY;
        }
        self.folds.iter().map(|m| m.rmse).sum::<f64>() / self.folds.len() as f64
    }

    /// Mean MAE across folds (`f64::INFINITY` when fold-less; see
    /// [`CvResult::mean_rmse`]).
    pub fn mean_mae(&self) -> f64 {
        if self.folds.is_empty() {
            return f64::INFINITY;
        }
        self.folds.iter().map(|m| m.mae).sum::<f64>() / self.folds.len() as f64
    }

    /// Mean R² across folds (`f64::NEG_INFINITY` — the worst possible R²
    /// — when fold-less; see [`CvResult::mean_rmse`]).
    pub fn mean_r2(&self) -> f64 {
        if self.folds.is_empty() {
            return f64::NEG_INFINITY;
        }
        self.folds.iter().map(|m| m.r2).sum::<f64>() / self.folds.len() as f64
    }

    /// Standard deviation of the per-fold RMSE (stability of the family;
    /// 0.0 when fold-less).
    pub fn rmse_std(&self) -> f64 {
        if self.folds.is_empty() {
            return 0.0;
        }
        let mean = self.mean_rmse();
        let var = self
            .folds
            .iter()
            .map(|m| (m.rmse - mean) * (m.rmse - mean))
            .sum::<f64>()
            / self.folds.len() as f64;
        var.sqrt()
    }
}

/// One point of a learning curve.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LearningPoint {
    /// Training rows used.
    pub train_rows: usize,
    /// Holdout metrics at that training size.
    pub metrics: RegressionMetrics,
}

/// Learning curve: trains `kind` on growing prefixes of a shuffled training
/// split and scores each on a fixed holdout — how much feature data the
/// F2PM initial phase actually needs.
pub fn learning_curve(
    kind: ModelKind,
    ds: &Dataset,
    fractions: &[f64],
    rng: &mut SimRng,
) -> Vec<LearningPoint> {
    assert!(!fractions.is_empty(), "need at least one training fraction");
    let (train, test) = ds.split(0.75, rng);
    fractions
        .iter()
        .map(|&frac| {
            assert!((0.0..=1.0).contains(&frac), "fraction out of range");
            let rows = ((train.len() as f64 * frac).round() as usize).max(2);
            let subset: Vec<usize> = (0..rows.min(train.len())).collect();
            let slice = train.subset(&subset);
            let model = kind.fit(&slice, rng);
            LearningPoint {
                train_rows: slice.len(),
                metrics: evaluate(&model, &test),
            }
        })
        .collect()
}

/// k-fold cross-validation of one model family, folds evaluated in
/// parallel on the exec pool. Validates the fold request up front
/// instead of returning NaN aggregates (or panicking inside
/// `Dataset::k_folds`) on degenerate inputs.
pub fn try_cross_validate(
    kind: ModelKind,
    ds: &Dataset,
    k: usize,
    rng: &mut SimRng,
) -> Result<CvResult, CvError> {
    check_folds(k, ds.len())?;
    let folds = ds.k_folds(k, rng);
    // One RNG stream per fold, pre-split in sequential order: results are
    // byte-identical at any ACM_THREADS width.
    let jobs: Vec<((Dataset, Dataset), SimRng)> =
        folds.into_iter().map(|f| (f, rng.split())).collect();
    let results = jobs
        .into_par_iter()
        .map(|((train, val), mut fold_rng)| {
            let model = kind.fit(&train, &mut fold_rng);
            evaluate(&model, &val)
        })
        .collect();
    Ok(CvResult {
        kind,
        folds: results,
    })
}

/// k-fold cross-validation of one model family; panics on a degenerate
/// fold request (use [`try_cross_validate`] to handle it).
pub fn cross_validate(kind: ModelKind, ds: &Dataset, k: usize, rng: &mut SimRng) -> CvResult {
    try_cross_validate(kind, ds, k, rng).unwrap_or_else(|e| panic!("cross_validate: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_ds(n: usize, seed: u64) -> Dataset {
        let mut rng = SimRng::new(seed);
        let mut ds = Dataset::new(["a", "b"]);
        for _ in 0..n {
            let a = rng.uniform(0.0, 1.0);
            let b = rng.uniform(0.0, 1.0);
            ds.push(vec![a, b], 2.0 * a + b + rng.normal(0.0, 0.05));
        }
        ds
    }

    #[test]
    fn holdout_eval_scores_well_on_learnable_data() {
        let ds = linear_ds(400, 1);
        let mut rng = SimRng::new(2);
        let (_, metrics) = holdout_eval(ModelKind::Linear, &ds, 0.75, &mut rng);
        assert!(metrics.r2 > 0.98, "{metrics}");
        assert_eq!(metrics.n, 100);
    }

    #[test]
    fn cross_validation_covers_k_folds() {
        let ds = linear_ds(200, 3);
        let mut rng = SimRng::new(4);
        let cv = cross_validate(ModelKind::Ridge, &ds, 5, &mut rng);
        assert_eq!(cv.folds.len(), 5);
        assert!(cv.mean_r2() > 0.95);
        assert!(cv.mean_rmse() < 0.2);
        assert!(cv.rmse_std() < cv.mean_rmse());
        assert!(cv.mean_mae() <= cv.mean_rmse());
    }

    #[test]
    fn degenerate_fold_requests_are_rejected_not_nan() {
        let ds = linear_ds(10, 11);
        let mut rng = SimRng::new(12);
        assert_eq!(
            try_cross_validate(ModelKind::Linear, &ds, 0, &mut rng).unwrap_err(),
            CvError::TooFewFolds { k: 0 }
        );
        assert_eq!(
            try_cross_validate(ModelKind::Linear, &ds, 1, &mut rng).unwrap_err(),
            CvError::TooFewFolds { k: 1 }
        );
        assert_eq!(
            try_cross_validate(ModelKind::Linear, &ds, 11, &mut rng).unwrap_err(),
            CvError::TooFewRows { rows: 10, k: 11 }
        );
        // The error explains itself.
        let msg = CvError::TooFewRows { rows: 10, k: 11 }.to_string();
        assert!(msg.contains("10 rows"), "{msg}");
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn cross_validate_panics_loudly_on_zero_folds() {
        let ds = linear_ds(10, 13);
        let _ = cross_validate(ModelKind::Linear, &ds, 0, &mut SimRng::new(14));
    }

    #[test]
    fn foldless_result_scores_as_worst_never_nan() {
        // Only constructible by hand, but the aggregates must still be
        // orderable: a NaN would compare false to everything and could
        // silently win a min-based ranking.
        let empty = CvResult {
            kind: ModelKind::Linear,
            folds: vec![],
        };
        assert_eq!(empty.mean_rmse(), f64::INFINITY);
        assert_eq!(empty.mean_mae(), f64::INFINITY);
        assert_eq!(empty.mean_r2(), f64::NEG_INFINITY);
        assert_eq!(empty.rmse_std(), 0.0);
        assert!(!empty.mean_rmse().is_nan());
        // A real result always beats the sentinel in a min-RMSE ranking.
        let ds = linear_ds(50, 15);
        let real = cross_validate(ModelKind::Linear, &ds, 5, &mut SimRng::new(16));
        assert!(real.mean_rmse() < empty.mean_rmse());
    }

    #[test]
    fn cross_validation_is_deterministic_per_seed() {
        let ds = linear_ds(120, 17);
        let a = cross_validate(ModelKind::RepTree, &ds, 4, &mut SimRng::new(18));
        let b = cross_validate(ModelKind::RepTree, &ds, 4, &mut SimRng::new(18));
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn learning_curve_improves_with_data() {
        let ds = linear_ds(600, 7);
        let mut rng = SimRng::new(8);
        let curve = learning_curve(ModelKind::Linear, &ds, &[0.05, 0.3, 1.0], &mut rng);
        assert_eq!(curve.len(), 3);
        assert!(curve[0].train_rows < curve[2].train_rows);
        // More data never hurts a well-specified linear model (big margin
        // to absorb noise).
        assert!(
            curve[2].metrics.rmse <= curve[0].metrics.rmse * 1.5,
            "rmse {} -> {}",
            curve[0].metrics.rmse,
            curve[2].metrics.rmse
        );
    }

    #[test]
    fn evaluate_matches_direct_computation() {
        let ds = linear_ds(100, 5);
        let mut rng = SimRng::new(6);
        let model = ModelKind::Linear.fit(&ds, &mut rng);
        let m = evaluate(&model, &ds);
        assert!(m.r2 > 0.99);
    }
}
