//! Model validation: holdout and k-fold evaluation.

use crate::dataset::Dataset;
use crate::metrics::RegressionMetrics;
use crate::model::{AnyModel, ModelKind, Regressor};
use acm_sim::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Scores a trained model on an evaluation dataset.
pub fn evaluate(model: &AnyModel, ds: &Dataset) -> RegressionMetrics {
    let preds = model.predict(ds.rows());
    RegressionMetrics::compute(ds.targets(), &preds)
}

/// Trains `kind` on a shuffled `train_frac` split and scores it on the rest.
pub fn holdout_eval(
    kind: ModelKind,
    ds: &Dataset,
    train_frac: f64,
    rng: &mut SimRng,
) -> (AnyModel, RegressionMetrics) {
    let (train, test) = ds.split(train_frac, rng);
    let model = kind.fit(&train, rng);
    let metrics = evaluate(&model, &test);
    (model, metrics)
}

/// Per-fold and aggregate results of a k-fold cross-validation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CvResult {
    /// Model family evaluated.
    pub kind: ModelKind,
    /// Metrics on each validation fold.
    pub folds: Vec<RegressionMetrics>,
}

impl CvResult {
    /// Mean RMSE across folds.
    pub fn mean_rmse(&self) -> f64 {
        self.folds.iter().map(|m| m.rmse).sum::<f64>() / self.folds.len() as f64
    }

    /// Mean MAE across folds.
    pub fn mean_mae(&self) -> f64 {
        self.folds.iter().map(|m| m.mae).sum::<f64>() / self.folds.len() as f64
    }

    /// Mean R² across folds.
    pub fn mean_r2(&self) -> f64 {
        self.folds.iter().map(|m| m.r2).sum::<f64>() / self.folds.len() as f64
    }

    /// Standard deviation of the per-fold RMSE (stability of the family).
    pub fn rmse_std(&self) -> f64 {
        let mean = self.mean_rmse();
        let var = self
            .folds
            .iter()
            .map(|m| (m.rmse - mean) * (m.rmse - mean))
            .sum::<f64>()
            / self.folds.len() as f64;
        var.sqrt()
    }
}

/// One point of a learning curve.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LearningPoint {
    /// Training rows used.
    pub train_rows: usize,
    /// Holdout metrics at that training size.
    pub metrics: RegressionMetrics,
}

/// Learning curve: trains `kind` on growing prefixes of a shuffled training
/// split and scores each on a fixed holdout — how much feature data the
/// F2PM initial phase actually needs.
pub fn learning_curve(
    kind: ModelKind,
    ds: &Dataset,
    fractions: &[f64],
    rng: &mut SimRng,
) -> Vec<LearningPoint> {
    assert!(!fractions.is_empty(), "need at least one training fraction");
    let (train, test) = ds.split(0.75, rng);
    fractions
        .iter()
        .map(|&frac| {
            assert!((0.0..=1.0).contains(&frac), "fraction out of range");
            let rows = ((train.len() as f64 * frac).round() as usize).max(2);
            let subset: Vec<usize> = (0..rows.min(train.len())).collect();
            let slice = train.subset(&subset);
            let model = kind.fit(&slice, rng);
            LearningPoint {
                train_rows: slice.len(),
                metrics: evaluate(&model, &test),
            }
        })
        .collect()
}

/// k-fold cross-validation of one model family.
pub fn cross_validate(kind: ModelKind, ds: &Dataset, k: usize, rng: &mut SimRng) -> CvResult {
    let folds = ds.k_folds(k, rng);
    let results = folds
        .iter()
        .map(|(train, val)| {
            let model = kind.fit(train, rng);
            evaluate(&model, val)
        })
        .collect();
    CvResult {
        kind,
        folds: results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_ds(n: usize, seed: u64) -> Dataset {
        let mut rng = SimRng::new(seed);
        let mut ds = Dataset::new(["a", "b"]);
        for _ in 0..n {
            let a = rng.uniform(0.0, 1.0);
            let b = rng.uniform(0.0, 1.0);
            ds.push(vec![a, b], 2.0 * a + b + rng.normal(0.0, 0.05));
        }
        ds
    }

    #[test]
    fn holdout_eval_scores_well_on_learnable_data() {
        let ds = linear_ds(400, 1);
        let mut rng = SimRng::new(2);
        let (_, metrics) = holdout_eval(ModelKind::Linear, &ds, 0.75, &mut rng);
        assert!(metrics.r2 > 0.98, "{metrics}");
        assert_eq!(metrics.n, 100);
    }

    #[test]
    fn cross_validation_covers_k_folds() {
        let ds = linear_ds(200, 3);
        let mut rng = SimRng::new(4);
        let cv = cross_validate(ModelKind::Ridge, &ds, 5, &mut rng);
        assert_eq!(cv.folds.len(), 5);
        assert!(cv.mean_r2() > 0.95);
        assert!(cv.mean_rmse() < 0.2);
        assert!(cv.rmse_std() < cv.mean_rmse());
        assert!(cv.mean_mae() <= cv.mean_rmse());
    }

    #[test]
    fn learning_curve_improves_with_data() {
        let ds = linear_ds(600, 7);
        let mut rng = SimRng::new(8);
        let curve = learning_curve(ModelKind::Linear, &ds, &[0.05, 0.3, 1.0], &mut rng);
        assert_eq!(curve.len(), 3);
        assert!(curve[0].train_rows < curve[2].train_rows);
        // More data never hurts a well-specified linear model (big margin
        // to absorb noise).
        assert!(
            curve[2].metrics.rmse <= curve[0].metrics.rmse * 1.5,
            "rmse {} -> {}",
            curve[0].metrics.rmse,
            curve[2].metrics.rmse
        );
    }

    #[test]
    fn evaluate_matches_direct_computation() {
        let ds = linear_ds(100, 5);
        let mut rng = SimRng::new(6);
        let model = ModelKind::Linear.fit(&ds, &mut rng);
        let m = evaluate(&model, &ds);
        assert!(m.r2 > 0.99);
    }
}
