//! Regression quality metrics.
//!
//! F2PM "provides the user with a series of metrics which allow to select
//! which is the most effective ML model" (paper Sec. III). These are the
//! standard ones the model-selection harness reports.

use serde::{Deserialize, Serialize};

/// Bundle of regression metrics on one evaluation set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegressionMetrics {
    /// Mean absolute error.
    pub mae: f64,
    /// Root mean squared error.
    pub rmse: f64,
    /// Coefficient of determination.
    pub r2: f64,
    /// Mean absolute percentage error (over targets with |y| > eps).
    pub mape: f64,
    /// Number of evaluated points.
    pub n: usize,
}

impl RegressionMetrics {
    /// Computes all metrics for predictions against truths. Panics on
    /// length mismatch or empty input.
    pub fn compute(truth: &[f64], pred: &[f64]) -> Self {
        assert_eq!(truth.len(), pred.len(), "length mismatch");
        assert!(!truth.is_empty(), "cannot score empty evaluation set");
        let n = truth.len() as f64;
        let mae = truth
            .iter()
            .zip(pred)
            .map(|(t, p)| (t - p).abs())
            .sum::<f64>()
            / n;
        let mse = truth
            .iter()
            .zip(pred)
            .map(|(t, p)| (t - p) * (t - p))
            .sum::<f64>()
            / n;
        let mean = truth.iter().sum::<f64>() / n;
        let ss_tot: f64 = truth.iter().map(|t| (t - mean) * (t - mean)).sum();
        let ss_res: f64 = truth.iter().zip(pred).map(|(t, p)| (t - p) * (t - p)).sum();
        let r2 = if ss_tot > 0.0 {
            1.0 - ss_res / ss_tot
        } else {
            0.0
        };
        const EPS: f64 = 1e-9;
        let (ape_sum, ape_n) = truth
            .iter()
            .zip(pred)
            .filter(|(t, _)| t.abs() > EPS)
            .fold((0.0, 0usize), |(s, c), (t, p)| {
                (s + ((t - p) / t).abs(), c + 1)
            });
        let mape = if ape_n > 0 {
            ape_sum / ape_n as f64
        } else {
            0.0
        };
        RegressionMetrics {
            mae,
            rmse: mse.sqrt(),
            r2,
            mape,
            n: truth.len(),
        }
    }
}

impl std::fmt::Display for RegressionMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MAE={:.3} RMSE={:.3} R²={:.4} MAPE={:.1}% (n={})",
            self.mae,
            self.rmse,
            self.r2,
            self.mape * 100.0,
            self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let y = [1.0, 2.0, 3.0];
        let m = RegressionMetrics::compute(&y, &y);
        assert_eq!(m.mae, 0.0);
        assert_eq!(m.rmse, 0.0);
        assert_eq!(m.r2, 1.0);
        assert_eq!(m.mape, 0.0);
        assert_eq!(m.n, 3);
    }

    #[test]
    fn constant_prediction_has_zero_r2() {
        let truth = [1.0, 2.0, 3.0];
        let pred = [2.0, 2.0, 2.0]; // predicting the mean
        let m = RegressionMetrics::compute(&truth, &pred);
        assert!((m.r2 - 0.0).abs() < 1e-12);
        assert!((m.mae - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn known_values() {
        let truth = [10.0, 20.0];
        let pred = [12.0, 16.0];
        let m = RegressionMetrics::compute(&truth, &pred);
        assert!((m.mae - 3.0).abs() < 1e-12);
        assert!((m.rmse - (10.0f64).sqrt()).abs() < 1e-12);
        // MAPE = (0.2 + 0.2)/2 = 0.2
        assert!((m.mape - 0.2).abs() < 1e-12);
    }

    #[test]
    fn mape_skips_zero_targets() {
        let truth = [0.0, 10.0];
        let pred = [1.0, 11.0];
        let m = RegressionMetrics::compute(&truth, &pred);
        assert!((m.mape - 0.1).abs() < 1e-12);
    }

    #[test]
    fn constant_target_r2_is_zero() {
        let truth = [5.0, 5.0];
        let pred = [5.0, 6.0];
        let m = RegressionMetrics::compute(&truth, &pred);
        assert_eq!(m.r2, 0.0);
    }

    #[test]
    fn worse_than_mean_gives_negative_r2() {
        let truth = [1.0, 2.0, 3.0];
        let pred = [3.0, 2.0, 1.0];
        let m = RegressionMetrics::compute(&truth, &pred);
        assert!(m.r2 < 0.0);
    }

    #[test]
    fn display_is_compact() {
        let m = RegressionMetrics::compute(&[1.0, 2.0], &[1.0, 2.0]);
        let s = format!("{m}");
        assert!(s.contains("MAE=0.000"));
        assert!(s.contains("n=2"));
    }
}
