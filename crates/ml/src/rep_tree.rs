//! REP-Tree: a variance-reduction regression tree with reduced-error
//! pruning — the model the paper selected for MTTF prediction ("Based on
//! our previous results in \[26\], we selected REP Tree", Sec. VI-A).
//!
//! Growing: greedy binary splits minimising the sum of squared errors, with
//! depth / support limits. Pruning: the classic *reduced-error* scheme —
//! hold out a fraction of the training data, then collapse any internal
//! node whose subtree does not beat its own leaf-mean on the holdout.

use crate::dataset::Dataset;
use acm_sim::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Growth and pruning hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepTreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples a node needs to be considered for splitting.
    pub min_samples_split: usize,
    /// Minimum samples each child of a split must retain.
    pub min_samples_leaf: usize,
    /// Fraction of the training data held out for reduced-error pruning
    /// (0 disables pruning).
    pub prune_fraction: f64,
}

impl Default for RepTreeConfig {
    fn default() -> Self {
        RepTreeConfig {
            max_depth: 14,
            min_samples_split: 8,
            min_samples_leaf: 4,
            prune_fraction: 0.25,
        }
    }
}

/// Arena node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Mean of the training targets that reached this node (the value
        /// the node would predict if collapsed).
        mean: f64,
        /// SSE reduction this split achieved on the grow set (drives
        /// [`RepTree::feature_importance`]).
        gain: f64,
        left: usize,
        right: usize,
    },
}

/// Leaf sentinel in [`RepTree::flat_feature`] (no real feature index gets
/// near `u32::MAX`).
const FLAT_LEAF: u32 = u32::MAX;

/// A trained REP-Tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepTree {
    nodes: Vec<Node>,
    root: usize,
    /// Flat structure-of-arrays mirror of the compact arena, rebuilt by
    /// [`RepTree::compact`]. The pre-order layout makes every left child
    /// the next slot, so a walk needs only the split feature (or
    /// [`FLAT_LEAF`]), the threshold (leaf slots reuse it for the
    /// prediction) and the right-child index — 16 bytes of touched state
    /// per node versus the 56-byte `Node` enum, and no discriminant
    /// branch.
    flat_feature: Vec<u32>,
    flat_threshold: Vec<f64>,
    flat_right: Vec<u32>,
}

impl RepTree {
    /// Fits a tree. `rng` draws the grow/prune split, so training is
    /// deterministic per seed.
    pub fn fit(ds: &Dataset, cfg: &RepTreeConfig, rng: &mut SimRng) -> Self {
        assert!(!ds.is_empty(), "cannot fit on empty dataset");
        assert!(
            (0.0..1.0).contains(&cfg.prune_fraction),
            "prune fraction must be in [0,1)"
        );
        let (grow, prune) = if cfg.prune_fraction > 0.0 && ds.len() >= 8 {
            let (g, p) = ds.split(1.0 - cfg.prune_fraction, rng);
            if g.is_empty() {
                (ds.clone(), Dataset::new(ds.feature_names().to_vec()))
            } else {
                (g, p)
            }
        } else {
            (ds.clone(), Dataset::new(ds.feature_names().to_vec()))
        };

        let mut builder = Builder {
            nodes: Vec::new(),
            cfg,
            ds: &grow,
        };
        let indices: Vec<usize> = (0..grow.len()).collect();
        let root = builder.build(&indices, 0);
        let mut tree = RepTree {
            nodes: builder.nodes,
            root,
            flat_feature: Vec::new(),
            flat_threshold: Vec::new(),
            flat_right: Vec::new(),
        };
        if !prune.is_empty() {
            tree.reduced_error_prune(&prune);
        }
        tree.compact();
        tree
    }

    /// Rewrites the arena in pre-order DFS layout with the root at index 0:
    /// a node's left child is always the next slot, subtrees are
    /// contiguous, and the orphan nodes left behind by pruning are dropped.
    /// Prediction walks then move mostly forward through one cache-resident
    /// array instead of hopping across the build-order arena.
    fn compact(&mut self) {
        fn copy(nodes: &[Node], idx: usize, out: &mut Vec<Node>) -> usize {
            let slot = out.len();
            match &nodes[idx] {
                Node::Leaf { value } => out.push(Node::Leaf { value: *value }),
                Node::Split {
                    feature,
                    threshold,
                    mean,
                    gain,
                    left,
                    right,
                } => {
                    let (feature, threshold, mean, gain, left, right) =
                        (*feature, *threshold, *mean, *gain, *left, *right);
                    out.push(Node::Leaf { value: 0.0 }); // placeholder
                    let l = copy(nodes, left, out);
                    let r = copy(nodes, right, out);
                    out[slot] = Node::Split {
                        feature,
                        threshold,
                        mean,
                        gain,
                        left: l,
                        right: r,
                    };
                }
            }
            slot
        }
        let mut out = Vec::with_capacity(self.nodes.len());
        let root = copy(&self.nodes, self.root, &mut out);
        self.nodes = out;
        self.root = root;
        self.rebuild_flat();
    }

    /// Regenerates the flat prediction arena from the compact node arena.
    fn rebuild_flat(&mut self) {
        let n = self.nodes.len();
        self.flat_feature.clear();
        self.flat_feature.reserve_exact(n);
        self.flat_threshold.clear();
        self.flat_threshold.reserve_exact(n);
        self.flat_right.clear();
        self.flat_right.reserve_exact(n);
        for (slot, node) in self.nodes.iter().enumerate() {
            match node {
                Node::Leaf { value } => {
                    self.flat_feature.push(FLAT_LEAF);
                    self.flat_threshold.push(*value);
                    self.flat_right.push(0);
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    debug_assert_eq!(*left, slot + 1, "compact layout: left = next slot");
                    debug_assert!(*feature < FLAT_LEAF as usize && *right <= u32::MAX as usize);
                    self.flat_feature.push(*feature as u32);
                    self.flat_threshold.push(*threshold);
                    self.flat_right.push(*right as u32);
                }
            }
        }
    }

    /// Arena size. After [`RepTree::fit`] the arena is compact: exactly the
    /// reachable nodes, `2 * leaf_count() - 1`.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Predicts one row.
    pub fn predict_one(&self, x: &[f64]) -> f64 {
        if self.flat_feature.is_empty() {
            return self.predict_one_nodes(x);
        }
        let feat = self.flat_feature.as_slice();
        let vals = self.flat_threshold.as_slice();
        let right = self.flat_right.as_slice();
        let mut idx = 0usize;
        loop {
            let f = feat[idx];
            if f == FLAT_LEAF {
                return vals[idx];
            }
            // Pre-order arena: the left child is always the next slot.
            idx = if x[f as usize] <= vals[idx] {
                idx + 1
            } else {
                right[idx] as usize
            };
        }
    }

    /// Enum-arena walk, used before `compact()` builds the flat arena.
    fn predict_one_nodes(&self, x: &[f64]) -> f64 {
        let mut idx = self.root;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    idx = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Predicts many rows in one pass over the compact arena, appending one
    /// prediction per row to `out` (which is cleared first). Accepts any
    /// iterator of feature slices so callers can feed packed scratch
    /// buffers without materialising a `Vec<Vec<f64>>`.
    ///
    /// Rows descend the flat arena four abreast: the four walks carry no
    /// data dependence on each other, so the per-level loads overlap
    /// instead of serialising on one chain of cache misses.
    pub fn predict_batch_into<'a, I>(&self, rows: I, out: &mut Vec<f64>)
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        out.clear();
        if self.flat_feature.is_empty() {
            out.extend(rows.into_iter().map(|x| self.predict_one_nodes(x)));
            return;
        }
        let feat = self.flat_feature.as_slice();
        let vals = self.flat_threshold.as_slice();
        let right = self.flat_right.as_slice();
        let mut it = rows.into_iter();
        let (lo, _) = it.size_hint();
        out.reserve(lo);
        loop {
            let Some(r0) = it.next() else { return };
            let head = (it.next(), it.next(), it.next());
            let (Some(r1), Some(r2), Some(r3)) = head else {
                // Fewer than four rows left: finish them one at a time.
                out.push(self.predict_one(r0));
                for r in [head.0, head.1, head.2].into_iter().flatten() {
                    out.push(self.predict_one(r));
                }
                return;
            };
            let (mut i0, mut i1, mut i2, mut i3) = (0usize, 0usize, 0usize, 0usize);
            loop {
                let (f0, f1, f2, f3) = (feat[i0], feat[i1], feat[i2], feat[i3]);
                if f0 == FLAT_LEAF && f1 == FLAT_LEAF && f2 == FLAT_LEAF && f3 == FLAT_LEAF {
                    break;
                }
                // Finished rows park at their leaf slot while the others
                // keep descending.
                if f0 != FLAT_LEAF {
                    i0 = if r0[f0 as usize] <= vals[i0] {
                        i0 + 1
                    } else {
                        right[i0] as usize
                    };
                }
                if f1 != FLAT_LEAF {
                    i1 = if r1[f1 as usize] <= vals[i1] {
                        i1 + 1
                    } else {
                        right[i1] as usize
                    };
                }
                if f2 != FLAT_LEAF {
                    i2 = if r2[f2 as usize] <= vals[i2] {
                        i2 + 1
                    } else {
                        right[i2] as usize
                    };
                }
                if f3 != FLAT_LEAF {
                    i3 = if r3[f3 as usize] <= vals[i3] {
                        i3 + 1
                    } else {
                        right[i3] as usize
                    };
                }
            }
            out.extend_from_slice(&[vals[i0], vals[i1], vals[i2], vals[i3]]);
        }
    }

    /// Predicts many rows. Equivalent to mapping [`RepTree::predict_one`],
    /// but dispatches once and walks the compact arena back to back.
    pub fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        let mut out = Vec::new();
        self.predict_batch_into(rows.iter().map(|r| r.as_slice()), &mut out);
        out
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.count_leaves(self.root)
    }

    /// Depth of the tree (a single leaf has depth 0).
    pub fn depth(&self) -> usize {
        self.node_depth(self.root)
    }

    /// Per-feature importance: the total SSE reduction attributed to splits
    /// on each feature (post-pruning), normalised to sum to 1 when any
    /// split survives. `width` is the feature-vector width.
    pub fn feature_importance(&self, width: usize) -> Vec<f64> {
        let mut imp = vec![0.0; width];
        self.accumulate_importance(self.root, &mut imp);
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for v in &mut imp {
                *v /= total;
            }
        }
        imp
    }

    fn accumulate_importance(&self, idx: usize, imp: &mut [f64]) {
        if let Node::Split {
            feature,
            gain,
            left,
            right,
            ..
        } = &self.nodes[idx]
        {
            if *feature < imp.len() {
                imp[*feature] += gain.max(0.0);
            }
            self.accumulate_importance(*left, imp);
            self.accumulate_importance(*right, imp);
        }
    }

    fn count_leaves(&self, idx: usize) -> usize {
        match &self.nodes[idx] {
            Node::Leaf { .. } => 1,
            Node::Split { left, right, .. } => self.count_leaves(*left) + self.count_leaves(*right),
        }
    }

    fn node_depth(&self, idx: usize) -> usize {
        match &self.nodes[idx] {
            Node::Leaf { .. } => 0,
            Node::Split { left, right, .. } => {
                1 + self.node_depth(*left).max(self.node_depth(*right))
            }
        }
    }

    /// Reduced-error pruning against a holdout set: bottom-up, replace any
    /// split whose collapsed-leaf squared error on the holdout is no worse
    /// than its subtree's.
    fn reduced_error_prune(&mut self, holdout: &Dataset) {
        let indices: Vec<usize> = (0..holdout.len()).collect();
        self.prune_node(self.root, &indices, holdout);
    }

    /// Returns the subtree's squared error on `indices` after pruning it.
    fn prune_node(&mut self, idx: usize, indices: &[usize], holdout: &Dataset) -> f64 {
        let (feature, threshold, mean, left, right) = match &self.nodes[idx] {
            Node::Leaf { value } => {
                let v = *value;
                return indices
                    .iter()
                    .map(|&i| {
                        let d = holdout.target(i) - v;
                        d * d
                    })
                    .sum();
            }
            Node::Split {
                feature,
                threshold,
                mean,
                left,
                right,
                ..
            } => (*feature, *threshold, *mean, *left, *right),
        };

        let (li, ri): (Vec<usize>, Vec<usize>) = indices
            .iter()
            .partition(|&&i| holdout.row(i)[feature] <= threshold);
        let subtree_err =
            self.prune_node(left, &li, holdout) + self.prune_node(right, &ri, holdout);
        let leaf_err: f64 = indices
            .iter()
            .map(|&i| {
                let d = holdout.target(i) - mean;
                d * d
            })
            .sum();
        // Collapse when the leaf is at least as good on held-out data. Nodes
        // that see no holdout rows keep their structure (no evidence).
        if !indices.is_empty() && leaf_err <= subtree_err {
            self.nodes[idx] = Node::Leaf { value: mean };
            leaf_err
        } else {
            subtree_err
        }
    }
}

impl crate::model::Regressor for RepTree {
    fn predict_one(&self, x: &[f64]) -> f64 {
        RepTree::predict_one(self, x)
    }
    fn predict(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        self.predict_batch(rows)
    }
    fn name(&self) -> &'static str {
        "rep-tree"
    }
}

struct Builder<'a> {
    nodes: Vec<Node>,
    cfg: &'a RepTreeConfig,
    ds: &'a Dataset,
}

impl Builder<'_> {
    fn build(&mut self, indices: &[usize], depth: usize) -> usize {
        let mean = self.mean(indices);
        if depth >= self.cfg.max_depth
            || indices.len() < self.cfg.min_samples_split
            || self.is_pure(indices)
        {
            return self.push(Node::Leaf { value: mean });
        }
        match self.best_split(indices) {
            None => self.push(Node::Leaf { value: mean }),
            Some((feature, threshold, gain)) => {
                let (li, ri): (Vec<usize>, Vec<usize>) = indices
                    .iter()
                    .partition(|&&i| self.ds.row(i)[feature] <= threshold);
                debug_assert!(
                    li.len() >= self.cfg.min_samples_leaf && ri.len() >= self.cfg.min_samples_leaf
                );
                let left = self.build(&li, depth + 1);
                let right = self.build(&ri, depth + 1);
                self.push(Node::Split {
                    feature,
                    threshold,
                    mean,
                    gain,
                    left,
                    right,
                })
            }
        }
    }

    fn push(&mut self, node: Node) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    fn mean(&self, indices: &[usize]) -> f64 {
        if indices.is_empty() {
            return 0.0;
        }
        indices.iter().map(|&i| self.ds.target(i)).sum::<f64>() / indices.len() as f64
    }

    fn is_pure(&self, indices: &[usize]) -> bool {
        let first = self.ds.target(indices[0]);
        indices
            .iter()
            .all(|&i| (self.ds.target(i) - first).abs() < 1e-12)
    }

    /// Best `(feature, threshold, sse_reduction)`, scanning sorted values
    /// with prefix sums. Returns `None` when no admissible split reduces the
    /// error.
    fn best_split(&self, indices: &[usize]) -> Option<(usize, f64, f64)> {
        let n = indices.len() as f64;
        let total_sum: f64 = indices.iter().map(|&i| self.ds.target(i)).sum();
        let total_sq: f64 = indices
            .iter()
            .map(|&i| {
                let y = self.ds.target(i);
                y * y
            })
            .sum();
        let parent_sse = total_sq - total_sum * total_sum / n;

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
        let mut order: Vec<usize> = Vec::with_capacity(indices.len());
        for feature in 0..self.ds.width() {
            order.clear();
            order.extend_from_slice(indices);
            order.sort_by(|&a, &b| {
                self.ds.row(a)[feature]
                    .partial_cmp(&self.ds.row(b)[feature])
                    .unwrap()
            });
            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            for (k, &i) in order.iter().enumerate().take(order.len() - 1) {
                let y = self.ds.target(i);
                left_sum += y;
                left_sq += y * y;
                let nl = (k + 1) as f64;
                let nr = n - nl;
                if (k + 1) < self.cfg.min_samples_leaf
                    || (order.len() - k - 1) < self.cfg.min_samples_leaf
                {
                    continue;
                }
                let x_here = self.ds.row(i)[feature];
                let x_next = self.ds.row(order[k + 1])[feature];
                if x_here == x_next {
                    continue; // cannot split between equal values
                }
                let right_sum = total_sum - left_sum;
                let right_sq = total_sq - left_sq;
                let sse =
                    (left_sq - left_sum * left_sum / nl) + (right_sq - right_sum * right_sum / nr);
                if best.as_ref().is_none_or(|(_, _, b)| sse < *b) {
                    best = Some((feature, 0.5 * (x_here + x_next), sse));
                }
            }
        }
        match best {
            Some((f, t, sse)) if sse < parent_sse - 1e-12 => Some((f, t, parent_sse - sse)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A step function: y = 10 for x < 0.5, y = 20 otherwise.
    fn step_ds(n: usize, seed: u64) -> Dataset {
        let mut rng = SimRng::new(seed);
        let mut ds = Dataset::new(["x"]);
        for _ in 0..n {
            let x = rng.uniform(0.0, 1.0);
            let y = if x < 0.5 { 10.0 } else { 20.0 };
            ds.push(vec![x], y + rng.normal(0.0, 0.1));
        }
        ds
    }

    #[test]
    fn learns_a_step_function() {
        let ds = step_ds(500, 1);
        let mut rng = SimRng::new(2);
        let tree = RepTree::fit(&ds, &RepTreeConfig::default(), &mut rng);
        assert!((tree.predict_one(&[0.2]) - 10.0).abs() < 0.5);
        assert!((tree.predict_one(&[0.8]) - 20.0).abs() < 0.5);
    }

    #[test]
    fn pruning_collapses_noise_splits() {
        // Pure-noise target: the pruned tree should be (nearly) a stump.
        let mut rng = SimRng::new(3);
        let mut ds = Dataset::new(["x1", "x2"]);
        for _ in 0..400 {
            ds.push(
                vec![rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)],
                rng.normal(0.0, 1.0),
            );
        }
        let unpruned = RepTree::fit(
            &ds,
            &RepTreeConfig {
                prune_fraction: 0.0,
                ..Default::default()
            },
            &mut SimRng::new(4),
        );
        let pruned = RepTree::fit(&ds, &RepTreeConfig::default(), &mut SimRng::new(4));
        assert!(
            pruned.leaf_count() * 4 < unpruned.leaf_count(),
            "pruned {} vs unpruned {}",
            pruned.leaf_count(),
            unpruned.leaf_count()
        );
    }

    #[test]
    fn respects_max_depth() {
        let ds = step_ds(500, 5);
        let cfg = RepTreeConfig {
            max_depth: 2,
            prune_fraction: 0.0,
            ..Default::default()
        };
        let tree = RepTree::fit(&ds, &cfg, &mut SimRng::new(6));
        assert!(tree.depth() <= 2);
        assert!(tree.leaf_count() <= 4);
    }

    #[test]
    fn constant_target_is_a_single_leaf() {
        let mut ds = Dataset::new(["x"]);
        for i in 0..100 {
            ds.push(vec![i as f64], 7.0);
        }
        let tree = RepTree::fit(&ds, &RepTreeConfig::default(), &mut SimRng::new(7));
        assert_eq!(tree.leaf_count(), 1);
        assert_eq!(tree.predict_one(&[55.0]), 7.0);
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let ds = step_ds(40, 8);
        let cfg = RepTreeConfig {
            min_samples_leaf: 15,
            min_samples_split: 30,
            prune_fraction: 0.0,
            ..Default::default()
        };
        let tree = RepTree::fit(&ds, &cfg, &mut SimRng::new(9));
        // With 40 rows and 15-per-leaf, at most 2 leaves are possible.
        assert!(tree.leaf_count() <= 2);
    }

    #[test]
    fn piecewise_linear_target_approximated() {
        // y = |x|: a tree needs several splits to approximate the vee.
        let mut ds = Dataset::new(["x"]);
        let mut rng = SimRng::new(10);
        for _ in 0..1000 {
            let x = rng.uniform(-2.0, 2.0);
            ds.push(vec![x], x.abs());
        }
        let tree = RepTree::fit(&ds, &RepTreeConfig::default(), &mut SimRng::new(11));
        for x in [-1.5, -0.5, 0.5, 1.5] {
            let p = tree.predict_one(&[x]);
            assert!((p - x.abs()).abs() < 0.25, "pred at {x} was {p}");
        }
    }

    #[test]
    fn irrelevant_feature_not_split_on() {
        // Feature 1 is pure noise, feature 0 carries the signal.
        let mut ds = Dataset::new(["signal", "noise"]);
        let mut rng = SimRng::new(12);
        for _ in 0..600 {
            let s = rng.uniform(0.0, 1.0);
            let n = rng.uniform(0.0, 1.0);
            ds.push(vec![s, n], if s < 0.3 { 1.0 } else { 5.0 });
        }
        let tree = RepTree::fit(&ds, &RepTreeConfig::default(), &mut SimRng::new(13));
        // Prediction must be driven by feature 0 regardless of feature 1.
        for noise in [0.1, 0.9] {
            assert!((tree.predict_one(&[0.1, noise]) - 1.0).abs() < 0.3);
            assert!((tree.predict_one(&[0.9, noise]) - 5.0).abs() < 0.3);
        }
    }

    #[test]
    fn feature_importance_identifies_the_signal() {
        let mut ds = Dataset::new(["signal", "noise"]);
        let mut rng = SimRng::new(21);
        for _ in 0..600 {
            let s = rng.uniform(0.0, 1.0);
            let n = rng.uniform(0.0, 1.0);
            ds.push(vec![s, n], if s < 0.4 { 2.0 } else { 9.0 });
        }
        let tree = RepTree::fit(&ds, &RepTreeConfig::default(), &mut SimRng::new(22));
        let imp = tree.feature_importance(2);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > 0.9, "signal importance {imp:?}");
    }

    #[test]
    fn stump_has_zero_importance() {
        let mut ds = Dataset::new(["x"]);
        for i in 0..50 {
            ds.push(vec![i as f64], 1.0);
        }
        let tree = RepTree::fit(&ds, &RepTreeConfig::default(), &mut SimRng::new(23));
        assert_eq!(tree.feature_importance(1), vec![0.0]);
    }

    #[test]
    fn arena_is_compact_after_pruning() {
        // Pure-noise target prunes aggressively, orphaning most of the
        // grown arena; compaction must drop every orphan.
        let mut rng = SimRng::new(31);
        let mut ds = Dataset::new(["x1", "x2"]);
        for _ in 0..400 {
            ds.push(
                vec![rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)],
                rng.normal(0.0, 1.0),
            );
        }
        let tree = RepTree::fit(&ds, &RepTreeConfig::default(), &mut SimRng::new(32));
        assert_eq!(tree.node_count(), 2 * tree.leaf_count() - 1);
    }

    #[test]
    fn batch_predictions_match_scalar_walks() {
        let ds = step_ds(500, 41);
        let tree = RepTree::fit(&ds, &RepTreeConfig::default(), &mut SimRng::new(42));
        let mut rng = SimRng::new(43);
        let rows: Vec<Vec<f64>> = (0..257).map(|_| vec![rng.uniform(-0.5, 1.5)]).collect();
        let batch = tree.predict_batch(&rows);
        assert_eq!(batch.len(), rows.len());
        for (row, b) in rows.iter().zip(&batch) {
            assert_eq!(*b, tree.predict_one(row), "row {row:?}");
        }
        // The scratch-reusing entry point clears and refills.
        let mut out = vec![f64::NAN; 3];
        tree.predict_batch_into(rows.iter().map(|r| r.as_slice()), &mut out);
        assert_eq!(out, batch);
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = step_ds(300, 14);
        let t1 = RepTree::fit(&ds, &RepTreeConfig::default(), &mut SimRng::new(15));
        let t2 = RepTree::fit(&ds, &RepTreeConfig::default(), &mut SimRng::new(15));
        assert_eq!(t1, t2);
    }

    #[test]
    fn tiny_dataset_becomes_leaf() {
        let mut ds = Dataset::new(["x"]);
        ds.push(vec![1.0], 2.0);
        ds.push(vec![2.0], 4.0);
        let tree = RepTree::fit(&ds, &RepTreeConfig::default(), &mut SimRng::new(16));
        assert_eq!(tree.leaf_count(), 1);
        assert!((tree.predict_one(&[1.5]) - 3.0).abs() < 1e-12);
    }
}
