//! Common model interface and the F2PM model menu.

use crate::dataset::Dataset;
use crate::lasso::LassoRegression;
use crate::linear::LinearRegression;
use crate::lssvm::LsSvm;
use crate::m5p::M5Prime;
use crate::rep_tree::RepTree;
use crate::ridge::RidgeRegression;
use crate::svr::LinearSvr;
use acm_sim::rng::SimRng;
use serde::{Deserialize, Serialize};

/// A trained regression model.
pub trait Regressor: Send + Sync {
    /// Predicts the target for one feature row.
    fn predict_one(&self, x: &[f64]) -> f64;

    /// Predicts many rows.
    fn predict(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|r| self.predict_one(r)).collect()
    }

    /// Stable display name of the model family.
    fn name(&self) -> &'static str;
}

/// The model families F2PM supports (paper Sec. III): "Linear regression,
/// M5P, REP-Tree, Lasso as a predictor, Support-Vector Machine, and
/// Least-Square Support-Vector Machine" — plus Ridge, which the toolchain
/// uses internally and exposes for ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Ordinary least squares.
    Linear,
    /// Tikhonov-regularised least squares.
    Ridge,
    /// L1-regularised linear model used directly as a predictor.
    LassoPredictor,
    /// Regression tree with reduced-error pruning (the paper's deployed
    /// model).
    RepTree,
    /// M5 model tree (linear models at the leaves).
    M5P,
    /// Linear ε-insensitive support-vector regression.
    Svr,
    /// Least-squares SVM with RBF kernel.
    LsSvm,
}

impl ModelKind {
    /// Every family in the menu, in canonical order.
    pub const ALL: [ModelKind; 7] = [
        ModelKind::Linear,
        ModelKind::Ridge,
        ModelKind::LassoPredictor,
        ModelKind::RepTree,
        ModelKind::M5P,
        ModelKind::Svr,
        ModelKind::LsSvm,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Linear => "linear",
            ModelKind::Ridge => "ridge",
            ModelKind::LassoPredictor => "lasso",
            ModelKind::RepTree => "rep-tree",
            ModelKind::M5P => "m5p",
            ModelKind::Svr => "svr",
            ModelKind::LsSvm => "ls-svm",
        }
    }

    /// Trains this family on `ds` with default hyper-parameters. `rng`
    /// drives internal splits (pruning holdouts, SGD shuffling) so training
    /// is deterministic per seed.
    pub fn fit(self, ds: &Dataset, rng: &mut SimRng) -> AnyModel {
        match self {
            ModelKind::Linear => AnyModel::Linear(LinearRegression::fit(ds)),
            ModelKind::Ridge => AnyModel::Ridge(RidgeRegression::fit(ds, 0.01)),
            ModelKind::LassoPredictor => {
                AnyModel::Lasso(LassoRegression::fit(ds, LassoRegression::default_alpha(ds)))
            }
            ModelKind::RepTree => AnyModel::RepTree(RepTree::fit(ds, &Default::default(), rng)),
            ModelKind::M5P => AnyModel::M5P(M5Prime::fit(ds, &Default::default())),
            ModelKind::Svr => AnyModel::Svr(LinearSvr::fit(ds, &Default::default(), rng)),
            ModelKind::LsSvm => AnyModel::LsSvm(LsSvm::fit(ds, &Default::default(), rng)),
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A trained model from any family (closed enum so it serialises and avoids
/// trait objects on hot prediction paths).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum AnyModel {
    /// Trained OLS model.
    Linear(LinearRegression),
    /// Trained ridge model.
    Ridge(RidgeRegression),
    /// Trained Lasso model.
    Lasso(LassoRegression),
    /// Trained REP-Tree.
    RepTree(RepTree),
    /// Trained M5P model tree.
    M5P(M5Prime),
    /// Trained linear SVR.
    Svr(LinearSvr),
    /// Trained LS-SVM.
    LsSvm(LsSvm),
}

impl AnyModel {
    /// Which family this model belongs to.
    pub fn kind(&self) -> ModelKind {
        match self {
            AnyModel::Linear(_) => ModelKind::Linear,
            AnyModel::Ridge(_) => ModelKind::Ridge,
            AnyModel::Lasso(_) => ModelKind::LassoPredictor,
            AnyModel::RepTree(_) => ModelKind::RepTree,
            AnyModel::M5P(_) => ModelKind::M5P,
            AnyModel::Svr(_) => ModelKind::Svr,
            AnyModel::LsSvm(_) => ModelKind::LsSvm,
        }
    }
}

impl Regressor for AnyModel {
    fn predict_one(&self, x: &[f64]) -> f64 {
        match self {
            AnyModel::Linear(m) => m.predict_one(x),
            AnyModel::Ridge(m) => m.predict_one(x),
            AnyModel::Lasso(m) => m.predict_one(x),
            AnyModel::RepTree(m) => m.predict_one(x),
            AnyModel::M5P(m) => m.predict_one(x),
            AnyModel::Svr(m) => m.predict_one(x),
            AnyModel::LsSvm(m) => m.predict_one(x),
        }
    }

    fn predict(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        // Dispatch the enum once per batch, not once per row; the tree
        // additionally gets its compact-arena batch walk.
        match self {
            AnyModel::Linear(m) => m.predict(rows),
            AnyModel::Ridge(m) => m.predict(rows),
            AnyModel::Lasso(m) => m.predict(rows),
            AnyModel::RepTree(m) => m.predict_batch(rows),
            AnyModel::M5P(m) => m.predict(rows),
            AnyModel::Svr(m) => m.predict(rows),
            AnyModel::LsSvm(m) => m.predict(rows),
        }
    }

    fn name(&self) -> &'static str {
        self.kind().name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y = 3a - 2b + 5 with a pinch of noise.
    fn linear_ds(n: usize, seed: u64) -> Dataset {
        let mut rng = SimRng::new(seed);
        let mut ds = Dataset::new(["a", "b"]);
        for _ in 0..n {
            let a = rng.uniform(0.0, 10.0);
            let b = rng.uniform(0.0, 10.0);
            let y = 3.0 * a - 2.0 * b + 5.0 + rng.normal(0.0, 0.01);
            ds.push(vec![a, b], y);
        }
        ds
    }

    #[test]
    fn every_family_fits_and_predicts_finite() {
        let ds = linear_ds(200, 1);
        let mut rng = SimRng::new(2);
        for kind in ModelKind::ALL {
            let model = kind.fit(&ds, &mut rng);
            assert_eq!(model.kind(), kind);
            let p = model.predict_one(&[5.0, 5.0]);
            assert!(p.is_finite(), "{kind} produced {p}");
            // y(5,5) = 10; every family should be in a generous band.
            assert!((p - 10.0).abs() < 10.0, "{kind} predicted {p}");
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = ModelKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ModelKind::ALL.len());
    }

    #[test]
    fn batch_predict_matches_single() {
        let ds = linear_ds(100, 3);
        let mut rng = SimRng::new(4);
        let model = ModelKind::Linear.fit(&ds, &mut rng);
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let batch = model.predict(&rows);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0], model.predict_one(&rows[0]));
        assert_eq!(batch[1], model.predict_one(&rows[1]));
    }
}
