//! Ridge (Tikhonov-regularised) regression.
//!
//! Same normal-equation machinery as [`crate::linear`] with a real
//! regularisation strength. Used by the toolchain as a robust linear
//! baseline and inside M5P leaf models.

use crate::dataset::Dataset;
use crate::linalg::dot;
use crate::linear::fit_l2;
use serde::{Deserialize, Serialize};

/// A trained ridge-regression model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RidgeRegression {
    weights: Vec<f64>,
    intercept: f64,
    lambda: f64,
}

impl RidgeRegression {
    /// Fits with regularisation strength `lambda` (on the standardised
    /// scale; `lambda = 0` reduces to OLS up to jitter).
    pub fn fit(ds: &Dataset, lambda: f64) -> Self {
        assert!(lambda >= 0.0, "lambda must be non-negative");
        let (weights, intercept) = fit_l2(ds, lambda.max(1e-8));
        RidgeRegression {
            weights,
            intercept,
            lambda,
        }
    }

    /// Weights in original feature units.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Intercept in target units.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// The regularisation strength used at fit time.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Predicts one row.
    pub fn predict_one(&self, x: &[f64]) -> f64 {
        dot(&self.weights, x) + self.intercept
    }
}

impl crate::model::Regressor for RidgeRegression {
    fn predict_one(&self, x: &[f64]) -> f64 {
        RidgeRegression::predict_one(self, x)
    }
    fn name(&self) -> &'static str {
        "ridge"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearRegression;
    use acm_sim::rng::SimRng;

    fn noisy_ds(seed: u64) -> Dataset {
        let mut rng = SimRng::new(seed);
        let mut ds = Dataset::new(["a", "b"]);
        for _ in 0..300 {
            let a = rng.uniform(-1.0, 1.0);
            let b = rng.uniform(-1.0, 1.0);
            ds.push(vec![a, b], 5.0 * a - 3.0 * b + rng.normal(0.0, 0.5));
        }
        ds
    }

    #[test]
    fn zero_lambda_matches_ols() {
        let ds = noisy_ds(1);
        let ridge = RidgeRegression::fit(&ds, 0.0);
        let ols = LinearRegression::fit(&ds);
        for (r, o) in ridge.weights().iter().zip(ols.weights()) {
            assert!((r - o).abs() < 1e-6, "{r} vs {o}");
        }
    }

    #[test]
    fn heavier_lambda_shrinks_weights() {
        let ds = noisy_ds(2);
        let light = RidgeRegression::fit(&ds, 0.01);
        let heavy = RidgeRegression::fit(&ds, 100.0);
        let light_norm: f64 = light.weights().iter().map(|w| w * w).sum();
        let heavy_norm: f64 = heavy.weights().iter().map(|w| w * w).sum();
        assert!(
            heavy_norm < light_norm * 0.5,
            "{heavy_norm} !< {light_norm}"
        );
    }

    #[test]
    fn infinite_shrinkage_predicts_the_mean() {
        let ds = noisy_ds(3);
        let m = RidgeRegression::fit(&ds, 1e9);
        let p = m.predict_one(&[0.5, 0.5]);
        assert!((p - ds.target_mean()).abs() < 0.01, "{p}");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_lambda_panics() {
        let ds = noisy_ds(4);
        let _ = RidgeRegression::fit(&ds, -1.0);
    }

    #[test]
    fn lambda_is_recorded() {
        let ds = noisy_ds(5);
        assert_eq!(RidgeRegression::fit(&ds, 2.5).lambda(), 2.5);
    }
}
