//! Hyper-parameter search.
//!
//! F2PM's toolchain "generates and validates alternative ML models" — in
//! practice that includes picking each family's hyper-parameters, not just
//! the family. [`grid_search`] is the generic cross-validated selector,
//! and the `tune_*` helpers supply sensible grids per family.
//!
//! The search fans the full `candidate × fold` job matrix out onto the
//! exec pool (through the vendored-rayon facade) with one RNG stream
//! pre-split per job **in sequential order** — finer-grained than
//! per-candidate dispatch, so a 9-candidate grid load-balances across
//! more than 9 workers, and byte-identical at any `ACM_THREADS` width.

use crate::dataset::Dataset;
use crate::lssvm::{LsSvm, LsSvmConfig};
use crate::rep_tree::{RepTree, RepTreeConfig};
use crate::ridge::RidgeRegression;
use crate::svr::{LinearSvr, SvrConfig};
use crate::validate::check_folds;
pub use crate::validate::CvError;
use acm_sim::rng::SimRng;
use rayon::prelude::*;

/// Result of a grid search: the winning candidate and its CV RMSE.
#[derive(Debug, Clone)]
pub struct TuneResult<C> {
    /// The winning configuration.
    pub config: C,
    /// Mean validation RMSE across folds.
    pub cv_rmse: f64,
    /// All candidates with their scores (grid order).
    pub scores: Vec<(C, f64)>,
}

/// Cross-validated grid search over arbitrary configurations.
///
/// `fit_predict` trains on a fold's training split with the given config
/// and returns predictions for the validation rows. Candidates are scored
/// by mean RMSE over `k` folds; ties break toward the earlier grid entry
/// (grids should be ordered simplest-first). Non-finite candidate scores
/// rank behind every finite one — a NaN can never win — and a grid where
/// *nothing* scores finite is [`CvError::NoFiniteScore`]. Degenerate
/// fold requests (`k < 2`, fewer rows than folds) error up front instead
/// of panicking mid-search.
///
/// Panics on an empty candidate grid — that is a caller bug, not a data
/// condition.
pub fn try_grid_search<C, F>(
    candidates: Vec<C>,
    ds: &Dataset,
    k: usize,
    rng: &mut SimRng,
    fit_predict: F,
) -> Result<TuneResult<C>, CvError>
where
    C: Clone + Send + Sync,
    F: Fn(&C, &Dataset, &Dataset, &mut SimRng) -> Vec<f64> + Send + Sync,
{
    assert!(!candidates.is_empty(), "empty candidate grid");
    check_folds(k, ds.len())?;
    let folds = ds.k_folds(k, rng);
    let nf = folds.len();
    // One deterministic RNG stream per (candidate, fold) job, pre-split
    // in sequential candidate-major order so results are byte-identical
    // at any pool width.
    let jobs: Vec<(usize, usize, SimRng)> = (0..candidates.len())
        .flat_map(|c| (0..nf).map(move |f| (c, f)))
        .map(|(c, f)| (c, f, rng.split()))
        .collect();

    let fold_rmse: Vec<f64> = jobs
        .into_par_iter()
        .map(|(c, f, mut job_rng)| {
            let (train, val) = &folds[f];
            let preds = fit_predict(&candidates[c], train, val, &mut job_rng);
            assert_eq!(preds.len(), val.len(), "one prediction per row");
            let mse: f64 = preds
                .iter()
                .zip(val.targets())
                .map(|(p, t)| (p - t) * (p - t))
                .sum::<f64>()
                / val.len() as f64;
            mse.sqrt()
        })
        .collect();

    let scores: Vec<(C, f64)> = candidates
        .into_iter()
        .enumerate()
        .map(|(i, cand)| {
            let sum: f64 = fold_rmse[i * nf..(i + 1) * nf].iter().sum();
            (cand, sum / nf as f64)
        })
        .collect();

    // Rank non-finite scores behind every finite one (total_cmp orders
    // NaN above +inf, but mapping both to +inf keeps ties deterministic:
    // earliest grid entry wins).
    let rank = |s: f64| if s.is_finite() { s } else { f64::INFINITY };
    let best_idx = scores
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| rank(a.1).total_cmp(&rank(b.1)))
        .map(|(i, _)| i)
        .expect("non-empty grid");
    if !scores[best_idx].1.is_finite() {
        return Err(CvError::NoFiniteScore);
    }
    Ok(TuneResult {
        config: scores[best_idx].0.clone(),
        cv_rmse: scores[best_idx].1,
        scores,
    })
}

/// [`try_grid_search`] that panics on degenerate inputs (empty grid, bad
/// fold request, all-non-finite scores) instead of returning an error.
pub fn grid_search<C, F>(
    candidates: Vec<C>,
    ds: &Dataset,
    k: usize,
    rng: &mut SimRng,
    fit_predict: F,
) -> TuneResult<C>
where
    C: Clone + Send + Sync,
    F: Fn(&C, &Dataset, &Dataset, &mut SimRng) -> Vec<f64> + Send + Sync,
{
    try_grid_search(candidates, ds, k, rng, fit_predict)
        .unwrap_or_else(|e| panic!("grid_search: {e}"))
}

/// Tunes REP-Tree depth/support limits.
pub fn tune_rep_tree(ds: &Dataset, k: usize, rng: &mut SimRng) -> TuneResult<RepTreeConfig> {
    let mut grid = Vec::new();
    for &max_depth in &[6, 10, 14] {
        for &min_samples_leaf in &[2, 4, 8] {
            grid.push(RepTreeConfig {
                max_depth,
                min_samples_leaf,
                min_samples_split: min_samples_leaf * 2,
                ..Default::default()
            });
        }
    }
    grid_search(grid, ds, k, rng, |cfg, train, val, rng| {
        let model = RepTree::fit(train, cfg, rng);
        val.rows().iter().map(|r| model.predict_one(r)).collect()
    })
}

/// Tunes the ridge regularisation strength.
pub fn tune_ridge(ds: &Dataset, k: usize, rng: &mut SimRng) -> TuneResult<f64> {
    let grid = vec![1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0];
    grid_search(grid, ds, k, rng, |lambda, train, val, _| {
        let model = RidgeRegression::fit(train, *lambda);
        val.rows().iter().map(|r| model.predict_one(r)).collect()
    })
}

/// Tunes the SVR tube width and regularisation.
pub fn tune_svr(ds: &Dataset, k: usize, rng: &mut SimRng) -> TuneResult<SvrConfig> {
    let mut grid = Vec::new();
    for &epsilon in &[0.01, 0.05, 0.2] {
        for &lambda in &[1e-5, 1e-4, 1e-3] {
            grid.push(SvrConfig {
                epsilon,
                lambda,
                ..Default::default()
            });
        }
    }
    grid_search(grid, ds, k, rng, |cfg, train, val, rng| {
        let model = LinearSvr::fit(train, cfg, rng);
        val.rows().iter().map(|r| model.predict_one(r)).collect()
    })
}

/// Tunes the LS-SVM regularisation and bandwidth.
pub fn tune_lssvm(ds: &Dataset, k: usize, rng: &mut SimRng) -> TuneResult<LsSvmConfig> {
    let mut grid = Vec::new();
    for &gamma in &[1.0, 50.0, 500.0] {
        for &sigma in &[None, Some(1.0), Some(3.0)] {
            grid.push(LsSvmConfig {
                gamma,
                sigma,
                max_support: 200, // keep tuning cheap
            });
        }
    }
    grid_search(grid, ds, k, rng, |cfg, train, val, rng| {
        let model = LsSvm::fit(train, cfg, rng);
        val.rows().iter().map(|r| model.predict_one(r)).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Step target: trees need depth ≥ 2; linear models need no shrinkage.
    fn stepped_ds(seed: u64) -> Dataset {
        let mut rng = SimRng::new(seed);
        let mut ds = Dataset::new(["x", "y"]);
        for _ in 0..300 {
            let x = rng.uniform(0.0, 1.0);
            let y = rng.uniform(0.0, 1.0);
            let target = (x * 4.0).floor() + if y > 0.5 { 10.0 } else { 0.0 };
            ds.push(vec![x, y], target + rng.normal(0.0, 0.05));
        }
        ds
    }

    #[test]
    fn grid_search_picks_the_best_candidate() {
        // Candidates are prediction offsets; offset 0 must win.
        let ds = stepped_ds(1);
        let mut rng = SimRng::new(2);
        let result = grid_search(
            vec![5.0, 0.0, -5.0],
            &ds,
            4,
            &mut rng,
            |offset, train, val, _| {
                let mean = train.target_mean() + offset;
                vec![mean; val.len()]
            },
        );
        assert_eq!(result.config, 0.0);
        assert_eq!(result.scores.len(), 3);
        assert!(result.scores.iter().all(|(_, s)| *s >= result.cv_rmse));
    }

    #[test]
    fn tuned_rep_tree_beats_a_stump() {
        let ds = stepped_ds(3);
        let mut rng = SimRng::new(4);
        let tuned = tune_rep_tree(&ds, 4, &mut rng);
        // A depth-6+ tree fits the 8-cell step function; a stump cannot.
        assert!(tuned.config.max_depth >= 6);
        assert!(tuned.cv_rmse < 1.5, "cv rmse {}", tuned.cv_rmse);
    }

    #[test]
    fn tuned_ridge_prefers_light_shrinkage_on_clean_data() {
        let mut rng = SimRng::new(5);
        let mut ds = Dataset::new(["a"]);
        for _ in 0..200 {
            let a = rng.uniform(-1.0, 1.0);
            ds.push(vec![a], 3.0 * a);
        }
        let tuned = tune_ridge(&ds, 4, &mut rng);
        assert!(tuned.config <= 0.01, "lambda {}", tuned.config);
        assert!(tuned.cv_rmse < 0.1);
    }

    #[test]
    fn tuning_is_deterministic_per_seed() {
        let ds = stepped_ds(6);
        let a = tune_rep_tree(&ds, 4, &mut SimRng::new(7));
        let b = tune_rep_tree(&ds, 4, &mut SimRng::new(7));
        assert_eq!(a.config, b.config);
        assert_eq!(a.cv_rmse, b.cv_rmse);
    }

    #[test]
    fn svr_and_lssvm_tuners_return_grid_members() {
        let ds = stepped_ds(8);
        let mut rng = SimRng::new(9);
        let svr = tune_svr(&ds, 3, &mut rng);
        assert!(svr.scores.len() == 9);
        assert!(svr.cv_rmse.is_finite());
        let lssvm = tune_lssvm(&ds, 3, &mut rng);
        assert!(lssvm.scores.len() == 9);
        assert!(lssvm.cv_rmse < svr.cv_rmse * 2.0);
    }

    #[test]
    fn nan_scores_never_win_the_grid() {
        // Candidate 0 poisons its predictions with NaN; candidate 1 is a
        // sane mean predictor. The NaN must lose, loudly ranked last.
        let ds = stepped_ds(12);
        let mut rng = SimRng::new(13);
        let result = grid_search(
            vec!["poison", "mean"],
            &ds,
            3,
            &mut rng,
            |cand, train, val, _| {
                if *cand == "poison" {
                    vec![f64::NAN; val.len()]
                } else {
                    vec![train.target_mean(); val.len()]
                }
            },
        );
        assert_eq!(result.config, "mean");
        assert!(result.cv_rmse.is_finite());
        assert!(result.scores[0].1.is_nan(), "poison scored NaN as recorded");
    }

    #[test]
    fn all_nan_grid_is_an_error_not_a_silent_winner() {
        let ds = stepped_ds(14);
        let err = try_grid_search(
            vec![1.0, 2.0],
            &ds,
            3,
            &mut SimRng::new(15),
            |_, _, val, _| vec![f64::NAN; val.len()],
        )
        .unwrap_err();
        assert_eq!(err, CvError::NoFiniteScore);
    }

    #[test]
    fn degenerate_fold_requests_error_up_front() {
        let ds = stepped_ds(16);
        let mut rng = SimRng::new(17);
        let err = try_grid_search(vec![0.0], &ds, 1, &mut rng, |_, _, val, _| {
            vec![0.0; val.len()]
        })
        .unwrap_err();
        assert_eq!(err, CvError::TooFewFolds { k: 1 });
        let mut tiny = Dataset::new(["x"]);
        tiny.push(vec![0.0], 0.0);
        tiny.push(vec![1.0], 1.0);
        let err = try_grid_search(vec![0.0], &tiny, 3, &mut rng, |_, _, val, _| {
            vec![0.0; val.len()]
        })
        .unwrap_err();
        assert_eq!(err, CvError::TooFewRows { rows: 2, k: 3 });
    }

    #[test]
    #[should_panic(expected = "empty candidate grid")]
    fn empty_grid_panics() {
        let ds = stepped_ds(10);
        let mut rng = SimRng::new(11);
        let _ = grid_search(Vec::<f64>::new(), &ds, 3, &mut rng, |_, _, val, _| {
            vec![0.0; val.len()]
        });
    }
}
