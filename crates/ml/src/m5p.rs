//! M5P model tree: a regression tree with linear models at the leaves
//! (Wang & Witten's M5'; paper ref \[29\]).
//!
//! Growing follows the same variance-reduction splits as the REP-Tree.
//! Every node also carries a ridge model fitted on its own data; pruning
//! compares each subtree against its node's linear model using M5's
//! complexity-penalised training error, and prediction is *smoothed* along
//! the root path exactly as in the original algorithm.

use crate::dataset::Dataset;
use crate::ridge::RidgeRegression;
use serde::{Deserialize, Serialize};

/// Hyper-parameters for M5P.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct M5Config {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples to consider a split (M5 default is 4; we keep more
    /// because leaf models need support).
    pub min_samples_split: usize,
    /// Minimum samples per child.
    pub min_samples_leaf: usize,
    /// Smoothing constant `k` in Quinlan's `(n·p_child + k·p_node)/(n + k)`.
    pub smoothing_k: f64,
    /// Ridge strength of the per-node linear models.
    pub leaf_lambda: f64,
}

impl Default for M5Config {
    fn default() -> Self {
        M5Config {
            max_depth: 8,
            min_samples_split: 16,
            min_samples_leaf: 8,
            smoothing_k: 15.0,
            leaf_lambda: 1e-3,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct M5Node {
    /// Linear model fitted on this node's training rows.
    model: RidgeRegression,
    /// Training rows that reached this node.
    n: usize,
    /// `Some((feature, threshold, left, right))` for internal nodes.
    split: Option<(usize, f64, usize, usize)>,
}

/// A trained M5P model tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct M5Prime {
    nodes: Vec<M5Node>,
    root: usize,
    smoothing_k: f64,
}

impl M5Prime {
    /// Fits an M5P tree.
    pub fn fit(ds: &Dataset, cfg: &M5Config) -> Self {
        assert!(!ds.is_empty(), "cannot fit on empty dataset");
        let mut builder = M5Builder {
            nodes: Vec::new(),
            cfg,
            ds,
        };
        let indices: Vec<usize> = (0..ds.len()).collect();
        let root = builder.build(&indices, 0);
        let mut tree = M5Prime {
            nodes: builder.nodes,
            root,
            smoothing_k: cfg.smoothing_k,
        };
        tree.prune(tree.root, &indices, ds);
        tree
    }

    /// Predicts one row with root-path smoothing.
    pub fn predict_one(&self, x: &[f64]) -> f64 {
        self.predict_node(self.root, x)
    }

    fn predict_node(&self, idx: usize, x: &[f64]) -> f64 {
        let node = &self.nodes[idx];
        match node.split {
            None => node.model.predict_one(x),
            Some((feature, threshold, left, right)) => {
                let child = if x[feature] <= threshold { left } else { right };
                let child_pred = self.predict_node(child, x);
                let child_n = self.nodes[child].n as f64;
                // Quinlan smoothing toward this node's own model.
                let node_pred = node.model.predict_one(x);
                (child_n * child_pred + self.smoothing_k * node_pred) / (child_n + self.smoothing_k)
            }
        }
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.count(self.root)
    }

    fn count(&self, idx: usize) -> usize {
        match self.nodes[idx].split {
            None => 1,
            Some((_, _, l, r)) => self.count(l) + self.count(r),
        }
    }

    /// M5 pruning: collapse a subtree when the node model's complexity-
    /// penalised MAE is no worse than the subtree's. Returns the subtree's
    /// penalised error after pruning.
    fn prune(&mut self, idx: usize, indices: &[usize], ds: &Dataset) -> f64 {
        let node_err = self.penalised_mae(idx, indices, ds);
        let Some((feature, threshold, left, right)) = self.nodes[idx].split else {
            return node_err;
        };
        let (li, ri): (Vec<usize>, Vec<usize>) = indices
            .iter()
            .partition(|&&i| ds.row(i)[feature] <= threshold);
        let nl = li.len() as f64;
        let nr = ri.len() as f64;
        let n = indices.len() as f64;
        let subtree_err = if n > 0.0 {
            (nl * self.prune(left, &li, ds) + nr * self.prune(right, &ri, ds)) / n
        } else {
            0.0
        };
        if node_err <= subtree_err {
            self.nodes[idx].split = None;
            node_err
        } else {
            subtree_err
        }
    }

    /// MAE of the node's own linear model on `indices`, inflated by the M5
    /// complexity factor `(n + v) / (n - v)` with `v` = parameter count.
    fn penalised_mae(&self, idx: usize, indices: &[usize], ds: &Dataset) -> f64 {
        if indices.is_empty() {
            return 0.0;
        }
        let model = &self.nodes[idx].model;
        let n = indices.len() as f64;
        let v = (ds.width() + 1) as f64;
        let mae: f64 = indices
            .iter()
            .map(|&i| (ds.target(i) - model.predict_one(ds.row(i))).abs())
            .sum::<f64>()
            / n;
        let penalty = if n > v { (n + v) / (n - v) } else { 4.0 };
        mae * penalty
    }
}

impl crate::model::Regressor for M5Prime {
    fn predict_one(&self, x: &[f64]) -> f64 {
        M5Prime::predict_one(self, x)
    }
    fn name(&self) -> &'static str {
        "m5p"
    }
}

struct M5Builder<'a> {
    nodes: Vec<M5Node>,
    cfg: &'a M5Config,
    ds: &'a Dataset,
}

impl M5Builder<'_> {
    fn build(&mut self, indices: &[usize], depth: usize) -> usize {
        let model = RidgeRegression::fit(&self.ds.subset(indices), self.cfg.leaf_lambda);
        let split = if depth < self.cfg.max_depth && indices.len() >= self.cfg.min_samples_split {
            self.best_split(indices)
        } else {
            None
        };
        match split {
            None => self.push(M5Node {
                model,
                n: indices.len(),
                split: None,
            }),
            Some((feature, threshold)) => {
                let (li, ri): (Vec<usize>, Vec<usize>) = indices
                    .iter()
                    .partition(|&&i| self.ds.row(i)[feature] <= threshold);
                let left = self.build(&li, depth + 1);
                let right = self.build(&ri, depth + 1);
                self.push(M5Node {
                    model,
                    n: indices.len(),
                    split: Some((feature, threshold, left, right)),
                })
            }
        }
    }

    fn push(&mut self, node: M5Node) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Same SSE-reduction scan as the REP-Tree builder.
    fn best_split(&self, indices: &[usize]) -> Option<(usize, f64)> {
        let n = indices.len() as f64;
        let total_sum: f64 = indices.iter().map(|&i| self.ds.target(i)).sum();
        let total_sq: f64 = indices
            .iter()
            .map(|&i| {
                let y = self.ds.target(i);
                y * y
            })
            .sum();
        let parent_sse = total_sq - total_sum * total_sum / n;
        let mut best: Option<(usize, f64, f64)> = None;
        let mut order: Vec<usize> = Vec::with_capacity(indices.len());
        for feature in 0..self.ds.width() {
            order.clear();
            order.extend_from_slice(indices);
            order.sort_by(|&a, &b| {
                self.ds.row(a)[feature]
                    .partial_cmp(&self.ds.row(b)[feature])
                    .unwrap()
            });
            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            for (k, &i) in order.iter().enumerate().take(order.len() - 1) {
                let y = self.ds.target(i);
                left_sum += y;
                left_sq += y * y;
                if (k + 1) < self.cfg.min_samples_leaf
                    || (order.len() - k - 1) < self.cfg.min_samples_leaf
                {
                    continue;
                }
                let x_here = self.ds.row(i)[feature];
                let x_next = self.ds.row(order[k + 1])[feature];
                if x_here == x_next {
                    continue;
                }
                let nl = (k + 1) as f64;
                let nr = n - nl;
                let right_sum = total_sum - left_sum;
                let right_sq = total_sq - left_sq;
                let sse =
                    (left_sq - left_sum * left_sum / nl) + (right_sq - right_sum * right_sum / nr);
                if best.as_ref().is_none_or(|(_, _, b)| sse < *b) {
                    best = Some((feature, 0.5 * (x_here + x_next), sse));
                }
            }
        }
        match best {
            Some((f, t, sse)) if sse < parent_sse - 1e-12 => Some((f, t)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acm_sim::rng::SimRng;

    /// Piecewise-linear target: two different linear regimes.
    fn piecewise_ds(n: usize, seed: u64) -> Dataset {
        let mut rng = SimRng::new(seed);
        let mut ds = Dataset::new(["x"]);
        for _ in 0..n {
            let x = rng.uniform(0.0, 2.0);
            let y = if x < 1.0 {
                3.0 * x
            } else {
                10.0 - 4.0 * (x - 1.0)
            };
            ds.push(vec![x], y + rng.normal(0.0, 0.05));
        }
        ds
    }

    #[test]
    fn beats_a_global_line_on_piecewise_data() {
        let ds = piecewise_ds(800, 1);
        let m5 = M5Prime::fit(&ds, &M5Config::default());
        let line = crate::linear::LinearRegression::fit(&ds);
        let mut m5_err = 0.0;
        let mut line_err = 0.0;
        for x in [0.1, 0.4, 0.9, 1.1, 1.6, 1.9] {
            let truth = if x < 1.0 {
                3.0 * x
            } else {
                10.0 - 4.0 * (x - 1.0)
            };
            m5_err += (m5.predict_one(&[x]) - truth).abs();
            line_err += (line.predict_one(&[x]) - truth).abs();
        }
        assert!(m5_err < line_err * 0.5, "m5 {m5_err} vs line {line_err}");
    }

    #[test]
    fn purely_linear_target_prunes_to_near_stump() {
        // The node model already fits perfectly: pruning should collapse
        // (almost) everything.
        let mut ds = Dataset::new(["a", "b"]);
        let mut rng = SimRng::new(2);
        for _ in 0..500 {
            let a = rng.uniform(0.0, 1.0);
            let b = rng.uniform(0.0, 1.0);
            // Realistic measurement noise: without it the prune comparison
            // degenerates to bit-level ridge-bias differences.
            ds.push(vec![a, b], 2.0 * a - b + 0.5 + rng.normal(0.0, 0.05));
        }
        let m5 = M5Prime::fit(&ds, &M5Config::default());
        assert!(m5.leaf_count() <= 2, "leaves {}", m5.leaf_count());
        assert!((m5.predict_one(&[0.5, 0.5]) - 1.0).abs() < 0.05);
    }

    #[test]
    fn extrapolates_within_leaf_regime() {
        // Unlike a plain tree, leaf linear models extrapolate linearly.
        let ds = piecewise_ds(800, 3);
        let m5 = M5Prime::fit(&ds, &M5Config::default());
        let p = m5.predict_one(&[0.5]);
        assert!((p - 1.5).abs() < 0.3, "{p}");
    }

    #[test]
    fn respects_depth_limit() {
        let ds = piecewise_ds(500, 4);
        let cfg = M5Config {
            max_depth: 0,
            ..Default::default()
        };
        let m5 = M5Prime::fit(&ds, &cfg);
        assert_eq!(m5.leaf_count(), 1);
    }

    #[test]
    fn smoothing_changes_predictions_continuously() {
        // Near a split boundary, smoothing pulls both sides toward the
        // parent model, so the jump across the boundary is smaller than the
        // raw leaf difference.
        let ds = piecewise_ds(800, 5);
        let smooth = M5Prime::fit(&ds, &M5Config::default());
        let jump = (smooth.predict_one(&[0.999]) - smooth.predict_one(&[1.001])).abs();
        assert!(jump < 1.0, "smoothed jump {jump}");
    }

    #[test]
    fn tiny_dataset_is_single_leaf() {
        let mut ds = Dataset::new(["x"]);
        for i in 0..6 {
            ds.push(vec![i as f64], 2.0 * i as f64);
        }
        let m5 = M5Prime::fit(&ds, &M5Config::default());
        assert_eq!(m5.leaf_count(), 1);
        assert!((m5.predict_one(&[3.0]) - 6.0).abs() < 0.05);
    }
}
