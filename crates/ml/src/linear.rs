//! Ordinary least squares.
//!
//! Solved through the normal equations on standardised features with a tiny
//! diagonal jitter, which keeps the Cholesky factorisation stable even when
//! monitored features are nearly collinear (resident set and memory
//! utilisation are linearly related by construction).

use crate::dataset::Dataset;
use crate::linalg::{dot, Matrix};
use crate::scaler::StandardScaler;
use serde::{Deserialize, Serialize};

/// Numerical jitter added to the Gram diagonal (standardised scale).
const JITTER: f64 = 1e-8;

/// A trained ordinary-least-squares model.
///
/// ```
/// use acm_ml::dataset::Dataset;
/// use acm_ml::linear::LinearRegression;
/// let mut ds = Dataset::new(["x"]);
/// for i in 0..20 {
///     ds.push(vec![i as f64], 2.0 * i as f64 + 1.0);
/// }
/// let model = LinearRegression::fit(&ds);
/// assert!((model.predict_one(&[10.0]) - 21.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearRegression {
    /// Weights in the *original* (unstandardised) feature space.
    weights: Vec<f64>,
    intercept: f64,
}

impl LinearRegression {
    /// Fits OLS on the dataset. Panics on an empty dataset.
    pub fn fit(ds: &Dataset) -> Self {
        let (weights, intercept) = fit_l2(ds, JITTER);
        LinearRegression { weights, intercept }
    }

    /// Weights in original feature units.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Intercept in target units.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Predicts one row.
    pub fn predict_one(&self, x: &[f64]) -> f64 {
        dot(&self.weights, x) + self.intercept
    }
}

impl crate::model::Regressor for LinearRegression {
    fn predict_one(&self, x: &[f64]) -> f64 {
        LinearRegression::predict_one(self, x)
    }
    fn name(&self) -> &'static str {
        "linear"
    }
}

/// Shared L2-regularised normal-equation solver used by OLS (tiny jitter)
/// and Ridge (real `lambda`). Returns weights and intercept in the original
/// feature space. `lambda` applies on the standardised scale.
pub(crate) fn fit_l2(ds: &Dataset, lambda: f64) -> (Vec<f64>, f64) {
    assert!(!ds.is_empty(), "cannot fit on empty dataset");
    let scaler = StandardScaler::fit(ds.rows());
    let xs = scaler.transform(ds.rows());
    let y_mean = ds.target_mean();
    let yc: Vec<f64> = ds.targets().iter().map(|y| y - y_mean).collect();

    let x = Matrix::from_rows(&xs);
    let mut gram = x.gram();
    gram.add_diagonal(lambda * ds.len() as f64);
    let xty = x.transpose().matvec(&yc);
    let w_std = gram
        .solve_spd(&xty)
        .or_else(|| gram.solve_lu(&xty))
        .expect("regularised Gram matrix must be solvable");

    // Un-standardise: w_orig[j] = w_std[j] / std[j];
    // intercept = ȳ − Σ w_orig[j]·mean[j].
    let weights: Vec<f64> = w_std
        .iter()
        .zip(scaler.stds())
        .map(|(w, s)| w / s)
        .collect();
    let intercept = y_mean - dot(&weights, scaler.means());
    (weights, intercept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acm_sim::rng::SimRng;

    fn make_ds(n: usize, noise: f64, seed: u64) -> Dataset {
        let mut rng = SimRng::new(seed);
        let mut ds = Dataset::new(["a", "b", "c"]);
        for _ in 0..n {
            let a = rng.uniform(-5.0, 5.0);
            let b = rng.uniform(0.0, 100.0);
            let c = rng.uniform(-1.0, 1.0);
            let y = 2.0 * a - 0.5 * b + 7.0 * c + 3.0 + rng.normal(0.0, noise);
            ds.push(vec![a, b, c], y);
        }
        ds
    }

    #[test]
    fn recovers_exact_coefficients_noise_free() {
        let ds = make_ds(200, 0.0, 1);
        let m = LinearRegression::fit(&ds);
        let w = m.weights();
        assert!((w[0] - 2.0).abs() < 1e-6, "w0 {}", w[0]);
        assert!((w[1] + 0.5).abs() < 1e-6, "w1 {}", w[1]);
        assert!((w[2] - 7.0).abs() < 1e-6, "w2 {}", w[2]);
        assert!((m.intercept() - 3.0).abs() < 1e-5);
    }

    #[test]
    fn tolerates_noise() {
        let ds = make_ds(2000, 1.0, 2);
        let m = LinearRegression::fit(&ds);
        assert!((m.weights()[0] - 2.0).abs() < 0.1);
        assert!((m.weights()[1] + 0.5).abs() < 0.01);
    }

    #[test]
    fn handles_collinear_features() {
        // b = 2a exactly: the Gram matrix is singular without jitter.
        let mut ds = Dataset::new(["a", "b"]);
        let mut rng = SimRng::new(3);
        for _ in 0..100 {
            let a = rng.uniform(0.0, 10.0);
            ds.push(vec![a, 2.0 * a], 3.0 * a + 1.0);
        }
        let m = LinearRegression::fit(&ds);
        // Predictions must still be right even though the split between the
        // two collinear weights is arbitrary.
        assert!((m.predict_one(&[4.0, 8.0]) - 13.0).abs() < 1e-4);
    }

    #[test]
    fn constant_feature_is_ignored() {
        let mut ds = Dataset::new(["a", "const"]);
        let mut rng = SimRng::new(4);
        for _ in 0..100 {
            let a = rng.uniform(0.0, 10.0);
            ds.push(vec![a, 5.0], 2.0 * a);
        }
        let m = LinearRegression::fit(&ds);
        assert!((m.weights()[0] - 2.0).abs() < 1e-6);
        assert!(m.weights()[1].abs() < 1e-6);
        assert!((m.predict_one(&[3.0, 5.0]) - 6.0).abs() < 1e-6);
    }

    #[test]
    fn single_feature_simple_regression() {
        let mut ds = Dataset::new(["x"]);
        for i in 0..50 {
            ds.push(vec![i as f64], 4.0 * i as f64 - 2.0);
        }
        let m = LinearRegression::fit(&ds);
        assert!((m.weights()[0] - 4.0).abs() < 1e-5);
        assert!((m.intercept() + 2.0).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_dataset_panics() {
        let ds = Dataset::new(["a"]);
        let _ = LinearRegression::fit(&ds);
    }
}
